#!/usr/bin/env python
"""Atom migration and the in-order flush protocol (§IV.B.5, Fig. 12).

Demonstrates the migration protocol directly — FIFO messages plus an
in-order multicast flush, shown to be robust even when the network
reorders unflagged packets — and the cost trade-off of migrating every
N steps with relaxed home-box boundaries.

Run:  python examples/migration_tuning.py
"""

import numpy as np

from repro import MigrationProtocol, Simulator, build_machine


def protocol_demo() -> None:
    print("=== Migration protocol on a 4x4x4 machine ===")
    sim = Simulator()
    # Turn on reorder jitter: unflagged packets may overtake each other,
    # but the protocol's in-order flag keeps the flush behind the data.
    machine = build_machine(sim, 4, 4, 4, reorder_jitter_ns=300.0, seed=7)
    mig = MigrationProtocol(machine)

    empty = mig.run()
    print(f"empty migration (pure synchronization): {empty.elapsed_us:.2f} µs "
          "(paper: 0.56 µs on 512 nodes)")

    torus = machine.torus
    rng = np.random.default_rng(0)
    moves = {}
    for c in torus.nodes():
        neigh = torus.moore_neighbors(c)
        k = int(rng.integers(0, 4))
        moves[c] = [(neigh[int(rng.integers(0, len(neigh)))], f"atom-{c}-{i}")
                    for i in range(k)]
    busy = mig.run(moves, scan_atoms={c: 46 for c in torus.nodes()})
    print(f"migrating {busy.messages_sent} atoms under reordering jitter: "
          f"{busy.elapsed_us:.2f} µs, no message lost "
          f"({busy.messages_received} received)")


def interval_tradeoff() -> None:
    print("\n=== Amortising migration over N steps (Fig. 12's idea) ===")
    sim = Simulator()
    machine = build_machine(sim, 4, 4, 4)
    mig = MigrationProtocol(machine)
    scan = {c: 46 for c in machine.torus.nodes()}
    cost = mig.run(scan_atoms=scan).elapsed_us
    print(f"one migration phase costs {cost:.2f} µs; amortised per step:")
    for n in (1, 2, 4, 8):
        print(f"  every {n} step(s): +{cost / n:.2f} µs/step")
    print("Relaxed home-box boundaries make the longer intervals safe — "
          "atoms may sit slightly outside their box between migrations.")


if __name__ == "__main__":
    protocol_demo()
    interval_tradeoff()
