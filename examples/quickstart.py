#!/usr/bin/env python
"""Quickstart: the 162-nanosecond counted remote write.

Builds a 512-node simulated Anton, sends one 0-byte counted remote
write between X-neighbours, and shows the gather pattern of Fig. 4:
two source slices writing into one target with a single
synchronization counter.

Run:  python examples/quickstart.py
"""

from repro import CountedGather, GatherSource, Simulator, build_machine


def headline_latency() -> None:
    sim = Simulator()
    machine = build_machine(sim, 8, 8, 8)  # the paper's 512-node Anton
    src = machine.node((0, 0, 0)).slice(0)
    dst = machine.node((1, 0, 0)).slice(0)
    dst.memory.allocate("inbox", 1)

    def sender():
        yield from src.send_write(
            (1, 0, 0), "slice0", counter_id="hello",
            address=("inbox", 0), payload_bytes=0,
        )

    result = {}

    def receiver():
        result["t"] = yield from dst.poll("hello", 1)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    print(f"0-byte write, one X hop, send to successful poll: "
          f"{result['t']:.0f} ns   (paper: 162 ns)")


def counted_gather() -> None:
    """Fig. 4: sources push directly; the target polls one counter."""
    sim = Simulator()
    machine = build_machine(sim, 8, 8, 8)
    target = machine.node((2, 2, 0)).slice(0)
    a = machine.node((1, 2, 0)).slice(0)
    b = machine.node((2, 3, 0)).slice(0)
    gather = CountedGather(
        target,
        "positions",
        [
            GatherSource(a.node, a.name, packets=3),
            GatherSource(b.node, b.name, packets=2),
        ],
    )

    def send_a():
        yield from gather.send_from(a, ["a0", "a1", "a2"], payload_bytes=32)

    def send_b():
        yield sim.timeout(400.0)  # b's data is ready later — no handshake
        yield from gather.send_from(b, ["b0", "b1"], payload_bytes=32)

    done = {}

    def receiver():
        done["t"] = yield from gather.wait(target)

    sim.process(send_a())
    sim.process(send_b())
    sim.process(receiver())
    sim.run()
    print(f"counted gather of {gather.expected} packets from 2 nodes "
          f"complete at {done['t']:.0f} ns; data: {gather.gathered()}")


if __name__ == "__main__":
    headline_latency()
    counted_gather()
