#!/usr/bin/env python
"""Run a real MD simulation, then map a step onto the simulated machine.

Part 1 integrates a small box of flexible water with the full force
field (Lennard-Jones + Ewald-split electrostatics with the FFT grid
solver + harmonic bonds), reporting energy conservation — the physics
is real, not mocked.

Part 2 maps the same kind of system onto a simulated 8-node Anton in
payload mode: atom positions travel as multicast counted remote
writes, the HTIS computes midpoint-assigned pairs, forces come back as
accumulation packets — and the distributed result is compared against
the serial kernels.

Run:  python examples/md_simulation.py
"""

import numpy as np

from repro.md.bonded import bond_energy_forces
from repro.md.forcefield import ForceField
from repro.md.integrator import Integrator, temperature
from repro.md.longrange import LongRangeSolver
from repro.md.machine import AntonMD
from repro.md.rangelimited import range_limited_forces
from repro.md.system import bulk_water, tiny_system


def nve_water() -> None:
    print("=== Part 1: NVE water box (real numerics) ===")
    system = bulk_water(molecules=27, seed=1)
    ff = ForceField(cutoff=6.5, ewald_alpha=0.35)
    integrator = Integrator(
        ff, dt=0.0004,
        long_range=LongRangeSolver(grid_points=16),
        long_range_interval=2,
    )
    print(f"{system.num_atoms} atoms, box {system.box_edge:.1f} Å, "
          f"T0 = {temperature(system):.0f} K")
    reports = integrator.run(system, 50)
    totals = [r.total for r in reports]
    drift = (max(totals) - min(totals)) / abs(np.mean(totals))
    print(f"50 steps: E_total = {totals[-1]:.2f} kcal/mol, "
          f"relative energy drift {drift:.2e}")
    print(f"final T = {temperature(system):.0f} K")


def machine_mapped_step() -> None:
    print("\n=== Part 2: one step on a simulated 2x2x2 Anton ===")
    system = tiny_system(64, box_edge=16.0, seed=1)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.3)
    md = AntonMD(system, (2, 2, 2), ff=ff, grid=8, payload_mode=True,
                 slack=0.5)
    report = md.run_step("range_limited")
    print(f"range-limited step: {report.total_us:.2f} µs simulated, "
          f"{report.packets_injected} packets injected")
    for phase in ("positions", "range_limited", "bonded", "integration"):
        lo, hi = report.phase_spans[phase]
        print(f"  {phase:14s} {(hi - lo) / 1000:6.2f} µs")
    reference = (
        range_limited_forces(system, ff).forces
        + bond_energy_forces(system)[1]
    )
    err = np.abs(md.collected_forces - reference).max()
    print(f"distributed vs serial force max |Δ|: {err:.2e} "
          f"(force scale {np.abs(reference).max():.1f})")


if __name__ == "__main__":
    nve_water()
    machine_mapped_step()
