#!/usr/bin/env python
"""Fine-grained messaging: Anton's design point (§III.D, Fig. 7).

Splits a 2 KB transfer into ever more messages on the simulated Anton
and on the InfiniBand-cluster model, then shows the bandwidth
efficiency of small packets — the properties that let Anton send one
atom per packet instead of marshalling large buffers (Fig. 8).

Run:  python examples/fine_grained_messaging.py
"""

from repro.analysis.transfer import (
    anton_transfer_ns,
    bandwidth_efficiency,
    half_bandwidth_payload,
    infiniband_transfer_ns,
)


def main() -> None:
    print("2 KB transfer time vs message count (µs):")
    print(f"{'messages':>9} {'Anton 1hop':>11} {'Anton 4hop':>11} {'InfiniBand':>11}")
    base = None
    for n in (1, 4, 16, 64):
        a1 = anton_transfer_ns(2048, n, hops=1) / 1000
        a4 = anton_transfer_ns(2048, n, hops=4) / 1000
        ib = infiniband_transfer_ns(2048, n) / 1000
        if base is None:
            base = (a1, a4, ib)
        print(f"{n:>9} {a1:>11.2f} {a4:>11.2f} {ib:>11.2f}")
    a1, a4, ib = base
    print(f"\n64-message slowdown: Anton {anton_transfer_ns(2048, 64)/1000/a1:.1f}x, "
          f"InfiniBand {infiniband_transfer_ns(2048, 64)/1000/ib:.1f}x "
          "(paper: ~3.5x vs ~7-8x)")

    print("\nBandwidth efficiency (fraction of max data bandwidth):")
    for p in (8, 16, 28, 64, 128, 256):
        bar = "#" * int(40 * bandwidth_efficiency(p))
        print(f"{p:>5} B  {bandwidth_efficiency(p):5.2f}  {bar}")
    print(f"\n50% of max data bandwidth at {half_bandwidth_payload()} B payloads "
          "(paper: 28 B; Blue Gene/L needs 1.4 KB, ASC Purple 39 KB).")


if __name__ == "__main__":
    main()
