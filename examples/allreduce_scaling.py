#!/usr/bin/env python
"""Global all-reduce on the torus: algorithms and scaling (§IV.B.4).

Shows the dimension-ordered collective against a radix-2 butterfly on
machines from 8 to 512 nodes, and against the InfiniBand-cluster
baseline — the paper's ~20× gap.

Run:  python examples/allreduce_scaling.py
"""

from repro import Simulator, build_machine
from repro.baselines import ClusterNetwork, MpiContext
from repro.comm.collectives import (
    AllReduce,
    ButterflyAllReduce,
    butterfly_hops,
    dimension_ordered_hops,
)

SHAPES = [(2, 2, 2), (4, 4, 4), (8, 8, 8)]


def main() -> None:
    print(f"{'machine':>10} {'nodes':>6} {'dim-ordered':>12} "
          f"{'butterfly':>10} {'IB cluster':>11}   hops (do/bfly)")
    for shape in SHAPES:
        nodes = shape[0] * shape[1] * shape[2]
        sim = Simulator()
        t_do = AllReduce(build_machine(sim, *shape), payload_bytes=32).run()
        sim2 = Simulator()
        t_bf = ButterflyAllReduce(
            build_machine(sim2, *shape), payload_bytes=32
        ).run()
        sim3 = Simulator()
        t_ib = MpiContext(ClusterNetwork(sim3, nodes)).allreduce_ns(32) / 1000
        print(
            f"{'x'.join(map(str, shape)):>10} {nodes:>6} "
            f"{t_do.elapsed_us:>10.2f}µs {t_bf.elapsed_us:>8.2f}µs "
            f"{t_ib:>9.2f}µs   {dimension_ordered_hops(shape)}/{butterfly_hops(shape)}"
        )
        assert t_do.value == t_bf.value == nodes * (nodes - 1) / 2
    print("\nPaper: 1.77 µs on 512 Anton nodes vs 35.5 µs on a 512-node "
          "InfiniBand cluster (20x).")


if __name__ == "__main__":
    main()
