"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.asic import build_machine
from repro.engine import Simulator


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the ambient observatory ledger at a per-test temp file so
    tests that drive ``main()`` never write ``.repro-ledger.jsonl``
    into the developer's working directory.  Tests that want a
    specific ledger still override via ``--ledger``/``--no-ledger`` or
    their own ``REPRO_LEDGER``."""
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "test-ledger.jsonl"))


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def machine222(sim):
    """A small 2x2x2 Anton machine (8 nodes)."""
    return build_machine(sim, 2, 2, 2)


@pytest.fixture
def machine444(sim):
    """A 4x4x4 Anton machine (64 nodes)."""
    return build_machine(sim, 4, 4, 4)


def run_exchange(sim, src_slice, dst_slice, *, payload_bytes=0, payload=None,
                 buffer="rx", counter="c", slot=0, expected=1):
    """Send one counted remote write and poll for it; returns the
    receiver's completion time in ns."""
    if not dst_slice.memory.has_buffer(buffer):
        dst_slice.memory.allocate(buffer, max(expected, slot + 1))
    result = {}

    def sender():
        yield from src_slice.send_write(
            dst_slice.node,
            dst_slice.name,
            counter_id=counter,
            address=(buffer, slot),
            payload=payload,
            payload_bytes=payload_bytes,
        )

    def receiver():
        result["t"] = yield from dst_slice.poll(counter, expected)

    p1 = sim.process(sender())
    p2 = sim.process(receiver())
    sim.run(until=sim.all_of([p1, p2]))
    return result["t"]
