"""Unit tests for FCFS resources and stores."""

import pytest

from repro.engine import Resource, Simulator, Store


def test_resource_grants_up_to_capacity(sim):
    r = Resource(sim, capacity=2)
    e1, e2, e3 = r.request(), r.request(), r.request()
    assert e1.triggered and e2.triggered
    assert not e3.triggered
    assert r.in_use == 2
    assert r.queue_length == 1


def test_release_wakes_fifo_order(sim):
    r = Resource(sim, capacity=1)
    first = r.request()
    waiters = [r.request() for _ in range(3)]
    assert first.triggered
    r.release()
    assert waiters[0].triggered and not waiters[1].triggered
    r.release()
    assert waiters[1].triggered and not waiters[2].triggered


def test_release_without_request_raises(sim):
    r = Resource(sim)
    with pytest.raises(RuntimeError):
        r.release()


def test_invalid_capacity(sim):
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_use_serialises_processes(sim):
    r = Resource(sim, capacity=1)
    log = []

    def worker(name):
        yield from r.use(10.0)
        log.append((sim.now, name))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert log == [(10.0, "a"), (20.0, "b")]


def test_try_acquire_fast_path(sim):
    r = Resource(sim, capacity=1)
    assert r.try_acquire()
    assert not r.try_acquire()
    r.release()
    assert r.try_acquire()


def test_utilization_accounting(sim):
    r = Resource(sim, capacity=1)

    def worker():
        yield from r.use(30.0)
        yield sim.timeout(70.0)

    sim.process(worker())
    sim.run()
    assert r.utilization() == pytest.approx(0.3)


def test_store_fifo_order(sim):
    s = Store(sim)
    s.put(1)
    s.put(2)
    assert s.get().value == 1
    assert s.get().value == 2


def test_store_blocking_get(sim):
    s = Store(sim)
    got = []

    def consumer():
        item = yield s.get()
        got.append((sim.now, item))

    sim.process(consumer())
    sim.schedule(12.0, s.put, "hello")
    sim.run()
    assert got == [(12.0, "hello")]


def test_store_try_get(sim):
    s = Store(sim)
    assert s.try_get() is None
    s.put("x")
    assert s.try_get() == "x"
    assert s.try_get() is None
