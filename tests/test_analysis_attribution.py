"""Trace-derived latency attribution (analysis/attribution.py).

The regression anchor for the observability stack: the breakdown
derived purely from recorded spans must land on the paper's Fig. 6
calibration constants, and its total must equal the simulated
end-to-end latency *exactly* — any drift means the analyzer and the
transport disagree about where time went.
"""

import pytest

from repro.analysis.attribution import (
    Attribution,
    Component,
    PathSegment,
    attribute_flight,
    measure_attribution,
    render_attribution,
)
from repro.constants import (
    DST_RING_NS,
    HEADER_BYTES,
    LINK_ADAPTER_NS,
    POLL_SUCCESS_NS,
    SLICE_SEND_NS,
    SRC_RING_NS,
    THROUGH_RING_NS,
    TORUS_LINK_EFFECTIVE_GBPS,
    WIRE_NS,
    ZERO_HOP_NS,
)

#: Satellite acceptance tolerance: trace-derived categories must match
#: the calibration constants to within one nanosecond.
TOL_NS = 1.0


class TestFig6Regression:
    def test_zero_hop_breakdown(self):
        m = measure_attribution(hops=0, shape=(4, 4, 4))
        t = m.attribution.totals
        assert t[Component.SOFTWARE_SEND] == pytest.approx(SLICE_SEND_NS, abs=TOL_NS)
        assert t[Component.SRC_RING] == pytest.approx(SRC_RING_NS, abs=TOL_NS)
        assert t[Component.RECEIVE] == pytest.approx(POLL_SUCCESS_NS, abs=TOL_NS)
        assert t[Component.UNATTRIBUTED] == 0.0
        assert m.attribution.total_ns == m.elapsed_ns == ZERO_HOP_NS

    def test_one_hop_is_the_162ns_write(self):
        m = measure_attribution(hops=1, shape=(4, 4, 4))
        t = m.attribution.totals
        assert t[Component.SOFTWARE_SEND] == pytest.approx(SLICE_SEND_NS, abs=TOL_NS)
        assert t[Component.SRC_RING] == pytest.approx(SRC_RING_NS, abs=TOL_NS)
        assert t[Component.LINK_ADAPTER] == pytest.approx(
            2 * LINK_ADAPTER_NS, abs=TOL_NS
        )
        assert t[Component.DST_RING] == pytest.approx(DST_RING_NS, abs=TOL_NS)
        assert t[Component.RECEIVE] == pytest.approx(POLL_SUCCESS_NS, abs=TOL_NS)
        assert m.attribution.total_ns == m.elapsed_ns == 162.0

    def test_three_hop_breakdown(self):
        # Fig. 5's 3-hop destination on the paper machine is (3,0,0):
        # three X crossings, two transit rings.
        m = measure_attribution(hops=3, shape=(8, 8, 8))
        t = m.attribution.totals
        assert m.destination == (3, 0, 0)
        assert t[Component.LINK_ADAPTER] == pytest.approx(
            3 * 2 * LINK_ADAPTER_NS, abs=TOL_NS
        )
        assert t[Component.TRANSIT_RING] == pytest.approx(
            2 * THROUGH_RING_NS["x"], abs=TOL_NS
        )
        assert t[Component.DST_RING] == pytest.approx(DST_RING_NS, abs=TOL_NS)
        assert t[Component.UNATTRIBUTED] == 0.0
        assert m.attribution.total_ns == m.elapsed_ns

    def test_mixed_dimension_path_charges_wire_extra(self):
        # 3 hops on 4x4x4 goes (2,1,0): two X, one Y — the Y crossing
        # pays the extra wire delay over X.
        m = measure_attribution(hops=3, shape=(4, 4, 4))
        t = m.attribution.totals
        assert m.destination == (2, 1, 0)
        assert t[Component.WIRE] == pytest.approx(
            WIRE_NS["y"] - WIRE_NS["x"], abs=TOL_NS
        )
        assert t[Component.TRANSIT_RING] == pytest.approx(
            THROUGH_RING_NS["x"] + THROUGH_RING_NS["y"], abs=TOL_NS
        )
        assert m.attribution.total_ns == m.elapsed_ns

    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    @pytest.mark.parametrize("payload", [0, 256])
    def test_total_always_equals_simulated_end_to_end(self, hops, payload):
        m = measure_attribution(hops=hops, shape=(4, 4, 4), payload_bytes=payload)
        assert m.attribution.total_ns == m.elapsed_ns
        # Segments tile the journey with no gaps or overlaps.
        m.attribution.check()

    def test_payload_serialization_charged_once(self):
        m = measure_attribution(hops=3, shape=(8, 8, 8), payload_bytes=256)
        wire_bits = (HEADER_BYTES + 256) * 8.0
        extra = wire_bits / TORUS_LINK_EFFECTIVE_GBPS - (
            HEADER_BYTES * 8.0 / TORUS_LINK_EFFECTIVE_GBPS
        )
        t = m.attribution.totals
        # Virtual cut-through: the payload's extra serialization shows
        # up once, not once per hop.
        assert t[Component.SERIALIZATION] == pytest.approx(extra, abs=TOL_NS)
        assert m.attribution.total_ns == m.elapsed_ns


class TestContention:
    def test_queue_wait_is_attributed(self):
        from repro.asic import build_machine
        from repro.engine import Simulator
        from repro.trace.flight import FlightRecorder, use_flight

        sim = Simulator()
        fl = FlightRecorder()
        with use_flight(fl):
            machine = build_machine(sim, 2, 2, 2)
        dst = machine.node((1, 0, 0)).slice(0)
        dst.memory.allocate("rx", 2)
        # Two slices of one node inject simultaneously into the same
        # outgoing X+ link; the second 256 B packet must queue.
        senders = [machine.node((0, 0, 0)).slice(i) for i in (0, 1)]

        def send(s, slot):
            yield from s.send_write(
                (1, 0, 0), "slice0", counter_id="rx", address=("rx", slot),
                payload_bytes=256,
            )

        def recv():
            yield from dst.poll("rx", 2)

        procs = [sim.process(send(s, i)) for i, s in enumerate(senders)]
        procs.append(sim.process(recv()))
        sim.run(until=sim.all_of(procs))
        waits = {
            f.packet_id: attribute_flight(f, fl).ns(Component.QUEUE_WAIT)
            for f in fl.packets()
        }
        # Both 256 B packets cross link (0,0,0)->x+; one of them queues.
        assert sorted(waits.values())[0] == 0.0
        assert sorted(waits.values())[1] > 0.0
        for f in fl.packets():
            attribute_flight(f, fl).check()


class TestAttributionObject:
    def test_check_rejects_gappy_segments(self):
        attr = Attribution(packet_id=1, start_ns=0.0, end_ns=100.0)
        attr.segments.append(PathSegment(Component.SRC_RING, 0.0, 40.0))
        with pytest.raises(AssertionError, match="covers"):
            attr.check()

    def test_totals_include_every_category(self):
        attr = Attribution(packet_id=1, start_ns=0.0, end_ns=0.0)
        assert set(attr.totals) == set(Component)

    def test_attribute_flight_requires_delivery(self):
        m = measure_attribution(hops=1, shape=(4, 4, 4))
        flight = m.attribution  # re-run for a real undelivered flight
        from repro.trace.flight import PacketFlight

        undelivered = PacketFlight(
            packet_id=7, kind="write", src_node=(0, 0, 0), src_client="slice0",
            dst_node=(1, 0, 0), dst_client="slice0", payload_bytes=0,
            wire_bytes=32, multicast=False, in_order=False, inject_ns=0.0,
        )
        with pytest.raises(ValueError, match="never delivered"):
            attribute_flight(undelivered)


class TestReportDeterminism:
    def test_rendered_report_is_byte_identical_across_runs(self):
        # Same experiment, two fresh processes' worth of state: raw
        # packet ids differ (they are process-global), but the report
        # renumbers densely, so the bytes must match.
        a = measure_attribution(hops=3, shape=(4, 4, 4))
        b = measure_attribution(hops=3, shape=(4, 4, 4))
        assert a.attribution.packet_id != b.attribution.packet_id
        ra = render_attribution(a.attribution, local_id=0)
        rb = render_attribution(b.attribution, local_id=0)
        assert ra == rb
        assert "162" not in ra  # sanity: it's the 292 ns 3-hop table
        assert "292.0" in ra
