"""Parsing tests for the Prometheus text expositions.

A small strict parser (HELP/TYPE headers, label blocks with escape
handling) is run over both exposition paths — the monitor report's
``render_prometheus`` and the sweep telemetry's
``render_registry_prometheus`` — so a formatting regression in either
shows up as a parse failure, not a scrape error in someone's CI.
"""

import re

import pytest

from tests.conftest import run_exchange

from repro.monitor.health import HealthMonitor
from repro.monitor.report import (
    _prom_label_value,
    prom_labels,
    render_prometheus,
    render_registry_prometheus,
)
from repro.monitor.watchdog import LEVELS
from repro.profile.telemetry import SweepTelemetry, make_event
from repro.trace.metrics import MetricsRegistry

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE = re.compile(rf"^({_NAME})(?:\{{(.*)\}})? (\S+)$")
_ESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def parse_labels(block: str) -> dict:
    """Decode one ``k="v",...`` label-block body, honouring the
    exposition escapes (backslash, quote, newline)."""
    labels = {}
    i = 0
    while i < len(block):
        m = re.match(rf'({_NAME})="', block[i:])
        assert m, f"malformed label block at {block[i:]!r}"
        key = m.group(1)
        i += m.end()
        chars = []
        while True:
            assert i < len(block), "unterminated label value"
            ch = block[i]
            if ch == "\\":
                esc = block[i + 1]
                assert esc in _ESCAPES, f"bad escape \\{esc}"
                chars.append(_ESCAPES[esc])
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                chars.append(ch)
                i += 1
        labels[key] = "".join(chars)
        if i < len(block):
            assert block[i] == ",", f"expected ',' at {block[i:]!r}"
            i += 1
    return labels


def parse_exposition(text: str):
    """The exposition as ``{family: {"help", "type", "samples"}}``
    where samples are ``(name, labels_dict, value)`` tuples.  Asserts
    structural rules: HELP before TYPE before samples, every sample
    belongs to a declared family, values are numeric."""
    families: dict[str, dict] = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"help": help_text, "type": None, "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            assert name == current, "TYPE must follow its own HELP"
            assert families[name]["type"] is None, f"duplicate TYPE {name}"
            assert kind in ("counter", "gauge", "summary", "histogram")
            families[name]["type"] = kind
        else:
            m = _SAMPLE.match(line)
            assert m, f"unparseable sample line {line!r}"
            name, block, value = m.groups()
            family = name
            if family not in families:
                for suffix in ("_sum", "_count"):  # summary children
                    if name.endswith(suffix):
                        family = name[: -len(suffix)]
                assert family in families, f"sample {name} has no family"
            labels = parse_labels(block) if block else {}
            families[family]["samples"].append((name, labels, float(value)))
            current = None
    for name, fam in families.items():
        assert fam["type"] is not None, f"family {name} never got a TYPE"
    return families


@pytest.fixture
def monitored_run(sim, machine222):
    registry = MetricsRegistry(histogram_max_samples=64)
    h = registry.histogram("net.packet_latency_ns", help="end-to-end")
    monitor = HealthMonitor(sim, machine222, interval_ns=10.0,
                            registry=registry)
    run_exchange(sim, machine222.node(0).slice(0), machine222.node(1).slice(0))
    for i in range(100):
        h.observe(162.0 + (i * 13 % 97))
    verdict = monitor.finalize()
    return verdict, monitor, registry


class TestMonitorExposition:
    def test_parses_with_declared_families(self, monitored_run):
        verdict, monitor, registry = monitored_run
        text = render_prometheus(verdict, monitor.sampler, registry=registry)
        families = parse_exposition(text)
        for required in (
            "repro_sim_time_ns",
            "repro_packets_injected",
            "repro_healthy",
            "repro_health_check_status",
        ):
            assert required in families
            assert families[required]["help"]

    def test_diagnostics_have_one_sample_per_level(self, monitored_run):
        verdict, monitor, registry = monitored_run
        families = parse_exposition(
            render_prometheus(verdict, monitor.sampler, registry=registry)
        )
        diag = families["repro_monitor_diagnostics"]
        assert diag["type"] == "counter"
        assert [s[1]["level"] for s in diag["samples"]] == list(LEVELS)

    def test_check_labels_round_trip(self, monitored_run):
        verdict, monitor, registry = monitored_run
        families = parse_exposition(
            render_prometheus(verdict, monitor.sampler, registry=registry)
        )
        status = families["repro_health_check_status"]
        parsed = {s[1]["check"] for s in status["samples"]}
        assert parsed == {c.name for c in verdict.checks}
        assert all(s[2] in (0.0, 1.0, 2.0) for s in status["samples"])

    def test_histogram_becomes_summary_with_quantiles(self, monitored_run):
        verdict, monitor, registry = monitored_run
        families = parse_exposition(
            render_prometheus(verdict, monitor.sampler, registry=registry)
        )
        summary = families["repro_net_packet_latency_ns"]
        assert summary["type"] == "summary"
        quantiles = {
            s[1]["quantile"] for s in summary["samples"] if s[1]
        }
        assert quantiles == {"0.5", "0.9", "0.99"}
        names = {s[0] for s in summary["samples"]}
        assert "repro_net_packet_latency_ns_sum" in names
        counts = [
            s[2] for s in summary["samples"]
            if s[0] == "repro_net_packet_latency_ns_count"
        ]
        assert counts == [100.0]


class TestSweepExposition:
    def test_sweep_gauges_parse_and_carry_values(self):
        registry = MetricsRegistry()
        tel = SweepTelemetry(total=3, registry=registry)
        tel.record(make_event("cache_miss", 0))
        tel.record(make_event("started", 0, pid=7))
        tel.record(make_event(
            "finished", 0, pid=7, events_per_second=123.0,
            peak_rss_bytes=4096,
        ))
        families = parse_exposition(tel.prometheus())
        assert families["repro_sweep_total"]["samples"][0][2] == 3.0
        assert families["repro_sweep_done"]["samples"][0][2] == 1.0
        assert families["repro_sweep_workers"]["samples"][0][2] == 1.0
        assert (
            families["repro_sweep_events_per_second"]["samples"][0][2]
            == 123.0
        )
        assert all(f["type"] == "gauge" for f in families.values())

    def test_empty_registry_renders_empty(self):
        assert render_registry_prometheus(MetricsRegistry()) == ""
        assert render_registry_prometheus(None) == ""
        assert parse_exposition("") == {}

    def test_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("net.link-retry/count", help="odd name").inc(2)
        families = parse_exposition(render_registry_prometheus(registry))
        assert families == parse_exposition(
            "# HELP repro_net_link_retry_count odd name\n"
            "# TYPE repro_net_link_retry_count counter\n"
            "repro_net_link_retry_count 2\n"
        )


class TestCongestionExposition:
    """The congestion X-ray's labeled exposition parses with the same
    strict parser, and the direction labels round-trip."""

    @pytest.fixture(scope="class")
    def incast_exposition(self):
        from repro.congestion.capture import run_congested
        from repro.congestion.report import render_congestion_prometheus
        from repro.congestion.tree import build_congestion_tree
        from repro.topology.torus import Torus3D

        result = run_congested(
            "congestion", shape=(3, 3, 3), rounds=1, senders=26,
        )
        tree = build_congestion_tree(result.flight, Torus3D(3, 3, 3))
        text = render_congestion_prometheus(tree, result.congestion)
        return tree, parse_exposition(text)

    def test_families_declared_and_typed(self, incast_exposition):
        _tree, families = incast_exposition
        assert families["repro_congestion_hol_wait_ns"]["type"] == "counter"
        assert families["repro_congestion_waits"]["type"] == "counter"
        assert families["repro_congestion_peak_queue"]["type"] == "gauge"
        assert families["repro_congestion_total_hol_wait_ns"]["type"] == (
            "counter"
        )
        assert families["repro_congestion_contended_links"]["type"] == "gauge"
        for fam in families.values():
            assert fam["help"]

    def test_direction_labels_round_trip(self, incast_exposition):
        tree, families = incast_exposition
        waits = families["repro_congestion_hol_wait_ns"]["samples"]
        by_link = {s[1]["link"]: s[1]["direction"] for s in waits}
        assert by_link == {lc.link: lc.direction for lc in tree.links}
        # The incast's worst direction is present verbatim.
        assert "z+" in by_link.values()
        # Link names contain parens/arrows; every one survives the
        # escape/parse round trip exactly.
        for s in waits:
            assert "->" in s[1]["link"]

    def test_sample_values_match_tree(self, incast_exposition):
        tree, families = incast_exposition
        waits = {s[1]["link"]: s[2]
                 for s in families["repro_congestion_hol_wait_ns"]["samples"]}
        peaks = {s[1]["link"]: s[2]
                 for s in families["repro_congestion_peak_queue"]["samples"]}
        for lc in tree.links:
            assert waits[lc.link] == pytest.approx(lc.wait_ns)
            assert peaks[lc.link] == lc.peak_depth
        total = families["repro_congestion_total_hol_wait_ns"]["samples"]
        assert total[0][2] == pytest.approx(tree.total_wait_ns)

    def test_peak_queue_by_direction_in_monitor_exposition(self):
        # A contended run: the monitored incast queues on the
        # destination's inbound links, so the per-direction peak-queue
        # gauge appears and round-trips through the parser.
        from repro.monitor.capture import run_monitored

        capture = run_monitored("congestion", shape=(3, 3, 3), rounds=1)
        verdict = capture.verdict
        assert verdict.peak_queue_by_direction  # something queued
        families = parse_exposition(capture.prometheus())
        peaks = families["repro_link_peak_queue"]
        assert peaks["type"] == "gauge"
        directions = {s[1]["direction"] for s in peaks["samples"]}
        assert directions == set(verdict.peak_queue_by_direction)
        for _name, labels, value in peaks["samples"]:
            assert value == verdict.peak_queue_by_direction[
                labels["direction"]
            ]


class TestLabelEscaping:
    def test_backslash_quote_newline_escape(self):
        assert _prom_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_unicode_passes_through_verbatim(self):
        value = "tøru∫-λ→162ns"
        assert _prom_label_value(value) == value
        block = prom_labels(series=value)
        assert parse_labels(block[1:-1]) == {"series": value}

    def test_escaped_values_round_trip_through_parser(self):
        nasty = 'back\\slash "quoted"\nnewline'
        block = prom_labels(a=nasty, b="plain")
        assert parse_labels(block[1:-1]) == {"a": nasty, "b": "plain"}

    def test_no_labels_is_empty_string(self):
        assert prom_labels() == ""

    def test_label_order_preserved(self):
        block = prom_labels(z="1", a="2")
        assert block == '{z="1",a="2"}'
