"""Unit tests for generator-based processes."""

import pytest

from repro.engine import Interrupt, Simulator


def test_process_advances_time(sim):
    trace = []

    def worker():
        trace.append(sim.now)
        yield sim.timeout(10)
        trace.append(sim.now)
        yield sim.timeout(5)
        trace.append(sim.now)

    sim.process(worker())
    sim.run()
    assert trace == [0.0, 10.0, 15.0]


def test_process_return_value_via_join(sim):
    def child():
        yield sim.timeout(3)
        return "result"

    results = []

    def parent():
        value = yield sim.process(child())
        results.append((sim.now, value))

    sim.process(parent())
    sim.run()
    assert results == [(3.0, "result")]


def test_run_until_process_returns_its_value(sim):
    def child():
        yield sim.timeout(1)
        return 99

    assert sim.run(until=sim.process(child())) == 99


def test_process_requires_generator(sim):
    def not_a_generator():
        return 5

    with pytest.raises(TypeError):
        sim.process(not_a_generator())  # type: ignore[arg-type]


def test_yielding_non_event_raises(sim):
    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(TypeError, match="may[ \n]*only yield Event"):
        sim.run()


def test_exception_propagates_to_joiner(sim):
    def child():
        yield sim.timeout(1)
        raise ValueError("inner")

    caught = []

    def parent():
        try:
            yield sim.process(child())
        except ValueError as e:
            caught.append(str(e))

    sim.process(parent())
    sim.run()
    assert caught == ["inner"]


def test_unobserved_crash_aborts_run(sim):
    def crasher():
        yield sim.timeout(1)
        raise RuntimeError("nobody is watching")

    sim.process(crasher())
    with pytest.raises(RuntimeError, match="unhandled exception"):
        sim.run()


def test_interrupt_raises_inside_process(sim):
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(7)
        proc.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert log == [(7.0, "wake up")]


def test_interrupt_finished_process_is_error(sim):
    def quick():
        yield sim.timeout(1)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_interrupted_wait_does_not_fire_twice(sim):
    """After an interrupt, the stale waitable must not resume the process."""
    log = []

    def sleeper():
        try:
            yield sim.timeout(10)
            log.append("timeout")
        except Interrupt:
            log.append("interrupted")
            yield sim.timeout(20)
            log.append("second-sleep-done")

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(5)
        proc.interrupt()

    sim.process(interrupter())
    sim.run()
    assert log == ["interrupted", "second-sleep-done"]
    assert sim.now == 25.0


def test_two_processes_interleave_deterministically(sim):
    order = []

    def worker(name, delay):
        for _ in range(3):
            yield sim.timeout(delay)
            order.append((sim.now, name))

    sim.process(worker("a", 2))
    sim.process(worker("b", 3))
    sim.run()
    # At t=6 both fire; "b" scheduled its timeout first (at t=3, vs
    # t=4 for "a"), so it resumes first — scheduling order breaks ties.
    assert order == [
        (2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"), (6.0, "a"), (9.0, "b")
    ]
