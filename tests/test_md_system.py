"""Unit tests for chemical-system builders."""

import numpy as np
import pytest

from repro.constants import DHFR_ATOMS
from repro.md.system import (
    ChemicalSystem,
    bulk_water,
    synthetic_dhfr,
    tiny_system,
)


def test_tiny_system_shapes():
    s = tiny_system(24)
    assert s.num_atoms == 24
    assert s.positions.shape == (24, 3)
    assert s.velocities.shape == (24, 3)
    assert np.all(s.positions >= 0) and np.all(s.positions < s.box_edge)


def test_water_structure():
    w = bulk_water(molecules=8)
    assert w.num_atoms == 24
    assert w.num_bonds == 16  # two OH bonds per molecule
    # Each molecule: one O (mass ~16) and two H.
    assert np.isclose(w.masses[0::3], 15.999).all()
    # OH bond lengths start near r0.
    from repro.md.bonded import bond_lengths

    assert np.allclose(bond_lengths(w), 0.9572, atol=0.05)


def test_water_is_neutral():
    w = bulk_water(27)
    assert w.total_charge() == pytest.approx(0.0, abs=1e-9)


def test_zero_net_momentum():
    for s in (tiny_system(16), bulk_water(8), synthetic_dhfr(atoms=600)):
        p = (s.velocities * s.masses[:, None]).sum(axis=0)
        assert np.abs(p).max() < 1e-9


def test_synthetic_dhfr_statistics():
    d = synthetic_dhfr()
    assert d.num_atoms == DHFR_ATOMS
    # Density matches solvated-protein water density.
    assert d.density == pytest.approx(0.0993, rel=0.02)
    assert d.total_charge() == pytest.approx(0.0, abs=1e-9)
    # Bond density: roughly 0.7 bonds per atom overall.
    assert 0.6 < d.num_bonds / d.num_atoms < 0.8


def test_synthetic_dhfr_spatially_balanced():
    """Atoms per home box must stay within the fixed packet padding
    (the property the machine mapping depends on)."""
    d = synthetic_dhfr()
    idx = np.floor(d.positions / (d.box_edge / 8)).astype(int) % 8
    counts = np.bincount(idx[:, 0] + 8 * (idx[:, 1] + 8 * idx[:, 2]), minlength=512)
    assert counts.max() <= 1.5 * counts.mean()
    assert counts.min() >= 0.5 * counts.mean()


def test_synthetic_dhfr_bond_locality():
    d = synthetic_dhfr()
    from repro.md.bonded import bond_lengths

    bl = bond_lengths(d)
    # Nearly all bonds are short (chain-local placement).
    assert np.percentile(bl, 99) < 6.0


def test_reproducible_with_seed():
    a = synthetic_dhfr(atoms=600, seed=3)
    b = synthetic_dhfr(atoms=600, seed=3)
    np.testing.assert_array_equal(a.positions, b.positions)
    c = synthetic_dhfr(atoms=600, seed=4)
    assert not np.array_equal(a.positions, c.positions)


def test_validation_catches_bad_shapes():
    s = tiny_system(8)
    with pytest.raises(ValueError):
        ChemicalSystem(
            positions=s.positions,
            velocities=s.velocities[:4],
            masses=s.masses,
            charges=s.charges,
            lj_epsilon=s.lj_epsilon,
            lj_sigma=s.lj_sigma,
            bonds=s.bonds,
            bond_r0=s.bond_r0,
            bond_k=s.bond_k,
            box_edge=s.box_edge,
        )


def test_copy_is_deep():
    s = tiny_system(8)
    c = s.copy()
    c.positions += 1.0
    assert not np.allclose(s.positions, c.positions)


def test_wrap_and_minimum_image():
    s = tiny_system(8, box_edge=10.0)
    s.positions[0] = [11.0, -1.0, 5.0]
    s.wrap()
    np.testing.assert_allclose(s.positions[0], [1.0, 9.0, 5.0])
    dr = s.minimum_image(np.array([[9.0, 0.0, 0.0]]))
    np.testing.assert_allclose(dr, [[-1.0, 0.0, 0.0]])
