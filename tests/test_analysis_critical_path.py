"""Critical-path analysis (analysis/critical_path.py): multicast
branch reconstruction, per-phase critical packets, link hotspots."""

import pytest

from repro.analysis.critical_path import (
    branch_hops,
    branch_paths,
    critical_flight,
    hotspots_to_metrics,
    link_hotspots,
    phase_reports,
    render_hotspots,
    render_phase_reports,
)
from repro.asic import build_machine
from repro.comm.collectives import AllReduce
from repro.engine import Simulator
from repro.engine.simulator import EventHistory
from repro.network.multicast import compile_pattern
from repro.network.packet import WritePacket
from repro.trace.flight import FlightRecorder, use_flight
from repro.trace.metrics import MetricsRegistry


def traced_machine(shape=(2, 2, 2)):
    sim = Simulator()
    fl = FlightRecorder()
    with use_flight(fl):
        machine = build_machine(sim, *shape)
    return sim, machine, fl


def run_multicast(sim, machine, fl, targets):
    net = machine.network
    for node in targets:
        machine.node(node).slice(0).memory.allocate("mc", 1)
    pattern = compile_pattern(net.torus, (0, 0, 0), targets)
    packet = WritePacket(
        src_node=net.torus.coord((0, 0, 0)), src_client="slice0",
        dst_node=net.torus.coord((0, 0, 0)), dst_client="slice0",
        counter_id="mc", address=("mc", 0),
        pattern_id=net.register_pattern(pattern),
    )
    sim.run(until=net.inject(packet))
    [flight] = fl.packets()
    return flight


class TestBranchReconstruction:
    def test_unicast_branch_equals_hop_list(self):
        from tests.conftest import run_exchange

        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 1, 0)).slice(0)
        run_exchange(sim, src, dst)
        [flight] = fl.packets()
        chain = branch_hops(flight, machine.torus, flight.deliveries[-1])
        assert chain == flight.hops

    def test_multicast_branches_are_causal_chains(self):
        sim, machine, fl = traced_machine((4, 4, 4))
        targets = {
            (1, 0, 0): ("slice0",), (2, 0, 0): ("slice0",),
            (1, 1, 0): ("slice0",), (2, 1, 1): ("slice0",),
        }
        flight = run_multicast(sim, machine, fl, targets)
        torus = machine.torus
        paths = branch_paths(flight, torus)
        assert len(paths) == len(targets)
        for delivery, chain in paths:
            # Chain starts at the source and ends at the delivery node.
            assert tuple(chain[0].from_node) == (0, 0, 0)
            last = chain[-1]
            assert tuple(torus.neighbor(last.from_node, last.dim, last.sign)) \
                == tuple(delivery.node)
            # Each hop leaves the node the previous hop entered, later.
            for prev, nxt in zip(chain, chain[1:]):
                assert tuple(torus.neighbor(prev.from_node, prev.dim, prev.sign)) \
                    == tuple(nxt.from_node)
                assert nxt.grant_ns >= prev.grant_ns
            # The branch length is the torus distance to the target.
            assert len(chain) == torus.hops((0, 0, 0), delivery.node)

    def test_branch_hops_unknown_delivery_raises(self):
        from repro.trace.flight import Delivery

        sim, machine, fl = traced_machine()
        flight = run_multicast(sim, machine, fl, {(1, 0, 0): ("slice0",)})
        bogus = Delivery(node=(0, 1, 1), client="slice0", time_ns=0.0)
        with pytest.raises(ValueError, match="no recorded hop"):
            branch_hops(flight, machine.torus, bogus)


class TestPhaseReports:
    def make_allreduce_capture(self):
        sim, machine, fl = traced_machine()
        hist = EventHistory()
        hist.install(sim)
        AllReduce(machine, payload_bytes=32).run()
        return machine, fl, hist

    def test_reports_cover_closed_phases(self):
        machine, fl, hist = self.make_allreduce_capture()
        reports = phase_reports(fl, machine.torus, hist)
        assert len(reports) == 1
        r = reports[0]
        assert r.name.startswith("allreduce[32B]")
        assert r.packets > 0 and r.deliveries > 0
        assert r.events and r.events > 0
        assert r.duration_ns > 0

    def test_critical_packet_attribution_ends_at_phase_close(self):
        machine, fl, hist = self.make_allreduce_capture()
        [r] = phase_reports(fl, machine.torus)
        assert r.critical_attribution is not None
        assert r.critical_local_id is not None
        # The critical chain's delivery is the last one in the window.
        last = max(
            d.time_ns
            for f in fl.packets()
            for d in f.deliveries
            if r.phase.begin_ns <= d.time_ns <= r.phase.end_ns
        )
        assert r.critical_delivery.time_ns == last
        r.critical_attribution.check()

    def test_critical_flight_tie_break_is_deterministic(self):
        machine, fl, _ = self.make_allreduce_capture()
        a = critical_flight(fl, 0.0, float("inf"))
        b = critical_flight(fl, 0.0, float("inf"))
        assert a == b

    def test_render_is_deterministic_across_runs(self):
        m1, fl1, _ = self.make_allreduce_capture()
        m2, fl2, _ = self.make_allreduce_capture()
        t1 = render_phase_reports(phase_reports(fl1, m1.torus))
        t2 = render_phase_reports(phase_reports(fl2, m2.torus))
        assert t1 == t2


class TestLinkHotspots:
    def make_incast(self):
        """4-to-1 incast onto (0,0,0): heavy queueing on its in-links."""
        sim, machine, fl = traced_machine()
        dst = machine.node((0, 0, 0)).slice(0)
        senders = [c for c in machine.torus.nodes() if c != (0, 0, 0)][:4]
        dst.memory.allocate("sink", len(senders))

        def send(c, slot):
            s = machine.node(c).slice(0)
            for _ in range(3):
                yield from s.send_write(
                    (0, 0, 0), "slice0", counter_id="sink",
                    address=("sink", slot), payload_bytes=256,
                )

        def recv():
            yield from dst.poll("sink", 3 * len(senders))

        procs = [sim.process(send(c, i)) for i, c in enumerate(senders)]
        procs.append(sim.process(recv()))
        sim.run(until=sim.all_of(procs))
        return fl

    def test_ranked_worst_first_with_percentiles(self):
        fl = self.make_incast()
        spots = link_hotspots(fl)
        waits = [s.wait_ns for s in spots]
        assert waits == sorted(waits, reverse=True)
        worst = spots[0]
        assert worst.wait_ns > 0
        assert worst.traversals > 0 and worst.busy_ns > 0
        assert (worst.max_queue_depth >= worst.p99_queue_depth
                >= worst.p90_queue_depth >= worst.p50_queue_depth >= 0)
        assert link_hotspots(fl, top=2) == spots[:2]

    def test_render_and_metrics_publication(self):
        fl = self.make_incast()
        text = render_hotspots(link_hotspots(fl, top=3))
        assert "wait ns" in text
        reg = MetricsRegistry()
        spots = hotspots_to_metrics(fl, reg, top=3)
        assert len(spots) == 3
        worst = spots[0]
        assert reg.gauge(f"net.hotspot.{worst.link}.wait_ns").value \
            == worst.wait_ns
        total = reg.gauge("net.hotspot.total_wait_ns").value
        assert total >= worst.wait_ns
        assert reg.gauge("net.hotspot.contended_links").value > 0

    def test_quiet_network_has_empty_ranking(self):
        sim, machine, fl = traced_machine()
        assert link_hotspots(fl) == []
        reg = MetricsRegistry()
        assert hotspots_to_metrics(fl, reg) == []
        assert reg.gauge("net.hotspot.total_wait_ns").value == 0.0
