"""Unit tests for the pluggable scheduler subsystem."""

import pytest

from repro.engine import (
    DEFAULT_SCHEDULER,
    SCHEDULER_NAMES,
    HeapScheduler,
    Simulator,
    TimeWheelScheduler,
    engine_config,
    make_scheduler,
    resolve_scheduler,
    use_scheduler,
)
from repro.engine.scheduler import BATCH, FUSED, canonical_scheduler_name


class TestSelection:
    def test_default_is_wheel(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert DEFAULT_SCHEDULER == "wheel"
        assert resolve_scheduler() == "wheel"
        assert isinstance(Simulator().scheduler, TimeWheelScheduler)

    @pytest.mark.parametrize("alias,canonical", [
        ("heap", "heap"), ("heapq", "heap"), ("HEAP", "heap"),
        ("wheel", "wheel"), ("timewheel", "wheel"), ("time-wheel", "wheel"),
        ("time_wheel", "wheel"), ("calendar", "wheel"),
    ])
    def test_aliases(self, alias, canonical):
        assert canonical_scheduler_name(alias) == canonical

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            canonical_scheduler_name("fibonacci")
        with pytest.raises(ValueError, match="unknown scheduler"):
            Simulator(scheduler="fibonacci")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "heapq")
        assert resolve_scheduler() == "heap"
        assert isinstance(Simulator().scheduler, HeapScheduler)

    def test_use_scheduler_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "wheel")
        with use_scheduler("heap") as name:
            assert name == "heap"
            assert resolve_scheduler() == "heap"
            # ... but an explicit argument still wins over the context.
            assert resolve_scheduler("wheel") == "wheel"
            assert isinstance(Simulator().scheduler, HeapScheduler)
        assert resolve_scheduler() == "wheel"

    def test_use_scheduler_nests(self):
        with use_scheduler("heap"):
            with use_scheduler("wheel"):
                assert resolve_scheduler() == "wheel"
            assert resolve_scheduler() == "heap"

    def test_engine_config_reports_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert engine_config() == {"scheduler": DEFAULT_SCHEDULER}
        with use_scheduler("heap"):
            assert engine_config() == {"scheduler": "heap"}

    def test_make_scheduler_passthrough_and_names(self):
        sched = HeapScheduler()
        assert make_scheduler(sched) is sched
        assert make_scheduler("heap").name == "heap"
        assert make_scheduler("calendar").name == "wheel"
        assert set(SCHEDULER_NAMES) == {"heap", "wheel"}

    def test_simulator_records_scheduler_name(self):
        assert Simulator(scheduler="heap").scheduler_name == "heap"
        assert Simulator(scheduler="wheel").scheduler_name == "wheel"


@pytest.mark.parametrize("make", [HeapScheduler, TimeWheelScheduler])
class TestSchedulerContract:
    def test_pop_order_is_time_then_seq(self, make):
        sched = make()
        order = []
        entries = [(5.0, 1), (1.0, 2), (5.0, 3), (1.0, 4), (3.0, 5)]
        for when, seq in entries:
            sched.push(when, seq, order.append, (seq,))
        assert len(sched) == 5
        drained = []
        while sched.size:
            e = sched.pop()
            if e[2] is FUSED:
                bucket, j, end = e[3]
                drained.extend(bucket[k][1] for k in range(j, end))
            else:
                drained.append(e[1])
        assert drained == [2, 4, 5, 1, 3]

    def test_batch_members_count_individually(self, make):
        sched = make()
        sched.push_batch(2.0, 10, [(print, ()), (print, ()), (print, ())])
        assert sched.size == 3
        assert sched.peek_time() == 2.0
        total = 0
        while sched.size:
            e = sched.pop()
            total += len(e[3]) if e[2] is BATCH else 1
        assert total == 3

    def test_interleaved_push_and_batch_drain_in_seq_order(self, make):
        sched = make()
        fn = lambda: None  # noqa: E731
        sched.push(1.0, 1, fn, ())
        sched.push_batch(1.0, 2, [(fn, ())] * 3)  # seqs 2..4
        sched.push(1.0, 5, fn, ())
        sched.push(0.5, 6, fn, ())
        seqs = []
        while sched.size:
            e = sched.pop()
            if e[2] is BATCH:
                seqs.extend(range(e[1], e[1] + len(e[3])))
            elif e[2] is FUSED:
                bucket, j, end = e[3]
                seqs.extend(bucket[k][1] for k in range(j, end))
            else:
                seqs.append(e[1])
        assert seqs == [6, 1, 2, 3, 4, 5]


class TestWheelMechanics:
    def test_same_time_appends_land_behind_cursor(self):
        sim = Simulator(scheduler="wheel")
        seen = []

        def first():
            seen.append("first")
            sim.schedule(0.0, lambda: seen.append("chained"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: seen.append("second"))
        sim.run()
        assert seen == ["first", "second", "chained"]

    def test_bucket_retirement_is_identity_checked(self):
        # Drain a bucket at t=1, then (from an event at t=2) schedule
        # at... times are monotone, so instead re-create the *object*:
        # two sims never share buckets, and within one run a retired
        # time cannot recur — exercised by draining multiple buckets.
        sim = Simulator(scheduler="wheel")
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, seen.append, t)
        sim.run()
        assert seen == [1.0, 2.0, 3.0]
        assert sim.pending == 0

    def test_fused_pop_preserves_logical_size(self):
        sched = TimeWheelScheduler()
        for seq in range(4):
            sched.push(1.0, seq, lambda: None, ())
        e = sched.pop()
        assert e[2] is FUSED
        assert sched.size == 0  # all four consumed by the fused window
        bucket, j, end = e[3]
        assert end - j == 4

    def test_requeue_of_batch_tail_runs_before_same_time_entries(self):
        sched = TimeWheelScheduler()
        fn = lambda: None  # noqa: E731
        sched.push_batch(1.0, 1, [(fn, ())] * 3)  # seqs 1..3
        sched.push(1.0, 4, fn, ())
        first = sched.pop()
        assert first[2] is BATCH
        # Run loop stopped after executing only seq 1: requeue 2..3.
        sched.requeue(1.0, 2, [(fn, ()), (fn, ())])
        assert sched.size == 3
        seqs = []
        while sched.size:
            e = sched.pop()
            if e[2] is BATCH:
                seqs.extend(range(e[1], e[1] + len(e[3])))
            elif e[2] is FUSED:
                bucket, j, end = e[3]
                seqs.extend(bucket[k][1] for k in range(j, end))
            else:
                seqs.append(e[1])
        assert seqs == [2, 3, 4]

    def test_bare_singleton_same_instant_reschedule(self):
        # A lone entry is stored bare and unhooked at mount; a 0-delay
        # schedule from its own callback re-creates the bucket and must
        # still run at the same instant, in seq order.
        sim = Simulator(scheduler="wheel")
        seen = []

        def lone():
            seen.append("lone")
            sim.schedule(0.0, lambda: seen.append("chained"))

        sim.schedule(1.0, lone)
        sim.run()
        assert seen == ["lone", "chained"]
        assert sim.now == 1.0

    def test_second_push_promotes_bare_bucket_to_list(self):
        # A run of two stays below FUSE_MIN, so the promoted bucket
        # drains as plain singles in seq order.
        sched = TimeWheelScheduler()
        fn = lambda: None  # noqa: E731
        sched.push(1.0, 1, fn, ())
        sched.push(1.0, 2, fn, ())
        assert [sched.pop()[1] for _ in range(2)] == [1, 2]
        assert sched.size == 0

    def test_requeue_of_bare_batch_tail(self):
        # A batch that was the only entry at its time pops off a bare
        # bucket; its executed prefix schedules a new same-instant
        # entry, and the requeued tail must still run first.
        sched = TimeWheelScheduler()
        fn = lambda: None  # noqa: E731
        sched.push_batch(1.0, 1, [(fn, ())] * 3)  # seqs 1..3, bare
        first = sched.pop()
        assert first[2] is BATCH
        sched.push(1.0, 4, fn, ())  # scheduled by the executed prefix
        sched.requeue(1.0, 2, [(fn, ()), (fn, ())])
        assert sched.size == 3
        seqs = []
        while sched.size:
            e = sched.pop()
            if e[2] is BATCH:
                seqs.extend(range(e[1], e[1] + len(e[3])))
            elif e[2] is FUSED:
                bucket, j, end = e[3]
                seqs.extend(bucket[k][1] for k in range(j, end))
            else:
                seqs.append(e[1])
        assert seqs == [2, 3, 4]

    def test_requeue_of_bare_batch_tail_into_empty_time(self):
        sched = TimeWheelScheduler()
        fn = lambda: None  # noqa: E731
        sched.push_batch(1.0, 1, [(fn, ())] * 2)
        assert sched.pop()[2] is BATCH
        sched.requeue(1.0, 2, [(fn, ())])  # nothing else pending at 1.0
        assert sched.size == 1
        e = sched.pop()
        assert e[2] is BATCH and e[1] == 2 and len(e[3]) == 1

    def test_requeue_of_fused_tail_rewinds_cursor(self):
        sched = TimeWheelScheduler()
        fn = lambda: None  # noqa: E731
        for seq in range(1, 7):
            sched.push(1.0, seq, fn, ())
        e = sched.pop()
        assert e[2] is FUSED
        # Executed seqs 1-2 of the window, then stopped: requeue 3..6.
        sched.requeue(1.0, 3, [(fn, ())] * 4)
        assert sched.size == 4
        e = sched.pop()
        assert e[2] is FUSED and e[1] == 3
        bucket, j, end = e[3]
        assert [bucket[k][1] for k in range(j, end)] == [3, 4, 5, 6]

    def test_runs_below_fuse_min_pop_as_singles(self):
        sched = TimeWheelScheduler()
        fn = lambda: None  # noqa: E731
        for seq in range(1, 4):  # run of 3 < FUSE_MIN
            sched.push(1.0, seq, fn, ())
        popped = [sched.pop() for _ in range(3)]
        assert all(e[2] is fn for e in popped)
        assert [e[1] for e in popped] == [1, 2, 3]
        assert sched.size == 0


class TestSimulatorIntegration:
    def test_schedule_batch_validates(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_batch(-1.0, [(print, ())])
        sim.schedule_batch(0.0, [])  # no-op
        assert sim.pending == 0

    def test_pending_counts_batch_members(self):
        sim = Simulator()
        sim.schedule_batch(1.0, [(lambda: None, ())] * 5)
        assert sim.pending == 5
        sim.run()
        assert sim.pending == 0
        assert sim.events_executed == 5

    def test_monitor_hook_sees_exact_pending_mid_batch(self):
        # The slow drain keeps Simulator.pending exact per member —
        # what the health monitor's pending_events probe reads.
        sim = Simulator(scheduler="wheel")
        observed = []
        def hook(when):
            observed.append(sim.pending)
            return when  # due again immediately

        sim._monitor_hook = hook
        sim._monitor_due = 0.0
        sim.schedule_batch(1.0, [(lambda: None, ())] * 3)
        sim.run()
        assert observed[0] >= observed[-1]
        assert sim.events_executed == 3

    def test_explicit_instance_is_used(self):
        sched = HeapScheduler()
        sim = Simulator(scheduler=sched)
        assert sim.scheduler is sched
        assert sim.scheduler_name == "heap"
