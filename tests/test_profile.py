"""The engine self-profiler: classification, tiling, phases, capture."""

import json

import pytest

from repro.asic import build_machine
from repro.comm.collectives import AllReduce
from repro.engine import Simulator
from repro.profile import (
    EngineProfiler,
    active_profiler,
    peak_rss_bytes,
    use_profiling,
)
from repro.runner.result import Captures, run_experiment
from repro.runner.spec import ExperimentSpec, ensure_registered
from tests.conftest import run_exchange

ensure_registered()


def _profiled_exchange():
    sim = Simulator()
    profiler = EngineProfiler().attach(sim)
    machine = build_machine(sim, 2, 2, 2)
    run_exchange(
        sim,
        machine.node((0, 0, 0)).slice(0),
        machine.node((1, 0, 0)).slice(0),
        payload_bytes=32,
    )
    return sim, profiler


def test_events_accounted_match_simulator_count():
    sim, profiler = _profiled_exchange()
    assert profiler.events_total == sim.events_executed
    assert profiler.events_total > 0


def test_wall_times_tile_the_loop_exactly():
    """The acceptance invariant: component totals sum to the measured
    run-loop wall time, to the nanosecond."""
    _, profiler = _profiled_exchange()
    totals = profiler.component_totals()
    assert sum(w for _, w in totals.values()) == profiler.loop_wall_ns
    assert profiler.loop_wall_ns > 0
    assert (
        profiler.scheduler_overhead_ns
        == profiler.loop_wall_ns - profiler.event_wall_ns
    )


def test_components_classified_by_owning_package():
    _, profiler = _profiled_exchange()
    components = {cell.component for cell in profiler.cells()}
    # A counted write exercises at least the network layer; the
    # sender/receiver generators live in the test module itself.
    assert "network" in components


def test_count_profile_is_deterministic():
    a = _profiled_exchange()[1].count_profile()
    b = _profiled_exchange()[1].count_profile()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["events_total"] > 0
    assert a["schema"] == "repro-profile-counts/1"


def test_phase_attribution_nests_and_restores():
    profiler = EngineProfiler()
    cell = profiler._named_cell("engine", "x")
    profiler.account(cell, 1)
    with profiler.phase("outer"):
        profiler.account(cell, 2)
        with profiler.phase("inner"):
            profiler.account(cell, 4)
        profiler.account(cell, 8)
    profiler.account(cell, 16)
    assert cell.by_phase[""] == [2, 17]
    assert cell.by_phase["outer"] == [2, 10]
    assert cell.by_phase["inner"] == [1, 4]
    assert profiler.phases() == ["", "inner", "outer"]


def test_allreduce_events_land_in_the_allreduce_phase():
    with use_profiling() as profiler:
        sim = Simulator()  # built inside the scope, so it is profiled
        machine = build_machine(sim, 2, 2, 2)
        AllReduce(machine, payload_bytes=0).run()
    counts = profiler.count_profile()
    assert "allreduce" in counts["phases"]
    in_phase = sum(
        n
        for comps in counts["phases"]["allreduce"].values()
        for n in comps.values()
    )
    assert in_phase > 0


def test_use_profiling_is_ambient_and_scoped():
    assert active_profiler() is None
    with use_profiling() as profiler:
        assert active_profiler() is profiler
        sim = Simulator()
        assert sim._profiler is profiler
    assert active_profiler() is None
    # Simulators built after the block are unprofiled.
    assert Simulator()._profiler is None


def test_set_profiler_returns_previous():
    sim = Simulator()
    a, b = EngineProfiler(), EngineProfiler()
    assert sim.set_profiler(a) is None
    assert sim.set_profiler(b) is a
    assert sim.set_profiler(None) is b


def test_run_experiment_profile_capture():
    spec = ExperimentSpec("latency", shape=(3, 3, 3), rounds=1, hops=1)
    result = run_experiment(spec, Captures(profile=True))
    assert result.profile is not None
    assert result.profile.events_total > 0
    # The profile never leaks into the serializable core.
    assert "profile" not in result.to_dict()


def test_unprofiled_run_has_no_profile():
    spec = ExperimentSpec("latency", shape=(3, 3, 3), rounds=1, hops=1)
    assert run_experiment(spec).profile is None


def test_run_result_meta_execution_facts():
    spec = ExperimentSpec("latency", shape=(3, 3, 3), rounds=1, hops=1)
    result = run_experiment(spec)
    meta = result.meta
    assert meta["events_executed"] > 0
    assert meta["wall_time_s"] > 0
    assert meta["events_per_second"] > 0
    assert meta["peak_rss_bytes"] > 0
    # Wall-clock facts are host-dependent and must stay out of the
    # byte-stable serialized core (cache + checkpoint identity).
    assert set(meta) & set(result.to_dict()) == set()


def test_peak_rss_bytes_is_plausible():
    rss = peak_rss_bytes()
    # A running CPython interpreter needs at least a few MB.
    assert rss > 4 * 1024 * 1024


def test_named_cells_deduplicate():
    profiler = EngineProfiler()
    a = profiler._named_cell("engine", "Timeout")
    b = profiler._named_cell("engine", "Timeout")
    assert a is b
    assert len(profiler.cells()) == 1


@pytest.mark.parametrize("experiment", ["mdstep", "table3_critical_path"])
def test_md_experiments_profile_with_step_phases(experiment):
    spec = ExperimentSpec(experiment, shape=(2, 2, 2), rounds=2)
    result = run_experiment(spec, Captures(profile=True))
    phases = set(result.profile.count_profile()["phases"])
    assert "step:range_limited" in phases
    assert "step:long_range" in phases
