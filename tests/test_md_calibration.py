"""Unit tests for the Anton compute-calibration constants."""

import pytest

from repro.md.calibration import DEFAULT_CALIBRATION, AntonCalibration


def test_defaults_are_positive():
    c = DEFAULT_CALIBRATION
    for field in (
        "htis_pairs_per_ns", "htis_spread_ops_per_ns", "gc_ns_per_bond_term",
        "gc_ns_per_atom_update", "gc_ns_per_fft_point",
        "gc_ns_per_convolve_point", "ts_ns_per_ke_atom", "density_pad",
    ):
        assert getattr(c, field) > 0, field


def test_htis_rate_is_published_value():
    """32 pairwise pipelines at 800 MHz = 25.6 pairs/ns (HPCA'08)."""
    assert DEFAULT_CALIBRATION.htis_pairs_per_ns == 25.6


def test_packing_arithmetic():
    c = DEFAULT_CALIBRATION
    # 256-byte payloads hold ten 24-byte force records.
    assert c.force_atoms_per_packet() == 10
    assert c.grid_points_per_packet() == 64
    assert c.force_atoms_per_packet() * c.force_bytes <= 256


def test_density_pad_covers_benchmark_systems():
    """The padding must cover the worst home-box occupancy of both
    benchmark systems on the 512-node machine — otherwise the fixed
    packet-count contract breaks at run time."""
    import numpy as np

    from repro.constants import DHFR_ATOMS, FIG12_PARTICLES
    from repro.md.system import synthetic_dhfr

    for atoms in (DHFR_ATOMS, FIG12_PARTICLES):
        s = synthetic_dhfr(atoms=atoms)
        idx = np.floor(s.positions / (s.box_edge / 8)).astype(int) % 8
        counts = np.bincount(
            idx[:, 0] + 8 * (idx[:, 1] + 8 * idx[:, 2]), minlength=512
        )
        fixed = np.ceil(DEFAULT_CALIBRATION.density_pad * counts.mean())
        assert counts.max() <= fixed, atoms


def test_calibration_is_immutable():
    with pytest.raises(Exception):
        DEFAULT_CALIBRATION.density_pad = 2.0  # type: ignore[misc]


def test_custom_calibration_flows_to_htis():
    from repro.engine import Simulator
    from repro.md.forcefield import ForceField
    from repro.md.machine import AntonMD
    from repro.md.system import tiny_system

    cal = AntonCalibration(htis_pairs_per_ns=50.0)
    md = AntonMD(tiny_system(32), (2, 2, 2), ff=ForceField(cutoff=3.0),
                 calibration=cal)
    assert md.machine.node(0).htis.pairs_per_ns == 50.0
