"""Unit tests for the integrator and thermostat."""

import numpy as np
import pytest

from repro.md.forcefield import ForceField
from repro.md.integrator import Integrator, kinetic_energy, temperature
from repro.md.longrange import LongRangeSolver
from repro.md.system import bulk_water, tiny_system


def test_kinetic_energy_and_temperature():
    s = tiny_system(64)
    ke = kinetic_energy(s)
    assert ke > 0
    t = temperature(s)
    assert 20.0 < t < 300.0  # built at 100 K


def test_nve_energy_conservation_range_limited():
    s = tiny_system(48, box_edge=14.0, seed=5)
    ff = ForceField(cutoff=5.0, ewald_alpha=0.0)
    integ = Integrator(ff, dt=0.0005)
    reports = integ.run(s, 60)
    totals = [r.total for r in reports]
    drift = (max(totals) - min(totals)) / max(abs(np.mean(totals)), 1.0)
    assert drift < 5e-3


def test_nve_energy_conservation_with_long_range():
    s = bulk_water(27, seed=1)
    ff = ForceField(cutoff=6.5, ewald_alpha=0.35)
    integ = Integrator(
        ff, dt=0.0004, long_range=LongRangeSolver(grid_points=16),
        long_range_interval=1,
    )
    reports = integ.run(s, 40)
    totals = [r.total for r in reports]
    drift = (max(totals) - min(totals)) / abs(np.mean(totals))
    assert drift < 2e-3


def test_momentum_conserved_during_nve():
    s = tiny_system(32, seed=2)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.0)
    Integrator(ff, dt=0.0005).run(s, 20)
    p = (s.velocities * s.masses[:, None]).sum(axis=0)
    assert np.abs(p).max() < 1e-8


def test_thermostat_steers_temperature():
    s = tiny_system(64, seed=3)
    # Start cold; target hot.
    s.velocities *= 0.3
    ff = ForceField(cutoff=4.0, ewald_alpha=0.0)
    integ = Integrator(ff, dt=0.001, thermostat_tau=0.01, target_temperature=250.0)
    t_before = temperature(s)
    integ.run(s, 200)
    t_after = temperature(s)
    assert abs(t_after - 250.0) < abs(t_before - 250.0)


def test_long_range_interval_caches_forces():
    s = bulk_water(8, seed=4)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.3)
    solver = LongRangeSolver(grid_points=8)
    calls = []
    original = solver.solve

    def counting_solve(system, ff_):
        calls.append(1)
        return original(system, ff_)

    solver.solve = counting_solve  # type: ignore[assignment]
    integ = Integrator(ff, dt=0.0005, long_range=solver, long_range_interval=2)
    integ.run(s, 6)
    # compute_forces runs once per half-step pair; solve only on the
    # scheduled steps.
    assert 3 <= len(calls) <= 5


def test_step_returns_forces_for_reuse():
    s = tiny_system(16)
    ff = ForceField(cutoff=4.0)
    integ = Integrator(ff, dt=0.0005)
    f1, e1 = integ.step(s)
    f2, e2 = integ.step(s, f1)
    assert f1.shape == f2.shape == (16, 3)
    assert e2.total == pytest.approx(e1.total, rel=0.01)


def test_parameter_validation():
    ff = ForceField()
    with pytest.raises(ValueError):
        Integrator(ff, dt=0.0)
    with pytest.raises(ValueError):
        Integrator(ff, long_range_interval=0)


def test_pressure_sign_and_scale():
    from repro.md.rangelimited import range_limited_forces

    s = tiny_system(64, box_edge=16.0)
    ff = ForceField(cutoff=4.0)
    integ = Integrator(ff)
    rl = range_limited_forces(s, ff)
    p = integ.pressure(s, rl.virial)
    # A thermalised, non-collapsing system has finite positive-ish
    # pressure dominated by the kinetic term.
    assert np.isfinite(p)
    assert p > -1.0


def test_barostat_relieves_excess_pressure_by_expanding():
    """Pressure above target ⇒ the Berendsen barostat grows the box
    (weak coupling drives P toward the set point by expansion)."""
    s = tiny_system(64, box_edge=18.0, seed=9)
    s.velocities *= 3.0  # hot => high kinetic pressure
    ff = ForceField(cutoff=4.0)
    integ = Integrator(ff, dt=0.0005, barostat_tau=0.02, target_pressure=0.0)
    box_before = s.box_edge
    integ.run(s, 30)
    assert s.box_edge > box_before
    # Positions stay inside the rescaled box.
    assert np.all(s.positions >= 0) and np.all(s.positions < s.box_edge)


def test_barostat_compresses_toward_high_target():
    """Target pressure far above the current one ⇒ the box shrinks."""
    s = tiny_system(64, box_edge=18.0, seed=9)
    ff = ForceField(cutoff=4.0)
    integ = Integrator(ff, dt=0.0005, barostat_tau=0.02, target_pressure=0.5)
    box_before = s.box_edge
    integ.run(s, 30)
    assert s.box_edge < box_before


def test_barostat_disabled_leaves_box_alone():
    s = tiny_system(32, box_edge=14.0)
    ff = ForceField(cutoff=4.0)
    Integrator(ff, dt=0.0005).run(s, 10)
    assert s.box_edge == 14.0
