"""Unit tests for synchronization counters."""

import pytest

from repro.asic import SyncCounter


def test_increment_and_count(sim):
    c = SyncCounter(sim)
    c.increment()
    c.increment(3)
    assert c.count == 4
    assert c.total_increments == 4


def test_increment_must_be_positive(sim):
    c = SyncCounter(sim)
    with pytest.raises(ValueError):
        c.increment(0)


def test_wait_for_fires_at_threshold(sim):
    c = SyncCounter(sim)
    ev = c.wait_for(3)
    c.increment(2)
    assert not ev.triggered
    c.increment()
    assert ev.triggered


def test_wait_for_already_reached(sim):
    c = SyncCounter(sim)
    c.increment(5)
    assert c.wait_for(5).triggered
    assert c.wait_for(2).triggered


def test_waiters_share_one_event(sim):
    c = SyncCounter(sim)
    assert c.wait_for(4) is c.wait_for(4)


def test_multiple_thresholds_fire_in_order(sim):
    c = SyncCounter(sim)
    fired = []
    for target in (2, 5, 3):
        c.wait_for(target).add_callback(lambda e, t=target: fired.append(t))
    c.increment(5)
    sim.run()
    assert fired == [2, 3, 5]


def test_negative_target_rejected(sim):
    c = SyncCounter(sim)
    with pytest.raises(ValueError):
        c.wait_for(-1)


def test_reset_for_reuse(sim):
    c = SyncCounter(sim)
    c.increment(7)
    c.reset()
    assert c.count == 0
    assert c.epoch == 1
    ev = c.wait_for(1)
    c.increment()
    assert ev.triggered


def test_reset_with_pending_waiters_raises(sim):
    """Resetting while a phase still expects packets is a software bug
    the model surfaces immediately."""
    c = SyncCounter(sim)
    c.wait_for(10)
    with pytest.raises(RuntimeError, match="waiters pending"):
        c.reset()


def test_overshoot_counts_are_kept(sim):
    c = SyncCounter(sim)
    ev = c.wait_for(2)
    c.increment(10)
    assert ev.triggered
    assert c.count == 10
