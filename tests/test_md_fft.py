"""Unit tests for the distributed FFT communication plan (§IV.B.3)."""

import pytest

from repro.md.fft import DistributedFFTPlan
from repro.topology import Torus3D


def _plan(shape=(4, 4, 4), grid=8):
    return DistributedFFTPlan(Torus3D(*shape), grid=grid)


def test_grid_must_tile_machine():
    with pytest.raises(ValueError):
        DistributedFFTPlan(Torus3D(3, 4, 4), grid=8)


def test_block_ownership_partitions_grid():
    plan = _plan()
    counts = plan.stage_points_owned("block")
    assert sum(counts.values()) == plan.total_points()
    assert set(counts.values()) == {plan.points_per_node()}


def test_line_ownership_is_balanced():
    """Each node of a row owns the same number of 1-D lines."""
    plan = _plan(shape=(8, 8, 8), grid=32)
    torus = plan.torus
    counts = {c: plan.lines_owned(c, "x") for c in torus.nodes()}
    assert set(counts.values()) == {32 * 32 // (8 * 8 * 8) * 8 // 8}  # = 2
    assert sum(counts.values()) == 32 * 32


def test_line_stays_within_its_row():
    plan = _plan(shape=(8, 8, 8), grid=32)
    owner = plan.line_owner("x", 5, 17)
    # The owner shares the block owners' y/z coordinates.
    assert owner.y == 5 // 4 and owner.z == 17 // 4


def test_stage_transfers_conserve_points():
    plan = _plan()
    for a, b in zip(plan.STAGES[:-1], plan.STAGES[1:]):
        sent = sum(plan.stage_transfers(a, b).values())
        recv = sum(plan.stage_recv_counts(a, b).values())
        assert sent == recv
        # Every point either moves once or stays local.
        assert sent <= plan.total_points()


def test_forward_and_inverse_symmetric():
    plan = _plan()
    fwd = sum(plan.stage_transfers("block", "x").values())
    inv = sum(plan.stage_transfers("ix", "iblock").values())
    assert fwd == inv


def test_transfers_stay_in_dimension_rows():
    """Gathering X lines only moves data along X — the hop-minimising
    property of the dimension-ordered FFT."""
    plan = _plan(shape=(8, 8, 8), grid=32)
    for (src, dst), _n in plan.stage_transfers("block", "x").items():
        assert (src.y, src.z) == (dst.y, dst.z)


def test_max_hops_bounded_by_row():
    plan = _plan(shape=(8, 8, 8), grid=32)
    assert plan.max_hops("x") == 4


def test_paper_configuration_statistics():
    """32³ grid on 512 nodes: 64 points per node, 2 lines per node per
    phase, 56 points sent/received per node per transfer."""
    plan = _plan(shape=(8, 8, 8), grid=32)
    assert plan.points_per_node() == 64
    c = plan.torus.coord((0, 0, 0))
    assert plan.lines_owned(c, "x") == 2
    recv = plan.stage_recv_counts("block", "x")
    assert recv[c] == 2 * (32 - 4)  # own block already holds 4 per line


def test_stage_owner_unknown_stage():
    plan = _plan()
    with pytest.raises(ValueError):
        plan.stage_owner("w", 0, 0, 0)


def test_send_lists_match_transfers():
    plan = _plan()
    sends = plan.stage_send_lists("block", "x")
    total = sum(n for lst in sends.values() for _dst, n in lst)
    assert total == sum(plan.stage_transfers("block", "x").values())
