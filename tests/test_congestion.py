"""Unit tests for the congestion X-ray package: recorder behavior,
backpressure tree construction and ranking, episode merging, blocker
identification, and the text/HTML/Prometheus renderers."""

import json

import pytest

from tests.conftest import run_exchange

from repro.asic import build_machine
from repro.congestion import (
    NULL_CONGESTION,
    CongestionRecorder,
    active_congestion,
    direction_label,
    use_congestion,
)
from repro.congestion.capture import run_congested
from repro.congestion.decompose import (
    DelayBucket,
    decompose_run,
    render_decomposition,
)
from repro.congestion.report import (
    congestion_doc,
    render_congestion_html,
    render_congestion_prometheus,
    render_congestion_text,
)
from repro.congestion.tree import (
    DIRECTION_ORDER,
    INJECTION,
    CongestionTree,
    Episode,
    LinkCongestion,
    _merge_episodes,
    blocked_behind,
    build_congestion_tree,
)
from repro.engine import Simulator
from repro.network.multicast import compile_pattern
from repro.topology.torus import Torus3D


@pytest.fixture(scope="module")
def incast():
    """The canonical 26-to-1 incast on a 3x3x3 torus, captured once.

    Dimension-ordered routing funnels every sender's final approach
    through the destination's z links; z+ and z- tie exactly and the
    deterministic direction order ranks z+ first.
    """
    result = run_congested(
        "congestion", shape=(3, 3, 3), rounds=1, payload=0, seed=0,
        senders=26,
    )
    tree = build_congestion_tree(result.flight, Torus3D(3, 3, 3))
    return result, tree


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------
class TestRecorder:
    def test_null_recorder_is_disabled_default(self):
        assert NULL_CONGESTION.enabled is False
        assert active_congestion() is NULL_CONGESTION
        sim = Simulator()
        machine = build_machine(sim, 2, 2, 2)
        assert machine.network.congestion is NULL_CONGESTION

    def test_ambient_recorder_attaches_and_restores(self):
        with use_congestion() as recorder:
            assert active_congestion() is recorder
            assert recorder.enabled
            machine = build_machine(Simulator(), 2, 2, 2)
            assert machine.network.congestion is recorder
        assert active_congestion() is NULL_CONGESTION

    def test_direction_label(self):
        assert direction_label("z", 1) == "z+"
        assert direction_label("x", -1) == "x-"

    def test_uncontended_exchange_records_grants_no_waits(self):
        with use_congestion() as recorder:
            sim = Simulator()
            machine = build_machine(sim, 3, 3, 3)
            run_exchange(sim, machine.node((0, 0, 0)).slice(0),
                         machine.node((2, 0, 0)).slice(0))
        assert recorder.links()  # the traversed link appears
        assert sum(recorder.grants.values()) > 0
        assert recorder.total_wait_ns() == 0.0
        assert not recorder.waits
        # Occupancy timeline exists per granted link; depth timeline
        # only appears when something actually queued.
        for link in recorder.links():
            assert recorder.direction(link) in DIRECTION_ORDER
        assert recorder.occupancy_series
        assert not recorder.depth_series

    def test_contended_run_records_waits_and_depths(self, incast):
        result, _tree = incast
        recorder = result.congestion
        assert recorder.total_wait_ns() > 0
        assert recorder.max_peak_depth() >= 2
        assert sum(recorder.waits.values()) > 0
        # Every waiting link carries a depth timeline whose samples
        # never exceed the recorded peak.
        for link, series in recorder.depth_series.items():
            peak = recorder.peak_depth[link]
            assert peak >= 1
            assert max(series.values()) <= peak

    def test_clear_and_len(self, incast):
        recorder = CongestionRecorder()
        result, _ = incast
        # Drive it by hand through another tiny run instead of
        # mutating the shared fixture recorder.
        with use_congestion(recorder):
            sim = Simulator()
            machine = build_machine(sim, 2, 2, 2)
            run_exchange(sim, machine.node(0).slice(0),
                         machine.node(1).slice(0))
        assert len(recorder) > 0
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.total_dropped() == 0
        assert recorder.total_wait_ns() == 0.0

    def test_ring_buffers_bound_memory(self):
        recorder = CongestionRecorder(series_capacity=4)
        with use_congestion(recorder):
            sim = Simulator()
            machine = build_machine(sim, 2, 2, 2)
            for i in range(8):
                run_exchange(sim, machine.node(0).slice(0),
                             machine.node(1).slice(0), slot=0,
                             counter=f"c{i}")
        for series in recorder.occupancy_series.values():
            assert len(series) <= 4
        assert recorder.total_dropped() > 0

    def test_metrics_feed(self, incast):
        from repro.trace.metrics import MetricsRegistry

        registry = MetricsRegistry()
        recorder = CongestionRecorder(metrics=registry)
        with use_congestion(recorder):
            sim = Simulator()
            machine = build_machine(sim, 3, 3, 3)
            senders = [n for n in machine if n.coord != (0, 0, 0)][:6]
            dst = machine.node((0, 0, 0))
            for i, node in enumerate(senders):
                run_exchange(sim, node.slice(0), dst.slice(0),
                             counter=f"c{i}", payload_bytes=32)
        snap = registry.snapshot()
        assert snap["congestion.grants"]["value"] > 0
        if recorder.total_wait_ns() > 0:
            assert snap["congestion.waits"]["value"] > 0
            assert snap["congestion.hol_wait_ns"]["count"] > 0
            assert snap["congestion.queue_depth"]["value"] >= 1


# ---------------------------------------------------------------------------
# Tree construction and ranking
# ---------------------------------------------------------------------------
class TestCongestionTree:
    def test_incast_names_z_plus_bottleneck(self, incast):
        """The ISSUE's acceptance scenario: on the full 26-to-1 incast
        the tree's worst link is the destination's z+ inbound link."""
        _result, tree = incast
        assert tree.worst is not None
        assert tree.worst.direction == "z+"
        # z- ties exactly (symmetric funnel) and ranks second by the
        # deterministic direction order.
        assert tree.links[1].direction == "z-"
        assert tree.links[0].wait_ns == pytest.approx(tree.links[1].wait_ns)
        assert tree.links[0].wait_ns >= tree.links[2].wait_ns

    def test_ranking_is_sorted_and_deterministic(self, incast):
        _result, tree = incast
        keys = [(-lc.wait_ns, DIRECTION_ORDER.index(lc.direction), lc.link)
                for lc in tree.links]
        assert keys == sorted(keys)
        # Rebuild gives the identical document.
        result, _ = incast
        again = build_congestion_tree(result.flight, Torus3D(3, 3, 3))
        assert again.to_doc() == tree.to_doc()

    def test_feeders_tile_link_wait(self, incast):
        """Every nanosecond of a link's HOL wait is attributed to
        exactly one feeder (upstream link or injection)."""
        _result, tree = incast
        for lc in tree.links:
            assert sum(lc.fed_by.values()) == pytest.approx(lc.wait_ns)
            ranked = lc.ranked_feeders()
            assert sorted(ranked, key=lambda kv: (-kv[1], kv[0])) == ranked

    def test_worst_link_fed_mostly_upstream(self, incast):
        """The z+ funnel is fed by y-dimension feeders (the previous
        routing dimension), not by direct injection."""
        _result, tree = incast
        feeders = dict(tree.worst.ranked_feeders())
        upstream = sum(ns for f, ns in feeders.items() if f != INJECTION)
        assert upstream > feeders.get(INJECTION, 0.0)
        top_feeder = tree.worst.ranked_feeders()[0][0]
        assert top_feeder != INJECTION

    def test_episodes_cover_waits(self, incast):
        _result, tree = incast
        for lc in tree.links:
            total = sum(e.wait_ns for e in lc.episodes)
            assert total == pytest.approx(lc.wait_ns)
            assert sum(e.packets for e in lc.episodes) == lc.waits
            for e in lc.episodes:
                assert e.end_ns >= e.start_ns
                assert e.direction == lc.direction
        # Global episode list is sorted by wait, descending.
        eps = tree.episodes()
        assert all(eps[i].wait_ns >= eps[i + 1].wait_ns
                   for i in range(len(eps) - 1))

    def test_min_episode_filters_short_blocking(self, incast):
        result, tree = incast
        all_eps = len(tree.episodes())
        filtered = build_congestion_tree(
            result.flight, Torus3D(3, 3, 3), min_episode_ns=1e12
        )
        assert len(filtered.episodes()) == 0
        assert all_eps > 0
        # Filtering episodes never changes the wait accounting.
        assert filtered.total_wait_ns == pytest.approx(tree.total_wait_ns)

    def test_blocked_behind_identifies_fcfs_blocker(self, incast):
        result, _tree = incast
        found = 0
        for flight in result.flight.flights.values():
            for i, hop in enumerate(flight.hops):
                blocker = blocked_behind(result.flight, flight, i)
                if hop.wait_ns <= 0.0:
                    assert blocker is None
                elif blocker is not None:
                    assert blocker != flight.packet_id
                    found += 1
        assert found > 0

    def test_uncontended_run_yields_empty_tree(self):
        # A single-sender "incast" is just one uncontended write.
        result = run_congested("congestion", shape=(3, 3, 3), rounds=1,
                               senders=1)
        tree = build_congestion_tree(result.flight, Torus3D(3, 3, 3))
        assert tree.links == []
        assert tree.worst is None
        assert tree.total_wait_ns == 0.0
        assert tree.packets > 0

    def test_to_doc_schema_and_top(self, incast):
        _result, tree = incast
        doc = tree.to_doc(top=2)
        assert doc["schema"] == "repro-congest/1"
        assert len(doc["links"]) == 2
        assert doc["contended_links"] == len(tree.links)
        assert doc["total_hol_wait_ns"] == pytest.approx(tree.total_wait_ns)
        first = doc["links"][0]
        assert first["direction"] == "z+"
        assert set(first) == {"link", "direction", "wait_ns", "waits",
                              "peak_depth", "occupancy_ns", "fed_by",
                              "episodes"}
        json.dumps(doc)  # plain data, serializable


class TestEpisodeMerging:
    def test_overlapping_intervals_merge(self):
        eps = _merge_episodes("L", "z+", [(0.0, 5.0), (3.0, 8.0)], 0.0)
        assert len(eps) == 1
        assert (eps[0].start_ns, eps[0].end_ns) == (0.0, 8.0)
        assert eps[0].packets == 2
        assert eps[0].wait_ns == pytest.approx(10.0)

    def test_touching_intervals_merge(self):
        eps = _merge_episodes("L", "z+", [(0.0, 5.0), (5.0, 6.0)], 0.0)
        assert len(eps) == 1
        assert eps[0].duration_ns == pytest.approx(6.0)

    def test_disjoint_intervals_stay_separate(self):
        eps = _merge_episodes("L", "z+", [(10.0, 12.0), (0.0, 5.0)], 0.0)
        assert [(e.start_ns, e.end_ns) for e in eps] == [
            (0.0, 5.0), (10.0, 12.0)
        ]

    def test_min_duration_threshold(self):
        eps = _merge_episodes(
            "L", "z+", [(0.0, 1.0), (10.0, 20.0)], 5.0
        )
        assert len(eps) == 1
        assert eps[0].start_ns == 10.0


# ---------------------------------------------------------------------------
# Multicast pattern helpers the attribution joins against
# ---------------------------------------------------------------------------
class TestMulticastLinkViews:
    def test_links_traversed_matches_total(self):
        torus = Torus3D(3, 3, 3)
        pattern = compile_pattern(
            torus, (0, 0, 0),
            {(2, 0, 0): ["c"], (0, 2, 0): ["c"], (1, 1, 1): ["c"]},
        )
        links = pattern.links_traversed()
        assert len(links) == pattern.total_link_traversals
        assert links == sorted(links, key=lambda t: t[0])
        for _node, dim, sign in links:
            assert dim in "xyz" and sign in (-1, 1)

    def test_direction_fanout_sums_to_traversals(self):
        torus = Torus3D(3, 3, 3)
        pattern = compile_pattern(
            torus, (1, 1, 1),
            {n: ["c"] for n in [(0, 1, 1), (2, 1, 1), (1, 0, 1),
                                (1, 2, 1), (1, 1, 0), (1, 1, 2)]},
        )
        fanout = pattern.direction_fanout()
        assert sum(fanout.values()) == pattern.total_link_traversals
        assert set(fanout) <= set(DIRECTION_ORDER)
        # The 6-neighbor broadcast exits every direction once... at
        # least once each for x; y/z branch off the trunk.
        assert fanout["x+"] >= 1 and fanout["x-"] >= 1


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------
class TestRenderers:
    def test_text_report(self, incast):
        _result, tree = incast
        text = render_congestion_text(tree)
        assert "Congestion tree" in text
        assert "z+" in text
        assert "episode" in text.lower()

    def test_text_report_empty_tree(self):
        text = render_congestion_text(CongestionTree(links=[], packets=3))
        assert "no head-of-line waits" in text

    def test_decomposition_render(self, incast):
        result, _tree = incast
        decomps = decompose_run(result.flight, Torus3D(3, 3, 3))
        text = render_decomposition(decomps)
        assert "head-of-line wait" in text
        assert "UNATTRIBUTED" in text
        assert "TOTAL" in text

    def test_html_report(self, incast):
        result, tree = incast
        html = render_congestion_html(
            tree, series=result.congestion.depth_series,
            experiment="congestion", shape=(3, 3, 3),
        )
        assert html.lower().startswith("<!doctype html>")
        assert "Congestion X-ray" in html
        assert "z+" in html
        assert "svg" in html  # depth sparkline for the worst link

    def test_prometheus_exposition(self, incast):
        result, tree = incast
        prom = render_congestion_prometheus(tree, result.congestion)
        assert "# TYPE repro_congestion_hol_wait_ns counter" in prom
        assert 'direction="z+"' in prom
        assert "repro_congestion_total_hol_wait_ns" in prom
        assert "repro_congestion_contended_links" in prom
        assert prom.endswith("\n")

    def test_doc_wrapper(self, incast):
        _result, tree = incast
        doc = congestion_doc(tree, experiment="congestion",
                             shape=(3, 3, 3), top=4)
        assert doc["experiment"] == "congestion"
        assert doc["shape"] == [3, 3, 3]
        assert len(doc["links"]) == 4
