"""Unit tests for the event primitives."""

import pytest

from repro.engine import AllOf, AnyOf, Event, Simulator, Timeout


def test_event_starts_pending(sim):
    ev = sim.event()
    assert not ev.triggered
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_succeed_carries_value(sim):
    ev = sim.event()
    ev.succeed(42)
    assert ev.triggered and ev.ok
    assert ev.value == 42


def test_double_trigger_rejected(sim):
    ev = sim.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("x"))


def test_fail_requires_exception(sim):
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callback_runs_at_trigger_time(sim):
    ev = sim.event()
    seen = []
    ev.add_callback(lambda e: seen.append(sim.now))
    sim.schedule(10.0, ev.succeed)
    sim.run()
    assert seen == [10.0]


def test_callback_on_already_triggered_event_still_runs(sim):
    ev = sim.event()
    ev.succeed(7)
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == [7]


def test_timeout_fires_after_delay(sim):
    t = sim.timeout(25.0, value="done")
    sim.run()
    assert t.triggered
    assert t.value == "done"
    assert sim.now == 25.0


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_all_of_waits_for_every_child(sim):
    a, b = sim.event(), sim.event()
    both = sim.all_of([a, b])
    sim.schedule(5.0, a.succeed, 1)
    sim.schedule(9.0, b.succeed, 2)
    sim.run()
    assert both.triggered
    assert both.value == {a: 1, b: 2}
    assert sim.now == 9.0


def test_all_of_already_triggered_children(sim):
    a, b = sim.event(), sim.event()
    a.succeed("x")
    b.succeed("y")
    both = sim.all_of([a, b])
    assert both.triggered


def test_all_of_propagates_failure(sim):
    a, b = sim.event(), sim.event()
    both = sim.all_of([a, b])
    boom = ValueError("boom")
    sim.schedule(1.0, a.fail, boom)

    def waiter():
        with pytest.raises(ValueError):
            yield both

    sim.process(waiter())
    sim.run()
    assert both.triggered and not both.ok


def test_any_of_fires_on_first(sim):
    a, b = sim.event(), sim.event()
    first = sim.any_of([a, b])
    sim.schedule(3.0, b.succeed, "b-wins")
    sim.schedule(8.0, a.succeed, "a-late")
    sim.run()
    assert first.value == "b-wins"


def test_any_of_with_pretriggered_child(sim):
    a, b = sim.event(), sim.event()
    a.succeed("now")
    first = sim.any_of([a, b])
    assert first.triggered and first.value == "now"


def test_cross_simulator_events_rejected():
    s1, s2 = Simulator(), Simulator()
    e1 = s1.event()
    e2 = s2.event()
    with pytest.raises(ValueError):
        s1.all_of([e1, e2])
