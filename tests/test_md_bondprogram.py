"""Unit tests for the bond program (§IV.B.2, Fig. 11)."""

import numpy as np
import pytest

from repro.md.bondprogram import BondProgram
from repro.md.decomposition import Decomposition
from repro.md.system import tiny_system
from repro.topology import Torus3D


def _setup(atoms=64, shape=(2, 2, 2), box=16.0):
    s = tiny_system(atoms, box_edge=box)
    d = Decomposition(s, Torus3D(*shape), import_radius=2.0)
    return s, d, BondProgram(s, d)


def test_every_term_assigned():
    s, d, bp = _setup()
    total = sum(len(bp.terms_of_node(c)) for c in d.torus.nodes())
    assert total == s.num_bonds


def test_terms_assigned_to_midpoint_node():
    s, d, bp = _setup()
    for t in range(s.num_bonds):
        i, j = s.bonds[t]
        ri = s.positions[i]
        mid = (ri + 0.5 * s.minimum_image(s.positions[j] - ri)) % s.box_edge
        expected = d._grid_of(mid[None, :])[0]
        assert tuple(bp.term_node[t]) == tuple(expected)


def test_initial_assignment_is_local():
    """Fresh bond programs place terms near their atoms: communication
    distance starts at zero or one hop for short bonds."""
    s, d, bp = _setup(shape=(4, 4, 4), box=32.0)
    stats = bp.stats()
    assert stats.hops_max <= 2
    assert stats.hops_mean <= 1.0


def test_drift_increases_hops_and_regeneration_restores():
    """The Fig. 11 mechanism: diffusion lengthens bond communication;
    regeneration resets it."""
    s, d, bp = _setup(shape=(4, 4, 4), box=32.0)
    before = bp.stats()
    rng = np.random.default_rng(1)
    # Drift all atoms by a couple of box widths (keeping bonds intact
    # relative to each other so midpoints move with the atoms).
    shift = rng.uniform(-2, 2, size=3) * d.box_widths
    s.positions += shift + rng.normal(scale=3.0, size=s.positions.shape)
    s.wrap()
    # Homes track migration (atoms re-homed), but the bond program is stale.
    d.rehome_all()
    stale = bp.stats()
    assert stale.hops_mean > before.hops_mean
    bp.regenerate()
    fresh = bp.stats()
    assert fresh.hops_mean < stale.hops_mean
    assert bp.generation == 2


def test_sends_counts_consistent():
    s, d, bp = _setup()
    sends = bp.sends()
    # Each (atom, destination) pair appears at most once.
    total_packets = sum(sum(dsts.values()) for dsts in sends.values())
    distinct = set()
    for t in range(s.num_bonds):
        dst = bp.node_of_term(t)
        for atom in s.bonds[t]:
            src = d.node_of_atom(int(atom))
            if src != dst:
                distinct.add((int(atom), dst))
    assert total_packets == len(distinct)


def test_stats_on_bondless_system():
    s = tiny_system(8)
    s2 = s.copy()
    object.__setattr__  # noqa: B018 - documentation of intent below
    # Build a bond-free variant.
    import numpy as np
    from repro.md.system import ChemicalSystem

    bare = ChemicalSystem(
        positions=s.positions, velocities=s.velocities, masses=s.masses,
        charges=s.charges, lj_epsilon=s.lj_epsilon, lj_sigma=s.lj_sigma,
        bonds=np.empty((0, 2), dtype=np.int64), bond_r0=np.empty(0),
        bond_k=np.empty(0), box_edge=s.box_edge,
    )
    d = Decomposition(bare, Torus3D(2, 2, 2), import_radius=2.0)
    bp = BondProgram(bare, d)
    st = bp.stats()
    assert st.sends_per_node_max == 0
    assert st.hops_max == 0
