"""Unit tests for processing slices."""

import pytest

from repro.constants import POLL_SUCCESS_NS, SLICE_SEND_NS
from tests.conftest import run_exchange


def test_slice_layout(machine222):
    node = machine222.node((0, 0, 0))
    assert len(node.slices) == 4
    s = node.slice(0)
    assert s.name == "slice0"
    assert len(s.geometry) == 2


def test_invalid_slice_index(sim, machine222):
    from repro.asic.slice_ import ProcessingSlice

    with pytest.raises(ValueError):
        ProcessingSlice(sim, machine222.network, (0, 0, 0), 4)


def test_send_write_delivers_payload(sim, machine222):
    a = machine222.node((0, 0, 0)).slice(0)
    b = machine222.node((1, 0, 0)).slice(2)
    run_exchange(sim, a, b, payload=123.25, payload_bytes=8)
    assert b.memory.read(("rx", 0)) == 123.25
    assert a.packets_sent == 1
    assert b.packets_received == 1


def test_sends_serialise_on_tensilica(sim, machine222):
    """Back-to-back sends from one slice are spaced by the 36 ns
    packet-assembly cost."""
    a = machine222.node((0, 0, 0)).slice(0)
    b = machine222.node((1, 0, 0)).slice(0)
    b.memory.allocate("rx", 2)
    times = {}

    def sender():
        yield from a.send_write((1, 0, 0), "slice0", counter_id="c0",
                                address=("rx", 0), payload_bytes=0)
        yield from a.send_write((1, 0, 0), "slice0", counter_id="c1",
                                address=("rx", 1), payload_bytes=0)

    # Observe raw arrival times via counter-threshold events so the
    # receiver's own poll cost does not obscure the send spacing.
    b.counter("c0").wait_for(1).add_callback(lambda e: times.__setitem__(0, sim.now))
    b.counter("c1").wait_for(1).add_callback(lambda e: times.__setitem__(1, sim.now))
    sim.process(sender())
    sim.run()
    assert times[1] - times[0] == pytest.approx(SLICE_SEND_NS)


def test_poll_costs_42ns_after_arrival(sim, machine222):
    """Polling an already-satisfied counter still pays the successful
    poll cost."""
    a = machine222.node((0, 0, 0)).slice(0)
    b = machine222.node((1, 0, 0)).slice(0)
    b.memory.allocate("rx", 1)

    def sender():
        yield from a.send_write((1, 0, 0), "slice0", counter_id="c",
                                address=("rx", 0), payload_bytes=0)

    t = {}

    def late_receiver():
        yield sim.timeout(10_000.0)
        t["done"] = yield from b.poll("c", 1)

    p1 = sim.process(sender())
    p2 = sim.process(late_receiver())
    sim.run(until=sim.all_of([p1, p2]))
    assert t["done"] == pytest.approx(10_000.0 + POLL_SUCCESS_NS)


def test_geometry_cores_run_concurrently(sim, machine222):
    s = machine222.node((0, 0, 0)).slice(0)
    done = []

    def worker(core):
        yield from s.compute(100.0, core=core)
        done.append((core, sim.now))

    sim.process(worker(0))
    sim.process(worker(1))
    sim.run()
    assert [t for _, t in done] == [100.0, 100.0]


def test_same_core_serialises(sim, machine222):
    s = machine222.node((0, 0, 0)).slice(0)
    done = []

    def worker(i):
        yield from s.compute(100.0, core=0)
        done.append(sim.now)

    sim.process(worker(0))
    sim.process(worker(1))
    sim.run()
    assert done == [100.0, 200.0]


def test_send_with_mismatched_source_rejected(sim, machine222):
    from repro.network.packet import WritePacket

    a = machine222.node((0, 0, 0)).slice(0)
    forged = WritePacket(
        src_node=machine222.torus.coord((1, 0, 0)),  # wrong source
        src_client="slice0",
        dst_node=machine222.torus.coord((0, 0, 0)),
        dst_client="slice1",
    )
    with pytest.raises(ValueError, match="does not match"):
        a.inject(forged)


def test_accum_rejects_fifo_and_slices_reject_accum(sim, machine222):
    node = machine222.node((0, 0, 0))
    a = node.slice(0)
    peer = machine222.node((1, 0, 0))

    def send_accum_to_slice():
        yield from a.send_accum(
            (1, 0, 0), "slice0", counter_id="c", address="x", payload_bytes=4
        )

    sim.process(send_accum_to_slice())
    with pytest.raises((TypeError, RuntimeError)):
        sim.run()
