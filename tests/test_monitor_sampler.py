"""Unit tests for the ring-buffer series and time-series sampler."""

import pytest

from repro.monitor.sampler import TimeSeriesSampler
from repro.monitor.series import RingSeries


class TestRingSeries:
    def test_append_and_order(self):
        s = RingSeries("s", capacity=4)
        for i in range(3):
            s.append(float(i), float(i * 10))
        assert len(s) == 3
        assert s.samples() == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]
        assert s.values() == [0.0, 10.0, 20.0]
        assert s.dropped == 0

    def test_overwrite_oldest_counts_dropped(self):
        s = RingSeries("s", capacity=3)
        for i in range(5):
            s.append(float(i), float(i))
        assert len(s) == 3
        assert s.dropped == 2
        assert s.total_seen == 5
        # Only the most recent capacity samples survive, in time order.
        assert s.samples() == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]

    def test_last(self):
        s = RingSeries("s", capacity=2)
        with pytest.raises(ValueError, match="empty"):
            s.last
        s.append(1.0, 10.0)
        s.append(2.0, 20.0)
        s.append(3.0, 30.0)  # wraps
        assert s.last == (3.0, 30.0)

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            RingSeries("s", capacity=0)


class TestTimeSeriesSampler:
    def test_fast_probes_sample_every_tick(self):
        sampler = TimeSeriesSampler(interval_ns=10.0, capacity=16)
        calls = []
        sampler.probe("a", lambda: calls.append("a") or 1.0)
        for t in range(5):
            sampler.sample(float(t))
        assert len(calls) == 5
        assert len(sampler.series["a"]) == 5

    def test_slow_probes_decimated(self):
        sampler = TimeSeriesSampler(interval_ns=10.0, capacity=16, slow_every=4)
        sampler.probe("fast", lambda: 1.0)
        sampler.probe("slow", lambda: 2.0, slow=True)
        for t in range(9):
            sampler.sample(float(t))
        assert len(sampler.series["fast"]) == 9
        # Slow cadence: ticks 0, 4, 8.
        assert [t for t, _ in sampler.series["slow"].samples()] == [0.0, 4.0, 8.0]

    def test_duplicate_probe_rejected(self):
        sampler = TimeSeriesSampler()
        sampler.probe("x", lambda: 0.0)
        with pytest.raises(ValueError, match="already registered"):
            sampler.probe("x", lambda: 0.0)

    def test_dropped_samples_aggregated(self):
        sampler = TimeSeriesSampler(interval_ns=1.0, capacity=2)
        sampler.probe("a", lambda: 0.0)
        sampler.probe("b", lambda: 0.0)
        for t in range(5):
            sampler.sample(float(t))
        assert sampler.dropped_samples == 6  # 3 dropped per series
        assert sampler.samples_recorded == 4  # 2 retained per series

    def test_iteration_sorted_by_name(self):
        sampler = TimeSeriesSampler()
        for name in ("zeta", "alpha", "mid"):
            sampler.probe(name, lambda: 0.0)
        assert [s.name for s in sampler] == ["alpha", "mid", "zeta"]
        assert len(sampler) == 3

    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="interval_ns"):
            TimeSeriesSampler(interval_ns=0.0)
        with pytest.raises(ValueError, match="slow_every"):
            TimeSeriesSampler(slow_every=0)
