"""Benchmark results schema (bench/results.py) and regression
comparison (bench/compare.py)."""

import json

import pytest

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    Delta,
    compare,
    render_comparison,
    threshold_for,
)
from repro.bench.results import SCHEMA, BenchResult, ResultSet, config_hash


def result(benchmark="latency", metric="one_way_1hop_ns", value=162.0,
           units="ns", better="lower", **config):
    return BenchResult(benchmark=benchmark, metric=metric, value=value,
                       units=units, better=better, config=config)


class TestBenchResult:
    def test_key_is_benchmark_metric_confighash(self):
        r = result(shape=[4, 4, 4], hops=1)
        assert r.key == ("latency", "one_way_1hop_ns", r.config_hash)
        assert len(r.config_hash) == 12

    def test_config_hash_is_order_insensitive_and_value_free(self):
        a = config_hash({"shape": [4, 4, 4], "hops": 1})
        b = config_hash({"hops": 1, "shape": [4, 4, 4]})
        assert a == b
        assert a != config_hash({"shape": [4, 4, 4], "hops": 2})

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(better="sideways"), "better must be one of"),
            (dict(value=float("nan")), "finite"),
            (dict(value=float("inf")), "finite"),
            (dict(metric=""), "non-empty"),
            (dict(units=""), "non-empty"),
        ],
    )
    def test_validation_errors(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            result(**kwargs)

    def test_round_trip(self):
        r = result(shape=[2, 2, 2], payload_bytes=256)
        again = BenchResult.from_dict(r.to_dict())
        assert again == r
        assert again.key == r.key

    def test_from_dict_rejects_missing_fields(self):
        doc = result().to_dict()
        del doc["units"]
        with pytest.raises(ValueError, match="missing fields"):
            BenchResult.from_dict(doc)

    def test_from_dict_rejects_inconsistent_stored_hash(self):
        doc = result(shape=[4, 4, 4]).to_dict()
        doc["config"]["shape"] = [8, 8, 8]  # edited without re-hashing
        with pytest.raises(ValueError, match="config_hash"):
            BenchResult.from_dict(doc)


class TestResultSet:
    def test_duplicate_key_rejected(self):
        rs = ResultSet([result(value=162.0)])
        with pytest.raises(ValueError, match="duplicate"):
            rs.add(result(value=999.0))  # same key, value ignored by identity

    def test_iteration_is_key_sorted(self):
        rs = ResultSet([result(metric="b_ns"), result(metric="a_ns"),
                        result(benchmark="allreduce", metric="z_ns")])
        keys = [r.key for r in rs]
        assert keys == sorted(keys)

    def test_file_round_trip(self, tmp_path):
        rs = ResultSet([result(shape=[4, 4, 4]), result(metric="zero_hop_ns",
                                                        value=97.0)])
        path = tmp_path / "sub" / "out.json"  # parent dir auto-created
        rs.write(str(path))
        again = ResultSet.read(str(path))
        assert again.keys() == rs.keys()
        assert [r.to_dict() for r in again] == [r.to_dict() for r in rs]

    def test_dumps_is_canonical(self):
        rs = ResultSet([result()])
        text = rs.dumps()
        assert text.endswith("\n")
        doc = json.loads(text)
        assert doc["schema"] == SCHEMA
        # Identical content serializes to identical bytes regardless of
        # insertion order.
        other = ResultSet([result(metric="zzz_ns"), result()])
        again = ResultSet([result(), result(metric="zzz_ns")])
        assert other.dumps() == again.dumps()

    def test_loads_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="unsupported results schema"):
            ResultSet.loads('{"schema": "repro-bench/99", "results": []}')
        with pytest.raises(ValueError, match="'results' list"):
            ResultSet.loads('{"schema": "repro-bench/1"}')

    def test_read_many_merges_and_rejects_duplicates(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        ResultSet([result()]).write(str(a))
        ResultSet([result(benchmark="allreduce")]).write(str(b))
        merged = ResultSet.read_many([str(a), str(b)])
        assert len(merged) == 2
        ResultSet([result()]).write(str(b))
        with pytest.raises(ValueError, match="duplicate"):
            ResultSet.read_many([str(a), str(b)])


class TestCompare:
    def test_within_threshold_is_ok(self):
        base = ResultSet([result(value=100.0)])
        cur = ResultSet([result(value=104.0)])
        cmp = compare(base, cur)  # +4% < default 5%
        assert cmp.ok and not cmp.regressions and not cmp.improvements

    def test_lower_is_better_regresses_upward(self):
        base = ResultSet([result(value=100.0)])
        cmp = compare(base, ResultSet([result(value=110.0)]))
        assert not cmp.ok
        [d] = cmp.regressions
        assert d.change == pytest.approx(0.10)
        assert d.worsening == pytest.approx(0.10)
        # The same move downward is an improvement.
        cmp = compare(base, ResultSet([result(value=90.0)]))
        assert cmp.ok and len(cmp.improvements) == 1

    def test_higher_is_better_regresses_downward(self):
        base = ResultSet([result(metric="efficiency", value=0.525,
                                 units="ratio", better="higher")])
        cur = ResultSet([result(metric="efficiency", value=0.40,
                                units="ratio", better="higher")])
        cmp = compare(base, cur)
        [d] = cmp.regressions
        assert d.worsening > 0
        cmp = compare(base, ResultSet([result(metric="efficiency", value=0.60,
                                              units="ratio", better="higher")]))
        assert cmp.ok

    def test_zero_baseline(self):
        base = ResultSet([result(value=0.0)])
        assert compare(base, ResultSet([result(value=0.0)])).ok
        cmp = compare(base, ResultSet([result(value=1.0)]))
        [d] = cmp.deltas
        assert d.change == float("inf")
        assert d.is_regression

    def test_missing_key_fails_even_without_regression(self):
        base = ResultSet([result(), result(metric="zero_hop_ns", value=97.0)])
        cur = ResultSet([result()])
        cmp = compare(base, cur)
        assert not cmp.ok
        assert cmp.missing == [("latency", "zero_hop_ns",
                                result(metric="zero_hop_ns").config_hash)]

    def test_added_keys_are_informational(self):
        base = ResultSet([result()])
        cur = ResultSet([result(), result(metric="new_ns")])
        cmp = compare(base, cur)
        assert cmp.ok
        assert len(cmp.added) == 1

    def test_threshold_override_precedence(self):
        r = result()
        assert threshold_for(r) == DEFAULT_THRESHOLD
        assert threshold_for(r, overrides={"latency": 0.2}) == 0.2
        assert threshold_for(
            r, overrides={"latency": 0.2, "latency/one_way_1hop_ns": 0.5}
        ) == 0.5
        # Overrides actually gate classification.
        base = ResultSet([result(value=100.0)])
        cur = ResultSet([result(value=110.0)])
        assert not compare(base, cur).ok
        assert compare(base, cur, overrides={"latency": 0.2}).ok

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            compare(ResultSet(), ResultSet(), threshold=-0.1)

    def test_render_flags_and_verdict(self):
        base = ResultSet([result(value=100.0),
                          result(metric="gone_ns", value=1.0)])
        cur = ResultSet([result(value=120.0),
                         result(metric="new_ns", value=1.0)])
        text = render_comparison(compare(base, cur))
        assert "REGRESSION" in text
        assert "MISSING from current run: latency/gone_ns" in text
        assert "new (no baseline): latency/new_ns" in text
        assert text.endswith("FAIL: 1 regression(s), 1 missing")
        ok_text = render_comparison(compare(base, base))
        assert ok_text.endswith("OK")
