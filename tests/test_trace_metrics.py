"""Unit tests for the metrics registry (trace/metrics.py)."""

import pytest

from repro.engine import Simulator
from repro.trace.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = Counter("c")
        with pytest.raises(ValueError, match="monotonic"):
            c.inc(-1)
        assert c.value == 0

    def test_snapshot(self):
        c = Counter("c")
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(12)
        assert g.value == 3

    def test_watermarks(self):
        g = Gauge("g")
        for v in (3, 8, -2, 5):
            g.set(v)
        assert g.high_watermark == 8
        assert g.low_watermark == -2

    def test_snapshot_includes_watermarks_after_first_set(self):
        g = Gauge("g")
        assert "high_watermark" not in g.snapshot()
        g.set(1)
        snap = g.snapshot()
        assert snap["high_watermark"] == 1
        assert snap["low_watermark"] == 1


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("h")
        for v in (10.0, 20.0, 30.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 60.0
        assert h.mean == 20.0

    def test_percentiles_on_known_distribution(self):
        h = Histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.p50 == 50.0
        assert h.p90 == 90.0
        assert h.p99 == 99.0
        assert h.min == 1.0
        assert h.max == 100.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_percentiles_ordered(self):
        h = Histogram("h")
        for v in (5.0, 1.0, 9.0, 2.0, 7.0):
            h.observe(v)
        assert h.min <= h.p50 <= h.p90 <= h.p99 <= h.max

    def test_empty_histogram_has_no_percentiles(self):
        h = Histogram("h")
        with pytest.raises(ValueError, match="no observations"):
            h.p50
        assert h.snapshot() == {"type": "histogram", "count": 0}

    def test_percentile_out_of_range(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            h.percentile(101)

    def test_observations_after_a_query_are_included(self):
        h = Histogram("h")
        h.observe(1.0)
        assert h.p99 == 1.0
        h.observe(100.0)
        assert h.p99 == 100.0  # sorted cache invalidated


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_name_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="counter"):
            reg.gauge("a")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.gauge("a")
        assert reg.names() == ["a", "z"]
        assert "a" in reg and "missing" not in reg

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(7.0)
        snap = reg.snapshot()
        assert snap["c"]["value"] == 2
        assert snap["h"]["p50"] == 7.0

    def test_summary_renders_all_metrics(self):
        reg = MetricsRegistry()
        reg.counter("net.packets").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat_ns").observe(162.0)
        text = reg.summary()
        assert "net.packets" in text
        assert "depth" in text
        assert "lat_ns" in text
        assert "p99" in text

    def test_attach_to_simulator(self):
        sim = Simulator()
        assert sim.metrics is None
        reg = MetricsRegistry().attach(sim)
        assert sim.metrics is reg
        assert reg.sim is sim

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.clear()
        assert len(reg) == 0


class TestAmbientRegistry:
    def test_default_is_none(self):
        assert active_registry() is None

    def test_use_registry_installs_and_restores(self):
        reg = MetricsRegistry()
        with use_registry(reg) as r:
            assert r is reg
            assert active_registry() is reg
            inner = MetricsRegistry()
            with use_registry(inner):
                assert active_registry() is inner
            assert active_registry() is reg
        assert active_registry() is None

    def test_restored_after_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(reg):
                raise RuntimeError("boom")
        assert active_registry() is None
