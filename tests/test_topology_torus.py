"""Unit tests for the 3-D torus topology."""

import pytest

from repro.topology import NodeCoord, Torus3D


def test_rank_coord_roundtrip():
    t = Torus3D(4, 3, 2)
    for rank in range(t.num_nodes):
        assert t.rank(t.coord(rank)) == rank


def test_coord_accepts_tuple_and_wraps():
    t = Torus3D(4, 4, 4)
    assert t.coord((5, -1, 4)) == NodeCoord(1, 3, 0)


def test_bad_rank_rejected():
    t = Torus3D(2, 2, 2)
    with pytest.raises(ValueError):
        t.coord(8)
    with pytest.raises(ValueError):
        t.rank(-1)


def test_invalid_shape():
    with pytest.raises(ValueError):
        Torus3D(0, 2, 2)


def test_hop_vector_uses_shortest_wraparound():
    t = Torus3D(8, 8, 8)
    assert t.hop_vector((0, 0, 0), (7, 0, 0)) == (-1, 0, 0)
    assert t.hop_vector((0, 0, 0), (3, 0, 0)) == (3, 0, 0)
    # Exact halfway ties break positive.
    assert t.hop_vector((0, 0, 0), (4, 0, 0)) == (4, 0, 0)


def test_hops_symmetry():
    t = Torus3D(8, 4, 8)
    a, b = t.coord((1, 2, 3)), t.coord((6, 0, 7))
    assert t.hops(a, b) == t.hops(b, a)


def test_max_hops_matches_paper():
    # "Twelve hops is the maximum distance between two nodes in an
    # 8x8x8 configuration" (Fig. 5 caption).
    assert Torus3D(8, 8, 8).max_hops() == 12


def test_route_is_dimension_ordered():
    t = Torus3D(8, 8, 8)
    route = t.route((0, 0, 0), (2, 1, 1))
    dims = [h.dim for h in route]
    assert dims == ["x", "x", "y", "z"]


def test_route_length_equals_hops():
    t = Torus3D(8, 8, 8)
    for dst in [(1, 0, 0), (4, 4, 4), (7, 7, 7), (0, 5, 2)]:
        assert len(t.route((0, 0, 0), dst)) == t.hops((0, 0, 0), dst)


def test_path_nodes_endpoints():
    t = Torus3D(4, 4, 4)
    path = t.path_nodes((0, 0, 0), (2, 3, 1))
    assert path[0] == t.coord((0, 0, 0))
    assert path[-1] == t.coord((2, 3, 1))
    assert len(path) == t.hops((0, 0, 0), (2, 3, 1)) + 1


def test_neighbor_wraps():
    t = Torus3D(4, 4, 4)
    assert t.neighbor((3, 0, 0), "x", 1) == NodeCoord(0, 0, 0)
    assert t.neighbor((0, 0, 0), "y", -1) == NodeCoord(0, 3, 0)
    with pytest.raises(ValueError):
        t.neighbor((0, 0, 0), "w", 1)
    with pytest.raises(ValueError):
        t.neighbor((0, 0, 0), "x", 2)


def test_face_neighbors_count():
    t = Torus3D(4, 4, 4)
    assert len(t.face_neighbors((0, 0, 0))) == 6


def test_moore_neighbors_large_torus():
    t = Torus3D(4, 4, 4)
    n = t.moore_neighbors((1, 1, 1))
    assert len(n) == 26
    assert t.coord((1, 1, 1)) not in n


def test_moore_neighbors_degenerate_torus():
    # On a 2x2x2 torus the 26 offsets alias down to 7 distinct nodes.
    t = Torus3D(2, 2, 2)
    assert len(t.moore_neighbors((0, 0, 0))) == 7


def test_axis_peers():
    t = Torus3D(8, 4, 2)
    peers = t.axis_peers((3, 2, 1), "x")
    assert len(peers) == 7
    assert all(p.y == 2 and p.z == 1 for p in peers)
    assert len(t.axis_peers((3, 2, 1), "z")) == 1


def test_nodes_iterates_all_in_rank_order():
    t = Torus3D(3, 2, 2)
    nodes = list(t.nodes())
    assert len(nodes) == 12
    assert [t.rank(n) for n in nodes] == list(range(12))
