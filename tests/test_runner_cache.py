"""Content-addressed result cache (runner/cache.py).

Integrity is the contract under test: entries are verified on read
(schema, key, payload hash, spec equality), corruption is counted and
recomputed rather than served, and writes are atomic.
"""

import json
import os

import pytest

from repro.runner.cache import (
    ResultCache,
    atomic_write_json,
    code_fingerprint,
)
from repro.runner.result import run_experiment
from repro.runner.spec import ExperimentSpec

SPEC = ExperimentSpec("transfer", shape=(2, 2, 2))


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


class TestRoundTrip:
    def test_put_then_get(self, cache):
        result = run_experiment(SPEC)
        path = cache.put(result)
        assert os.path.exists(path)
        hit = cache.get(SPEC)
        assert hit is not None
        assert hit.spec == SPEC
        assert hit.elapsed_ns == result.elapsed_ns
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_missing_entry_is_a_miss(self, cache):
        assert cache.get(SPEC) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 0

    def test_changed_spec_field_changes_the_key(self, cache):
        cache.put(run_experiment(SPEC))
        assert cache.get(SPEC.replace(rounds=3)) is None
        assert cache.get(SPEC.replace(seed=1)) is None
        assert cache.get(SPEC.with_extras(messages=4)) is None
        assert cache.get(SPEC) is not None

    def test_code_fingerprint_participates_in_the_key(self, tmp_path):
        a = ResultCache(str(tmp_path), fingerprint="aaa")
        b = ResultCache(str(tmp_path), fingerprint="bbb")
        assert a.key(SPEC) != b.key(SPEC)
        a.put(run_experiment(SPEC))
        assert b.get(SPEC) is None  # different code = cold cache
        assert a.get(SPEC) is not None


class TestCorruption:
    def _entry_path(self, cache):
        return cache.path(cache.key(SPEC))

    def test_truncated_json_detected_and_deleted(self, cache):
        cache.put(run_experiment(SPEC))
        path = self._entry_path(cache)
        with open(path, "w") as fh:
            fh.write('{"schema": "repro-cache/1", "payl')
        assert cache.get(SPEC) is None
        assert cache.stats.corrupt == 1
        assert not os.path.exists(path)

    def test_poisoned_payload_hash_detected(self, cache):
        cache.put(run_experiment(SPEC))
        path = self._entry_path(cache)
        with open(path) as fh:
            doc = json.load(fh)
        doc["payload"]["elapsed_ns"] = 1.0  # tamper without re-hashing
        with open(path, "w") as fh:
            json.dump(doc, fh)
        assert cache.get(SPEC) is None
        assert cache.stats.corrupt == 1

    def test_entry_for_wrong_spec_detected(self, cache):
        other = SPEC.replace(rounds=9)
        cache.put(run_experiment(other))
        # Copy the other spec's (valid) entry onto this spec's address.
        src = cache.path(cache.key(other))
        dst = self._entry_path(cache)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        with open(src) as fh:
            doc = fh.read()
        with open(dst, "w") as fh:
            fh.write(doc)
        assert cache.get(SPEC) is None
        assert cache.stats.corrupt == 1


class TestAtomicWrite:
    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "sub" / "doc.json")
        atomic_write_json(path, {"a": 1})
        assert json.load(open(path)) == {"a": 1}
        assert os.listdir(os.path.dirname(path)) == ["doc.json"]

    def test_overwrite_replaces_whole_document(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"a": 1, "big": "x" * 4096})
        atomic_write_json(path, {"b": 2})
        assert json.load(open(path)) == {"b": 2}


class TestFingerprint:
    def test_stable_within_a_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_tracks_source_content(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        before = code_fingerprint(str(pkg))
        (pkg / "a.py").write_text("x = 2\n")
        # memoized per directory: same process sees the cached value
        assert code_fingerprint(str(pkg)) == before
        from repro.runner import cache as cache_mod

        cache_mod._fingerprint_cache.pop(str(pkg))
        assert code_fingerprint(str(pkg)) != before

    def test_environment_overrides_default_dir(self, monkeypatch, tmp_path):
        from repro.runner.cache import default_cache_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == str(tmp_path / "alt")
