"""Unit tests for the HTIS model (§IV.B.1, Fig. 9)."""

import pytest

from repro.asic.htis import HTIS_PAIRS_PER_NS


def _load_buffer(sim, machine, origin, name, packets):
    """Deliver `packets` position packets from `origin` to node (0,0,0)'s HTIS."""
    src = machine.node(origin).slice(0)

    def sender():
        for _ in range(packets):
            yield from src.send_write(
                (0, 0, 0), "htis", counter_id=name, payload_bytes=32
            )

    return sim.process(sender())


def test_buffer_definition_and_counting(sim, machine222):
    htis = machine222.node((0, 0, 0)).htis
    buf = htis.define_buffer("pos-a", (1, 0, 0), expected_packets=3)
    _load_buffer(sim, machine222, (1, 0, 0), "pos-a", 3)
    sim.run()
    assert buf.received == 3
    assert buf.complete


def test_duplicate_buffer_rejected(sim, machine222):
    htis = machine222.node((0, 0, 0)).htis
    htis.define_buffer("b", (1, 0, 0), 1)
    with pytest.raises(ValueError):
        htis.define_buffer("b", (1, 0, 0), 1)


def test_processing_order_respects_software_order(sim, machine222):
    htis = machine222.node((0, 0, 0)).htis
    for i, origin in enumerate([(1, 0, 0), (0, 1, 0), (0, 0, 1)]):
        htis.define_buffer(f"b{i}", origin, expected_packets=1)
    for i, origin in enumerate([(1, 0, 0), (0, 1, 0), (0, 0, 1)]):
        _load_buffer(sim, machine222, origin, f"b{i}", 1)
    realised = {}

    def controller():
        order = yield from htis.process_buffers(
            ["b2", "b0", "b1"], work_ns=lambda b: 10.0
        )
        realised["order"] = order

    sim.process(controller())
    sim.run()
    assert realised["order"] == ["b2", "b0", "b1"]


def test_priority_buffer_jumps_queue_when_complete(sim, machine222):
    """The high-priority queue processes a buffer as soon as all of its
    packets have arrived, ahead of the software order."""
    htis = machine222.node((0, 0, 0)).htis
    htis.define_buffer("slow", (1, 0, 0), expected_packets=1)
    htis.define_buffer("fast-pri", (0, 1, 0), expected_packets=1, priority=True)

    src_slow = machine222.node((1, 0, 0)).slice(0)
    src_pri = machine222.node((0, 1, 0)).slice(0)

    def slow_sender():
        yield sim.timeout(5_000.0)
        yield from src_slow.send_write((0, 0, 0), "htis", counter_id="slow",
                                       payload_bytes=32)

    def pri_sender():
        yield from src_pri.send_write((0, 0, 0), "htis", counter_id="fast-pri",
                                      payload_bytes=32)

    realised = {}

    def controller():
        order = yield from htis.process_buffers(
            ["slow", "fast-pri"], work_ns=lambda b: 10.0
        )
        realised["order"] = order

    sim.process(slow_sender())
    sim.process(pri_sender())
    sim.process(controller())
    sim.run()
    assert realised["order"] == ["fast-pri", "slow"]


def test_order_must_cover_all_buffers(sim, machine222):
    htis = machine222.node((0, 0, 0)).htis
    htis.define_buffer("a", (1, 0, 0), 1)

    def controller():
        yield from htis.process_buffers([], work_ns=lambda b: 1.0)

    sim.process(controller())
    with pytest.raises(RuntimeError):
        sim.run()


def test_pipeline_throughput(sim, machine222):
    htis = machine222.node((0, 0, 0)).htis
    assert htis.pairs_duration_ns(25_600) == pytest.approx(25_600 / HTIS_PAIRS_PER_NS)
    with pytest.raises(ValueError):
        htis.pairs_duration_ns(-1)


def test_reset_buffers_for_next_step(sim, machine222):
    htis = machine222.node((0, 0, 0)).htis
    buf = htis.define_buffer("a", (1, 0, 0), 1)
    _load_buffer(sim, machine222, (1, 0, 0), "a", 1)
    sim.run()
    assert buf.complete
    htis.reset_buffers()
    assert not buf.complete
    assert htis.counter("a").count == 0


def test_force_return_stream(sim, machine222):
    """Fig. 9: computed forces return to an accumulation memory."""
    htis = machine222.node((0, 0, 0)).htis
    accum = machine222.node((1, 0, 0)).accum[0]

    def run():
        yield from htis.send_accum_results(
            (1, 0, 0), "accum0", packets=5, counter_id="f", payload_bytes=240
        )

    sim.process(run())
    sim.run()
    assert accum.counter("f").count == 5
    assert accum.accum_packets == 5
