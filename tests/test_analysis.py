"""Unit tests for the measurement harnesses."""

import pytest

from repro.analysis import (
    anton_transfer_ns,
    bandwidth_efficiency,
    breakdown_162ns,
    latency_vs_hops,
    ping_pong_ns,
    render_series,
    render_table,
)
from repro.analysis.latency import _destination_for_hops
from repro.analysis.transfer import (
    half_bandwidth_payload,
    infiniband_transfer_ns,
    transfer_split_series,
)


def test_ping_pong_one_hop_is_162():
    assert ping_pong_ns((4, 4, 4), (1, 0, 0)) == pytest.approx(162.0)


def test_bidirectional_at_least_unidirectional():
    uni = ping_pong_ns((4, 4, 4), (1, 0, 0), bidirectional=False)
    bi = ping_pong_ns((4, 4, 4), (1, 0, 0), bidirectional=True)
    assert bi >= uni


def test_destination_path_matches_fig5():
    """Hops 1–4 along X, 5–8 add Y, 9–12 add Z."""
    assert _destination_for_hops((8, 8, 8), 3) == (3, 0, 0)
    assert _destination_for_hops((8, 8, 8), 6) == (4, 2, 0)
    assert _destination_for_hops((8, 8, 8), 12) == (4, 4, 4)
    with pytest.raises(ValueError):
        _destination_for_hops((8, 8, 8), 13)


def test_latency_vs_hops_monotone():
    pts = latency_vs_hops(shape=(4, 4, 4), rounds=2)
    lat = [p.uni_0b for p in pts]
    assert lat == sorted(lat)
    for p in pts:
        if p.hops > 0:  # intra-node writes never touch a torus link
            assert p.uni_256b > p.uni_0b


def test_breakdown_sums_to_headline():
    assert sum(v for _, v in breakdown_162ns()) == pytest.approx(162.0)


def test_anton_transfer_insensitive_to_message_count():
    """Fig. 7: Anton's 2 KB transfer grows modestly with message count."""
    t1 = anton_transfer_ns(2048, 1)
    t64 = anton_transfer_ns(2048, 64)
    assert t64 / t1 < 4.5  # paper shows ~3.5x at 64 messages
    assert t64 > t1


def test_infiniband_transfer_blows_up_with_message_count():
    t1 = infiniband_transfer_ns(2048, 1)
    t64 = infiniband_transfer_ns(2048, 64)
    assert t64 / t1 > 5.0


def test_transfer_series_cross_machine_gap():
    series = transfer_split_series(message_counts=(1, 16))
    for p in series:
        assert p.infiniband_ns > 4 * p.anton_4hop_ns > 4 * 0  # Anton wins
        assert p.anton_4hop_ns > p.anton_1hop_ns


def test_bandwidth_efficiency_50pct_near_28_bytes():
    """§III.D: ~28-byte messages reach 50% of max data bandwidth."""
    p50 = half_bandwidth_payload()
    assert 24 <= p50 <= 32
    assert bandwidth_efficiency(256) == pytest.approx(1.0)
    assert bandwidth_efficiency(p50) >= 0.5 > bandwidth_efficiency(p50 - 4)


def test_bandwidth_efficiency_validation():
    with pytest.raises(ValueError):
        bandwidth_efficiency(0)


def test_render_table():
    text = render_table("T", ["a", "b"], [[1, 2.5], [3, 4.0]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "2.50" in text


def test_render_series():
    text = render_series("S", "x", [1, 2], {"curve": [10.0, 20.0]})
    assert "curve" in text and "20.0" in text


def test_reduction_harness_small():
    from repro.analysis import measure_allreduce

    p = measure_allreduce((2, 2, 2))
    assert p.nodes == 8
    assert 0 < p.reduce0_us < p.reduce32_us


def test_butterfly_vs_dimension_ordered_small():
    from repro.analysis import butterfly_vs_dimension_ordered

    t_do, t_bf = butterfly_vs_dimension_ordered((4, 4, 4))
    assert t_do < t_bf


def test_cli_breakdown(capsys):
    from repro.__main__ import main

    assert main(["breakdown"]) == 0
    out = capsys.readouterr().out
    assert "162" in out


def test_cli_allreduce(capsys):
    from repro.__main__ import main

    assert main(["allreduce", "2x2x2"]) == 0
    assert "8 (2x2x2)" in capsys.readouterr().out


def test_cli_bad_shape():
    import pytest as _pytest

    from repro.__main__ import main

    with _pytest.raises(SystemExit):
        main(["allreduce", "not-a-shape"])
