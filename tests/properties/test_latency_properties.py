"""Property-based tests for the end-to-end latency model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asic import build_machine
from repro.constants import (
    DST_RING_NS,
    HOP_NS,
    LINK_COST_NS,
    POLL_SUCCESS_NS,
    SLICE_SEND_NS,
    SRC_RING_NS,
    ZERO_HOP_NS,
)
from repro.engine import Simulator
from tests.conftest import run_exchange

SHAPE = (4, 4, 4)


def one_way(dst, payload=0):
    sim = Simulator()
    m = build_machine(sim, *SHAPE)
    src = m.node((0, 0, 0)).slice(0)
    rcv = m.node(dst).slice(1 if dst == (0, 0, 0) else 0)
    return run_exchange(sim, src, rcv, payload_bytes=payload), m


coords = st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3))


@given(coords)
@settings(max_examples=25, deadline=None)
def test_latency_is_exactly_additive_in_hops(dst):
    """An uncontended write's latency equals the closed-form sum of the
    calibrated segments, for *every* destination."""
    t, m = one_way(dst)
    hops = {
        d: abs(v)
        for d, v in zip("xyz", m.torus.hop_vector((0, 0, 0), dst))
    }
    total_hops = sum(hops.values())
    if total_hops == 0:
        expected = ZERO_HOP_NS
    else:
        # Endpoint overheads + the first link (no transit-ring cost)
        # + full marginal cost for every remaining hop, per dimension
        # (dimension-ordered routing: the first hop is in the first
        # dimension with a nonzero displacement).
        first = next(d for d in "xyz" if hops[d])
        expected = SLICE_SEND_NS + SRC_RING_NS + DST_RING_NS + POLL_SUCCESS_NS
        expected += LINK_COST_NS[first]
        for d in "xyz":
            marginal = hops[d] - (1 if d == first else 0)
            expected += marginal * HOP_NS[d]
    assert t == expected


@given(coords, st.integers(0, 256))
@settings(max_examples=25, deadline=None)
def test_payload_latency_monotone_and_bounded(dst, payload):
    """Bigger payloads never arrive sooner, and the payload penalty is
    bounded by its serialization time."""
    t0, _ = one_way(dst, 0)
    tp, _ = one_way(dst, payload)
    assert tp >= t0
    from repro.constants import HEADER_BYTES, TORUS_LINK_EFFECTIVE_GBPS

    max_penalty = (payload + HEADER_BYTES) * 8.0 / TORUS_LINK_EFFECTIVE_GBPS
    assert tp - t0 <= max_penalty + 1e-9
