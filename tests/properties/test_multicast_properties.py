"""Property-based tests for multicast tree compilation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.multicast import compile_pattern
from repro.topology import Torus3D

shapes = st.sampled_from([(2, 2, 2), (4, 4, 4), (8, 8, 8), (4, 2, 8), (8, 1, 1)])
clients = st.sampled_from(["slice0", "slice1", "htis", "accum0"])


@st.composite
def pattern_cases(draw):
    shape = draw(shapes)
    t = Torus3D(*shape)
    src = draw(st.integers(0, t.num_nodes - 1))
    n_dest = draw(st.integers(1, min(12, t.num_nodes)))
    dest_ranks = draw(
        st.lists(
            st.integers(0, t.num_nodes - 1),
            min_size=n_dest, max_size=n_dest, unique=True,
        )
    )
    dests = {t.coord(r): [draw(clients)] for r in dest_ranks}
    return t, t.coord(src), dests


@given(pattern_cases())
@settings(max_examples=150, deadline=None)
def test_pattern_reaches_all_destinations_exactly(case):
    t, src, dests = case
    p = compile_pattern(t, src, dests)
    expected = {(n, c) for n, cl in dests.items() for c in cl}
    assert p.reached_clients() == expected


@given(pattern_cases())
@settings(max_examples=150, deadline=None)
def test_tree_is_acyclic_single_inbound(case):
    t, src, dests = case
    p = compile_pattern(t, src, dests)
    inbound = {}
    for node, entry in p.entries.items():
        for dim, sign in entry.forward:
            nxt = t.neighbor(node, dim, sign)
            assert nxt not in inbound
            inbound[nxt] = node
    assert src not in inbound
    # Every forwarded-to node must be reachable from the source.
    seen = {src}
    frontier = [src]
    while frontier:
        cur = frontier.pop()
        for dim, sign in p.entries[cur].forward:
            nxt = t.neighbor(cur, dim, sign)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    assert set(p.entries) == seen


@given(pattern_cases())
@settings(max_examples=150, deadline=None)
def test_traversals_bounded_by_unicast_cost(case):
    """A multicast tree never uses more link crossings than the sum of
    unicast routes, and at least the hops to the farthest destination."""
    t, src, dests = case
    p = compile_pattern(t, src, dests)
    unicast = sum(t.hops(src, n) for n in dests)
    farthest = max(t.hops(src, n) for n in dests)
    assert farthest <= p.total_link_traversals <= unicast or unicast == 0
