"""Property-based test: the health monitor is a passive observer.

A monitored run and a bare run of the same experiment must agree on
*every* simulated observable — final clock, packet books, events
executed, delivered payloads — for any shape, interval, and payload.
The monitor hook lives outside the event queue (it never consumes a
scheduling sequence number), so this holds exactly, not just
statistically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asic import build_machine
from repro.comm.collectives import AllReduce
from repro.engine import Simulator
from repro.monitor.health import HealthMonitor, use_monitoring
from tests.conftest import run_exchange


def _fingerprint(sim, machine):
    net = machine.network
    return (
        sim.now,
        sim.events_executed,
        net.packets_injected,
        net.packets_delivered,
        net.packets_completed,
        net.link_traversals,
    )


coords = st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2))


@given(coords, st.integers(0, 128), st.floats(1.0, 500.0))
@settings(max_examples=20, deadline=None)
def test_monitored_exchange_bit_identical(dst, payload, interval_ns):
    """One-way exchange: monitoring changes nothing observable."""
    results = []
    for monitored in (False, True):
        sim = Simulator()
        machine = build_machine(sim, 3, 3, 3)
        monitor = (HealthMonitor(sim, machine, interval_ns=interval_ns)
                   if monitored else None)
        src = machine.node((0, 0, 0)).slice(0)
        rcv = machine.node(dst).slice(1 if dst == (0, 0, 0) else 0)
        elapsed = run_exchange(sim, src, rcv, payload_bytes=payload)
        if monitor is not None:
            assert monitor.finalize().healthy
        results.append((elapsed, _fingerprint(sim, machine)))
    assert results[0] == results[1]


@given(st.sampled_from([(2, 2, 2), (3, 2, 2), (4, 2, 2)]),
       st.integers(0, 256))
@settings(max_examples=10, deadline=None)
def test_monitored_allreduce_bit_identical(shape, payload_bytes):
    """A full collective — thousands of events — stays bit-identical,
    including through the ambient use_monitoring() entry point."""
    results = []
    for monitored in (False, True):
        sim = Simulator()
        if monitored:
            with use_monitoring(interval_ns=50.0) as session:
                machine = build_machine(sim, *shape)
        else:
            session = None
            machine = build_machine(sim, *shape)
        report = AllReduce(machine, payload_bytes=payload_bytes).run()
        if session is not None:
            for v in session.finalize():
                assert v.healthy
        results.append((report.elapsed_ns, _fingerprint(sim, machine)))
    assert results[0] == results[1]
