"""Property tests for the observatory's non-interference guarantee.

The ledger is observability only: enabling it may create the JSONL
sidecar file, but every result artifact a run produces — bench JSON,
sweep ``results.json``, per-point checkpoints — must be *byte-identical*
to the same run with the ledger disabled.  A measurement layer that
perturbs measurements is worse than none.
"""

import os

from repro.__main__ import main
from repro.observatory.ledger import Ledger
from repro.runner.sweep import expand_grid, run_sweep

GRID = expand_grid(
    "latency",
    {"shape": [(2, 2, 2), (3, 3, 3)], "hops": [0, 1]},
)


def _read(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


class TestSweepByteIdentity:
    def test_results_identical_with_and_without_ledger(self, tmp_path):
        bare = str(tmp_path / "bare")
        logged = str(tmp_path / "logged")
        ledger = Ledger(str(tmp_path / "led.jsonl"))
        a = run_sweep(GRID, jobs=1, out_dir=bare)
        b = run_sweep(GRID, jobs=1, out_dir=logged, ledger=ledger)
        assert a.ok and b.ok
        assert b.ledger_record is not None  # the ledger did get written
        assert _read(os.path.join(bare, "results.json")) == \
            _read(os.path.join(logged, "results.json"))

    def test_per_point_checkpoints_identical_too(self, tmp_path):
        bare = str(tmp_path / "bare")
        logged = str(tmp_path / "logged")
        run_sweep(GRID, jobs=1, out_dir=bare)
        run_sweep(GRID, jobs=1, out_dir=logged,
                  ledger=Ledger(str(tmp_path / "led.jsonl")))
        names = sorted(os.listdir(os.path.join(bare, "points")))
        assert names == sorted(os.listdir(os.path.join(logged, "points")))
        for name in names:
            assert _read(os.path.join(bare, "points", name)) == \
                _read(os.path.join(logged, "points", name))

    def test_cli_sweep_identical_across_ledger_modes(self, tmp_path, capsys):
        off = str(tmp_path / "off")
        on = str(tmp_path / "on")
        rc_off = main([
            "sweep", "latency", "--shape", "2x2x2",
            "--grid", "hops=0,1", "--no-cache", "--out", off,
            "--no-ledger",
        ])
        rc_on = main([
            "sweep", "latency", "--shape", "2x2x2",
            "--grid", "hops=0,1", "--no-cache", "--out", on,
            "--ledger", str(tmp_path / "led.jsonl"),
        ])
        capsys.readouterr()
        assert rc_off == rc_on == 0
        assert _read(os.path.join(off, "results.json")) == \
            _read(os.path.join(on, "results.json"))
        assert len(Ledger(str(tmp_path / "led.jsonl")).read()) == 1


class TestBenchByteIdentity:
    def test_cli_bench_out_identical_across_ledger_modes(
        self, tmp_path, capsys
    ):
        off = str(tmp_path / "off.json")
        on = str(tmp_path / "on.json")
        rc_off = main([
            "bench", "--shape", "2x2x2", "--only", "latency",
            "--out", off, "--no-ledger",
        ])
        rc_on = main([
            "bench", "--shape", "2x2x2", "--only", "latency",
            "--out", on, "--ledger", str(tmp_path / "led.jsonl"),
        ])
        capsys.readouterr()
        assert rc_off == rc_on == 0
        assert _read(off) == _read(on)
        (record,) = Ledger(str(tmp_path / "led.jsonl")).read()
        assert record.kind == "bench"
        # The ledger mirrors exactly the rows the artifact holds.
        from repro.bench.results import ResultSet

        assert sorted(r.key for r in record.bench_results()) == \
            sorted(ResultSet.read(on).keys())
