"""Property tests for fault injection's zero-perturbation guarantee.

The contract (mirroring ``test_sweep_equivalence.py``'s style): merely
*having* the fault subsystem — imported, or even installed with an
empty :class:`~repro.faults.plan.FaultPlan` — must leave every
observable byte of a run unchanged.  Simulated times compare with
``==``, persisted sweeps and exported traces compare as raw bytes, and
monitor verdicts compare as rendered text.  Only a plan that actually
contains a fault may change anything.
"""

import os

from repro.asic import build_machine
from repro.engine import Simulator
from repro.faults.plan import FaultPlan
from repro.faults.session import FaultSession, use_fault_plan, use_faults
from repro.runner.sweep import expand_grid, run_sweep
from tests.conftest import run_exchange

GRID = expand_grid(
    "latency",
    {"shape": [(2, 2, 2), (3, 3, 3)], "hops": [0, 1]},
)


def _read(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def _one_way(dst=(1, 1, 0), payload_bytes=256, session=None):
    sim = Simulator()
    if session is not None:
        with use_faults(session):
            m = build_machine(sim, 4, 4, 4)
    else:
        m = build_machine(sim, 4, 4, 4)
    src = m.node((0, 0, 0)).slice(0)
    rcv = m.node(dst).slice(0)
    return run_exchange(sim, src, rcv, payload_bytes=payload_bytes)


class TestEmptyPlanIsInert:
    def test_latency_identical_to_the_bit(self):
        bare = _one_way()
        empty = _one_way(session=FaultSession(FaultPlan()))
        assert bare == empty  # exact float equality, not approx

    def test_network_normalizes_a_disabled_session_away(self):
        sim = Simulator()
        with use_fault_plan(FaultPlan()):
            m = build_machine(sim, 2, 2, 2)
        assert m.network.faults is None  # hot path never consults it

    def test_enabled_plan_is_attached_and_does_perturb(self):
        from repro.faults.plan import BitError

        plan = FaultPlan(bit_errors=(
            BitError(links="*", corrupt_attempts=1),))
        assert _one_way(session=FaultSession(plan)) > _one_way()

    def test_sweep_results_byte_identical(self, tmp_path):
        bare_dir = str(tmp_path / "bare")
        empty_dir = str(tmp_path / "empty")
        a = run_sweep(GRID, out_dir=bare_dir)
        with use_fault_plan(FaultPlan()):
            b = run_sweep(GRID, out_dir=empty_dir)
        assert a.ok and b.ok
        assert _read(os.path.join(bare_dir, "results.json")) == \
            _read(os.path.join(empty_dir, "results.json"))
        for name in sorted(os.listdir(os.path.join(bare_dir, "points"))):
            assert _read(os.path.join(bare_dir, "points", name)) == \
                _read(os.path.join(empty_dir, "points", name))


class TestExportedTracesUnperturbed:
    def _trace_bytes(self, tmp_path, tag, session):
        from repro.trace.export import write_chrome_trace, write_jsonl
        from repro.trace.flight import FlightRecorder, use_flight

        sim = Simulator()
        fl = FlightRecorder()
        if session is not None:
            with use_flight(fl), use_faults(session):
                m = build_machine(sim, 2, 2, 2)
        else:
            with use_flight(fl):
                m = build_machine(sim, 2, 2, 2)
        run_exchange(sim, m.node((0, 0, 0)).slice(0),
                     m.node((1, 1, 0)).slice(0), payload_bytes=256)
        jsonl = str(tmp_path / f"{tag}.jsonl")
        chrome = str(tmp_path / f"{tag}.json")
        write_jsonl(jsonl, fl)
        write_chrome_trace(chrome, fl)
        return _read(jsonl), _read(chrome)

    def test_jsonl_and_chrome_bytes_identical(self, tmp_path):
        bare = self._trace_bytes(tmp_path, "bare", None)
        empty = self._trace_bytes(
            tmp_path, "empty", FaultSession(FaultPlan()))
        assert bare == empty


class TestMonitorVerdictUnperturbed:
    def _verdict_text(self, session):
        from repro.monitor.health import use_monitoring

        sim = Simulator()
        if session is not None:
            with use_monitoring() as mon, use_faults(session):
                m = build_machine(sim, 2, 2, 2)
        else:
            with use_monitoring() as mon:
                m = build_machine(sim, 2, 2, 2)
        run_exchange(sim, m.node((0, 0, 0)).slice(0),
                     m.node((1, 1, 0)).slice(0))
        [verdict] = mon.finalize()
        return verdict.render_text()

    def test_verdicts_render_identically(self):
        assert self._verdict_text(None) == \
            self._verdict_text(FaultSession(FaultPlan()))
