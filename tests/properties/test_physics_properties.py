"""Property-based tests for the MD physics kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.bonded import bond_energy_forces
from repro.md.forcefield import ForceField
from repro.md.longrange import LongRangeSolver, _bspline_weights
from repro.md.rangelimited import range_limited_forces
from repro.md.system import tiny_system


@given(st.integers(8, 40), st.integers(0, 1000),
       st.floats(2.0, 6.0), st.floats(0.0, 0.5))
@settings(max_examples=40, deadline=None)
def test_range_limited_invariants(atoms, seed, cutoff, alpha):
    s = tiny_system(atoms, seed=seed, box_edge=14.0)
    ff = ForceField(cutoff=cutoff, ewald_alpha=alpha)
    res = range_limited_forces(s, ff)
    # Newton's third law: forces sum to zero.
    assert np.abs(res.forces.sum(axis=0)).max() < 1e-8 * max(
        1.0, np.abs(res.forces).max()
    )
    assert res.pair_count >= 0
    assert np.isfinite(res.energy)
    assert np.isfinite(res.forces).all()


@given(st.integers(8, 40), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_bonded_invariants(atoms, seed):
    s = tiny_system(atoms, seed=seed)
    e, f = bond_energy_forces(s)
    assert e >= 0.0  # harmonic energy is non-negative
    assert np.abs(f.sum(axis=0)).max() < 1e-9 * max(1.0, np.abs(f).max())


@given(st.floats(0.0, 1.0, exclude_max=True),
       st.sampled_from([2, 4, 6]))
@settings(max_examples=200, deadline=None)
def test_bspline_partition_of_unity(t, order):
    w, dw = _bspline_weights(np.array([t]), order)
    np.testing.assert_allclose(w.sum(), 1.0, atol=1e-12)
    np.testing.assert_allclose(dw.sum(), 0.0, atol=1e-12)
    assert (w >= -1e-12).all()


@given(st.integers(6, 30), st.integers(0, 500), st.sampled_from([8, 12, 16]))
@settings(max_examples=25, deadline=None)
def test_grid_charge_conservation(atoms, seed, grid):
    s = tiny_system(atoms, seed=seed, box_edge=12.0)
    solver = LongRangeSolver(grid_points=grid, spread_width=4)
    g, _pts, _w = solver.spread_charges(s)
    np.testing.assert_allclose(g.sum(), s.charges.sum(), atol=1e-12)


@given(st.integers(6, 24), st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_reciprocal_energy_nonnegative(atoms, seed):
    s = tiny_system(atoms, seed=seed, box_edge=12.0)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.4)
    res = LongRangeSolver(grid_points=12).solve(s, ff)
    assert res.energy >= -1e-9


@given(st.integers(0, 300))
@settings(max_examples=15, deadline=None)
def test_translation_invariance_of_forces(seed):
    """Rigidly translating the whole system leaves range-limited and
    bonded forces unchanged (periodic boundary conditions)."""
    s = tiny_system(20, seed=seed, box_edge=12.0)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.3)
    f0 = range_limited_forces(s, ff).forces + bond_energy_forces(s)[1]
    shifted = s.copy()
    shifted.positions += np.array([3.7, -2.1, 8.9])
    shifted.wrap()
    f1 = range_limited_forces(shifted, ff).forces + bond_energy_forces(shifted)[1]
    np.testing.assert_allclose(f0, f1, atol=1e-8)
