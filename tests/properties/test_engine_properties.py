"""Property-based tests for the simulation engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Resource, Simulator


@given(st.lists(st.tuples(st.floats(0.0, 1000.0), st.integers(0, 99)),
                min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_events_execute_in_time_then_insertion_order(entries):
    sim = Simulator()
    seen = []
    for delay, tag in entries:
        sim.schedule(delay, seen.append, (delay, tag))
    sim.run()
    # Sorted by time; ties keep insertion order (stable sort mirrors
    # the simulator's sequence-number tie-break).
    expected = sorted(entries, key=lambda x: x[0])
    assert seen == expected


@given(st.integers(1, 5),
       st.lists(st.floats(1.0, 50.0), min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_resource_conservation_and_fcfs(capacity, durations):
    """No over-subscription, and completions in FCFS batches."""
    sim = Simulator()
    r = Resource(sim, capacity=capacity)
    max_seen = []
    done = []

    def worker(i, dur):
        yield from r.use(dur)
        done.append(i)

    def monitor():
        while True:
            max_seen.append(r.in_use)
            yield sim.timeout(0.5)

    procs = [sim.process(worker(i, d)) for i, d in enumerate(durations)]
    mon = sim.process(monitor())
    sim.run(until=sim.all_of(procs))
    assert max(max_seen) <= capacity
    assert sorted(done) == list(range(len(durations)))
    if capacity == 1:
        # Strict FCFS with one server: completion order = arrival order.
        assert done == list(range(len(durations)))


@given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_clock_never_goes_backwards(delays):
    sim = Simulator()
    stamps = []

    def proc():
        for d in delays:
            yield sim.timeout(d)
            stamps.append(sim.now)

    sim.process(proc())
    sim.run()
    assert stamps == sorted(stamps)
    assert sim.now == sum(delays)
