"""Property-based test: the engine profiler is a passive observer.

The profiler wraps event execution with wall-clock accounting but
reads no simulated state, schedules nothing, and consumes no
scheduling sequence numbers — so a profiled run and a bare run of the
same experiment must agree on *every* simulated observable, exactly.
The same holds one level up: ``run_experiment(Captures(profile=True))`` and the
sweep telemetry must leave serialized result/checkpoint bytes
untouched (they live entirely outside the byte-stable payload).
"""

import json
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asic import build_machine
from repro.bench.results import canonical_json
from repro.comm.collectives import AllReduce
from repro.engine import Simulator
from repro.profile import EngineProfiler, use_profiling
from repro.runner.result import Captures, run_experiment
from repro.runner.spec import ExperimentSpec, ensure_registered
from repro.runner.sweep import run_sweep
from tests.conftest import run_exchange

ensure_registered()


def _fingerprint(sim, machine):
    net = machine.network
    return (
        sim.now,
        sim.events_executed,
        net.packets_injected,
        net.packets_delivered,
        net.packets_completed,
        net.link_traversals,
    )


coords = st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2))


@given(coords, st.integers(0, 128))
@settings(max_examples=20, deadline=None)
def test_profiled_exchange_bit_identical(dst, payload):
    """One-way exchange: profiling changes nothing observable."""
    results = []
    for profiled in (False, True):
        sim = Simulator()
        profiler = EngineProfiler().attach(sim) if profiled else None
        machine = build_machine(sim, 3, 3, 3)
        src = machine.node((0, 0, 0)).slice(0)
        rcv = machine.node(dst).slice(1 if dst == (0, 0, 0) else 0)
        elapsed = run_exchange(sim, src, rcv, payload_bytes=payload)
        if profiler is not None:
            assert profiler.events_total == sim.events_executed
        results.append((elapsed, _fingerprint(sim, machine)))
    assert results[0] == results[1]


@given(st.sampled_from([(2, 2, 2), (3, 2, 2), (4, 2, 2)]),
       st.integers(0, 256))
@settings(max_examples=10, deadline=None)
def test_profiled_allreduce_bit_identical(shape, payload_bytes):
    """A full collective stays bit-identical, including through the
    ambient ``use_profiling()`` entry point (construction hooks)."""
    results = []
    for profiled in (False, True):
        if profiled:
            with use_profiling() as profiler:
                sim = Simulator()
                machine = build_machine(sim, *shape)
                report = AllReduce(machine, payload_bytes=payload_bytes).run()
            assert profiler.events_total == sim.events_executed
        else:
            sim = Simulator()
            machine = build_machine(sim, *shape)
            report = AllReduce(machine, payload_bytes=payload_bytes).run()
        results.append((report.elapsed_ns, _fingerprint(sim, machine)))
    assert results[0] == results[1]


@given(st.integers(1, 3), st.integers(0, 128), st.integers(0, 5))
@settings(max_examples=10, deadline=None)
def test_run_result_bytes_identical_with_profile(hops, payload, seed):
    """The serializable core of a RunResult — what caches, checkpoints,
    and result sets persist — is byte-for-byte the same whether or not
    the run was profiled."""
    spec = ExperimentSpec(
        "latency", shape=(3, 3, 3), rounds=1,
        hops=hops, payload=payload, seed=seed,
    )
    bare = run_experiment(spec)
    profiled = run_experiment(spec, Captures(profile=True))
    assert profiled.profile is not None
    assert canonical_json(bare.to_dict()) == canonical_json(
        profiled.to_dict()
    )


def _checkpoint_bytes(out_dir):
    """Every persisted sweep artifact except the live status file."""
    out = {}
    for root, _, files in os.walk(out_dir):
        for fname in sorted(files):
            if fname == "status.json":
                continue
            path = os.path.join(root, fname)
            with open(path, "rb") as fh:
                out[os.path.relpath(path, out_dir)] = fh.read()
    return out


def test_sweep_checkpoint_bytes_identical_with_telemetry(tmp_path):
    """Telemetry is parent-side wall-clock bookkeeping only: every
    persisted sweep artifact (manifest, per-point checkpoints, result
    set, summary minus wall-clock) is byte-identical with it on or
    off.  Only the live ``status.json`` is telemetry's own."""
    from repro.profile.telemetry import SweepTelemetry

    specs = [
        ExperimentSpec("latency", shape=(3, 3, 3), rounds=1,
                       hops=1, payload=32 * i)
        for i in range(3)
    ]
    dirs = []
    for telemetry_on in (False, True):
        out_dir = str(tmp_path / ("with" if telemetry_on else "without"))
        tel = (
            SweepTelemetry(total=len(specs), out_dir=out_dir)
            if telemetry_on else None
        )
        report = run_sweep(specs, jobs=1, out_dir=out_dir, telemetry=tel)
        assert report.ok
        dirs.append(out_dir)

    bare, telemetered = (_checkpoint_bytes(d) for d in dirs)
    assert set(bare) == set(telemetered)
    for rel in bare:
        if rel == "summary.json":
            # wall_s is wall-clock and may differ; everything else
            # in the summary must not.
            a, b = (json.loads(doc[rel]) for doc in (bare, telemetered))
            a.pop("wall_s"), b.pop("wall_s")
            assert a == b
        else:
            assert bare[rel] == telemetered[rel], f"{rel} differs"
    assert not os.path.exists(os.path.join(dirs[0], "status.json"))
    assert os.path.exists(os.path.join(dirs[1], "status.json"))
