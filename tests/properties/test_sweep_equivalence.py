"""Property tests for the sweep runner's two core guarantees.

1. **Serial/parallel equivalence** — a sweep executed across a process
   pool persists *byte-identical* ``repro-bench/1`` JSON to the same
   sweep executed serially in-process.  Parallelism may only change
   wall-clock time, never results.
2. **Cache integrity** — a poisoned cache entry (payload tampered
   without re-hashing) is detected on read, counted as corruption, and
   recomputed; the recomputed value matches a cold run exactly.
"""

import json
import os

from repro.__main__ import main
from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentSpec
from repro.runner.sweep import expand_grid, run_sweep

GRID = expand_grid(
    "latency",
    {"shape": [(2, 2, 2), (3, 3, 3)], "hops": [0, 1]},
)


def _read(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


class TestSerialParallelEquivalence:
    def test_results_json_is_byte_identical(self, tmp_path):
        serial = str(tmp_path / "serial")
        parallel = str(tmp_path / "parallel")
        a = run_sweep(GRID, jobs=1, out_dir=serial)
        b = run_sweep(GRID, jobs=4, out_dir=parallel)
        assert a.ok and b.ok
        assert _read(os.path.join(serial, "results.json")) == \
            _read(os.path.join(parallel, "results.json"))

    def test_per_point_checkpoints_match_too(self, tmp_path):
        serial = str(tmp_path / "serial")
        parallel = str(tmp_path / "parallel")
        run_sweep(GRID, jobs=1, out_dir=serial)
        run_sweep(GRID, jobs=4, out_dir=parallel)
        for name in sorted(os.listdir(os.path.join(serial, "points"))):
            assert _read(os.path.join(serial, "points", name)) == \
                _read(os.path.join(parallel, "points", name))

    def test_cli_sweep_matches_across_jobs(self, tmp_path, capsys):
        out1 = str(tmp_path / "j1")
        out4 = str(tmp_path / "j4")
        rc1 = main([
            "sweep", "latency", "--shape", "2x2x2",
            "--grid", "hops=0,1,2", "--jobs", "1", "--no-cache",
            "--out", out1,
        ])
        rc4 = main([
            "sweep", "latency", "--shape", "2x2x2",
            "--grid", "hops=0,1,2", "--jobs", "4", "--no-cache",
            "--out", out4,
        ])
        capsys.readouterr()
        assert rc1 == rc4 == 0
        assert _read(os.path.join(out1, "results.json")) == \
            _read(os.path.join(out4, "results.json"))

    def test_cached_rerun_preserves_the_bytes(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cold = str(tmp_path / "cold")
        warm = str(tmp_path / "warm")
        first = run_sweep(GRID, jobs=2, cache=cache, out_dir=cold)
        second = run_sweep(GRID, jobs=2, cache=cache, out_dir=warm)
        assert first.computed == len(GRID)
        assert second.cache_hits == len(GRID)
        assert _read(os.path.join(cold, "results.json")) == \
            _read(os.path.join(warm, "results.json"))


class TestCachePoisoning:
    def test_poisoned_entry_detected_and_recomputed(self, tmp_path):
        spec = ExperimentSpec("latency", shape=(2, 2, 2), hops=1)
        cache = ResultCache(str(tmp_path))
        truth = run_sweep([spec], cache=cache).points[0].result

        path = cache.path(cache.key(spec))
        doc = json.load(open(path))
        doc["payload"]["elapsed_ns"] = 13.0  # poison without re-hashing
        with open(path, "w") as fh:
            json.dump(doc, fh)

        report = run_sweep([spec], cache=cache)
        point = report.points[0]
        assert point.status == "computed"  # not served from cache
        assert point.result.elapsed_ns == truth.elapsed_ns
        assert cache.stats.corrupt == 1
        # The verdict reports the corruption without failing the sweep.
        verdict = report.verdict()
        assert verdict.healthy
        assert "corrupt" in verdict.render_text()
        # The recompute overwrote the poisoned entry with a valid one.
        assert cache.get(spec) is not None

    def test_flipped_payload_byte_detected(self, tmp_path):
        spec = ExperimentSpec("transfer", shape=(2, 2, 2))
        cache = ResultCache(str(tmp_path))
        run_sweep([spec], cache=cache)
        path = cache.path(cache.key(spec))
        raw = bytearray(_read(path))
        idx = raw.rindex(b"}")  # corrupt near the tail
        raw[idx] = ord("!")
        with open(path, "wb") as fh:
            fh.write(bytes(raw))
        report = run_sweep([spec], cache=cache)
        assert report.points[0].status == "computed"
        assert cache.stats.corrupt == 1
