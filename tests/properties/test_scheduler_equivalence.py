"""Property tests for cross-scheduler byte-identity.

The contract behind ``Simulator(scheduler=...)``: the bucketed time
wheel is an *optimization*, never a semantic change.  Every observable
byte of a run — serialized :class:`RunResult` documents, persisted
sweep checkpoints, exported flight traces, rendered health verdicts —
must be identical whether the heap or the time wheel dispatched the
events, including runs with faults injected and captures attached.
Mirrors ``test_fault_equivalence.py``: simulated times compare with
``==``, persisted artifacts compare as raw bytes.
"""

import json
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asic import build_machine
from repro.engine import Simulator, use_scheduler
from repro.runner.result import Captures, run_experiment
from repro.runner.spec import ExperimentSpec
from repro.runner.sweep import expand_grid, run_sweep
from tests.conftest import run_exchange

GRID = expand_grid(
    "latency",
    {"shape": [(2, 2, 2), (3, 3, 3)], "hops": [0, 1]},
)

SCHEDULERS = ("heap", "wheel")


def _read(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def _canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))


def _under_each(fn):
    """Evaluate ``fn`` under both schedulers; return the two outputs."""
    out = []
    for name in SCHEDULERS:
        with use_scheduler(name):
            out.append(fn())
    return out


class TestEngineOrderEquivalence:
    """The root property, straight on the engine: any mix of single
    and batched schedules dispatches in the exact same order."""

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 64.0), st.integers(0, 9)),
            min_size=1, max_size=50,
        ),
        st.integers(0, 7),
    )
    @settings(max_examples=100, deadline=None)
    def test_dispatch_order_identical(self, entries, batch_every):
        def run():
            sim = Simulator()
            seen = []
            for i, (delay, tag) in enumerate(entries):
                if batch_every and i % (batch_every + 1) == batch_every:
                    sim.schedule_batch(
                        delay,
                        [(seen.append, ((delay, tag, k),)) for k in range(3)],
                    )
                else:
                    sim.schedule(delay, seen.append, (delay, tag))
            sim.run()
            return seen, sim.now, sim.events_executed

        heap, wheel = _under_each(run)
        assert heap == wheel


class TestRunResultBytes:
    @given(
        hops=st.integers(0, 3),
        payload=st.sampled_from([0, 32, 256]),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=8, deadline=None)
    def test_latency_bytes_identical(self, hops, payload, seed):
        spec = ExperimentSpec(
            "latency", shape=(3, 3, 3), hops=hops, payload=payload, seed=seed
        )
        heap, wheel = _under_each(lambda: _canon(run_experiment(spec)))
        assert heap == wheel

    @given(algorithm=st.sampled_from(["dimension_ordered", "butterfly"]))
    @settings(max_examples=4, deadline=None)
    def test_allreduce_bytes_identical(self, algorithm):
        spec = ExperimentSpec(
            "allreduce", shape=(4, 4, 4), payload=32,
            extras=(("algorithm", algorithm),),
        )
        heap, wheel = _under_each(lambda: _canon(run_experiment(spec)))
        assert heap == wheel

    def test_incast_with_captures_bytes_identical(self):
        """The 26-to-1 incast with flight + congestion X-ray attached —
        captures on, exactly as the congest CLI runs it."""
        spec = ExperimentSpec(
            "congestion", shape=(3, 3, 3), payload=256, rounds=2,
            extras=(("senders", 26),),
        )
        caps = Captures(flight=True, congestion=True)
        heap, wheel = _under_each(lambda: _canon(run_experiment(spec, caps)))
        assert heap == wheel

    @given(ber=st.sampled_from([1e-6, 1e-4]))
    @settings(max_examples=4, deadline=None)
    def test_fault_plan_bytes_identical(self, ber):
        """Fault injection (the stochastic subsystem) under both
        schedulers: the derived-seed RNG must see the same event
        stream, so even corrupted runs serialize identically."""
        spec = ExperimentSpec(
            "fault_sensitivity", shape=(3, 3, 3), rounds=2,
            extras=(("ber", ber),),
        )
        heap, wheel = _under_each(lambda: _canon(run_experiment(spec)))
        assert heap == wheel


class TestSweepCheckpointBytes:
    def test_sweep_results_and_points_byte_identical(self, tmp_path):
        dirs = {name: str(tmp_path / name) for name in SCHEDULERS}
        reports = {}
        for name in SCHEDULERS:
            with use_scheduler(name):
                reports[name] = run_sweep(GRID, out_dir=dirs[name])
        assert all(r.ok for r in reports.values())
        heap_dir, wheel_dir = dirs["heap"], dirs["wheel"]
        assert _read(os.path.join(heap_dir, "results.json")) == \
            _read(os.path.join(wheel_dir, "results.json"))
        for fname in sorted(os.listdir(os.path.join(heap_dir, "points"))):
            assert _read(os.path.join(heap_dir, "points", fname)) == \
                _read(os.path.join(wheel_dir, "points", fname))


class TestExportedTraceBytes:
    def _trace_bytes(self, tmp_path, tag):
        from repro.trace.export import write_chrome_trace, write_jsonl
        from repro.trace.flight import FlightRecorder, use_flight

        sim = Simulator()
        fl = FlightRecorder()
        with use_flight(fl):
            m = build_machine(sim, 2, 2, 2)
        run_exchange(sim, m.node((0, 0, 0)).slice(0),
                     m.node((1, 1, 0)).slice(0), payload_bytes=256)
        jsonl = str(tmp_path / f"{tag}.jsonl")
        chrome = str(tmp_path / f"{tag}.json")
        write_jsonl(jsonl, fl)
        write_chrome_trace(chrome, fl)
        return _read(jsonl), _read(chrome)

    def test_jsonl_and_chrome_bytes_identical(self, tmp_path):
        heap, wheel = _under_each(
            lambda: self._trace_bytes(tmp_path, "run")
        )
        assert heap == wheel


class TestMonitorVerdicts:
    def _verdict_text(self):
        from repro.monitor.health import use_monitoring

        sim = Simulator()
        with use_monitoring() as mon:
            m = build_machine(sim, 2, 2, 2)
        run_exchange(sim, m.node((0, 0, 0)).slice(0),
                     m.node((1, 1, 0)).slice(0))
        [verdict] = mon.finalize()
        return verdict.render_text()

    def test_verdicts_render_identically(self):
        heap, wheel = _under_each(self._verdict_text)
        assert heap == wheel
