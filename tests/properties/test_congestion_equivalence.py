"""Property-based test: the congestion X-ray is a passive observer.

The congestion recorder samples queue depth and occupancy into ring
buffers but schedules nothing, consumes no scheduling sequence
numbers, and reads no state the transport did not already touch — so a
congestion-instrumented run and a bare run of the same experiment must
agree on *every* simulated observable, exactly.  One level up,
``run_experiment(Captures(congestion=True))`` must leave serialized result bytes
untouched.  And whenever instrumentation is on, the per-packet delay
decomposition must tile each delivery's end-to-end latency exactly —
segment sums equal the flight recorder's measured latency with an
explicit UNATTRIBUTED residual, not approximately.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asic import build_machine
from repro.bench.results import canonical_json
from repro.comm.collectives import AllReduce
from repro.congestion.decompose import DelayBucket, decompose_run
from repro.congestion.recorder import use_congestion
from repro.engine import Simulator
from repro.runner.result import Captures, run_experiment
from repro.runner.spec import ExperimentSpec, ensure_registered
from repro.topology.torus import Torus3D
from tests.conftest import run_exchange

ensure_registered()


def _fingerprint(sim, machine):
    net = machine.network
    return (
        sim.now,
        sim.events_executed,
        net.packets_injected,
        net.packets_delivered,
        net.packets_completed,
        net.link_traversals,
    )


coords = st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2))


@given(coords, st.integers(0, 128))
@settings(max_examples=20, deadline=None)
def test_instrumented_exchange_bit_identical(dst, payload):
    """One-way exchange: congestion recording changes nothing
    observable."""
    results = []
    for instrumented in (False, True):
        if instrumented:
            with use_congestion() as recorder:
                sim = Simulator()
                machine = build_machine(sim, 3, 3, 3)
                src = machine.node((0, 0, 0)).slice(0)
                rcv = machine.node(dst).slice(1 if dst == (0, 0, 0) else 0)
                elapsed = run_exchange(sim, src, rcv, payload_bytes=payload)
            assert recorder.enabled
        else:
            sim = Simulator()
            machine = build_machine(sim, 3, 3, 3)
            src = machine.node((0, 0, 0)).slice(0)
            rcv = machine.node(dst).slice(1 if dst == (0, 0, 0) else 0)
            elapsed = run_exchange(sim, src, rcv, payload_bytes=payload)
        results.append((elapsed, _fingerprint(sim, machine)))
    assert results[0] == results[1]


@given(st.sampled_from([(2, 2, 2), (3, 2, 2), (4, 2, 2)]),
       st.integers(0, 256))
@settings(max_examples=10, deadline=None)
def test_instrumented_allreduce_bit_identical(shape, payload_bytes):
    """A full collective stays bit-identical through the ambient
    ``use_congestion()`` entry point (the network picks the recorder
    up at construction)."""
    results = []
    for instrumented in (False, True):
        if instrumented:
            with use_congestion() as recorder:
                sim = Simulator()
                machine = build_machine(sim, *shape)
                report = AllReduce(machine, payload_bytes=payload_bytes).run()
            # The reduce phase funnels writes, so something queued.
            assert recorder.grants or not recorder.wait_ns
        else:
            sim = Simulator()
            machine = build_machine(sim, *shape)
            report = AllReduce(machine, payload_bytes=payload_bytes).run()
        results.append((report.elapsed_ns, _fingerprint(sim, machine)))
    assert results[0] == results[1]


@given(st.integers(1, 3), st.integers(0, 128), st.integers(0, 5))
@settings(max_examples=10, deadline=None)
def test_run_result_bytes_identical_with_congestion(hops, payload, seed):
    """The serializable core of a RunResult — what caches, checkpoints,
    and result sets persist — is byte-for-byte the same whether or not
    the congestion X-ray rode along."""
    spec = ExperimentSpec(
        "latency", shape=(3, 3, 3), rounds=1,
        hops=hops, payload=payload, seed=seed,
    )
    bare = run_experiment(spec)
    instrumented = run_experiment(spec, Captures(congestion=True))
    assert instrumented.congestion is not None
    assert instrumented.congestion.grants, "recorder saw no traffic"
    assert canonical_json(bare.to_dict()) == canonical_json(
        instrumented.to_dict()
    )


@given(
    st.sampled_from([(2, 2, 2), (3, 3, 3), (4, 2, 2)]),
    st.integers(0, 256),
    st.integers(2, 8),
)
@settings(max_examples=15, deadline=None)
def test_decomposition_tiles_every_packet_exactly(shape, payload, fan_in):
    """For every delivered packet of a fan-in workload, the delay
    decomposition's segments sum exactly (1e-6 ns tolerance) to the
    flight recorder's measured end-to-end latency — residue lands in
    the explicit UNATTRIBUTED bucket, never silently."""
    spec = ExperimentSpec(
        "congestion", shape=shape, rounds=1, payload=payload, seed=0,
    ).with_extras(senders=fan_in)
    result = run_experiment(spec, Captures(flight=True, congestion=True))
    flight = result.flight
    decomps = decompose_run(flight, Torus3D(*shape))
    assert decomps, "incast delivered no packets"
    for d in decomps:
        d.check(tol_ns=1e-6)  # raises on any tiling violation
        measured = flight.flights[d.packet_id].latency_ns
        assert abs(sum(d.totals.values()) - measured) <= 1e-6
        # Every bucket is non-negative except the explicit residual.
        for bucket, ns in d.totals.items():
            if bucket is not DelayBucket.UNATTRIBUTED:
                assert ns >= -1e-9, (bucket, ns)
