"""Property-based tests for the torus topology."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Torus3D

shapes = st.tuples(
    st.integers(1, 9), st.integers(1, 9), st.integers(1, 9)
)


def coords_for(shape):
    return st.tuples(
        st.integers(0, shape[0] - 1),
        st.integers(0, shape[1] - 1),
        st.integers(0, shape[2] - 1),
    )


@given(shapes, st.data())
@settings(max_examples=120, deadline=None)
def test_hops_is_a_metric(shape, data):
    t = Torus3D(*shape)
    a = t.coord(data.draw(coords_for(shape)))
    b = t.coord(data.draw(coords_for(shape)))
    c = t.coord(data.draw(coords_for(shape)))
    # Identity, symmetry, triangle inequality.
    assert t.hops(a, a) == 0
    assert t.hops(a, b) == t.hops(b, a)
    assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)
    assert t.hops(a, b) <= t.max_hops()


@given(shapes, st.data())
@settings(max_examples=120, deadline=None)
def test_route_walks_exactly_to_destination(shape, data):
    t = Torus3D(*shape)
    a = t.coord(data.draw(coords_for(shape)))
    b = t.coord(data.draw(coords_for(shape)))
    path = t.path_nodes(a, b)
    assert path[0] == a and path[-1] == b
    assert len(path) - 1 == t.hops(a, b)
    # Every step is a face neighbour (or identical on degenerate axes).
    for u, v in zip(path, path[1:]):
        assert v in t.face_neighbors(u) or u == v


@given(shapes, st.data())
@settings(max_examples=100, deadline=None)
def test_rank_bijection(shape, data):
    t = Torus3D(*shape)
    c = t.coord(data.draw(coords_for(shape)))
    assert t.coord(t.rank(c)) == c


@given(shapes, st.data())
@settings(max_examples=100, deadline=None)
def test_hop_vector_components_bounded(shape, data):
    t = Torus3D(*shape)
    a = t.coord(data.draw(coords_for(shape)))
    b = t.coord(data.draw(coords_for(shape)))
    hv = t.hop_vector(a, b)
    for d, n in zip(hv, shape):
        assert abs(d) <= n // 2


@given(shapes, st.data())
@settings(max_examples=60, deadline=None)
def test_moore_neighborhood_symmetric(shape, data):
    t = Torus3D(*shape)
    a = t.coord(data.draw(coords_for(shape)))
    for b in t.moore_neighbors(a):
        assert a in t.moore_neighbors(b)
