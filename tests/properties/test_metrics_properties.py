"""Property-based tests for the metrics registry."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.metrics import Counter, Histogram

finite = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite, min_size=1, max_size=200))
@settings(max_examples=150, deadline=None)
def test_percentiles_bounded_and_ordered(values):
    h = Histogram("h")
    for v in values:
        h.observe(v)
    assert h.min == min(values)
    assert h.max == max(values)
    assert h.min <= h.p50 <= h.p90 <= h.p99 <= h.max
    assert h.percentile(0) == h.min
    assert h.percentile(100) == h.max


@given(st.lists(finite, min_size=1, max_size=200),
       st.floats(0.0, 100.0, allow_nan=False))
@settings(max_examples=150, deadline=None)
def test_percentile_is_an_observed_value(values, p):
    """Nearest-rank percentiles never interpolate: the answer is
    always one of the observations."""
    h = Histogram("h")
    for v in values:
        h.observe(v)
    assert h.percentile(p) in values


@given(st.lists(finite, min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_percentile_monotone_in_p(values):
    h = Histogram("h")
    for v in values:
        h.observe(v)
    results = [h.percentile(p) for p in range(0, 101, 5)]
    assert results == sorted(results)


@given(st.lists(finite, min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_count_sum_mean_consistent(values):
    h = Histogram("h")
    for v in values:
        h.observe(v)
    assert h.count == len(values)
    assert math.isclose(h.sum, math.fsum(values), rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(h.mean, math.fsum(values) / len(values),
                        rel_tol=1e-9, abs_tol=1e-6)


@given(st.lists(st.one_of(st.integers(0, 10**6),
                          st.floats(0.0, 1e9, allow_nan=False)),
                max_size=100))
@settings(max_examples=100, deadline=None)
def test_counter_is_monotone_under_any_increments(increments):
    c = Counter("c")
    last = c.value
    for amount in increments:
        c.inc(amount)
        assert c.value >= last
        last = c.value
    assert math.isclose(c.value, math.fsum(increments), rel_tol=1e-9,
                        abs_tol=1e-6)
