"""Property-based tests for synchronization counters and the FIFO."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asic import MessageFifo, SyncCounter
from repro.engine import Simulator
from repro.network.packet import FifoPacket
from repro.topology import NodeCoord


@given(st.lists(st.integers(1, 10), min_size=1, max_size=30), st.data())
@settings(max_examples=120, deadline=None)
def test_counter_thresholds_fire_iff_reached(increments, data):
    sim = Simulator()
    c = SyncCounter(sim)
    total = sum(increments)
    targets = data.draw(
        st.lists(st.integers(0, total + 5), min_size=1, max_size=8, unique=True)
    )
    events = {t: c.wait_for(t) for t in targets}
    for inc in increments:
        c.increment(inc)
    for t, ev in events.items():
        assert ev.triggered == (t <= total)
    assert c.count == total


@given(st.lists(st.integers(1, 5), min_size=1, max_size=20))
@settings(max_examples=80, deadline=None)
def test_counter_firing_order_is_threshold_order(increments):
    sim = Simulator()
    c = SyncCounter(sim)
    fired = []
    total = sum(increments)
    for t in range(1, total + 1):
        c.wait_for(t).add_callback(lambda e, t=t: fired.append(t))
    for inc in increments:
        c.increment(inc)
    sim.run()
    assert fired == sorted(fired) == list(range(1, total + 1))


@given(st.integers(1, 16), st.lists(st.integers(0, 1000), max_size=40))
@settings(max_examples=100, deadline=None)
def test_fifo_never_loses_or_reorders(capacity, payloads):
    """Whatever the capacity and arrival pattern, draining the FIFO
    yields every message in arrival order (backpressure parks
    overflow, §III.C)."""
    sim = Simulator()
    f = MessageFifo(sim, capacity=capacity)
    a, b = NodeCoord(0, 0, 0), NodeCoord(1, 0, 0)
    for p in payloads:
        f.push(FifoPacket(src_node=a, src_client="slice0", dst_node=b,
                          dst_client="slice0", payload=p, payload_bytes=8))
    out = []
    while (pkt := f.try_poll()) is not None:
        out.append(pkt.payload)
    assert out == payloads
    assert f.total_received == len(payloads)
    assert f.total_consumed == len(payloads)
