"""Unit tests for the Desmond/cluster MD timing model (Table 3)."""

import pytest

from repro.baselines.desmond import DesmondModel, DesmondWorkload
from repro.constants import PAPER_TABLE3_US


@pytest.fixture(scope="module")
def table3():
    return DesmondModel().table3()


def test_workload_geometry():
    w = DesmondWorkload()
    assert w.node_grid == 8
    assert w.atoms_per_node == pytest.approx(46.0, rel=0.01)
    # Midpoint import ≈ several hundred atoms per node.
    assert 500 < w.import_atoms < 1200
    # ~20k range-limited pairs per node per step at this scaling.
    assert 15_000 < w.pairs_per_node < 25_000
    assert w.grid_points_per_node == 64


def test_non_cubic_node_count_rejected():
    with pytest.raises(ValueError):
        DesmondWorkload(num_nodes=100).node_grid


@pytest.mark.parametrize("row", list(PAPER_TABLE3_US))
def test_rows_within_30_percent_of_paper(table3, row):
    """Every Desmond row of Table 3 must land within 30% of the paper,
    for both communication and total time."""
    paper_comm, paper_total = PAPER_TABLE3_US[row]["desmond"]
    t = table3[row]
    assert t.communication_us == pytest.approx(paper_comm, rel=0.30)
    assert t.total_us == pytest.approx(paper_total, rel=0.30)


def test_average_is_mix_of_step_kinds(table3):
    rl, lr, avg = (
        table3["range_limited"], table3["long_range"], table3["average"]
    )
    assert avg.total_ns == pytest.approx((rl.total_ns + lr.total_ns) / 2)


def test_fft_dominates_long_range_comm(table3):
    """The FFT convolution is the most expensive communication step on
    the cluster, as in the paper."""
    assert table3["fft_convolution"].communication_ns > 0.4 * (
        table3["long_range"].communication_ns
    )


def test_comm_fraction_is_cluster_like(table3):
    """Desmond at 512 nodes is deep in the strong-scaling regime:
    communication is roughly half the step (262/565 in the paper)."""
    avg = table3["average"]
    assert 0.30 < avg.communication_ns / avg.total_ns < 0.60


def test_compute_time_positive(table3):
    for t in table3.values():
        assert t.compute_ns > 0
