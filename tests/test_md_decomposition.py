"""Unit tests for the spatial decomposition."""

import numpy as np
import pytest

from repro.md.decomposition import Decomposition
from repro.md.forcefield import ForceField
from repro.md.system import synthetic_dhfr, tiny_system
from repro.topology import NodeCoord, Torus3D


def _decomp(atoms=64, shape=(2, 2, 2), slack=0.0, threshold=0.0, box=16.0):
    s = tiny_system(atoms, box_edge=box)
    return s, Decomposition(
        s, Torus3D(*shape), import_radius=2.0, slack=slack,
        import_volume_threshold=threshold,
    )


def test_every_atom_has_exactly_one_home():
    s, d = _decomp()
    total = sum(len(d.atoms_of(c)) for c in d.torus.nodes())
    assert total == s.num_atoms
    assert d.atom_counts().sum() == s.num_atoms


def test_home_matches_position():
    s, d = _decomp()
    for i in range(s.num_atoms):
        home = d.node_of_atom(i)
        w = d.box_widths
        lo = np.array([home.x, home.y, home.z]) * w
        hi = lo + w
        assert np.all(s.positions[i] >= lo) and np.all(s.positions[i] < hi)


def test_import_set_includes_self_and_is_symmetric():
    s, d = _decomp(shape=(4, 4, 4), box=32.0)
    for c in d.torus.nodes():
        imports = d.import_nodes(c)
        assert c in imports
        for m in imports:
            assert c in d.import_nodes(m)


def test_import_threshold_clips_corners():
    """The clipped import region drops corner-sliver boxes — the knob
    that reproduces the paper's 'as many as 17 HTIS units'."""
    dhfr = synthetic_dhfr()  # full size: the box/cutoff geometry matters
    torus = Torus3D(8, 8, 8)
    full = Decomposition(dhfr, torus, import_radius=6.5)
    clipped = Decomposition(
        dhfr, torus, import_radius=6.5, import_volume_threshold=0.4
    )
    assert len(full.import_nodes((0, 0, 0))) == 27
    assert len(clipped.import_nodes((0, 0, 0))) == 19


def test_no_migration_when_atoms_stay_put():
    _s, d = _decomp(slack=0.5)
    assert d.migration_moves() == {}


def test_migration_detects_displaced_atom():
    s, d = _decomp(slack=0.0)
    atom = int(d.atoms_of((0, 0, 0))[0])
    s.positions[atom] += d.box_widths * 1.0  # into the (1,1,1) box
    s.wrap()
    moves = d.migration_moves()
    flat = [(src, dst, a) for src, recs in moves.items() for dst, a in recs]
    assert any(a == atom for _, _, a in flat)
    src, dst, _ = next(x for x in flat if x[2] == atom)
    assert src == NodeCoord(0, 0, 0)


def test_slack_defers_migration():
    s, d = _decomp(slack=2.0)
    atom = int(d.atoms_of((0, 0, 0))[0])
    # Nudge just over the box edge but inside the slack margin.
    s.positions[atom] = (d.box_widths * np.array([1.0, 0.5, 0.5])) + [0.5, 0, 0]
    moved = [a for _, recs in d.migration_moves().items() for _, a in recs]
    assert atom not in moved


def test_apply_moves_updates_home():
    s, d = _decomp(slack=0.0)
    atom = int(d.atoms_of((0, 0, 0))[0])
    s.positions[atom] += d.box_widths
    s.wrap()
    moves = d.migration_moves()
    n = d.apply_moves(moves)
    assert n >= 1
    assert d.node_of_atom(atom) == NodeCoord(1, 1, 1)
    assert d.migration_moves() == {}  # settled


def test_migration_respects_wraparound():
    s, d = _decomp(slack=0.0)
    atom = int(d.atoms_of((0, 0, 0))[0])
    s.positions[atom][0] = s.box_edge - 0.1  # wraps to the x-1 box
    moves = d.migration_moves()
    flat = [(dst, a) for recs in moves.values() for dst, a in recs]
    dst = next(dd for dd, a in flat if a == atom)
    assert dst.x == d.torus.nx - 1


def test_rehome_all():
    s, d = _decomp(slack=5.0)
    rng = np.random.default_rng(0)
    s.positions[:] = rng.uniform(0, s.box_edge, s.positions.shape)
    d.rehome_all()
    assert d.migration_moves() == {}


def test_validation():
    s = tiny_system(8)
    t = Torus3D(2, 2, 2)
    with pytest.raises(ValueError):
        Decomposition(s, t, import_radius=0.0)
    with pytest.raises(ValueError):
        Decomposition(s, t, import_radius=1.0, slack=-1.0)
    with pytest.raises(ValueError):
        Decomposition(s, t, import_radius=1.0, import_volume_threshold=1.0)
