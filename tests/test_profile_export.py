"""Profile exporters: speedscope schema, collapsed stacks, JSON, table."""

import io
import json

import pytest

from repro.profile import (
    EngineProfiler,
    render_table,
    to_collapsed,
    to_json,
    to_speedscope,
    write_profile,
)
from repro.profile.export import SPEEDSCOPE_SCHEMA


def _toy_profiler() -> EngineProfiler:
    p = EngineProfiler()
    net = p._named_cell("network", "_next_hop")
    md = p._named_cell("md", "_htis_phase")
    p.account(net, 100)
    with p.phase("step:range_limited"):
        p.account(net, 250)
        p.account(md, 400)
    p.account_loop(1000)  # 250 ns of scheduler overhead
    return p


def test_speedscope_document_shape():
    doc = to_speedscope(_toy_profiler(), name="toy")
    assert doc["$schema"] == SPEEDSCOPE_SCHEMA
    assert doc["name"] == "toy"
    prof = doc["profiles"][0]
    assert prof["type"] == "sampled"
    assert prof["unit"] == "nanoseconds"
    assert len(prof["samples"]) == len(prof["weights"])
    nframes = len(doc["shared"]["frames"])
    for stack in prof["samples"]:
        assert all(0 <= idx < nframes for idx in stack)


def test_speedscope_weights_tile_loop_wall():
    p = _toy_profiler()
    prof = to_speedscope(p)["profiles"][0]
    assert sum(prof["weights"]) == prof["endValue"] == p.loop_wall_ns


def test_speedscope_includes_scheduler_overhead_frame():
    doc = to_speedscope(_toy_profiler())
    names = [f["name"] for f in doc["shared"]["frames"]]
    assert "(scheduler)" in names


def test_collapsed_stacks_format():
    text = to_collapsed(_toy_profiler())
    lines = text.strip().split("\n")
    assert "step:range_limited;md;_htis_phase 400" in lines
    assert "step:range_limited;network;_next_hop 250" in lines
    # Idle-phase events collapse to component;label (no phase frame).
    assert "network;_next_hop 100" in lines
    assert "engine;(scheduler) 250" in lines
    total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
    assert total == 1000


def test_json_export_carries_both_profiles():
    doc = to_json(_toy_profiler())
    assert doc["schema"] == "repro-profile/1"
    assert doc["counts"]["events_total"] == 3
    assert doc["wall"]["loop_wall_ns"] == 1000
    assert doc["wall"]["scheduler_overhead_ns"] == 250


def test_render_table_mentions_components_and_phases():
    text = render_table(_toy_profiler())
    assert "network" in text
    assert "md" in text
    assert "step:range_limited" in text
    assert "events/s" in text


@pytest.mark.parametrize("fmt", ["speedscope", "collapsed", "json"])
def test_write_profile_round_trips(fmt):
    buf = io.StringIO()
    write_profile(_toy_profiler(), buf, fmt=fmt)
    text = buf.getvalue()
    assert text.endswith("\n")
    if fmt != "collapsed":
        json.loads(text)  # valid JSON documents


def test_write_profile_rejects_unknown_format():
    with pytest.raises(ValueError, match="unknown profile format"):
        write_profile(_toy_profiler(), io.StringIO(), fmt="pprof")


def test_empty_profiler_exports_cleanly():
    p = EngineProfiler()
    assert to_collapsed(p) == ""
    prof = to_speedscope(p)["profiles"][0]
    assert prof["samples"] == [] and prof["endValue"] == 0
    assert to_json(p)["counts"]["events_total"] == 0
