"""Unit tests for link accounting and network statistics."""

import pytest

from repro.asic import build_machine
from repro.engine import Simulator
from tests.conftest import run_exchange


def test_link_traffic_accounting(sim, machine222):
    src = machine222.node((0, 0, 0)).slice(0)
    dst = machine222.node((1, 0, 0)).slice(0)
    run_exchange(sim, src, dst, payload_bytes=256)
    link = machine222.network.link((0, 0, 0), "x", 1)
    assert link.packets_carried == 1
    assert link.bytes_carried == 288  # header + payload
    assert machine222.network.link_traversals == 1


def test_multi_hop_traverses_each_link_once(sim):
    m = build_machine(sim, 4, 1, 1)
    src = m.node((0, 0, 0)).slice(0)
    dst = m.node((2, 0, 0)).slice(0)
    run_exchange(sim, src, dst)
    assert m.network.link((0, 0, 0), "x", 1).packets_carried == 1
    assert m.network.link((1, 0, 0), "x", 1).packets_carried == 1
    assert m.network.link((2, 0, 0), "x", 1).packets_carried == 0
    assert m.network.packets_injected == 1
    assert m.network.packets_delivered == 1


def test_links_iterates_created_links(sim, machine222):
    src = machine222.node((0, 0, 0)).slice(0)
    dst = machine222.node((0, 1, 0)).slice(0)
    run_exchange(sim, src, dst)
    links = list(machine222.network.links())
    assert len(links) == 1
    assert links[0].link_id.dim == "y"


def test_link_utilization_positive_after_traffic(sim, machine222):
    src = machine222.node((0, 0, 0)).slice(0)
    dst = machine222.node((1, 0, 0)).slice(0)
    run_exchange(sim, src, dst, payload_bytes=256)
    link = machine222.network.link((0, 0, 0), "x", 1)
    assert 0 < link.utilization() <= 1.0


def test_multicast_counts_each_tree_edge(sim):
    m = build_machine(sim, 8, 1, 1)
    from repro.network.multicast import compile_pattern

    src = m.node((0, 0, 0)).slice(0)
    dests = {(k, 0, 0): ["slice0"] for k in (1, 2, 3)}
    pid = m.network.register_pattern(compile_pattern(m.torus, (0, 0, 0), dests))
    for k in (1, 2, 3):
        m.node((k, 0, 0)).slice(0).memory.allocate("mc", 1)

    def sender():
        yield from src.send_write((0, 0, 0), "slice0", counter_id="mc",
                                  address=("mc", 0), payload_bytes=0,
                                  pattern_id=pid)

    sim.run(until=sim.process(sender()))
    sim.run()
    # 3 chained destinations = 3 link traversals, not 1+2+3=6.
    assert m.network.link_traversals == 3
    assert m.network.packets_injected == 1
    assert m.network.packets_delivered == 3
