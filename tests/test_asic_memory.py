"""Unit tests for pre-allocated local memories."""

import pytest

from repro.asic.memory import LocalMemory


def test_allocate_and_write_read():
    mem = LocalMemory("test")
    mem.allocate("buf", 4)
    mem.write(("buf", 2), "hello")
    assert mem.read(("buf", 2)) == "hello"
    assert mem.read(("buf", 0)) is None


def test_double_allocation_rejected():
    """Fixed patterns require fixed addresses (§IV.A): re-allocating an
    existing buffer is an error."""
    mem = LocalMemory()
    mem.allocate("buf", 1)
    with pytest.raises(ValueError, match="already allocated"):
        mem.allocate("buf", 2)


def test_write_to_unallocated_buffer_rejected():
    mem = LocalMemory("slice0")
    with pytest.raises(KeyError, match="pre-allocated"):
        mem.write(("ghost", 0), 1)


def test_out_of_bounds_write_rejected():
    mem = LocalMemory()
    mem.allocate("buf", 2)
    with pytest.raises(IndexError):
        mem.write(("buf", 2), 1)
    with pytest.raises(IndexError):
        mem.write(("buf", -1), 1)


def test_zero_slot_buffer_rejected():
    mem = LocalMemory()
    with pytest.raises(ValueError):
        mem.allocate("empty", 0)


def test_filled_skips_unwritten_slots():
    mem = LocalMemory()
    buf = mem.allocate("buf", 5)
    buf.write(1, "a")
    buf.write(3, "b")
    assert buf.filled() == ["a", "b"]
    assert buf.writes == 2


def test_clear_resets_slots_for_reuse():
    mem = LocalMemory()
    buf = mem.allocate("buf", 2)
    buf.write(0, 1)
    buf.clear()
    assert buf.filled() == []
    assert buf.writes == 1  # statistics stay cumulative


def test_contains_and_has_buffer():
    mem = LocalMemory()
    mem.allocate("x", 1)
    assert "x" in mem
    assert mem.has_buffer("x")
    assert "y" not in mem
