"""Differential profiling: alignment, exact tiling, rendering, CLI."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.observatory.diff import (
    RESIDUAL_LABEL,
    diff_profiles,
    render_diff,
)
from repro.profile.export import (
    load_wall_profile,
    to_speedscope,
    wall_profile_from_speedscope,
    write_profile,
)
from repro.profile.profiler import IDLE_PHASE_LABEL


def _wall(cells: dict, loop_wall_ns=None) -> dict:
    """A repro-profile-wall/1 dict from {(phase,comp,label): (ev, ns)}.

    Without an explicit ``loop_wall_ns`` the cells tile the loop
    exactly, like a native EngineProfiler capture.
    """
    phases: dict = {}
    total = 0
    for (phase, comp, label), (events, wall_ns) in cells.items():
        node = phases.setdefault(phase, {}).setdefault(comp, {})
        node[label] = {"events": events, "wall_ns": wall_ns}
        total += wall_ns
    return {
        "schema": "repro-profile-wall/1",
        "loop_wall_ns": total if loop_wall_ns is None else loop_wall_ns,
        "event_wall_ns": total,
        "scheduler_overhead_ns": 0,
        "events_total": sum(ev for ev, _ in cells.values()),
        "events_per_second": 0.0,
        "component_totals_ns": {},
        "phases": phases,
    }


class TestAlignment:
    def test_union_of_keys_nothing_dropped(self):
        base = _wall({
            ("round 0", "router", "hop"): (10, 1000),
            ("round 0", "router", "inject"): (5, 500),
        })
        cur = _wall({
            ("round 0", "router", "hop"): (12, 1500),
            ("round 0", "counter", "fire"): (3, 300),
        })
        diff = diff_profiles(base, cur)
        keys = {r.key for r in diff.rows}
        # One-sided rows survive as pure growth / pure disappearance.
        assert ("round 0", "router", "inject") in keys
        assert ("round 0", "counter", "fire") in keys
        by_key = {r.key: r for r in diff.rows}
        gone = by_key[("round 0", "router", "inject")]
        assert gone.delta_wall_ns == -500
        assert gone.cur_events == 0
        new = by_key[("round 0", "counter", "fire")]
        assert new.delta_wall_ns == 300
        assert new.base_events == 0

    def test_native_captures_have_zero_residual(self):
        from repro.profile.capture import run_profiled

        a = run_profiled("selftest", shape=(2, 2, 2), rounds=1)
        b = run_profiled("selftest", shape=(2, 2, 2), rounds=2)
        diff = diff_profiles(a.profile.wall_profile(),
                             b.profile.wall_profile())
        assert diff.residual_ns == 0
        assert diff.tiles_exactly()

    def test_sorted_rows_by_magnitude(self):
        base = _wall({("p", "a", "x"): (1, 100), ("p", "a", "y"): (1, 100)})
        cur = _wall({("p", "a", "x"): (1, 5000), ("p", "a", "y"): (1, 90)})
        rows = diff_profiles(base, cur).sorted_rows()
        assert [r.label for r in rows] == ["x", "y"]

    def test_to_doc_is_json_clean(self):
        base = _wall({("p", "a", "x"): (1, 100)})
        cur = _wall({("p", "a", "x"): (2, 250)})
        doc = diff_profiles(base, cur, "then", "now").to_doc()
        assert doc["schema"] == "repro-profile-diff/1"
        assert doc["base"] == "then"
        assert doc["delta_loop_wall_ns"] == 150
        json.dumps(doc)  # must serialize


# Cells drawn from tiny alphabets so the two sides overlap, disjoin,
# and collide in every combination hypothesis can reach.
_CELLS = st.dictionaries(
    keys=st.tuples(
        st.sampled_from(["(run)", "round 0", "round 1"]),
        st.sampled_from(["router", "counter", "engine"]),
        st.sampled_from(["hop", "inject", "fire", "poll"]),
    ),
    values=st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=10**9),
    ),
    max_size=12,
)
_LOOP = st.integers(min_value=0, max_value=10**10)


class TestTilingProperty:
    @settings(max_examples=100, deadline=None)
    @given(base=_CELLS, cur=_CELLS, base_loop=_LOOP, cur_loop=_LOOP)
    def test_rows_plus_residual_tile_total_delta(
        self, base, cur, base_loop, cur_loop
    ):
        """Acceptance: for ANY pair of captures — including lossy ones
        whose cells do not tile their own loop time — the delta rows
        plus the explicit residual equal the total wall delta."""
        diff = diff_profiles(
            _wall(base, loop_wall_ns=base_loop),
            _wall(cur, loop_wall_ns=cur_loop),
        )
        assert diff.tiles_exactly()
        assert (
            diff.attributed_delta_ns + diff.residual_ns
            == cur_loop - base_loop
        )
        # Per-row deltas are exactly the per-cell differences.
        for row in diff.rows:
            b = base.get(row.key, (0, 0))
            c = cur.get(row.key, (0, 0))
            assert row.delta_wall_ns == c[1] - b[1]
            assert row.delta_events == c[0] - b[0]
        # Row set is exactly the union of cell keys.
        assert {r.key for r in diff.rows} == set(base) | set(cur)

    @settings(max_examples=50, deadline=None)
    @given(base=_CELLS, cur=_CELLS)
    def test_native_shaped_captures_never_leave_residual(self, base, cur):
        diff = diff_profiles(_wall(base), _wall(cur))
        assert diff.residual_ns == 0


class TestSpeedscopeRoundtrip:
    def test_reconstruction_preserves_wall_cells(self):
        from repro.profile.capture import run_profiled

        result = run_profiled("selftest", shape=(2, 2, 2), rounds=1)
        native = result.profile.wall_profile()
        rebuilt = wall_profile_from_speedscope(
            to_speedscope(result.profile)
        )
        assert rebuilt["loop_wall_ns"] == native["loop_wall_ns"]
        # Diffing a capture against its own reconstruction: wall deltas
        # are zero everywhere (speedscope drops zero-weight cells and
        # event counts, never nanoseconds).
        diff = diff_profiles(native, rebuilt)
        assert diff.delta_loop_wall_ns == 0
        assert all(r.delta_wall_ns == 0 for r in diff.rows)
        assert diff.tiles_exactly()

    def test_two_frame_stacks_return_to_idle_phase(self):
        doc = {
            "shared": {"frames": [{"name": "engine"}, {"name": "tick"}]},
            "profiles": [{
                "type": "sampled", "unit": "nanoseconds",
                "startValue": 0, "endValue": 700,
                "samples": [[0, 1]], "weights": [700],
            }],
        }
        rebuilt = wall_profile_from_speedscope(doc)
        node = rebuilt["phases"][IDLE_PHASE_LABEL]["engine"]["tick"]
        assert node["wall_ns"] == 700
        assert rebuilt["loop_wall_ns"] == 700

    @pytest.mark.parametrize("fmt", ["speedscope", "json"])
    def test_load_wall_profile_all_formats(self, tmp_path, fmt):
        from repro.profile.capture import run_profiled

        result = run_profiled("selftest", shape=(2, 2, 2), rounds=1)
        path = tmp_path / f"prof.{fmt}"
        with open(path, "w") as fh:
            write_profile(result.profile, fh, fmt=fmt)
        wall = load_wall_profile(str(path))
        assert wall["schema"] == "repro-profile-wall/1"
        assert wall["loop_wall_ns"] == result.profile.loop_wall_ns

    def test_load_raw_wall_document(self, tmp_path):
        doc = _wall({("p", "a", "x"): (1, 100)})
        path = tmp_path / "wall.json"
        path.write_text(json.dumps(doc))
        assert load_wall_profile(str(path)) == doc

    def test_load_rejects_unknown_document(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ValueError, match="not a recognizable"):
            load_wall_profile(str(path))


class TestRender:
    def test_residual_row_is_displayed_never_dropped(self):
        base = _wall({("p", "a", "x"): (1, 100_000)}, loop_wall_ns=1_000_000)
        cur = _wall({("p", "a", "x"): (1, 200_000)}, loop_wall_ns=5_000_000)
        diff = diff_profiles(base, cur)
        assert diff.residual_ns == 3_900_000
        text = render_diff(diff)
        assert RESIDUAL_LABEL in text
        assert "+3.900" in text

    def test_overflow_rows_aggregate_into_other(self):
        cells = {("p", "a", f"ev{i}"): (1, 100 * (i + 1)) for i in range(20)}
        diff = diff_profiles(_wall({}), _wall(cells))
        text = render_diff(diff, top=5)
        assert "(other: 15 rows)" in text

    def test_header_names_both_sides(self):
        diff = diff_profiles(_wall({}), _wall({}), "abc123 (bench)",
                             "selftest (this run)")
        text = render_diff(diff)
        assert "abc123 (bench) -> selftest (this run)" in text


class TestCli:
    def _write_wall(self, path, cells, loop=None):
        path.write_text(json.dumps(_wall(cells, loop_wall_ns=loop)))
        return str(path)

    def test_obs_diff_json(self, tmp_path, capsys):
        a = self._write_wall(tmp_path / "a.json",
                             {("p", "router", "hop"): (10, 1000)})
        b = self._write_wall(tmp_path / "b.json",
                             {("p", "router", "hop"): (15, 1800)})
        rc = main(["obs", "diff", a, b, "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out)
        assert doc["schema"] == "repro-profile-diff/1"
        assert doc["delta_loop_wall_ns"] == 800

    def test_obs_diff_max_residual_gate(self, tmp_path, capsys):
        # Loop-wall delta the rows cannot explain → residual 3.9 ms;
        # the gate passes a loose budget and exits 1 on a tight one.
        a = self._write_wall(tmp_path / "a.json",
                             {("p", "a", "x"): (1, 100_000)},
                             loop=1_000_000)
        b = self._write_wall(tmp_path / "b.json",
                             {("p", "a", "x"): (1, 200_000)},
                             loop=5_000_000)
        assert main(["obs", "diff", a, b,
                     "--max-residual", "4000000"]) == 0
        capsys.readouterr()
        rc = main(["obs", "diff", a, b, "--max-residual", "1000"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "RESIDUAL GATE FAILED" in captured.err
        assert "3900000" in captured.err

    def test_obs_diff_text(self, tmp_path, capsys):
        a = self._write_wall(tmp_path / "a.json",
                             {("p", "router", "hop"): (10, 1000)})
        b = self._write_wall(tmp_path / "b.json",
                             {("p", "router", "hop"): (15, 1800)})
        rc = main(["obs", "diff", a, b])
        out = capsys.readouterr().out
        assert rc == 0
        assert "profile diff:" in out
        assert "router" in out

    def test_obs_diff_ledger_ids(self, tmp_path, capsys):
        ledger_path = str(tmp_path / "led.jsonl")
        assert main(["profile", "selftest", "--shape", "2x2x2",
                     "--ledger", ledger_path]) == 0
        assert main(["profile", "selftest", "--shape", "2x2x2",
                     "--ledger", ledger_path]) == 0
        from repro.observatory.ledger import Ledger

        ids = [r.id for r in Ledger(ledger_path).read()]
        assert len(ids) == 2
        capsys.readouterr()
        rc = main(["obs", "diff", ids[0], ids[1],
                   "--ledger", ledger_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "profile diff:" in out
        # Native captures on both sides: the footer reports no residual.
        assert "residual +0.000 ms" in out

    def test_obs_diff_unknown_id_fails_cleanly(self, tmp_path, capsys):
        ledger_path = str(tmp_path / "led.jsonl")
        rc = main(["obs", "diff", "deadbeef0000", "deadbeef0001",
                   "--ledger", ledger_path])
        err = capsys.readouterr().err
        assert rc == 2
        assert "deadbeef0000" in err

    def test_profile_diff_flag_end_to_end(self, tmp_path, capsys):
        ledger_path = str(tmp_path / "led.jsonl")
        assert main(["profile", "selftest", "--shape", "2x2x2",
                     "--ledger", ledger_path]) == 0
        out = capsys.readouterr().out
        # Satellite: the capture's ledger id is printed on completion.
        assert "ledger: appended record" in out
        from repro.observatory.ledger import Ledger

        (rec,) = Ledger(ledger_path).read()
        assert rec.id in out
        rc = main(["profile", "selftest", "--shape", "2x2x2",
                   "--ledger", ledger_path, "--diff", rec.id])
        out = capsys.readouterr().out
        assert rc == 0
        assert "profile diff:" in out
        assert "(this run)" in out
