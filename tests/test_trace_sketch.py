"""Unit tests for the streaming quantile sketch (trace/sketch.py) and
the histogram's bounded-memory fallback to it."""

import math
import random

import pytest

from repro.trace.metrics import Histogram, MetricsRegistry
from repro.trace.sketch import QuantileSketch


class TestQuantileSketch:
    def test_empty_percentile_raises(self):
        s = QuantileSketch("s")
        assert s.count == 0
        with pytest.raises(ValueError, match="no observations"):
            s.percentile(50)

    def test_negative_value_rejected(self):
        s = QuantileSketch("s")
        with pytest.raises(ValueError, match="negative"):
            s.observe(-1.0)

    def test_single_value(self):
        s = QuantileSketch("s")
        s.observe(162.0)
        assert s.count == 1
        assert s.p50 == pytest.approx(162.0, rel=0.01)
        assert s.min == 162.0
        assert s.max == 162.0

    def test_relative_accuracy_guarantee(self):
        """Every quantile estimate is within the configured relative
        error of the exact nearest-rank answer."""
        rng = random.Random(7)
        values = [rng.lognormvariate(5.0, 1.0) for _ in range(20_000)]
        s = QuantileSketch("s", relative_accuracy=0.01)
        for v in values:
            s.observe(v)
        exact = sorted(values)
        for p in (1, 10, 25, 50, 75, 90, 99, 99.9):
            rank = max(0, math.ceil(p / 100 * len(exact)) - 1)
            truth = exact[rank]
            assert s.percentile(p) == pytest.approx(truth, rel=0.02)

    def test_fig5_latency_distribution_within_2_percent(self):
        """Acceptance: sketch p50/p99 within 2% of the exact histogram
        on a Fig. 5-style end-to-end latency distribution (162 ns base
        plus per-hop and queueing components)."""
        rng = random.Random(162)
        h = Histogram("lat")
        s = QuantileSketch("lat")
        for _ in range(50_000):
            hops = rng.randint(0, 12)
            queueing = rng.expovariate(1 / 40.0)
            latency = 162.0 + 50.4 * hops + queueing
            h.observe(latency)
            s.observe(latency)
        assert s.p50 == pytest.approx(h.p50, rel=0.02)
        assert s.p99 == pytest.approx(h.p99, rel=0.02)
        # Bounded memory is the point: far fewer bins than samples.
        assert s.bins_used < 500

    def test_count_sum_mean_min_max_exact(self):
        values = [1.0, 10.0, 100.0, 1000.0]
        s = QuantileSketch("s")
        for v in values:
            s.observe(v)
        assert s.count == 4
        assert s.sum == pytest.approx(sum(values))
        assert s.mean == pytest.approx(sum(values) / 4)
        assert s.min == 1.0
        assert s.max == 1000.0

    def test_zero_and_tiny_values_bucketed(self):
        s = QuantileSketch("s", min_value=1e-9)
        s.observe(0.0)
        s.observe(0.0)
        s.observe(1e-12)
        assert s.count == 3
        assert s.percentile(50) == 0.0

    def test_merge(self):
        rng = random.Random(3)
        a = QuantileSketch("a")
        b = QuantileSketch("b")
        both = []
        for _ in range(5000):
            v = rng.uniform(1, 1e4)
            a.observe(v)
            both.append(v)
        for _ in range(5000):
            v = rng.uniform(1e3, 1e6)
            b.observe(v)
            both.append(v)
        a.merge(b)
        exact = sorted(both)
        assert a.count == len(both)
        for p in (50, 99):
            rank = max(0, math.ceil(p / 100 * len(exact)) - 1)
            assert a.percentile(p) == pytest.approx(exact[rank], rel=0.02)

    def test_merge_requires_same_accuracy(self):
        a = QuantileSketch("a", relative_accuracy=0.01)
        b = QuantileSketch("b", relative_accuracy=0.02)
        with pytest.raises(ValueError, match="accurac"):
            a.merge(b)

    def test_collapse_bounds_memory(self):
        """A pathological dynamic range cannot grow the sketch past
        max_bins; collapses are counted, and upper quantiles (far from
        the collapsed low bins) stay accurate."""
        s = QuantileSketch("s", max_bins=64)
        values = [math.exp(i / 10.0) for i in range(3000)]
        for v in values:
            s.observe(v)
        assert s.bins_used <= 64
        assert s.collapsed_bins > 0
        exact = sorted(values)
        rank = max(0, math.ceil(0.99 * len(exact)) - 1)
        assert s.percentile(99) == pytest.approx(exact[rank], rel=0.02)

    def test_snapshot(self):
        s = QuantileSketch("s")
        for v in (10.0, 20.0, 30.0):
            s.observe(v)
        snap = s.snapshot()
        assert snap["type"] == "sketch"
        assert snap["count"] == 3
        assert snap["bins_used"] == s.bins_used
        assert snap["relative_accuracy"] == 0.01

    def test_deterministic(self):
        """Same observations, same estimates — no hidden randomness."""
        def build():
            s = QuantileSketch("s")
            for i in range(1, 1000):
                s.observe(i * 1.7)
            return [s.percentile(p) for p in (1, 50, 90, 99)]

        assert build() == build()


class TestHistogramSketchFallback:
    def test_exact_below_cap(self):
        h = Histogram("h", max_samples=100)
        for i in range(1, 101):
            h.observe(float(i))
        assert not h.overflowed
        assert h.p50 == 50.0  # exact nearest-rank
        assert len(h.values()) == 100

    def test_fallback_past_cap(self):
        h = Histogram("h", max_samples=100)
        for i in range(1, 1001):
            h.observe(float(i))
        assert h.overflowed
        assert h.sketch is not None
        assert h.count == 1000  # count stays exact
        assert h.sum == pytest.approx(sum(range(1, 1001)))
        assert h.min == 1.0 and h.max == 1000.0  # extremes stay exact
        # Percentiles become sketch estimates with the 1% guarantee.
        assert h.p50 == pytest.approx(500.0, rel=0.02)
        assert h.p99 == pytest.approx(990.0, rel=0.02)
        # The retained list degrades to a bounded reservoir.
        assert len(h.values()) == 100

    def test_fallback_snapshot_flags_estimation(self):
        h = Histogram("h", max_samples=10)
        for i in range(1, 100):
            h.observe(float(i))
        snap = h.snapshot()
        assert snap["estimated"] is True
        assert snap["relative_accuracy"] == 0.01

    def test_fallback_deterministic(self):
        """The reservoir uses a fixed seed: two identical runs keep
        identical reservoirs and estimates."""
        def build():
            h = Histogram("h", max_samples=50)
            for i in range(500):
                h.observe((i * 37 % 499) + 1.0)
            return (h.values(), h.p50, h.p99)

        assert build() == build()

    def test_uncapped_histogram_never_overflows(self):
        h = Histogram("h")
        for i in range(10_000):
            h.observe(float(i + 1))
        assert not h.overflowed
        assert h.p50 == 5000.0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="max_samples"):
            Histogram("h", max_samples=0)


class TestRegistryIntegration:
    def test_registry_cap_applies_to_histograms(self):
        reg = MetricsRegistry(histogram_max_samples=10)
        h = reg.histogram("lat")
        for i in range(100):
            h.observe(float(i + 1))
        assert h.overflowed

    def test_registry_sketch_metric(self):
        reg = MetricsRegistry()
        s = reg.sketch("lat.sketch", help="end-to-end")
        s.observe(162.0)
        assert reg.sketch("lat.sketch") is s
        assert "lat.sketch" in reg
        assert reg.snapshot()["lat.sketch"]["count"] == 1

    def test_sketch_name_collision_with_other_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="counter"):
            reg.sketch("x")

    def test_summary_marks_overflowed_histograms(self):
        reg = MetricsRegistry(histogram_max_samples=5)
        h = reg.histogram("lat")
        for i in range(10):
            h.observe(float(i + 1))
        assert "histogram~" in reg.summary()
