"""Tests for packet-ordering semantics and link contention.

The network does not, in general, preserve packet ordering, but the
in-order header flag restores order between a fixed source-destination
pair (§III.A) — the property the migration protocol stands on.
"""

import pytest

from repro.asic import build_machine
from repro.engine import Simulator


def _machine(jitter=0.0, seed=0):
    sim = Simulator()
    m = build_machine(sim, 4, 1, 1)
    if jitter:
        m.network.reorder_jitter_ns = jitter
    return sim, m


def _send_burst(sim, m, in_order, count=20):
    """Send `count` FIFO messages 0..count-1 from node 0 to node 3."""
    src = m.node((0, 0, 0)).slice(0)
    dst = m.node((3, 0, 0)).slice(0)

    def sender():
        for i in range(count):
            yield from src.send_fifo_message(
                (3, 0, 0), "slice0", payload=i, payload_bytes=8,
                in_order=in_order,
            )

    sim.process(sender())
    sim.run()
    out = []
    while True:
        pkt = dst.fifo.try_poll()
        if pkt is None:
            break
        out.append(pkt.payload)
    return out


def test_no_jitter_network_is_fifo_anyway():
    sim, m = _machine(jitter=0.0)
    assert _send_burst(sim, m, in_order=False) == list(range(20))


def test_jitter_reorders_unflagged_packets():
    reordered = False
    for seed in range(5):
        sim, m = _machine(jitter=400.0, seed=seed)
        m.network._rng.seed(seed)
        out = _send_burst(sim, m, in_order=False)
        assert sorted(out) == list(range(20))  # nothing lost
        if out != list(range(20)):
            reordered = True
    assert reordered, "jitter never produced a reordering across 5 seeds"


def test_in_order_flag_survives_jitter():
    for seed in range(5):
        sim, m = _machine(jitter=400.0, seed=seed)
        m.network._rng.seed(seed)
        assert _send_burst(sim, m, in_order=True) == list(range(20))


def test_link_contention_delays_second_packet():
    """Two 256-byte packets injected back-to-back share one link
    direction; the second is delayed by the serialization time."""
    sim = Simulator()
    m = build_machine(sim, 2, 1, 1)
    a0 = m.node((0, 0, 0)).slice(0)
    a1 = m.node((0, 0, 0)).slice(1)
    dst = m.node((1, 0, 0)).slice(0)
    dst.memory.allocate("rx", 2)
    times = {}

    def sender(s, slot):
        yield from s.send_write(
            (1, 0, 0), "slice0", counter_id=f"c{slot}", address=("rx", slot),
            payload_bytes=256,
        )

    def receiver(slot):
        times[slot] = yield from dst.poll(f"c{slot}", 1)

    procs = [
        sim.process(sender(a0, 0)),
        sim.process(sender(a1, 1)),
        sim.process(receiver(0)),
        sim.process(receiver(1)),
    ]
    sim.run(until=sim.all_of(procs))
    from repro.network.packet import Packet
    gap = abs(times[1] - times[0])
    # Serialization of a 288-byte wire packet at 36.8 Gbit/s ≈ 62.6 ns.
    assert gap == pytest.approx(288 * 8 / 36.8, rel=0.2)


def test_opposite_link_directions_are_independent():
    """The torus links are full duplex: simultaneous opposite-direction
    transfers do not contend."""
    sim = Simulator()
    m = build_machine(sim, 2, 1, 1)
    a = m.node((0, 0, 0)).slice(0)
    b = m.node((1, 0, 0)).slice(0)
    a.memory.allocate("rx", 1)
    b.memory.allocate("rx", 1)
    times = {}

    def sender(s, d, key):
        yield from s.send_write(
            d.node, d.name, counter_id="c", address=("rx", 0), payload_bytes=0
        )

    def receiver(r, key):
        times[key] = yield from r.poll("c", 1)

    procs = [
        sim.process(sender(a, b, "ab")),
        sim.process(sender(b, a, "ba")),
        sim.process(receiver(b, "ab")),
        sim.process(receiver(a, "ba")),
    ]
    sim.run(until=sim.all_of(procs))
    assert times["ab"] == pytest.approx(162.0)
    assert times["ba"] == pytest.approx(162.0)
