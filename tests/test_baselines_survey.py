"""Unit tests for the Table 1 latency survey."""

from repro.baselines.survey import SURVEY, anton_advantage, survey_table


def test_survey_has_all_sixteen_rows():
    assert len(SURVEY) == 16
    machines = [e.machine for e in SURVEY]
    assert machines[0] == "Anton"
    assert "Blue Gene/L" in machines
    assert "Cray T3E" in machines


def test_anton_is_fastest():
    anton = next(e for e in SURVEY if e.machine == "Anton")
    assert all(e.latency_us >= anton.latency_us for e in SURVEY)
    assert anton.latency_us == 0.16


def test_fastest_non_anton_is_altix():
    """The paper: the fastest previously published measurement is
    1.25 µs (SGI Altix 3700 BX2)."""
    non_anton = min(
        (e for e in SURVEY if e.machine != "Anton"), key=lambda e: e.latency_us
    )
    assert non_anton.machine == "Altix 3700 BX2"
    assert non_anton.latency_us == 1.25


def test_anton_advantage_about_8x():
    assert 7.0 < anton_advantage() < 8.5


def test_survey_table_renders_all_rows():
    text = survey_table()
    for e in SURVEY:
        assert e.machine in text


def test_survey_table_with_measured_value():
    text = survey_table(measured_anton_us=0.162)
    assert "Anton (simulated)" in text
    assert "0.16" in text
