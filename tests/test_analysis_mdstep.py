"""Unit tests for the MD-step measurement harness (reduced scale)."""

import pytest

from repro.analysis.mdstep import (
    build_dhfr_md,
    fig11_series,
    fig12_series,
    fig13_timeline,
    run_table3,
)

SHAPE = (2, 2, 2)
ATOMS = 400


@pytest.fixture(scope="module")
def table3():
    return run_table3(build_dhfr_md(shape=SHAPE, atoms=ATOMS))


def test_table3_has_all_rows(table3):
    assert set(table3) == {
        "average", "range_limited", "long_range", "fft_convolution", "thermostat"
    }
    for row in table3.values():
        assert row.total_us > 0
        assert 0 <= row.communication_us <= row.total_us


def test_long_range_costs_more_than_range_limited(table3):
    assert table3["long_range"].total_us > table3["range_limited"].total_us
    assert (
        table3["long_range"].communication_us
        > table3["range_limited"].communication_us
    )


def test_average_is_midpoint(table3):
    rl, lr, avg = (
        table3["range_limited"], table3["long_range"], table3["average"]
    )
    assert avg.total_us == pytest.approx((rl.total_us + lr.total_us) / 2)


def test_fig11_series_structure():
    """Structural checks at toy scale (a 2×2×2 torus has a 3-hop
    diameter, so drift can barely lengthen bond routes — the *gain*
    from regeneration is asserted at scale by the Fig. 11 benchmark).
    """
    pts = fig11_series(
        total_steps=600_000, epochs=3, regen_interval=120_000,
        shape=SHAPE, atoms=ATOMS,
    )
    assert len(pts) == 4
    assert pts[0].steps_completed == 0
    assert pts[-1].steps_completed == 600_000
    # Diffusion lengthens the no-regen bond phase even here.
    assert pts[-1].step_time_no_regen_us > pts[0].step_time_no_regen_us
    # Both curves stay in the same ballpark (regen is never catastrophic).
    for p in pts:
        assert p.step_time_with_regen_us == pytest.approx(
            p.step_time_no_regen_us, rel=0.10
        )


def test_fig12_curve_falls_and_flattens():
    pts = fig12_series(intervals=(1, 2, 4, 8), shape=SHAPE, atoms=ATOMS)
    times = [p.step_time_us for p in pts]
    assert times[0] > times[-1]
    assert times == sorted(times, reverse=True)
    # Amortisation: migration cost per step shrinks with the interval.
    per_step = [p.migration_cost_us / p.migration_interval for p in pts]
    assert per_step == sorted(per_step, reverse=True)


def test_fig13_renders_unit_classes():
    text, rl, lr = fig13_timeline(
        build_dhfr_md(shape=SHAPE, atoms=ATOMS), buckets=16
    )
    for col in ("GC", "HTIS", "TS"):
        assert col in text
    assert "legend" in text
    assert lr.total_ns > rl.total_ns
