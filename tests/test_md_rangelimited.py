"""Unit tests for cell-list range-limited forces."""

import numpy as np
import pytest

from repro.md.forcefield import ForceField
from repro.md.rangelimited import CellList, range_limited_forces
from repro.md.system import bulk_water, tiny_system


def brute_force(system, ff):
    """O(n²) reference via the one-cell fallback path."""
    cl = CellList(system.positions, system.box_edge, system.box_edge)
    assert cl.cells_per_edge == 1
    return range_limited_forces(system, ff, cl)


def test_cell_list_bins_every_atom():
    s = bulk_water(27)
    cl = CellList(s.positions, s.box_edge, 4.0)
    total = 0
    for cx, cy, cz in cl.cell_coords():
        total += cl.atoms_in(cx, cy, cz).size
    assert total == s.num_atoms


def test_cell_edge_at_least_cutoff():
    s = bulk_water(27)
    cl = CellList(s.positions, s.box_edge, 4.0)
    assert cl.cell_edge >= 4.0


def test_cells_match_brute_force():
    """The half-shell cell walk must agree exactly with O(n²)."""
    s = bulk_water(64, seed=2)
    ff = ForceField(cutoff=4.5, ewald_alpha=0.3)
    fast = range_limited_forces(s, ff)
    slow = brute_force(s, ff)
    assert fast.pair_count == slow.pair_count
    assert fast.energy == pytest.approx(slow.energy, rel=1e-12)
    np.testing.assert_allclose(fast.forces, slow.forces, atol=1e-9)
    assert fast.virial == pytest.approx(slow.virial, rel=1e-12)


def test_forces_sum_to_zero():
    s = tiny_system(32, box_edge=14.0)
    ff = ForceField(cutoff=5.0, ewald_alpha=0.3)
    res = range_limited_forces(s, ff)
    np.testing.assert_allclose(res.forces.sum(axis=0), 0.0, atol=1e-10)


def test_forces_match_numerical_gradient():
    s = tiny_system(12, box_edge=10.0)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.3)
    res = range_limited_forces(s, ff)
    h = 1e-6
    for atom in (0, 5):
        for ax in range(3):
            p = s.copy()
            p.positions[atom, ax] += h
            m = s.copy()
            m.positions[atom, ax] -= h
            grad = (range_limited_forces(p, ff).energy
                    - range_limited_forces(m, ff).energy) / (2 * h)
            assert res.forces[atom, ax] == pytest.approx(-grad, rel=1e-4, abs=1e-5)


def test_pair_count_matches_density_estimate():
    s = bulk_water(125, seed=1)
    ff = ForceField(cutoff=5.0)
    res = range_limited_forces(s, ff)
    shell = 4.0 / 3.0 * np.pi * ff.cutoff ** 3
    expected = s.num_atoms * s.density * shell / 2.0
    assert res.pair_count == pytest.approx(expected, rel=0.15)


def test_no_self_pairs_tiny_box():
    s = tiny_system(4, box_edge=6.0)
    ff = ForceField(cutoff=2.9)  # cutoff ~ box/2: brute-force path
    res = range_limited_forces(s, ff)
    assert res.pair_count <= 6


def test_invalid_cutoff():
    s = tiny_system(4)
    with pytest.raises(ValueError):
        CellList(s.positions, s.box_edge, 0.0)
