"""Unit tests for the fixed-pattern registry (§IV.A)."""

import pytest

from repro.comm import GatherSource
from repro.comm.patterns import PatternRegistry


def test_register_and_get_gather(machine222):
    reg = PatternRegistry(machine222.network)
    target = machine222.node((0, 0, 0)).slice(0)
    src = GatherSource(machine222.torus.coord((1, 0, 0)), "slice0", 2)
    p = reg.register_gather("positions", target, [src])
    assert reg.get("positions") is p
    assert p.gather.expected == 2
    assert len(reg) == 1


def test_register_multicast(machine222):
    reg = PatternRegistry(machine222.network)
    p = reg.register_multicast("bcast", (0, 0, 0), {(1, 0, 0): ["htis"]})
    assert p.multicast is not None
    assert p.multicast.pattern_id >= 0


def test_unknown_pattern_raises_helpfully(machine222):
    reg = PatternRegistry(machine222.network)
    with pytest.raises(KeyError, match="never established"):
        reg.get("ghost")


def test_duplicate_name_rejected(machine222):
    reg = PatternRegistry(machine222.network)
    target = machine222.node((0, 0, 0)).slice(0)
    src = GatherSource(machine222.torus.coord((1, 0, 0)), "slice0", 1)
    reg.register_gather("p", target, [src])
    with pytest.raises(ValueError, match="already registered"):
        reg.register_multicast("p", (0, 0, 0), {(1, 0, 0): ["htis"]})


def test_freeze_blocks_new_patterns(machine222):
    reg = PatternRegistry(machine222.network)
    reg.freeze()
    with pytest.raises(RuntimeError, match="frozen"):
        reg.register_multicast("late", (0, 0, 0), {(1, 0, 0): ["htis"]})


def test_reopen_bumps_generations(machine222):
    reg = PatternRegistry(machine222.network)
    target = machine222.node((0, 0, 0)).slice(0)
    src = GatherSource(machine222.torus.coord((1, 0, 0)), "slice0", 1)
    p = reg.register_gather("bonds", target, [src])
    reg.freeze()
    reg.reopen()
    assert reg.get("bonds").generation == 1


def test_replace_gather_uses_fresh_buffer(machine222):
    """Regeneration installs a new gather under the same logical name;
    the old receive buffer is never re-addressed."""
    reg = PatternRegistry(machine222.network)
    target = machine222.node((0, 0, 0)).slice(0)
    src1 = GatherSource(machine222.torus.coord((1, 0, 0)), "slice0", 1)
    src2 = GatherSource(machine222.torus.coord((0, 1, 0)), "slice0", 3)
    reg.register_gather("bonds", target, [src1])
    p2 = reg.replace_gather("bonds", target, [src2], buffer_suffix="-g1")
    assert p2.generation == 1
    assert p2.gather.expected == 3
    assert target.memory.has_buffer("bonds")
    assert target.memory.has_buffer("bonds-g1")


def test_replace_while_frozen_rejected(machine222):
    reg = PatternRegistry(machine222.network)
    target = machine222.node((0, 0, 0)).slice(0)
    src = GatherSource(machine222.torus.coord((1, 0, 0)), "slice0", 1)
    reg.register_gather("bonds", target, [src])
    reg.freeze()
    with pytest.raises(RuntimeError):
        reg.replace_gather("bonds", target, [src], buffer_suffix="-g1")
