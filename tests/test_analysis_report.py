"""Plain-text report rendering (analysis/report.py).

These renderers sit on the byte-identity path: every benchmark table,
attribution report, and hotspot summary goes through them, so their
alignment and number formatting are part of the determinism contract.
"""

from repro.analysis.report import render_series, render_table


class TestRenderTable:
    def test_layout_title_rule_headers_and_rows(self):
        text = render_table(
            "Latency", ["hops", "ns"], [[0, 97.0], [1, 162.0]]
        )
        lines = text.split("\n")
        assert lines[0] == "Latency"
        assert lines[1] == "=" * len("Latency")
        assert lines[2].split() == ["hops", "ns"]
        assert set(lines[3]) <= {"-", " "}
        assert lines[4].split() == ["0", "97.00"]
        assert lines[5].split() == ["1", "162.00"]
        assert len(lines) == 6

    def test_column_alignment(self):
        text = render_table(
            "t", ["name", "value"], [["a", 1.0], ["long-name", 12345.0]]
        )
        lines = text.split("\n")
        # Every body/header line is padded to the same width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1
        # Headers are left-justified, cells right-justified.
        assert lines[2].startswith("name ")
        assert lines[4].endswith("    1.00")
        assert lines[5].startswith("long-name")

    def test_float_format_applied_only_to_floats(self):
        text = render_table(
            "t", ["a", "b", "c"], [[1, 2.0, "x"]], float_format="{:.3f}"
        )
        row = text.split("\n")[-1].split()
        assert row == ["1", "2.000", "x"]

    def test_empty_rows_render_header_only(self):
        text = render_table("empty", ["col-one", "c2"], [])
        lines = text.split("\n")
        assert len(lines) == 4  # title, rule, headers, dashes — no body
        assert lines[2].split() == ["col-one", "c2"]
        # Column widths fall back to the header widths.
        assert lines[3] == "-" * len("col-one") + "  " + "-" * len("c2")

    def test_wide_cell_stretches_column(self):
        text = render_table("t", ["h"], [["wider-than-header"]])
        lines = text.split("\n")
        assert lines[3] == "-" * len("wider-than-header")

    def test_deterministic(self):
        args = ("t", ["a", "b"], [[1.5, "x"], [2.5, "y"]])
        assert render_table(*args) == render_table(*args)


class TestRenderSeries:
    def test_one_column_per_curve(self):
        text = render_series(
            "Fig", "hops", [0, 1], {"uni": [97.0, 162.0], "rt": [194.0, 324.0]}
        )
        lines = text.split("\n")
        assert lines[2].split() == ["hops", "uni", "rt"]
        assert lines[4].split() == ["0", "97.0", "194.0"]
        assert lines[5].split() == ["1", "162.0", "324.0"]

    def test_default_float_format_is_one_decimal(self):
        text = render_series("f", "x", [1], {"y": [2.0]})
        assert text.split("\n")[-1].split() == ["1", "2.0"]

    def test_empty_series(self):
        text = render_series("f", "x", [], {"y": []})
        assert len(text.split("\n")) == 4
