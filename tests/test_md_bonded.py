"""Unit tests for bonded forces."""

import numpy as np
import pytest

from repro.md.bonded import bond_energy_forces, bond_lengths
from repro.md.system import ChemicalSystem, tiny_system


def two_atom_system(r, r0=1.5, k=100.0, box=20.0):
    positions = np.array([[5.0, 5.0, 5.0], [5.0 + r, 5.0, 5.0]])
    return ChemicalSystem(
        positions=positions,
        velocities=np.zeros((2, 3)),
        masses=np.ones(2),
        charges=np.zeros(2),
        lj_epsilon=np.zeros(2),
        lj_sigma=np.ones(2),
        bonds=np.array([[0, 1]]),
        bond_r0=np.array([r0]),
        bond_k=np.array([k]),
        box_edge=box,
    )


def test_energy_at_equilibrium_is_zero():
    s = two_atom_system(r=1.5)
    e, f = bond_energy_forces(s)
    assert e == pytest.approx(0.0)
    np.testing.assert_allclose(f, 0.0, atol=1e-12)


def test_harmonic_energy_and_restoring_force():
    s = two_atom_system(r=2.0, r0=1.5, k=100.0)
    e, f = bond_energy_forces(s)
    assert e == pytest.approx(100.0 * 0.5 ** 2)
    # Stretched: atoms pull toward each other.
    assert f[0, 0] > 0 and f[1, 0] < 0
    np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-12)


def test_compressed_bond_pushes_apart():
    s = two_atom_system(r=1.0, r0=1.5)
    _e, f = bond_energy_forces(s)
    assert f[0, 0] < 0 and f[1, 0] > 0


def test_force_matches_numerical_gradient():
    s = two_atom_system(r=1.8)
    _e, f = bond_energy_forces(s)
    h = 1e-7
    p, m = s.copy(), s.copy()
    p.positions[0, 0] += h
    m.positions[0, 0] -= h
    grad = (bond_energy_forces(p)[0] - bond_energy_forces(m)[0]) / (2 * h)
    assert f[0, 0] == pytest.approx(-grad, rel=1e-5)


def test_bond_across_periodic_boundary():
    s = two_atom_system(r=1.5, box=10.0)
    s.positions[0] = [0.2, 5.0, 5.0]
    s.positions[1] = [9.8, 5.0, 5.0]  # 0.4 apart through the boundary
    s.bond_r0[0] = 0.4
    e, _f = bond_energy_forces(s)
    assert e == pytest.approx(0.0, abs=1e-10)
    assert bond_lengths(s)[0] == pytest.approx(0.4)


def test_subset_evaluation_partitions_total():
    s = tiny_system(32)
    e_all, f_all = bond_energy_forces(s)
    n = s.num_bonds
    half1 = np.arange(n // 2)
    half2 = np.arange(n // 2, n)
    e1, f1 = bond_energy_forces(s, subset=half1)
    e2, f2 = bond_energy_forces(s, subset=half2)
    assert e1 + e2 == pytest.approx(e_all)
    np.testing.assert_allclose(f1 + f2, f_all, atol=1e-12)


def test_no_bonds_is_noop():
    s = tiny_system(8)
    s2 = ChemicalSystem(
        positions=s.positions, velocities=s.velocities, masses=s.masses,
        charges=s.charges, lj_epsilon=s.lj_epsilon, lj_sigma=s.lj_sigma,
        bonds=np.empty((0, 2), dtype=np.int64), bond_r0=np.empty(0),
        bond_k=np.empty(0), box_edge=s.box_edge,
    )
    e, f = bond_energy_forces(s2)
    assert e == 0.0
    assert bond_lengths(s2).size == 0
