"""ExperimentSpec and the experiment registry (runner/spec.py).

The spec's canonical form is the identity the content-addressed cache
and sweep checkpoints key on, so its stability properties (field
coercion, extras normalization, hash determinism) are load-bearing.
"""

import pytest

from repro.runner.result import run_experiment
from repro.runner.spec import (
    ExperimentSpec,
    experiment_names,
    get_experiment,
    register_experiment,
)


class TestSpecValidation:
    def test_shape_is_coerced_to_int_triple(self):
        spec = ExperimentSpec("latency", shape=[2, 2, 2])
        assert spec.shape == (2, 2, 2)
        assert all(isinstance(v, int) for v in spec.shape)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec("latency", shape=(0, 2, 2))
        with pytest.raises(ValueError):
            ExperimentSpec("latency", shape=(2, 2))

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec("latency", rounds=0)
        with pytest.raises(ValueError):
            ExperimentSpec("latency", payload=-1)
        with pytest.raises(ValueError):
            ExperimentSpec("latency", hops=-1)

    def test_empty_experiment_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec("")

    def test_extras_sorted_and_duplicate_free(self):
        spec = ExperimentSpec("allreduce", extras=(("b", 2), ("a", 1)))
        assert spec.extras == (("a", 1), ("b", 2))
        with pytest.raises(ValueError):
            ExperimentSpec("allreduce", extras=(("a", 1), ("a", 2)))

    def test_extras_must_be_json_scalars(self):
        with pytest.raises(ValueError):
            ExperimentSpec("allreduce", extras=(("a", [1, 2]),))

    def test_with_extras_merges(self):
        spec = ExperimentSpec("allreduce").with_extras(algorithm="butterfly")
        assert spec.extra("algorithm") == "butterfly"
        assert spec.extra("missing", 42) == 42
        spec2 = spec.with_extras(algorithm="dimension_ordered")
        assert spec2.extra("algorithm") == "dimension_ordered"


class TestSpecIdentity:
    def test_equal_specs_hash_equal_and_serialize_identically(self):
        a = ExperimentSpec("latency", shape=(2, 2, 2), hops=1)
        b = ExperimentSpec("latency", shape=[2, 2, 2], hops=1)
        assert a == b
        assert hash(a) == hash(b)
        assert a.canonical() == b.canonical()
        assert a.spec_hash == b.spec_hash

    def test_any_field_change_changes_the_hash(self):
        base = ExperimentSpec("latency", shape=(2, 2, 2), hops=1)
        variants = [
            base.replace(rounds=3),
            base.replace(payload=64),
            base.replace(seed=7),
            base.replace(hops=2),
            base.replace(shape=(3, 3, 3)),
            base.with_extras(foo=1),
        ]
        hashes = {v.spec_hash for v in variants} | {base.spec_hash}
        assert len(hashes) == len(variants) + 1

    def test_roundtrip_through_dict(self):
        spec = ExperimentSpec(
            "transfer", shape=(2, 2, 2), hops=2,
            extras=(("messages", 8), ("total_bytes", 2048)),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            ExperimentSpec.from_dict({"experiment": "latency", "bogus": 1})

    def test_derived_seed_is_stable_and_distinct(self):
        a = ExperimentSpec("latency", seed=0)
        b = ExperimentSpec("latency", seed=1)
        assert a.derived_seed() == ExperimentSpec("latency").derived_seed()
        assert a.derived_seed() != b.derived_seed()

    def test_label_mentions_non_defaults(self):
        spec = ExperimentSpec("latency", shape=(2, 2, 2), hops=1, seed=3)
        label = spec.label()
        assert "latency" in label and "hops=1" in label and "seed=3" in label


class TestRegistry:
    def test_builtins_are_registered(self):
        names = experiment_names()
        assert {"latency", "fig5", "allreduce", "transfer",
                "congestion", "mdstep"} <= set(names)

    def test_filters_cover_traceable_and_monitorable(self):
        assert "mdstep" not in experiment_names(traceable=True)
        assert "mdstep" in experiment_names(monitorable=True)

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("nope")

    def test_get_experiment_accepts_spec_or_name(self):
        by_name = get_experiment("latency")
        by_spec = get_experiment(ExperimentSpec("latency"))
        assert by_name is by_spec

    def test_duplicate_registration_is_an_error(self):
        with pytest.raises(ValueError, match="already registered"):
            register_experiment("latency")(lambda spec: None)


class TestRunExperiment:
    def test_returns_unified_result(self):
        spec = ExperimentSpec("latency", shape=(2, 2, 2), hops=1)
        result = run_experiment(spec)
        assert result.spec == spec
        assert result.elapsed_ns > 0
        assert result.value("one_way_1hop_ns") == result.elapsed_ns
        assert isinstance(result.metrics, dict)

    def test_runner_must_return_outcome(self):
        register_experiment("_bad_outcome_test")(lambda spec: 42)
        try:
            with pytest.raises(TypeError, match="Outcome"):
                run_experiment(ExperimentSpec("_bad_outcome_test"))
        finally:
            from repro.runner import spec as spec_mod

            spec_mod._REGISTRY.pop("_bad_outcome_test")

    def test_roundtrip_result_through_dict(self):
        spec = ExperimentSpec("transfer", shape=(2, 2, 2))
        result = run_experiment(spec)
        clone = type(result).from_dict(result.to_dict())
        assert clone.spec == spec
        assert clone.elapsed_ns == result.elapsed_ns
        assert clone.measurements == result.measurements

    def test_measurement_validation(self):
        from repro.runner.result import Measurement

        with pytest.raises(ValueError):
            Measurement("m", float("nan"))
        with pytest.raises(ValueError):
            Measurement("m", 1.0, better="sideways")
        with pytest.raises(ValueError):
            Measurement("", 1.0)
