"""Consistency tests for the calibrated constants (DESIGN.md §3)."""

import pytest

from repro import constants as C


def test_headline_sum():
    """Fig. 6's components must sum to the 162 ns headline."""
    assert C.ONE_HOP_X_NS == pytest.approx(162.0)
    assert (
        C.SLICE_SEND_NS + C.SRC_RING_NS + 2 * C.LINK_ADAPTER_NS
        + C.DST_RING_NS + C.POLL_SUCCESS_NS
    ) == pytest.approx(162.0)


def test_hop_cost_decomposition():
    """Marginal hop cost = link crossing + transit-ring crossing."""
    for d in ("x", "y", "z"):
        assert C.LINK_COST_NS[d] + C.THROUGH_RING_NS[d] == pytest.approx(
            C.HOP_NS[d]
        )
        assert C.THROUGH_RING_NS[d] > 0


def test_fig5_slopes():
    assert C.HOP_NS["x"] == 76.0
    assert C.HOP_NS["y"] == C.HOP_NS["z"] == 54.0


def test_wire_delays_ordered():
    """X wires shortest, Z longest (Fig. 6 caption)."""
    assert C.WIRE_NS["x"] < C.WIRE_NS["y"] < C.WIRE_NS["z"]


def test_bandwidths():
    assert C.TORUS_LINK_RAW_GBPS == 50.6
    assert C.TORUS_LINK_EFFECTIVE_GBPS == 36.8
    assert C.ONCHIP_RING_GBPS == 124.2
    assert C.TORUS_LINK_EFFECTIVE_GBPS < C.TORUS_LINK_RAW_GBPS


def test_accum_poll_slower_than_local():
    assert C.ACCUM_POLL_NS > C.POLL_SUCCESS_NS


def test_packet_format():
    assert C.HEADER_BYTES == 32
    assert C.MAX_PAYLOAD_BYTES == 256
    assert C.INLINE_PAYLOAD_BYTES == 8


def test_paper_tables_complete():
    assert len(C.PAPER_TABLE2_US) == 5
    assert set(C.PAPER_TABLE3_US) == {
        "average", "range_limited", "long_range", "fft_convolution",
        "thermostat",
    }
    for row in C.PAPER_TABLE3_US.values():
        for machine in ("anton", "desmond"):
            comm, total = row[machine]
            assert comm <= total


def test_headline_ratio_27x():
    """Table 3: Anton's average communication is ~1/27 of Desmond's."""
    anton = C.PAPER_TABLE3_US["average"]["anton"][0]
    desmond = C.PAPER_TABLE3_US["average"]["desmond"][0]
    assert desmond / anton == pytest.approx(26.7, rel=0.02)
