"""Unit tests for the packet flight recorder (trace/flight.py)."""

import pytest

from tests.conftest import run_exchange

from repro.asic import build_machine
from repro.engine import Simulator
from repro.network.multicast import compile_pattern
from repro.network.packet import WritePacket
from repro.trace.flight import (
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
    active_flight,
    use_flight,
)
from repro.trace.metrics import MetricsRegistry


def traced_machine(shape=(2, 2, 2)):
    sim = Simulator()
    fl = FlightRecorder(metrics=MetricsRegistry())
    with use_flight(fl):
        machine = build_machine(sim, *shape)
    return sim, machine, fl


class TestAttachment:
    def test_default_network_uses_null_recorder(self, machine222):
        assert machine222.network.flight is NULL_FLIGHT
        assert machine222.network.flight.enabled is False

    def test_ambient_recorder_picked_up_at_construction(self):
        sim, machine, fl = traced_machine()
        assert machine.network.flight is fl
        # The context exited; new networks go back to the null recorder.
        assert active_flight() is NULL_FLIGHT

    def test_explicit_flight_argument(self):
        from repro.network.network import Network
        from repro.topology.torus import Torus3D

        sim = Simulator()
        fl = FlightRecorder()
        net = Network(sim, Torus3D(2, 2, 2), flight=fl)
        assert net.flight is fl


class TestUnicastSpans:
    def test_hop_count_equals_route_length(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 1, 0)).slice(0)
        run_exchange(sim, src, dst)
        [flight] = fl.packets()
        route = machine.torus.route((0, 0, 0), (1, 1, 0))
        assert len(flight.hops) == len(route) == 2
        assert [(h.dim, h.sign) for h in flight.hops] == [
            (hop.dim, hop.sign) for hop in route
        ]

    def test_span_nesting_and_causality(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 1, 0)).slice(0)
        run_exchange(sim, src, dst, payload_bytes=64)
        [flight] = fl.packets()
        t = flight.inject_ns
        for hop in flight.hops:
            assert t <= hop.enqueue_ns <= hop.grant_ns < hop.release_ns
            t = hop.grant_ns  # next hop starts after this grant
        assert flight.deliveries[-1].time_ns >= flight.hops[-1].grant_ns
        assert flight.latency_ns > 0
        assert flight.payload_bytes == 64

    def test_uncontended_hop_has_no_wait(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 0, 0)).slice(0)
        run_exchange(sim, src, dst)
        [flight] = fl.packets()
        assert flight.queue_wait_ns == 0.0
        assert fl.contended_hops() == 0
        assert all(h.queue_depth == 0 for h in flight.hops)

    def test_delivery_records_destination(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((0, 0, 1)).slice(0)
        run_exchange(sim, src, dst)
        [flight] = fl.packets()
        [d] = flight.deliveries
        assert tuple(d.node) == (0, 0, 1)
        assert d.client == "slice0"


class TestContention:
    def make_contended_run(self):
        """Two slices on one node send 256 B to the same neighbour at
        the same time: they share the single outgoing link."""
        sim, machine, fl = traced_machine()
        a0 = machine.node((0, 0, 0)).slice(0)
        a1 = machine.node((0, 0, 0)).slice(1)
        dst = machine.node((1, 0, 0)).slice(0)
        dst.memory.allocate("rx", 2)

        def send(s, slot):
            yield from s.send_write(
                (1, 0, 0), "slice0", counter_id="c", address=("rx", slot),
                payload_bytes=256,
            )

        def recv():
            yield from dst.poll("c", 2)

        procs = [
            sim.process(send(a0, 0)),
            sim.process(send(a1, 1)),
            sim.process(recv()),
        ]
        sim.run(until=sim.all_of(procs))
        return fl

    def test_queue_wait_recorded(self):
        fl = self.make_contended_run()
        waits = [f.queue_wait_ns for f in fl.packets()]
        assert fl.contended_hops() == 1
        assert max(waits) > 0
        assert min(waits) == 0  # the winner streamed immediately

    def test_queue_depth_series(self):
        fl = self.make_contended_run()
        [link] = [
            name for name, s in fl.queue_depth_series.items() if s
        ]
        depths = [d for _, d in fl.queue_depth_series[link]]
        assert max(depths) == 1  # one waiter behind the winner
        assert depths[-1] == 0  # drained by the end
        assert fl.max_queue_depth() == 1
        assert fl.max_queue_depth(link) == 1

    def test_metrics_fed(self):
        fl = self.make_contended_run()
        m = fl.metrics
        assert m.counter("net.packets_injected").value == 2
        assert m.counter("net.packets_delivered").value == 2
        assert m.counter("net.link_traversals").value == 2
        assert m.histogram("net.hop_wait_ns").count == 1
        assert m.histogram("net.packet_latency_ns").count == 2
        assert m.gauge("net.queue_depth").high_watermark == 1

    def test_link_busy_time_is_serialization(self):
        fl = self.make_contended_run()
        [link] = [n for n, occ in fl.link_occupancy.items() if len(occ) == 2]
        # Two 256 B packets: busy time is twice one serialization.
        per_packet = fl.link_busy_ns(link) / 2
        assert per_packet == pytest.approx((32 + 256) * 8.0 / 36.8)


class TestMulticast:
    def make_multicast_run(self, targets):
        sim, machine, fl = traced_machine()
        net = machine.network
        for node in targets:
            machine.node(node).slice(0).memory.allocate("mc", 1)
        pattern = compile_pattern(net.torus, (0, 0, 0), targets)
        packet = WritePacket(
            src_node=net.torus.coord((0, 0, 0)), src_client="slice0",
            dst_node=net.torus.coord((0, 0, 0)), dst_client="slice0",
            counter_id="mc", address=("mc", 0),
            pattern_id=net.register_pattern(pattern),
        )
        sim.run(until=net.inject(packet))
        [flight] = fl.packets()
        return machine, flight

    def test_per_branch_spans_are_causal(self):
        """Every branch of the replication tree reconstructs as a
        causal chain of hop spans ending at its delivery node."""
        from repro.analysis.critical_path import branch_hops

        targets = {(1, 0, 0): ("slice0",), (0, 1, 0): ("slice0",),
                   (1, 1, 0): ("slice0",), (1, 1, 1): ("slice0",)}
        machine, flight = self.make_multicast_run(targets)
        torus = machine.torus
        for delivery in flight.deliveries:
            chain = branch_hops(flight, torus, delivery)
            assert tuple(chain[0].from_node) == (0, 0, 0)
            for prev, nxt in zip(chain, chain[1:]):
                # The child hop leaves the node the parent entered, and
                # cannot be granted before its parent was.
                assert tuple(torus.neighbor(prev.from_node, prev.dim,
                                            prev.sign)) == tuple(nxt.from_node)
                assert nxt.enqueue_ns >= prev.grant_ns
            last = chain[-1]
            assert tuple(torus.neighbor(last.from_node, last.dim, last.sign)) \
                == tuple(delivery.node)
            assert delivery.time_ns >= last.grant_ns

    def test_shared_trunk_recorded_once(self):
        """Branches to (1,0,0) and (1,1,0) share the first X hop: the
        tree replicates at (1,0,0), it does not send twice from the
        source."""
        targets = {(1, 0, 0): ("slice0",), (1, 1, 0): ("slice0",)}
        machine, flight = self.make_multicast_run(targets)
        x_hops = [h for h in flight.hops
                  if tuple(h.from_node) == (0, 0, 0) and h.dim == "x"]
        assert len(x_hops) == 1

    def test_hops_match_compiled_tree(self):
        sim, machine, fl = traced_machine()
        net = machine.network
        targets = {(1, 0, 0): ("slice0",), (0, 1, 0): ("slice0",),
                   (1, 1, 0): ("slice0",)}
        for node in targets:
            machine.node(node).slice(0).memory.allocate("mc", 1)
        pattern = compile_pattern(net.torus, (0, 0, 0), targets)
        pattern_id = net.register_pattern(pattern)
        packet = WritePacket(
            src_node=net.torus.coord((0, 0, 0)), src_client="slice0",
            dst_node=net.torus.coord((0, 0, 0)), dst_client="slice0",
            counter_id="mc", address=("mc", 0), pattern_id=pattern_id,
        )
        done = net.inject(packet)
        sim.run(until=done)
        [flight] = fl.packets()
        assert flight.multicast
        assert len(flight.hops) == pattern.total_link_traversals
        assert len(flight.deliveries) == len(targets)


class TestNonPerturbation:
    def test_recording_does_not_change_simulated_time(self):
        def measure(traced):
            sim = Simulator()
            if traced:
                fl = FlightRecorder()
                with use_flight(fl):
                    machine = build_machine(sim, 2, 2, 2)
            else:
                machine = build_machine(sim, 2, 2, 2)
            src = machine.node((0, 0, 0)).slice(0)
            dst = machine.node((1, 0, 0)).slice(0)
            return run_exchange(sim, src, dst)

        assert measure(traced=False) == measure(traced=True) == 162.0

    def test_disabling_mid_run_stops_recording(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 0, 0)).slice(0)
        run_exchange(sim, src, dst)
        fl.enabled = False
        run_exchange(sim, src, dst, counter="c2")
        assert len(fl) == 1

    def test_null_recorder_hooks_are_noops(self):
        null = NullFlightRecorder()
        null.packet_injected(None, 0.0)
        null.hop_enqueued(None, None, 0.0)
        null.hop_granted(None, None, 0.0)
        null.packet_delivered(None, (0, 0, 0), "slice0", 0.0)

    def test_clear(self):
        fl = TestContention().make_contended_run()
        fl.clear()
        assert len(fl) == 0
        assert fl.links() == []


class TestAccumulation:
    def make_accum_run(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        node = machine.node((1, 0, 0))

        def sender():
            for _ in range(3):
                yield from src.send_accum(
                    (1, 0, 0), "accum0", counter_id="c", address="f",
                    payload=2.0, payload_bytes=8,
                )

        def poll():
            yield from node.slice(0).poll_accum(node.accum[0], "c", 3)

        p1, p2 = sim.process(sender()), sim.process(poll())
        sim.run(until=sim.all_of([p1, p2]))
        return machine, fl

    def test_accum_packets_recorded_as_flights(self):
        machine, fl = self.make_accum_run()
        flights = fl.packets()
        assert len(flights) == 3
        for f in flights:
            assert f.kind == "accum"
            assert not f.multicast
            assert f.payload_bytes == 8
            [d] = f.deliveries
            assert tuple(d.node) == (1, 0, 0)
            assert d.client == "accum0"
            # The accumulation write crosses one X link.
            assert len(f.hops) == 1 and f.hops[0].dim == "x"
            assert f.send_begin_ns is not None
            assert f.send_begin_ns <= f.inject_ns

    def test_accum_flights_attribute_exactly(self):
        from repro.analysis.attribution import attribute_flight

        machine, fl = self.make_accum_run()
        for f in fl.packets():
            attr = attribute_flight(f, fl)
            attr.check()
            assert attr.total_ns == f.deliveries[-1].time_ns - f.send_begin_ns

    def test_accum_semantics_unperturbed(self):
        machine, fl = self.make_accum_run()
        accum = machine.node((1, 0, 0)).accum[0]
        assert accum.value("f") == pytest.approx(6.0)
        assert accum.counter("c").count == 3


class TestPollJoin:
    def test_poll_for_matches_consuming_poll(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 0, 0)).slice(0)
        run_exchange(sim, src, dst)
        [flight] = fl.packets()
        poll = fl.poll_for(flight)
        assert poll is not None
        assert tuple(poll.node) == (1, 0, 0)
        assert poll.client == "slice0"
        assert poll.counter_id == "c"
        assert poll.trigger_ns >= flight.deliveries[-1].time_ns
        assert poll.done_ns > poll.trigger_ns

    def test_poll_for_without_poller_is_none(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 0, 0)).slice(0)
        dst.memory.allocate("rx", 1)

        def send():
            yield from src.send_write(
                (1, 0, 0), "slice0", counter_id="nobody",
                address=("rx", 0),
            )

        sim.process(send())
        sim.run()
        [flight] = fl.packets()
        assert flight.deliveries
        assert fl.poll_for(flight) is None


class TestPhases:
    def test_closed_phases_in_begin_order(self):
        fl = FlightRecorder()
        fl.phase_begin("a", 0.0)
        fl.phase_begin("b", 10.0)
        fl.phase_end("b", 20.0)
        fl.phase_end("a", 30.0)
        closed = fl.closed_phases()
        assert [p.name for p in closed] == ["a", "b"]
        assert fl.phase("a").end_ns == 30.0

    def test_unmatched_phase_end_raises(self):
        fl = FlightRecorder()
        with pytest.raises(RuntimeError, match="without an open phase_begin"):
            fl.phase_end("never-opened", 1.0)
