"""Unit tests for the packet flight recorder (trace/flight.py)."""

import pytest

from tests.conftest import run_exchange

from repro.asic import build_machine
from repro.engine import Simulator
from repro.network.multicast import compile_pattern
from repro.network.packet import WritePacket
from repro.trace.flight import (
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
    active_flight,
    use_flight,
)
from repro.trace.metrics import MetricsRegistry


def traced_machine(shape=(2, 2, 2)):
    sim = Simulator()
    fl = FlightRecorder(metrics=MetricsRegistry())
    with use_flight(fl):
        machine = build_machine(sim, *shape)
    return sim, machine, fl


class TestAttachment:
    def test_default_network_uses_null_recorder(self, machine222):
        assert machine222.network.flight is NULL_FLIGHT
        assert machine222.network.flight.enabled is False

    def test_ambient_recorder_picked_up_at_construction(self):
        sim, machine, fl = traced_machine()
        assert machine.network.flight is fl
        # The context exited; new networks go back to the null recorder.
        assert active_flight() is NULL_FLIGHT

    def test_explicit_flight_argument(self):
        from repro.network.network import Network
        from repro.topology.torus import Torus3D

        sim = Simulator()
        fl = FlightRecorder()
        net = Network(sim, Torus3D(2, 2, 2), flight=fl)
        assert net.flight is fl


class TestUnicastSpans:
    def test_hop_count_equals_route_length(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 1, 0)).slice(0)
        run_exchange(sim, src, dst)
        [flight] = fl.packets()
        route = machine.torus.route((0, 0, 0), (1, 1, 0))
        assert len(flight.hops) == len(route) == 2
        assert [(h.dim, h.sign) for h in flight.hops] == [
            (hop.dim, hop.sign) for hop in route
        ]

    def test_span_nesting_and_causality(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 1, 0)).slice(0)
        run_exchange(sim, src, dst, payload_bytes=64)
        [flight] = fl.packets()
        t = flight.inject_ns
        for hop in flight.hops:
            assert t <= hop.enqueue_ns <= hop.grant_ns < hop.release_ns
            t = hop.grant_ns  # next hop starts after this grant
        assert flight.deliveries[-1].time_ns >= flight.hops[-1].grant_ns
        assert flight.latency_ns > 0
        assert flight.payload_bytes == 64

    def test_uncontended_hop_has_no_wait(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 0, 0)).slice(0)
        run_exchange(sim, src, dst)
        [flight] = fl.packets()
        assert flight.queue_wait_ns == 0.0
        assert fl.contended_hops() == 0
        assert all(h.queue_depth == 0 for h in flight.hops)

    def test_delivery_records_destination(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((0, 0, 1)).slice(0)
        run_exchange(sim, src, dst)
        [flight] = fl.packets()
        [d] = flight.deliveries
        assert tuple(d.node) == (0, 0, 1)
        assert d.client == "slice0"


class TestContention:
    def make_contended_run(self):
        """Two slices on one node send 256 B to the same neighbour at
        the same time: they share the single outgoing link."""
        sim, machine, fl = traced_machine()
        a0 = machine.node((0, 0, 0)).slice(0)
        a1 = machine.node((0, 0, 0)).slice(1)
        dst = machine.node((1, 0, 0)).slice(0)
        dst.memory.allocate("rx", 2)

        def send(s, slot):
            yield from s.send_write(
                (1, 0, 0), "slice0", counter_id="c", address=("rx", slot),
                payload_bytes=256,
            )

        def recv():
            yield from dst.poll("c", 2)

        procs = [
            sim.process(send(a0, 0)),
            sim.process(send(a1, 1)),
            sim.process(recv()),
        ]
        sim.run(until=sim.all_of(procs))
        return fl

    def test_queue_wait_recorded(self):
        fl = self.make_contended_run()
        waits = [f.queue_wait_ns for f in fl.packets()]
        assert fl.contended_hops() == 1
        assert max(waits) > 0
        assert min(waits) == 0  # the winner streamed immediately

    def test_queue_depth_series(self):
        fl = self.make_contended_run()
        [link] = [
            name for name, s in fl.queue_depth_series.items() if s
        ]
        depths = [d for _, d in fl.queue_depth_series[link]]
        assert max(depths) == 1  # one waiter behind the winner
        assert depths[-1] == 0  # drained by the end
        assert fl.max_queue_depth() == 1
        assert fl.max_queue_depth(link) == 1

    def test_metrics_fed(self):
        fl = self.make_contended_run()
        m = fl.metrics
        assert m.counter("net.packets_injected").value == 2
        assert m.counter("net.packets_delivered").value == 2
        assert m.counter("net.link_traversals").value == 2
        assert m.histogram("net.hop_wait_ns").count == 1
        assert m.histogram("net.packet_latency_ns").count == 2
        assert m.gauge("net.queue_depth").high_watermark == 1

    def test_link_busy_time_is_serialization(self):
        fl = self.make_contended_run()
        [link] = [n for n, occ in fl.link_occupancy.items() if len(occ) == 2]
        # Two 256 B packets: busy time is twice one serialization.
        per_packet = fl.link_busy_ns(link) / 2
        assert per_packet == pytest.approx((32 + 256) * 8.0 / 36.8)


class TestMulticast:
    def test_hops_match_compiled_tree(self):
        sim, machine, fl = traced_machine()
        net = machine.network
        targets = {(1, 0, 0): ("slice0",), (0, 1, 0): ("slice0",),
                   (1, 1, 0): ("slice0",)}
        for node in targets:
            machine.node(node).slice(0).memory.allocate("mc", 1)
        pattern = compile_pattern(net.torus, (0, 0, 0), targets)
        pattern_id = net.register_pattern(pattern)
        packet = WritePacket(
            src_node=net.torus.coord((0, 0, 0)), src_client="slice0",
            dst_node=net.torus.coord((0, 0, 0)), dst_client="slice0",
            counter_id="mc", address=("mc", 0), pattern_id=pattern_id,
        )
        done = net.inject(packet)
        sim.run(until=done)
        [flight] = fl.packets()
        assert flight.multicast
        assert len(flight.hops) == pattern.total_link_traversals
        assert len(flight.deliveries) == len(targets)


class TestNonPerturbation:
    def test_recording_does_not_change_simulated_time(self):
        def measure(traced):
            sim = Simulator()
            if traced:
                fl = FlightRecorder()
                with use_flight(fl):
                    machine = build_machine(sim, 2, 2, 2)
            else:
                machine = build_machine(sim, 2, 2, 2)
            src = machine.node((0, 0, 0)).slice(0)
            dst = machine.node((1, 0, 0)).slice(0)
            return run_exchange(sim, src, dst)

        assert measure(traced=False) == measure(traced=True) == 162.0

    def test_disabling_mid_run_stops_recording(self):
        sim, machine, fl = traced_machine()
        src = machine.node((0, 0, 0)).slice(0)
        dst = machine.node((1, 0, 0)).slice(0)
        run_exchange(sim, src, dst)
        fl.enabled = False
        run_exchange(sim, src, dst, counter="c2")
        assert len(fl) == 1

    def test_null_recorder_hooks_are_noops(self):
        null = NullFlightRecorder()
        null.packet_injected(None, 0.0)
        null.hop_enqueued(None, None, 0.0)
        null.hop_granted(None, None, 0.0)
        null.packet_delivered(None, (0, 0, 0), "slice0", 0.0)

    def test_clear(self):
        fl = TestContention().make_contended_run()
        fl.clear()
        assert len(fl) == 0
        assert fl.links() == []
