"""Tests for the health-report renderers (monitor/report.py): the
self-contained HTML report and the Prometheus text exposition."""

from html.parser import HTMLParser

import pytest

from tests.conftest import run_exchange

from repro.monitor.health import HealthMonitor
from repro.monitor.report import render_html_report, render_prometheus
from repro.trace.metrics import MetricsRegistry

#: Elements that never take a closing tag.
_VOID = {"meta", "br", "hr", "img", "input", "link", "col", "wbr"}


class _StrictParser(HTMLParser):
    """Flags unbalanced tags — enough to catch malformed markup."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if not self.stack:
            self.errors.append(f"closing </{tag}> with empty stack")
        elif self.stack[-1] != tag:
            self.errors.append(
                f"closing </{tag}> but <{self.stack[-1]}> is open")
        else:
            self.stack.pop()


@pytest.fixture
def monitored_run(sim, machine222):
    """A small monitored exchange with a registry feeding percentiles."""
    registry = MetricsRegistry(histogram_max_samples=64)
    h = registry.histogram("net.packet_latency_ns", help="end-to-end")
    monitor = HealthMonitor(sim, machine222, interval_ns=10.0,
                            registry=registry)
    run_exchange(sim, machine222.node(0).slice(0), machine222.node(1).slice(0))
    for i in range(100):
        h.observe(162.0 + (i * 13 % 97))
    verdict = monitor.finalize()
    return verdict, monitor, registry


class TestHtmlReport:
    def test_well_formed_and_sections_present(self, monitored_run):
        verdict, monitor, registry = monitored_run
        doc = render_html_report(verdict, monitor.sampler, (2, 2, 2),
                                 registry=registry, experiment="exchange")
        parser = _StrictParser()
        parser.feed(doc)
        parser.close()
        assert parser.errors == []
        assert parser.stack == []
        # The report's advertised sections all render.
        assert "HEALTHY" in doc
        assert "Link utilization" in doc
        assert "heatmap" in doc
        assert "streaming sketch vs exact" in doc
        assert "packet_conservation" in doc
        assert "exchange" in doc

    def test_self_contained(self, monitored_run):
        verdict, monitor, registry = monitored_run
        doc = render_html_report(verdict, monitor.sampler, (2, 2, 2),
                                 registry=registry)
        # No external assets: archivable as a single CI artifact.
        for needle in ("http://", "https://", "src=", "@import"):
            assert needle not in doc
        assert "<svg" in doc          # charts are inline SVG
        assert "<style>" in doc       # CSS is inline

    def test_status_never_color_alone(self, monitored_run):
        verdict, monitor, _ = monitored_run
        doc = render_html_report(verdict, monitor.sampler, (2, 2, 2))
        # Each check row carries an icon + text label, not just color.
        assert doc.count("pass") >= len(verdict.checks)

    def test_unhealthy_banner(self, sim, machine222):
        monitor = HealthMonitor(sim, machine222, interval_ns=10.0)
        machine222.network.packets_injected += 1  # stranded packet
        verdict = monitor.finalize()
        doc = render_html_report(verdict, monitor.sampler, (2, 2, 2))
        assert "UNHEALTHY" in doc
        assert "fail" in doc

    def test_renders_without_registry(self, sim, machine222):
        verdict = HealthMonitor(sim, machine222).finalize()
        doc = render_html_report(verdict, HealthMonitor(
            sim, machine222).sampler, (2, 2, 2))
        assert "<html" in doc


class TestPrometheus:
    def test_exposition_format(self, monitored_run):
        verdict, monitor, registry = monitored_run
        text = render_prometheus(verdict, monitor.sampler, registry=registry)
        lines = text.splitlines()
        helps = [l for l in lines if l.startswith("# HELP ")]
        types = [l for l in lines if l.startswith("# TYPE ")]
        assert helps and len(helps) == len(types)
        # Every metric family wears the repro_ prefix.
        for line in helps:
            assert line.split()[2].startswith("repro_")

    def test_core_gauges(self, monitored_run):
        verdict, monitor, registry = monitored_run
        text = render_prometheus(verdict, monitor.sampler, registry=registry)
        assert "repro_healthy 1" in text
        assert "repro_sim_time_ns" in text
        assert 'repro_health_check_status{check="packet_conservation"} 0' in text
        # One labelled last-value sample per series, links included.
        assert 'repro_monitor_series_last{series="link.n000.x+.busy_ns"}' in text

    def test_registry_summary_quantiles(self, monitored_run):
        verdict, monitor, registry = monitored_run
        text = render_prometheus(verdict, monitor.sampler, registry=registry)
        assert "# TYPE repro_net_packet_latency_ns summary" in text
        assert 'quantile="0.99"' in text
        assert "repro_net_packet_latency_ns_count 100" in text

    def test_unhealthy_run(self, sim, machine222):
        monitor = HealthMonitor(sim, machine222, interval_ns=10.0)
        machine222.network.packets_injected += 1
        verdict = monitor.finalize()
        text = render_prometheus(verdict, monitor.sampler)
        assert "repro_healthy 0" in text
        assert 'repro_health_check_status{check="packet_conservation"} 2' in text
