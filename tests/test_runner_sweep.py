"""Sweep orchestration (runner/sweep.py): grid parsing/expansion,
serial execution order, caching, checkpoint resume, failure capture,
and the sweep's health verdict.

The parallel-equivalence and cache-poisoning property tests live in
``tests/properties/test_sweep_equivalence.py``; this file covers the
sweep machinery itself, all with ``jobs=1`` so failures localize.
"""

import json
import os

import pytest

from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentSpec
from repro.runner.sweep import (
    expand_grid,
    parse_grid,
    run_sweep,
    sweep_key,
)
from repro.trace.metrics import MetricsRegistry

SPECS = [
    ExperimentSpec("latency", shape=(2, 2, 2), hops=h) for h in (0, 1, 2)
]


class TestParseGrid:
    def test_typed_axes(self):
        axes = parse_grid(["hops=1,2,4", "shape=2x2x2,4x4x4"])
        assert axes == {
            "hops": [1, 2, 4],
            "shape": [(2, 2, 2), (4, 4, 4)],
        }

    def test_extra_axes_fall_back_to_scalar_guessing(self):
        axes = parse_grid(["algorithm=butterfly", "scale=0.5,2"])
        assert axes["algorithm"] == ["butterfly"]
        assert axes["scale"] == [0.5, 2]

    def test_errors(self):
        with pytest.raises(ValueError, match="key=v1,v2"):
            parse_grid(["hops"])
        with pytest.raises(ValueError, match="duplicate"):
            parse_grid(["hops=1", "hops=2"])
        with pytest.raises(ValueError, match="no values"):
            parse_grid(["hops="])
        with pytest.raises(ValueError, match="integers"):
            parse_grid(["hops=one"])


class TestExpandGrid:
    def test_cartesian_product_last_axis_fastest(self):
        specs = expand_grid(
            "latency",
            {"shape": [(2, 2, 2), (4, 4, 4)], "hops": [0, 1]},
        )
        assert [(s.shape, s.hops) for s in specs] == [
            ((2, 2, 2), 0), ((2, 2, 2), 1),
            ((4, 4, 4), 0), ((4, 4, 4), 1),
        ]

    def test_non_spec_axes_become_extras(self):
        specs = expand_grid("allreduce", {"algorithm": ["butterfly"]})
        assert specs[0].extra("algorithm") == "butterfly"

    def test_unknown_experiment_fails_fast(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            expand_grid("nope", {"hops": [1]})

    def test_base_parameters_apply_to_every_point(self):
        specs = expand_grid("latency", {"hops": [0, 1]}, {"seed": 7})
        assert all(s.seed == 7 for s in specs)


class TestRunSweep:
    def test_points_in_grid_order_with_results(self):
        report = run_sweep(SPECS)
        assert report.ok
        assert [p.spec for p in report.points] == SPECS
        assert [p.index for p in report.points] == [0, 1, 2]
        assert report.computed == 3 and report.cache_hits == 0
        assert report.results()[1].value("one_way_1hop_ns") > 0

    def test_duplicate_specs_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep([SPECS[0], SPECS[0]])

    def test_failure_is_captured_not_raised(self):
        bad = ExperimentSpec("latency", shape=(2, 2, 2), hops=50)
        report = run_sweep([SPECS[0], bad])
        assert not report.ok
        assert report.points[0].ok
        assert report.points[1].error is not None
        assert report.failures == [report.points[1]]

    def test_progress_callback_sees_every_point(self):
        seen = []
        run_sweep(SPECS, progress=lambda p: seen.append(p.index))
        assert sorted(seen) == [0, 1, 2]

    def test_metrics_counters_reported(self):
        registry = MetricsRegistry()
        run_sweep(SPECS, registry=registry)
        assert registry.counter("sweep.points").value == 3
        assert registry.counter("sweep.computed").value == 3
        assert registry.counter("sweep.failures").value == 0

    def test_verdict_healthy_and_renders(self):
        verdict = run_sweep(SPECS).verdict()
        assert verdict.healthy
        text = verdict.render_text()
        assert "sweep.completed" in text and "HEALTHY" in text

    def test_verdict_unhealthy_on_failure(self):
        bad = ExperimentSpec("latency", shape=(2, 2, 2), hops=50)
        verdict = run_sweep([bad]).verdict()
        assert not verdict.healthy
        assert "hops" in verdict.render_text() or "50" in verdict.render_text()


class TestCacheIntegration:
    def test_second_sweep_is_all_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = run_sweep(SPECS, cache=cache)
        second = run_sweep(SPECS, cache=cache)
        assert first.computed == 3 and first.cache_hits == 0
        assert second.computed == 0 and second.cache_hits == 3
        assert [p.result.elapsed_ns for p in second.points] == \
            [p.result.elapsed_ns for p in first.points]

    def test_changed_spec_forces_recompute(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_sweep(SPECS, cache=cache)
        changed = [s.replace(rounds=3) for s in SPECS]
        report = run_sweep(changed, cache=cache)
        assert report.computed == 3 and report.cache_hits == 0

    def test_failed_points_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        bad = ExperimentSpec("latency", shape=(2, 2, 2), hops=50)
        run_sweep([bad], cache=cache)
        assert cache.stats.writes == 0


class TestCheckpointResume:
    def test_out_dir_holds_manifest_points_results(self, tmp_path):
        out = str(tmp_path / "sweep")
        report = run_sweep(SPECS, out_dir=out)
        assert report.ok
        manifest = json.load(open(os.path.join(out, "manifest.json")))
        assert manifest["sweep_key"] == sweep_key(SPECS)
        assert sorted(os.listdir(os.path.join(out, "points"))) == [
            "0000.json", "0001.json", "0002.json",
        ]
        summary = json.load(open(os.path.join(out, "summary.json")))
        assert summary["completed"] == 3
        from repro.bench.results import ResultSet

        rs = ResultSet.read(os.path.join(out, "results.json"))
        assert len(rs) == 3

    def test_resume_skips_checkpointed_points(self, tmp_path):
        out = str(tmp_path / "sweep")
        run_sweep(SPECS, out_dir=out)
        os.remove(os.path.join(out, "points", "0001.json"))
        report = run_sweep(SPECS, out_dir=out, resume=True)
        assert report.ok
        assert report.resumed == 2
        assert report.computed == 1
        assert report.points[1].status == "computed"

    def test_resume_rejects_a_different_sweep(self, tmp_path):
        out = str(tmp_path / "sweep")
        run_sweep(SPECS, out_dir=out)
        other = [s.replace(seed=9) for s in SPECS]
        with pytest.raises(ValueError, match="different sweep"):
            run_sweep(other, out_dir=out, resume=True)

    def test_tampered_checkpoint_is_recomputed(self, tmp_path):
        out = str(tmp_path / "sweep")
        run_sweep(SPECS, out_dir=out)
        path = os.path.join(out, "points", "0002.json")
        doc = json.load(open(path))
        doc["payload"]["elapsed_ns"] = 1.0  # tamper without re-hashing
        with open(path, "w") as fh:
            json.dump(doc, fh)
        report = run_sweep(SPECS, out_dir=out, resume=True)
        assert report.ok
        assert report.resumed == 2
        assert report.points[2].status == "computed"
        assert report.points[2].result.elapsed_ns != 1.0
