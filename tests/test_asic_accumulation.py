"""Unit tests for accumulation memories."""

import numpy as np
import pytest

from repro.constants import ACCUM_POLL_NS, POLL_SUCCESS_NS


def _send_accums(sim, machine, values, address="f"):
    src = machine.node((0, 0, 0)).slice(0)
    accum = machine.node((1, 0, 0)).accum[0]

    def sender():
        for v in values:
            yield from src.send_accum(
                (1, 0, 0), "accum0", counter_id="c", address=address,
                payload=v, payload_bytes=8,
            )

    sim.process(sender())
    sim.run()
    return accum


def test_scalar_accumulation(sim, machine222):
    accum = _send_accums(sim, machine222, [1.5, 2.5, -1.0])
    assert accum.value("f") == pytest.approx(3.0)
    assert accum.accum_packets == 3
    assert accum.counter("c").count == 3


def test_array_accumulation(sim, machine222):
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([0.5, 0.5, 0.5])
    accum = _send_accums(sim, machine222, [a, b])
    np.testing.assert_allclose(accum.value("f"), [1.5, 2.5, 3.5])


def test_packed_item_accumulation(sim, machine222):
    """A packed packet accumulates each (key, quantity) pair at its own
    fine-grained address (the 4-byte-quantity semantics of §III.A)."""
    payload = [(0, np.array([1.0, 0.0, 0.0])), (3, np.array([0.0, 2.0, 0.0]))]
    accum = _send_accums(sim, machine222, [payload, payload], address="pack")
    np.testing.assert_allclose(accum.value(("item", 0)), [2.0, 0.0, 0.0])
    np.testing.assert_allclose(accum.value(("item", 3)), [0.0, 4.0, 0.0])


def test_untouched_address_reads_zero(sim, machine222):
    accum = machine222.node((0, 0, 0)).accum[1]
    assert accum.value("nothing") == 0.0


def test_clear(sim, machine222):
    accum = _send_accums(sim, machine222, [5.0])
    accum.clear("f")
    assert accum.value("f") == 0.0
    accum2 = _send_accums(sim, machine222, [5.0], address="g")


def test_accum_counter_polled_across_ring_costs_more(sim, machine222):
    """Accumulation-memory counters are polled by a slice over the
    on-chip network — noticeably slower than a local poll (§III.B)."""
    assert ACCUM_POLL_NS > POLL_SUCCESS_NS
    node = machine222.node((1, 0, 0))
    src = machine222.node((0, 0, 0)).slice(0)
    poller = node.slice(0)
    t = {}

    def sender():
        yield from src.send_accum(
            (1, 0, 0), "accum0", counter_id="c", address="f",
            payload=1.0, payload_bytes=8,
        )

    def poll():
        yield sim.timeout(5_000.0)
        t["done"] = yield from poller.poll_accum(node.accum[0], "c", 1)

    p1, p2 = sim.process(sender()), sim.process(poll())
    sim.run(until=sim.all_of([p1, p2]))
    assert t["done"] == pytest.approx(5_000.0 + ACCUM_POLL_NS)


def test_remote_slice_cannot_poll_accum(sim, machine222):
    remote = machine222.node((0, 0, 0)).slice(0)
    accum = machine222.node((1, 0, 0)).accum[0]

    def bad():
        yield from remote.poll_accum(accum, "c", 1)

    sim.process(bad())
    with pytest.raises(RuntimeError):
        sim.run()


def test_accum_packet_without_address_rejected(sim, machine222):
    src = machine222.node((0, 0, 0)).slice(0)

    def sender():
        yield from src.send_accum(
            (1, 0, 0), "accum0", counter_id="c", address=None, payload_bytes=4
        )

    sim.process(sender())
    with pytest.raises(ValueError, match="without a target address"):
        sim.run()


def test_accumulation_memories_cannot_send():
    """The paper: accumulation memories cannot send packets — the model
    gives them no send helpers."""
    from repro.asic import AccumulationMemory

    assert not hasattr(AccumulationMemory, "send_write")
    assert not hasattr(AccumulationMemory, "send_accum")
