"""Unit tests for node/machine construction."""

import pytest

from repro.asic import build_machine
from repro.engine import Simulator
from repro.topology import NodeCoord


def test_machine_has_all_nodes(sim):
    m = build_machine(sim, 3, 2, 4)
    assert len(m) == 24
    assert len(list(m)) == 24


def test_node_has_seven_clients(machine222):
    node = machine222.node((0, 0, 0))
    clients = node.clients()
    assert len(clients) == 7
    names = {c.name for c in clients}
    assert names == {"slice0", "slice1", "slice2", "slice3", "htis",
                     "accum0", "accum1"}


def test_clients_attached_to_network(machine222):
    net = machine222.network
    for coord in machine222.torus.nodes():
        for name in ("slice0", "htis", "accum1"):
            client = net.client(coord, name)
            assert client.node == coord


def test_unknown_client_lookup(machine222):
    with pytest.raises(KeyError, match="no client"):
        machine222.network.client((0, 0, 0), "gpu")


def test_duplicate_attach_rejected(sim, machine222):
    from repro.asic.slice_ import ProcessingSlice

    with pytest.raises(ValueError, match="already attached"):
        ProcessingSlice(sim, machine222.network, (0, 0, 0), 0)


def test_node_rank(machine222):
    assert machine222.node((0, 0, 0)).rank == 0
    assert machine222.node((1, 1, 1)).rank == 7


def test_htis_throughput_override(sim):
    m = build_machine(sim, 2, 1, 1, htis_pairs_per_ns=10.0)
    assert m.node(0).htis.pairs_per_ns == 10.0


def test_machine_lookup_by_rank_and_tuple(machine444):
    by_rank = machine444.node(17)
    by_tuple = machine444.node(machine444.torus.coord(17))
    assert by_rank is by_tuple
