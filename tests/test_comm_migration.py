"""Unit tests for the migration protocol (§IV.B.5)."""

import pytest

from repro.asic import build_machine
from repro.comm import MigrationProtocol
from repro.engine import Simulator
from repro.topology import NodeCoord


def test_empty_migration_measures_sync_cost(sim, machine222):
    mig = MigrationProtocol(machine222)
    r = mig.run()
    assert r.messages_sent == 0
    assert r.messages_received == 0
    # The pure synchronization (flush multicast + drain) costs well
    # under a couple of microseconds; the paper measures 0.56 µs.
    assert 0.2 < r.elapsed_us < 2.0


def test_payloads_arrive_at_destinations(sim, machine222):
    mig = MigrationProtocol(machine222)
    torus = machine222.torus
    moves = {
        torus.coord((0, 0, 0)): [(torus.coord((1, 0, 0)), "atom-a"),
                                 (torus.coord((0, 1, 0)), "atom-b")],
        torus.coord((1, 1, 1)): [(torus.coord((0, 1, 1)), "atom-c")],
    }
    r = mig.run(moves)
    assert r.messages_sent == 3
    assert r.received_payloads[torus.coord((1, 0, 0))] == ["atom-a"]
    assert r.received_payloads[torus.coord((0, 1, 0))] == ["atom-b"]
    assert r.received_payloads[torus.coord((0, 1, 1))] == ["atom-c"]


def test_non_neighbor_move_rejected(sim):
    m = build_machine(sim, 4, 4, 4)
    mig = MigrationProtocol(m)
    torus = m.torus
    with pytest.raises(ValueError, match="nearest"):
        mig.run({torus.coord((0, 0, 0)): [(torus.coord((2, 0, 0)), "far")]})


def test_protocol_correct_under_reordering():
    """With reorder jitter on, the in-order flush must still never
    overtake migration messages — no message may be lost."""
    for seed in range(3):
        sim = Simulator()
        m = build_machine(sim, 3, 3, 3, reorder_jitter_ns=300.0, seed=seed)
        mig = MigrationProtocol(m)
        torus = m.torus
        moves = {}
        for c in torus.nodes():
            neigh = torus.moore_neighbors(c)
            moves[c] = [(neigh[i % len(neigh)], f"{c}-{i}") for i in range(4)]
        r = mig.run(moves)
        assert r.messages_received == r.messages_sent == 4 * 27


def test_migration_reusable(sim, machine222):
    mig = MigrationProtocol(machine222)
    torus = machine222.torus
    r1 = mig.run()
    r2 = mig.run({torus.coord((0, 0, 0)): [(torus.coord((1, 0, 0)), 1)]})
    assert r2.messages_received == 1


def test_fifo_watermark_reported(sim, machine222):
    mig = MigrationProtocol(machine222)
    torus = machine222.torus
    src = torus.coord((0, 0, 0))
    dst = torus.coord((1, 0, 0))
    r = mig.run({src: [(dst, i) for i in range(10)]})
    assert r.fifo_high_watermark >= 1


def test_512_node_sync_near_paper():
    """Empty migration on the full 8×8×8 machine: the flush
    synchronization should land near the paper's 0.56 µs."""
    sim = Simulator()
    m = build_machine(sim, 8, 8, 8)
    r = MigrationProtocol(m).run()
    assert r.elapsed_us == pytest.approx(0.56, rel=0.5)
