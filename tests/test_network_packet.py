"""Unit tests for packet formats and the wire model."""

import numpy as np
import pytest

from repro.constants import HEADER_BYTES, TORUS_LINK_EFFECTIVE_GBPS
from repro.network.packet import (
    AccumPacket,
    FifoPacket,
    Packet,
    PacketKind,
    WritePacket,
    payload_bytes_of,
)
from repro.topology import NodeCoord

A = NodeCoord(0, 0, 0)
B = NodeCoord(1, 0, 0)


def mk(**kw):
    kw.setdefault("src_node", A)
    kw.setdefault("src_client", "slice0")
    kw.setdefault("dst_node", B)
    kw.setdefault("dst_client", "slice0")
    return Packet(**kw)


def test_payload_bounds_enforced():
    mk(payload_bytes=0)
    mk(payload_bytes=256)
    with pytest.raises(ValueError):
        mk(payload_bytes=257)
    with pytest.raises(ValueError):
        mk(payload_bytes=-1)


def test_inline_payload_rides_in_header():
    small = mk(payload_bytes=8)
    assert small.inline
    assert small.wire_bytes == HEADER_BYTES
    big = mk(payload_bytes=9)
    assert not big.inline
    assert big.wire_bytes == HEADER_BYTES + 9


def test_serialization_time_matches_effective_bandwidth():
    p = mk(payload_bytes=256)
    expected = (HEADER_BYTES + 256) * 8.0 / TORUS_LINK_EFFECTIVE_GBPS
    assert p.serialization_ns == pytest.approx(expected)


def test_accum_packet_payload_granularity():
    AccumPacket(src_node=A, src_client="htis", dst_node=B,
                dst_client="accum0", payload_bytes=8)
    with pytest.raises(ValueError):
        AccumPacket(src_node=A, src_client="htis", dst_node=B,
                    dst_client="accum0", payload_bytes=7)


def test_kind_constructors():
    assert WritePacket(src_node=A, src_client="s", dst_node=B,
                       dst_client="d").kind is PacketKind.WRITE
    assert FifoPacket(src_node=A, src_client="s", dst_node=B,
                      dst_client="d").kind is PacketKind.FIFO


def test_packet_ids_unique():
    ids = {mk().packet_id for _ in range(100)}
    assert len(ids) == 100


def test_multicast_flag():
    assert not mk().is_multicast
    assert mk(pattern_id=3).is_multicast


def test_payload_bytes_of():
    assert payload_bytes_of(None) == 0
    assert payload_bytes_of(np.zeros(3)) == 24
    assert payload_bytes_of(b"abcd") == 4
    assert payload_bytes_of(1.5) == 8
    with pytest.raises(TypeError):
        payload_bytes_of(object())
