"""Unit tests for the invariant watchdogs, diagnostic log, and the
HealthMonitor wiring (monitor/watchdog.py + monitor/health.py)."""

import json

import pytest

from tests.conftest import run_exchange

from repro.engine.simulator import EventHistory, Simulator
from repro.asic.node import build_machine
from repro.monitor.health import (
    HealthMonitor,
    active_monitor_session,
    use_monitoring,
)
from repro.monitor.watchdog import DiagnosticLog

#: The invariant checks every verdict must carry.
EXPECTED_CHECKS = {
    "packet_conservation",
    "sync_counter_consistency",
    "fifo_depth_bounds",
    "stall_detector",
    "queue_growth",
    "telemetry_loss",
}


class TestDiagnosticLog:
    def test_emit_and_jsonl_round_trip(self):
        log = DiagnosticLog()
        log.emit(100.0, "warning", "fifo_depth_bounds", "backpressure",
                 fifo="(0, 0, 0):slice0")
        log.emit(200.0, "error", "stall_detector", "no progress")
        assert len(log) == 2
        assert log.counts == {"info": 0, "warning": 1, "error": 1}
        assert log.worst_level == "error"
        records = [json.loads(line) for line in log.jsonl_lines()]
        assert records[0] == {
            "t_ns": 100.0, "level": "warning", "check": "fifo_depth_bounds",
            "msg": "backpressure", "fifo": "(0, 0, 0):slice0",
        }
        assert records[1]["t_ns"] == 200.0

    def test_write_jsonl(self, tmp_path):
        log = DiagnosticLog()
        log.emit(1.0, "info", "c", "m")
        path = tmp_path / "diag.jsonl"
        log.write_jsonl(str(path))
        assert json.loads(path.read_text().strip())["check"] == "c"

    def test_bounded_with_dropped_counter(self):
        log = DiagnosticLog(capacity=2)
        for i in range(5):
            log.emit(float(i), "error", "c", f"m{i}")
        assert len(log) == 2
        assert log.dropped == 3
        # Per-level counts include dropped records: severity is never
        # under-reported by the bound.
        assert log.counts["error"] == 5

    def test_bad_level_rejected(self):
        log = DiagnosticLog()
        with pytest.raises(ValueError, match="level"):
            log.emit(0.0, "fatal", "c", "m")


class TestHealthMonitor:
    def test_healthy_exchange(self, sim, machine222):
        monitor = HealthMonitor(sim, machine222, interval_ns=10.0)
        node0 = machine222.node(0)
        node1 = machine222.node(1)
        run_exchange(sim, node0.slice(0), node1.slice(0))
        verdict = monitor.finalize()
        assert verdict.healthy
        assert {c.name for c in verdict.checks} == EXPECTED_CHECKS
        assert all(c.status == "ok" for c in verdict.checks)
        assert verdict.packets_injected > 0
        assert verdict.packets_in_flight == 0
        assert verdict.samples_recorded > 0
        # Per-link series exist for every direction of the 2x2x2 torus.
        link_series = [s for s in monitor.sampler
                       if s.name.startswith("link.")]
        assert len(link_series) == 8 * 6 * 2  # busy_ns + queue each

    def test_finalize_detaches_and_is_idempotent(self, sim, machine222):
        monitor = HealthMonitor(sim, machine222, interval_ns=10.0)
        assert sim._monitor_hook is not None
        v1 = monitor.finalize()
        assert sim._monitor_hook is None
        v2 = monitor.finalize()
        assert v1.checks == v2.checks

    def test_conservation_violation_detected(self, sim, machine222):
        monitor = HealthMonitor(sim, machine222, interval_ns=1.0)
        # Corrupt the books: more completions than injections.
        machine222.network.packets_completed += 1
        sim.schedule(5.0, lambda: None)
        sim.run()
        verdict = monitor.verdict()
        check = verdict.check("packet_conservation")
        assert check.status == "error"
        assert "exceed" in check.detail
        assert not verdict.healthy
        assert monitor.log.counts["error"] == 1

    def test_missing_delivery_detected_at_finalize(self, sim, machine222):
        monitor = HealthMonitor(sim, machine222, interval_ns=10.0)
        # A packet that claims to be in flight at quiescence.
        machine222.network.packets_injected += 1
        verdict = monitor.finalize()
        assert verdict.check("packet_conservation").status == "error"
        assert "in flight" in verdict.check("packet_conservation").detail

    def test_stall_detected(self, sim, machine222):
        monitor = HealthMonitor(sim, machine222, interval_ns=5.0, stall_ns=40.0)
        # One phantom in-flight packet plus a ticking event loop that
        # makes no network progress: livelock.
        machine222.network.packets_injected += 1
        for t in range(1, 40):
            sim.schedule(t * 5.0, lambda: None)
        sim.run()
        check = monitor.verdict().check("stall_detector")
        assert check.status == "error"
        assert "no network progress" in check.detail
        # One diagnostic per stall episode, not one per tick.
        assert monitor.log.counts["error"] == 1

    def test_stranded_counter_waiter_detected(self, sim, machine222):
        monitor = HealthMonitor(sim, machine222, interval_ns=10.0)
        s = machine222.node(0).slice(0)

        def waiter():
            yield s.counter("never").wait_for(5)

        sim.process(waiter())
        sim.run()
        verdict = monitor.finalize()
        check = verdict.check("sync_counter_consistency")
        assert check.status == "error"
        assert "waiters" in check.detail
        assert not verdict.healthy

    def test_event_history_drops_surfaced(self, sim, machine222):
        monitor = HealthMonitor(sim, machine222, interval_ns=10.0)
        history = monitor.watch_event_history(
            EventHistory(capacity=2).install(sim)
        )
        for t in range(1, 8):
            sim.schedule(float(t), lambda: None)
        sim.run()
        verdict = monitor.finalize()
        assert history.dropped > 0
        assert verdict.dropped_events == history.dropped
        check = verdict.check("telemetry_loss")
        assert check.status == "warning"
        assert "history events" in check.detail
        # Telemetry loss warns but does not fail the run.
        assert verdict.healthy

    def test_ring_overflow_surfaced_as_warning(self, sim, machine222):
        monitor = HealthMonitor(sim, machine222, interval_ns=1.0,
                                series_capacity=2)
        for t in range(1, 10):
            sim.schedule(float(t), lambda: None)
        sim.run()
        verdict = monitor.finalize()
        assert verdict.dropped_samples > 0
        assert verdict.check("telemetry_loss").status == "warning"
        assert verdict.healthy

    def test_verdict_render_text(self, sim, machine222):
        verdict = HealthMonitor(sim, machine222).finalize()
        text = verdict.render_text()
        assert "HEALTHY" in text
        for name in EXPECTED_CHECKS:
            assert name in text


class TestMonitorSession:
    def test_ambient_attachment(self):
        assert active_monitor_session() is None
        with use_monitoring(interval_ns=10.0) as session:
            assert active_monitor_session() is session
            sim = Simulator()
            machine = build_machine(sim, 2, 2, 2)
            assert len(session.monitors) == 1
            assert session.monitor.machine is machine
        assert active_monitor_session() is None

    def test_machines_outside_session_unmonitored(self):
        sim = Simulator()
        build_machine(sim, 2, 2, 2)
        assert sim._monitor_hook is None

    def test_multiple_machines_and_finalize(self):
        with use_monitoring(interval_ns=10.0) as session:
            for _ in range(2):
                build_machine(Simulator(), 2, 2, 2)
        verdicts = session.finalize()
        assert len(verdicts) == 2
        assert all(v.healthy for v in verdicts)
        with pytest.raises(ValueError, match="expected exactly 1"):
            session.monitor

    def test_sessions_nest(self):
        with use_monitoring() as outer:
            with use_monitoring() as inner:
                build_machine(Simulator(), 2, 2, 2)
                assert len(inner.monitors) == 1
            assert active_monitor_session() is outer
            assert not outer.monitors
