"""Unit tests for the force-field kernels."""

import numpy as np
import pytest
from scipy.special import erfc as scipy_erfc

from repro.md.forcefield import COULOMB, ForceField, _erfc


def test_erfc_matches_scipy():
    x = np.linspace(-4, 4, 201)
    np.testing.assert_allclose(_erfc(x), scipy_erfc(x), atol=2e-7)


def test_lj_minimum_at_sigma_2_to_sixth():
    ff = ForceField(cutoff=20.0, ewald_alpha=0.0, shift=False)
    sigma, eps = 3.0, 0.5
    r_min = sigma * 2 ** (1 / 6)
    r = np.array([r_min])
    _e, f = ff.pair_energy_force(
        r, np.array([eps]), np.array([sigma]), np.array([0.0])
    )
    assert f[0] == pytest.approx(0.0, abs=1e-10)
    e_min, _ = ff.pair_energy_force(
        r, np.array([eps]), np.array([sigma]), np.array([0.0])
    )
    assert e_min[0] == pytest.approx(-eps)


def test_lj_repulsive_inside_attractive_outside():
    ff = ForceField(cutoff=20.0, ewald_alpha=0.0)
    sigma = np.array([3.0])
    eps = np.array([0.5])
    q = np.array([0.0])
    r_min = 3.0 * 2 ** (1 / 6)
    _, f_in = ff.pair_energy_force(np.array([0.9 * r_min]), eps, sigma, q)
    _, f_out = ff.pair_energy_force(np.array([1.2 * r_min]), eps, sigma, q)
    assert f_in[0] > 0  # repulsive
    assert f_out[0] < 0  # attractive


def test_coulomb_without_split_is_plain():
    ff = ForceField(cutoff=50.0, ewald_alpha=0.0, shift=False)
    r = np.array([5.0])
    e, f = ff.pair_energy_force(r, np.zeros(1), np.ones(1), np.array([1.0]))
    assert e[0] == pytest.approx(COULOMB / 5.0)
    assert f[0] == pytest.approx(COULOMB / 5.0 ** 3)


def test_erfc_screening_reduces_energy():
    plain = ForceField(cutoff=50.0, ewald_alpha=0.0, shift=False)
    split = ForceField(cutoff=50.0, ewald_alpha=0.4, shift=False)
    r = np.array([5.0])
    e0, _ = plain.pair_energy_force(r, np.zeros(1), np.ones(1), np.array([1.0]))
    e1, _ = split.pair_energy_force(r, np.zeros(1), np.ones(1), np.array([1.0]))
    assert 0 < e1[0] < e0[0]


def test_force_is_negative_energy_gradient():
    ff = ForceField(cutoff=50.0, ewald_alpha=0.35)  # shift: constant, no effect
    eps, sig, qq = np.array([0.2]), np.array([3.0]), np.array([0.5])
    r = np.array([4.2])
    h = 1e-6
    e_plus, _ = ff.pair_energy_force(r + h, eps, sig, qq)
    e_minus, _ = ff.pair_energy_force(r - h, eps, sig, qq)
    _, f_over_r = ff.pair_energy_force(r, eps, sig, qq)
    force = f_over_r[0] * r[0]
    assert force == pytest.approx(-(e_plus[0] - e_minus[0]) / (2 * h), rel=1e-5)


def test_self_energy_sign_and_scaling():
    ff = ForceField(ewald_alpha=0.35)
    q = np.array([1.0, -1.0, 0.5])
    e = ff.self_energy(q)
    assert e < 0
    assert ff.self_energy(2 * q) == pytest.approx(4 * e)
    assert ForceField(ewald_alpha=0.0).self_energy(q) == 0.0


def test_lorentz_berthelot():
    ff = ForceField()
    eps, sig = ff.combine_lj(
        np.array([0.1]), np.array([0.4]), np.array([3.0]), np.array([1.0])
    )
    assert eps[0] == pytest.approx(0.2)
    assert sig[0] == pytest.approx(2.0)


def test_parameter_validation():
    with pytest.raises(ValueError):
        ForceField(cutoff=0.0)
    with pytest.raises(ValueError):
        ForceField(ewald_alpha=-0.1)


def test_energy_shift_zero_at_cutoff():
    """With shifting on, pair energy vanishes exactly at the cutoff."""
    import numpy as np

    ff = ForceField(cutoff=7.0, ewald_alpha=0.3, shift=True)
    e, _f = ff.pair_energy_force(
        np.array([7.0]), np.array([0.2]), np.array([3.0]), np.array([0.4])
    )
    assert abs(e[0]) < 1e-14


def test_shift_does_not_change_forces():
    import numpy as np

    r = np.array([3.3, 4.4, 6.1])
    eps = np.array([0.2, 0.1, 0.3])
    sig = np.array([3.0, 2.5, 3.2])
    qq = np.array([0.2, -0.3, 0.1])
    _e1, f1 = ForceField(cutoff=7.0, shift=True).pair_energy_force(r, eps, sig, qq)
    _e2, f2 = ForceField(cutoff=7.0, shift=False).pair_energy_force(r, eps, sig, qq)
    np.testing.assert_allclose(f1, f2)
