"""Quick benchmark suite (bench/suite.py) and the ``repro bench`` /
``repro attribute`` CLI subcommands.

The JSON the suite emits is the committed regression baseline, so its
byte-identity across runs is load-bearing: any nondeterminism here
silently breaks the CI gate.
"""

import pytest

from repro.__main__ import main
from repro.bench.results import ResultSet
from repro.bench.suite import SUITE_BENCHMARKS, run_suite

SHAPE = (2, 2, 2)


class TestRunSuite:
    def test_covers_every_benchmark(self):
        rs = run_suite(shape=SHAPE)
        assert {r.benchmark for r in rs} == set(SUITE_BENCHMARKS)
        for r in rs:
            # The monitor perturbation and scheduler equivalence gates
            # are *meant* to be exactly zero (zero baseline = any
            # drift is an infinite regression).
            if r.benchmark in ("monitor", "scheduler") and r.better == "lower":
                assert r.value == 0.0
            else:
                assert r.value > 0

    def test_only_filter(self):
        rs = run_suite(shape=SHAPE, only={"latency", "bandwidth"})
        assert {r.benchmark for r in rs} == {"latency", "bandwidth"}

    def test_latency_metrics_match_the_model(self):
        rs = run_suite(shape=(4, 4, 4), only={"latency"})
        by_metric = {r.metric: r.value for r in rs}
        assert by_metric["one_way_0hop_ns"] == 97.0
        assert by_metric["one_way_1hop_ns"] == 162.0
        assert len(by_metric) == 4  # hops 0..3 on a 4x4x4

    def test_json_is_byte_identical_across_runs(self):
        # Satellite: determinism of the machine-readable results. Two
        # independent in-process runs must serialize to the same bytes
        # (no timestamps, no process-global ids, canonical ordering).
        a = run_suite(shape=SHAPE).dumps()
        b = run_suite(shape=SHAPE).dumps()
        assert a == b

    def test_small_torus_caps_the_hop_sweep(self):
        rs = run_suite(shape=(2, 1, 1), only={"latency"})
        assert {r.metric for r in rs} == {"one_way_0hop_ns", "one_way_1hop_ns"}


class TestBenchCli:
    def run(self, *argv):
        return main(list(argv))

    def test_bench_writes_schema_valid_results(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        rc = self.run("bench", "--shape", "2x2x2", "--out", str(out))
        assert rc == 0
        rs = ResultSet.read(str(out))
        assert {r.benchmark for r in rs} == set(SUITE_BENCHMARKS)

    def test_compare_clean_baseline_passes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert self.run("bench", "--shape", "2x2x2", "--out", str(base)) == 0
        rc = self.run("bench", "--shape", "2x2x2", "--compare", str(base))
        assert rc == 0
        assert capsys.readouterr().out.rstrip().endswith("OK")

    def test_compare_fails_on_injected_regression(self, tmp_path, capsys):
        # Tamper with the baseline: claim 1-hop latency used to be much
        # better than the model now produces.
        rs = run_suite(shape=SHAPE)
        doc = rs.to_dict()
        for rec in doc["results"]:
            if rec["metric"] == "one_way_1hop_ns":
                rec["value"] = 100.0  # current 162 is a +62% regression
        base = tmp_path / "tampered.json"
        base.write_text(ResultSet.from_dict(doc).dumps())
        rc = self.run("bench", "--shape", "2x2x2", "--compare", str(base))
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_fails_on_missing_metric(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert self.run("bench", "--shape", "2x2x2", "--out", str(base)) == 0
        rc = self.run("bench", "--shape", "2x2x2", "--only", "latency",
                      "--compare", str(base))
        assert rc == 1
        assert "MISSING" in capsys.readouterr().out

    def test_threshold_flag_loosens_the_gate(self, tmp_path, capsys):
        rs = run_suite(shape=SHAPE)
        doc = rs.to_dict()
        for rec in doc["results"]:
            rec["value"] *= 0.97  # everything "regresses" by ~3.1%
        base = tmp_path / "base.json"
        base.write_text(ResultSet.from_dict(doc).dumps())
        assert self.run("bench", "--shape", "2x2x2", "--compare", str(base),
                        "--threshold", "0.01") == 1
        capsys.readouterr()
        assert self.run("bench", "--shape", "2x2x2", "--compare", str(base),
                        "--threshold", "0.10") == 0


class TestAttributeCli:
    @pytest.mark.parametrize("hops", [0, 1, 3])
    def test_latency_attribution_matches_simulation(self, hops, capsys):
        rc = main(["attribute", "latency", "--hops", str(hops),
                   "--shape", "4x4x4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "attributed total - simulated end-to-end: 0.000 ns" in out
        assert "TOTAL (trace-derived)" in out

    def test_traced_experiment_reports_phases_and_hotspots(self, capsys):
        rc = main(["attribute", "congestion", "--shape", "2x2x2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hotspot" in out.lower() or "wait ns" in out
