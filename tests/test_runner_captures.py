"""Tests for the consolidated ``Captures`` run API (and its shims)."""

import json

import pytest

from repro.runner import Captures, run_experiment
from repro.runner.spec import ExperimentSpec
from repro.trace.metrics import MetricsRegistry

SPEC = ExperimentSpec("latency", shape=(3, 3, 3), hops=1)


def _canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))


class TestCaptures:
    def test_default_attaches_nothing(self):
        result = run_experiment(SPEC)
        assert result.flight is None
        assert result.profile is None
        assert result.congestion is None
        assert result.registry is not None  # the run-owned registry

    def test_flight_profile_congestion(self):
        caps = Captures(flight=True, profile=True, congestion=True)
        result = run_experiment(SPEC, caps)
        assert result.flight is not None
        assert result.profile is not None
        assert result.congestion is not None

    def test_caller_registry_accumulates(self):
        registry = MetricsRegistry()
        result = run_experiment(SPEC, Captures(registry=registry))
        assert result.registry is registry
        # Caller-owned registry: the serializable snapshot stays empty
        # (it would otherwise double-count across accumulated runs).
        assert result.metrics == {}

    def test_captures_are_passive(self):
        bare = _canon(run_experiment(SPEC))
        full = _canon(run_experiment(
            SPEC, Captures(flight=True, profile=True, congestion=True)
        ))
        assert bare == full

    def test_truthiness(self):
        assert not Captures()
        assert Captures(flight=True)
        assert Captures(registry=MetricsRegistry())

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Captures().flight = True

    def test_meta_records_scheduler(self):
        from repro.engine import use_scheduler

        for name in ("heap", "wheel"):
            with use_scheduler(name):
                assert run_experiment(SPEC).meta["scheduler"] == name


class TestLegacyShims:
    def test_legacy_kwargs_warn_and_behave_identically(self):
        with pytest.warns(DeprecationWarning, match="captures=Captures"):
            legacy = run_experiment(SPEC, flight=True, profile=True)
        new = run_experiment(SPEC, Captures(flight=True, profile=True))
        assert legacy.flight is not None and legacy.profile is not None
        assert _canon(legacy) == _canon(new)

    def test_legacy_congestion_and_registry(self):
        registry = MetricsRegistry()
        with pytest.warns(DeprecationWarning):
            result = run_experiment(SPEC, congestion=True, registry=registry)
        assert result.congestion is not None
        assert result.registry is registry

    def test_both_forms_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="not both"):
                run_experiment(SPEC, Captures(), flight=True)

    def test_wrappers_do_not_warn(self, recwarn):
        """The CLI-facing helpers are rewired onto Captures internally
        — using them must not trip the deprecation shim."""
        import warnings

        from repro.congestion.capture import run_congested
        from repro.profile.capture import run_profiled
        from repro.trace.capture import run_traced

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert run_traced("latency", shape=(3, 3, 3)).flight is not None
            assert run_profiled("latency", shape=(3, 3, 3)).profile is not None
            cap = run_congested("congestion", shape=(3, 3, 3), rounds=1)
            assert cap.congestion is not None
