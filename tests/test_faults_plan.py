"""FaultPlan (faults/plan.py): selectors, validation, serialization,
and the derived-seed discipline that keeps fault sweeps deterministic.
"""

import math

import pytest

from repro.faults.plan import (
    BitError,
    Degradation,
    FaultPlan,
    LinkDown,
    NodeStall,
    selector_matches,
    single_link_fault_plan,
)


class TestSelectors:
    def test_star_matches_everything(self):
        for dim in ("x", "y", "z"):
            for sign in (1, -1):
                assert selector_matches("*", dim, sign)

    def test_dimension_selector_matches_both_signs(self):
        assert selector_matches("x", "x", 1)
        assert selector_matches("x", "x", -1)
        assert not selector_matches("x", "y", 1)

    def test_signed_selector_matches_one_direction(self):
        assert selector_matches("z+", "z", 1)
        assert not selector_matches("z+", "z", -1)
        assert selector_matches("z-", "z", -1)
        assert not selector_matches("z-", "x", -1)

    @pytest.mark.parametrize("bad", ["w", "x*", "+x", "xy", "x+-", ""])
    def test_bad_selectors_rejected_at_construction(self, bad):
        with pytest.raises(ValueError, match="link selector"):
            BitError(links=bad, ber=1e-6)


class TestFaultValidation:
    def test_ber_range(self):
        with pytest.raises(ValueError, match="ber"):
            BitError(ber=1.0)
        with pytest.raises(ValueError, match="ber"):
            BitError(ber=-0.1)
        BitError(ber=0.999)  # fine

    def test_windows_need_start_before_end(self):
        with pytest.raises(ValueError, match="window"):
            LinkDown(start_ns=10.0, end_ns=10.0)
        with pytest.raises(ValueError, match="window"):
            NodeStall(start_ns=-1.0, end_ns=5.0)

    def test_degradation_factors_never_speed_links_up(self):
        with pytest.raises(ValueError, match=">= 1"):
            Degradation(bandwidth_factor=0.5)
        with pytest.raises(ValueError, match=">= 1"):
            Degradation(latency_factor=0.9)

    def test_window_activity(self):
        d = Degradation(start_ns=100.0, end_ns=200.0, bandwidth_factor=2.0)
        assert not d.active(99.9)
        assert d.active(100.0)
        assert not d.active(200.0)

    def test_plan_escalation_policy_checked(self):
        with pytest.raises(ValueError, match="on_exhaust"):
            FaultPlan(on_exhaust="panic")
        with pytest.raises(ValueError, match="max_retries"):
            FaultPlan(max_retries=-1)


class TestEnabled:
    def test_empty_plan_is_inert(self):
        assert not FaultPlan().enabled
        assert not FaultPlan(seed=7, max_retries=3).enabled

    def test_any_fault_enables(self):
        assert FaultPlan(bit_errors=(BitError(ber=1e-9),)).enabled
        assert FaultPlan(degradations=(
            Degradation(bandwidth_factor=2.0),)).enabled
        assert FaultPlan(link_downs=(LinkDown(end_ns=1.0),)).enabled
        assert FaultPlan(node_stalls=(
            NodeStall(node=(1, 0, 0), end_ns=1.0),)).enabled


class TestSerialization:
    def plan(self):
        return FaultPlan(
            seed=42,
            max_retries=5,
            backoff_max_ns=640.0,
            on_exhaust="drop",
            bit_errors=(BitError(links="x+", ber=1e-5, corrupt_attempts=2),),
            degradations=(
                Degradation(links="y", start_ns=10.0, end_ns=math.inf,
                            bandwidth_factor=4.0, latency_factor=2.0),
            ),
            link_downs=(LinkDown(links="z-", start_ns=0.0, end_ns=500.0),),
            node_stalls=(NodeStall(node=(1, 2, 3), start_ns=5.0,
                                   end_ns=15.0),),
        )

    def test_round_trip_including_infinity(self):
        plan = self.plan()
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.degradations[0].end_ns == math.inf
        assert again.node_stalls[0].node == (1, 2, 3)
        assert again.backoff_max_ns == 640.0

    def test_from_dict_rejects_other_schemas(self):
        with pytest.raises(ValueError, match="schema"):
            FaultPlan.from_dict({"schema": "repro-bench/1"})

    def test_canonical_is_stable_and_hash_keys_it(self):
        a, b = self.plan(), self.plan()
        assert a.canonical() == b.canonical()
        assert a.plan_hash == b.plan_hash
        assert a.plan_hash != FaultPlan().plan_hash

    def test_empty_plan_round_trips(self):
        assert FaultPlan.from_dict(FaultPlan().to_dict()) == FaultPlan()


class TestDerivedSeeds:
    def test_deterministic_per_scope(self):
        plan = single_link_fault_plan(1e-6, seed=3)
        key = ((0, 0, 0), "x", 1)
        assert plan.derived_seed("link", key) == plan.derived_seed("link", key)

    def test_distinct_scopes_get_distinct_streams(self):
        plan = single_link_fault_plan(1e-6, seed=3)
        seeds = {
            plan.derived_seed("link", ((0, 0, 0), d, s))
            for d in ("x", "y", "z") for s in (1, -1)
        }
        assert len(seeds) == 6

    def test_plan_content_shifts_every_stream(self):
        a = single_link_fault_plan(1e-6, seed=3)
        b = single_link_fault_plan(1e-6, seed=4)
        key = ((0, 0, 0), "x", 1)
        assert a.derived_seed("link", key) != b.derived_seed("link", key)


class TestConvenience:
    def test_single_link_fault_plan(self):
        plan = single_link_fault_plan(1e-4, links="y-", seed=9,
                                      max_retries=3, on_exhaust="drop")
        assert plan.enabled
        assert plan.bit_errors == (BitError(links="y-", ber=1e-4),)
        assert plan.max_retries == 3 and plan.on_exhaust == "drop"
