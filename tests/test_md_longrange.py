"""Unit tests for the grid-based long-range solver."""

import numpy as np
import pytest

from repro.md.forcefield import COULOMB, ForceField
from repro.md.longrange import LongRangeSolver
from repro.md.system import ChemicalSystem, bulk_water, tiny_system


def test_charge_conservation_on_grid():
    s = bulk_water(27, seed=1)
    solver = LongRangeSolver(grid_points=16)
    grid, _pts, _w = solver.spread_charges(s)
    assert grid.sum() == pytest.approx(s.charges.sum(), abs=1e-12)


def test_spreading_weights_normalised():
    s = tiny_system(16)
    solver = LongRangeSolver(grid_points=8)
    _grid, _pts, w = solver.spread_charges(s)
    np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-12)


def test_forces_nearly_conserve_momentum():
    """Analytic-differentiation grid forces trade exact momentum
    conservation for exact energy consistency (the standard smooth-PME
    trade-off); the net force must stay far below the force scale."""
    s = bulk_water(27, seed=2)
    ff = ForceField(cutoff=6.0, ewald_alpha=0.35)
    res = LongRangeSolver(grid_points=24).solve(s, ff)
    residual = np.abs(res.forces.sum(axis=0)).max()
    assert residual < 5e-3 * np.abs(res.forces).max()


def test_reciprocal_energy_positive_for_neutral_systems():
    """The k-space sum of |S(k)|² with a positive influence function
    is non-negative."""
    s = bulk_water(27, seed=3)
    ff = ForceField(ewald_alpha=0.35)
    res = LongRangeSolver(grid_points=16).solve(s, ff)
    assert res.energy >= 0.0


def test_two_charge_reciprocal_matches_direct_ewald():
    """For two opposite charges, compare against a direct reciprocal-
    space Ewald sum."""
    box = 12.0
    positions = np.array([[3.0, 6.0, 6.0], [8.0, 6.0, 6.0]])
    charges = np.array([1.0, -1.0])
    s = ChemicalSystem(
        positions=positions, velocities=np.zeros((2, 3)),
        masses=np.ones(2), charges=charges,
        lj_epsilon=np.zeros(2), lj_sigma=np.ones(2),
        bonds=np.empty((0, 2), dtype=np.int64),
        bond_r0=np.empty(0), bond_k=np.empty(0), box_edge=box,
    )
    alpha = 0.45
    ff = ForceField(cutoff=5.0, ewald_alpha=alpha)
    res = LongRangeSolver(grid_points=24, spread_width=4).solve(s, ff)

    # Direct Ewald reciprocal sum.
    kmax = 12
    e_direct = 0.0
    for nx in range(-kmax, kmax + 1):
        for ny in range(-kmax, kmax + 1):
            for nz in range(-kmax, kmax + 1):
                if nx == ny == nz == 0:
                    continue
                k = 2 * np.pi / box * np.array([nx, ny, nz])
                k2 = k @ k
                sk = np.sum(charges * np.exp(-1j * positions @ k))
                e_direct += (
                    4 * np.pi / k2 * np.exp(-k2 / (4 * alpha ** 2)) * abs(sk) ** 2
                )
    e_direct *= COULOMB / (2 * box ** 3)
    assert res.energy == pytest.approx(e_direct, rel=0.05)


def test_reciprocal_force_is_negative_energy_gradient():
    """The interpolated grid force must be the (numerical) gradient of
    the grid energy — force/energy self-consistency of the solver."""
    s = tiny_system(12, box_edge=10.0, seed=7)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.4)
    solver = LongRangeSolver(grid_points=16, spread_width=4)
    f = solver.solve(s, ff).forces
    h = 1e-5
    for atom in (0, 7):
        for ax in range(3):
            p, m = s.copy(), s.copy()
            p.positions[atom, ax] += h
            m.positions[atom, ax] -= h
            grad = (solver.solve(p, ff).energy - solver.solve(m, ff).energy) / (2 * h)
            assert f[atom, ax] == pytest.approx(-grad, rel=5e-3, abs=1e-4)


def test_total_pair_force_matches_periodic_coulomb():
    """Real (erfc) + reciprocal force on a ±1 pair approximates the
    true periodic Coulomb force: the bare 1/d² attraction corrected by
    the strongest wraparound images."""
    box = 20.0
    d = 6.0
    positions = np.array([[7.0, 10.0, 10.0], [7.0 + d, 10.0, 10.0]])
    charges = np.array([1.0, -1.0])
    s = ChemicalSystem(
        positions=positions, velocities=np.zeros((2, 3)),
        masses=np.ones(2), charges=charges,
        lj_epsilon=np.zeros(2), lj_sigma=np.ones(2),
        bonds=np.empty((0, 2), dtype=np.int64),
        bond_r0=np.empty(0), bond_k=np.empty(0), box_edge=box,
    )
    ff = ForceField(cutoff=9.0, ewald_alpha=0.4)
    from repro.md.rangelimited import range_limited_forces

    f_real = range_limited_forces(s, ff).forces
    f_recip = LongRangeSolver(grid_points=32, spread_width=4).solve(s, ff).forces
    total = (f_real + f_recip)[0, 0]
    # Direct image sum along x within a few shells (transverse images
    # largely cancel by symmetry): attraction from the partner at +6,
    # opposition from its -x image at -14, etc.
    expected = 0.0
    for n in range(-3, 4):
        x = d + n * box
        expected += COULOMB * np.sign(x) / x ** 2  # -q at these images
        x_self = n * box
        if n != 0:
            expected -= COULOMB * np.sign(x_self) / x_self ** 2  # +q images
    assert total == pytest.approx(expected, rel=0.1)
    assert total > 0  # net attraction toward the partner at +x


def test_influence_function_zero_mode_dropped():
    solver = LongRangeSolver(grid_points=8)
    g = solver.influence_function(10.0, 0.35)
    assert g[0, 0, 0] == 0.0
    assert np.all(g >= 0)


def test_grid_tiling_validation():
    solver = LongRangeSolver(grid_points=32)
    assert solver.grid_points_per_node(8) == 64
    with pytest.raises(ValueError):
        solver.grid_points_per_node(5)


def test_constructor_validation():
    with pytest.raises(ValueError):
        LongRangeSolver(grid_points=2)
    with pytest.raises(ValueError):
        LongRangeSolver(spread_width=1)
