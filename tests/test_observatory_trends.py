"""Trend detection over the ledger and the CI trajectory artifact."""

from __future__ import annotations

import math

import pytest

from repro.__main__ import main
from repro.bench.results import BenchResult, ResultSet
from repro.observatory.ledger import Ledger
from repro.observatory.trends import (
    MetricSeries,
    append_trajectory,
    detect,
    read_trajectory,
    series_from_records,
    series_from_trajectory,
    trend_report,
)

# Deterministic ±2% "measurement jitter" around the paper's 162 ns
# one-hop latency — what a healthy ledger looks like.
JITTERED = [162.0, 160.5, 163.9, 161.2, 164.1, 159.8, 162.7, 161.9, 163.3]


def _series(values, better="lower"):
    s = MetricSeries(benchmark="latency", metric="one_way_1hop_ns",
                     config_hash="abc123def456", units="ns", better=better)
    for i, v in enumerate(values):
        s.add(v, f"r{i}")
    return s


def _ledger_with(tmp_path, values, name="led.jsonl"):
    """A synthetic ledger: one bench record per value."""
    ledger = Ledger(str(tmp_path / name))
    for v in values:
        row = BenchResult("latency", "one_way_1hop_ns", v, "ns",
                          "lower", {"hops": 1})
        ledger.append("bench", "bench 2x2x2", metrics=[row.to_dict()])
    return ledger


class TestDetect:
    def test_injected_3x_regression_is_flagged(self):
        """Acceptance: jittered history then a 3x latency spike."""
        v = detect(_series(JITTERED + [3 * 162.0]))
        assert v.status == "regression"
        assert v.worsening > 1.5  # roughly +200%
        assert v.median == pytest.approx(162.0, rel=0.02)

    def test_jitter_alone_stays_quiet(self):
        """Acceptance: the same history without the spike is ok."""
        v = detect(_series(JITTERED + [163.0]))
        assert v.status == "ok"

    def test_direction_higher_is_better(self):
        # Throughput dropping to a third IS the regression here.
        v = detect(_series([2e6, 2.02e6, 1.98e6, 2.01e6, 2e6 / 3],
                           better="higher"))
        assert v.status == "regression"
        # ... and a throughput spike is an improvement, not an alert.
        v = detect(_series([2e6, 2.02e6, 1.98e6, 2.01e6, 6e6],
                           better="higher"))
        assert v.status == "improvement"

    def test_improvement_latency_drop(self):
        v = detect(_series(JITTERED + [81.0]))
        assert v.status == "improvement"
        assert not v.is_regression

    def test_insufficient_history(self):
        v = detect(_series([162.0, 163.0, 161.0]))  # < min_points
        assert v.status == "insufficient"
        assert "need more history" in v.detail()

    def test_zero_median_mirrors_compare(self):
        # A hard gate sitting at zero must stay hard: any nonzero
        # latest is an infinite worsening, like bench/compare's
        # zero-baseline rule.
        v = detect(_series([0.0, 0.0, 0.0, 0.0, 1.0]))
        assert v.status == "regression"
        assert math.isinf(v.worsening)
        assert v.to_dict()["worsening"] is None  # JSON-safe
        v = detect(_series([0.0, 0.0, 0.0, 0.0, 0.0]))
        assert v.status == "ok"

    def test_noisy_series_earns_proportional_slack(self):
        # ±20% noise: a +25% latest is within 5 MADs and must not page.
        noisy = [100.0, 120.0, 80.0, 115.0, 85.0, 118.0, 82.0, 125.0]
        v = detect(_series(noisy))
        assert v.status == "ok"
        assert v.threshold > 0.10  # grew past the floor
        # A flat deterministic series keeps the tight 10% floor.
        flat = [100.0] * 8
        assert detect(_series(flat)).threshold == pytest.approx(0.10)

    def test_window_limits_the_baseline(self):
        # Ancient history outside the window must not drag the median.
        old = [1000.0] * 10
        recent = [100.0, 101.0, 99.0, 100.0, 102.0]
        v = detect(_series(old + recent), window=4)
        assert v.status == "ok"
        assert v.median == pytest.approx(100.0, rel=0.02)


class TestReport:
    def test_report_over_ledger_records(self, tmp_path):
        ledger = _ledger_with(tmp_path, JITTERED + [3 * 162.0])
        series_map = series_from_records(ledger.read())
        assert len(series_map) == 1
        report = trend_report(series_map)
        assert not report.ok
        assert len(report.regressions) == 1
        text = report.render_text()
        assert "TREND ALERT" in text
        assert "REGRESSION" in text

    def test_report_quiet_ledger(self, tmp_path):
        ledger = _ledger_with(tmp_path, JITTERED + [162.5])
        report = trend_report(series_from_records(ledger.read()))
        assert report.ok
        assert "OK: no metric drifted" in report.render_text()

    def test_to_doc_counts(self, tmp_path):
        ledger = _ledger_with(tmp_path, JITTERED + [3 * 162.0])
        doc = trend_report(series_from_records(ledger.read())).to_doc()
        assert doc["schema"] == "repro-obs-trends/1"
        assert doc["ok"] is False
        assert doc["metrics"] == 1
        assert doc["regressions"] == 1
        assert doc["verdicts"][0]["status"] == "regression"

    def test_changed_config_starts_a_new_series(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led.jsonl"))
        for hops in (1, 2):
            row = BenchResult("latency", "one_way_1hop_ns", 162.0 * hops,
                              "ns", "lower", {"hops": hops})
            ledger.append("bench", "b", metrics=[row.to_dict()])
        series_map = series_from_records(ledger.read())
        assert len(series_map) == 2
        assert all(len(s.values) == 1 for s in series_map.values())


class TestTrajectory:
    def test_missing_file_reads_empty(self, tmp_path):
        doc = read_trajectory(str(tmp_path / "absent.json"))
        assert doc["points"] == []

    def test_append_assigns_monotonic_seq(self, tmp_path):
        path = str(tmp_path / "traj.json")
        rs = ResultSet([BenchResult("latency", "one_way_1hop_ns", 162.0,
                                    "ns", "lower", {"hops": 1})])
        append_trajectory(path, rs, provenance={"git_rev": "aaa"})
        doc = append_trajectory(path, rs, provenance={"git_rev": "bbb"})
        assert [p["seq"] for p in doc["points"]] == [0, 1]
        assert doc == read_trajectory(path)
        series_map = series_from_trajectory(doc)
        (series,) = series_map.values()
        assert series.values == [162.0, 162.0]
        assert series.tags == ["seq 0", "seq 1"]

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/1", "points": []}')
        with pytest.raises(ValueError, match="repro-trajectory/1"):
            read_trajectory(str(path))


class TestCli:
    def test_trends_exit_one_on_regression(self, tmp_path, capsys):
        ledger = _ledger_with(tmp_path, JITTERED + [3 * 162.0])
        rc = main(["obs", "trends", "--ledger", ledger.path])
        out = capsys.readouterr().out
        assert rc == 1
        assert "TREND ALERT" in out

    def test_trends_exit_zero_on_jitter(self, tmp_path, capsys):
        ledger = _ledger_with(tmp_path, JITTERED + [162.5])
        rc = main(["obs", "trends", "--ledger", ledger.path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK: no metric drifted" in out

    def test_trends_json_is_one_machine_line(self, tmp_path, capsys):
        import json

        ledger = _ledger_with(tmp_path, JITTERED + [3 * 162.0])
        rc = main(["obs", "trends", "--ledger", ledger.path, "--json"])
        out = capsys.readouterr().out
        assert rc == 1
        lines = [ln for ln in out.splitlines() if ln.strip()]
        assert len(lines) == 1
        doc = json.loads(lines[0])
        assert doc["schema"] == "repro-obs-trends/1"
        assert doc["ok"] is False

    def test_trends_over_trajectory_file(self, tmp_path, capsys):
        path = str(tmp_path / "traj.json")
        for v in JITTERED + [3 * 162.0]:
            rs = ResultSet([BenchResult("latency", "one_way_1hop_ns", v,
                                        "ns", "lower", {"hops": 1})])
            append_trajectory(path, rs)
        rc = main(["obs", "trends", "--trajectory", path])
        out = capsys.readouterr().out
        assert rc == 1
        assert "TREND ALERT" in out

    def test_trends_tunable_floor(self, tmp_path, capsys):
        # A +15% shift passes the default 10% floor is a regression,
        # but a loosened floor lets it through.
        ledger = _ledger_with(tmp_path, [100.0] * 8 + [115.0])
        assert main(["obs", "trends", "--ledger", ledger.path]) == 1
        capsys.readouterr()
        assert main(["obs", "trends", "--ledger", ledger.path,
                     "--min-worsening", "0.25"]) == 0
