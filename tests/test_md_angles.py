"""Unit tests for harmonic angle terms (and their machine mapping)."""

import numpy as np
import pytest

from repro.md.bonded import angle_energy_forces, bonded_energy_forces
from repro.md.system import ChemicalSystem, bulk_water, synthetic_dhfr


def three_atom_system(theta_deg, theta0_deg=104.5, k=55.0):
    """i—j—k bend in the xy plane, vertex at the origin-ish."""
    t = np.deg2rad(theta_deg)
    positions = np.array([
        [6.0, 5.0, 5.0],                                # i along +x
        [5.0, 5.0, 5.0],                                # vertex j
        [5.0 + np.cos(t), 5.0 + np.sin(t), 5.0],        # k at angle θ
    ])
    return ChemicalSystem(
        positions=positions,
        velocities=np.zeros((3, 3)),
        masses=np.ones(3),
        charges=np.zeros(3),
        lj_epsilon=np.zeros(3),
        lj_sigma=np.ones(3),
        bonds=np.array([[0, 1], [1, 2]]),
        bond_r0=np.ones(2),
        bond_k=np.zeros(2),
        box_edge=20.0,
        angles=np.array([[0, 1, 2]]),
        angle_theta0=np.array([np.deg2rad(theta0_deg)]),
        angle_k=np.array([k]),
    )


def test_energy_zero_at_equilibrium():
    s = three_atom_system(104.5)
    e, f = angle_energy_forces(s)
    assert e == pytest.approx(0.0, abs=1e-20)
    np.testing.assert_allclose(f, 0.0, atol=1e-10)


def test_harmonic_energy_value():
    s = three_atom_system(120.0, theta0_deg=104.5, k=55.0)
    e, _ = angle_energy_forces(s)
    expected = 55.0 * (np.deg2rad(120.0) - np.deg2rad(104.5)) ** 2
    assert e == pytest.approx(expected, rel=1e-10)


def test_forces_sum_to_zero():
    s = three_atom_system(130.0)
    _e, f = angle_energy_forces(s)
    np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-12)


def test_force_matches_numerical_gradient():
    rng = np.random.default_rng(3)
    s = bulk_water(8, seed=4)
    s.positions += rng.normal(scale=0.12, size=s.positions.shape)
    _e, f = angle_energy_forces(s)
    h = 1e-6
    for atom in (0, 1, 2, 5):
        for ax in range(3):
            p, m = s.copy(), s.copy()
            p.positions[atom, ax] += h
            m.positions[atom, ax] -= h
            grad = (angle_energy_forces(p)[0] - angle_energy_forces(m)[0]) / (2 * h)
            assert f[atom, ax] == pytest.approx(-grad, rel=1e-4, abs=1e-6)


def test_restoring_direction():
    """The angle force always reduces the angle energy: stepping atoms
    along the force must lower E whether the angle is opened or
    pinched."""
    for theta in (140.0, 70.0):
        s = three_atom_system(theta)
        e0, f = angle_energy_forces(s)
        stepped = s.copy()
        stepped.positions += 1e-4 * f
        e1, _ = angle_energy_forces(stepped)
        assert e1 < e0


def test_subset_evaluation_partitions_total():
    s = bulk_water(16, seed=5)
    s.positions += np.random.default_rng(0).normal(scale=0.1, size=s.positions.shape)
    e_all, f_all = angle_energy_forces(s)
    half = s.num_angles // 2
    e1, f1 = angle_energy_forces(s, subset=np.arange(half))
    e2, f2 = angle_energy_forces(s, subset=np.arange(half, s.num_angles))
    assert e1 + e2 == pytest.approx(e_all)
    np.testing.assert_allclose(f1 + f2, f_all, atol=1e-12)


def test_bonded_combines_bonds_and_angles():
    s = bulk_water(8, seed=6)
    s.positions += np.random.default_rng(1).normal(scale=0.1, size=s.positions.shape)
    from repro.md.bonded import bond_energy_forces

    e, f = bonded_energy_forces(s)
    eb, fb = bond_energy_forces(s)
    ea, fa = angle_energy_forces(s)
    assert e == pytest.approx(eb + ea)
    np.testing.assert_allclose(f, fb + fa, atol=1e-12)


def test_angles_in_bond_program_and_machine():
    """Angle terms flow through the bond program and the machine's
    payload mode: distributed forces still match the serial kernels."""
    from repro.md.forcefield import ForceField
    from repro.md.machine import AntonMD
    from repro.md.rangelimited import range_limited_forces

    system = bulk_water(24, seed=7)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.3)
    md = AntonMD(system, (2, 2, 2), ff=ff, payload_mode=True, slack=0.5)
    assert md.bond_program.num_terms == system.num_bonds + system.num_angles
    md.run_step("range_limited")
    ref = range_limited_forces(system, ff).forces + bonded_energy_forces(system)[1]
    err = np.abs(md.collected_forces - ref).max()
    assert err < 1e-9 * max(1.0, np.abs(ref).max())


def test_angle_nve_energy_conservation():
    from repro.md.forcefield import ForceField
    from repro.md.integrator import Integrator

    s = bulk_water(16, seed=8)
    ff = ForceField(cutoff=3.8, ewald_alpha=0.35)
    reports = Integrator(ff, dt=0.0004).run(s, 50)
    totals = [r.total for r in reports]
    drift = (max(totals) - min(totals)) / abs(np.mean(totals))
    assert drift < 2e-3


def test_dhfr_has_realistic_angle_density():
    d = synthetic_dhfr(atoms=1200)
    # One angle per water molecule plus protein chain angles.
    assert d.num_angles > d.num_atoms / 4
    assert d.num_bonded_terms == d.num_bonds + d.num_angles


def test_validation_of_angle_arrays():
    s = three_atom_system(104.5)
    with pytest.raises(ValueError, match="angle index"):
        ChemicalSystem(
            positions=s.positions, velocities=s.velocities, masses=s.masses,
            charges=s.charges, lj_epsilon=s.lj_epsilon, lj_sigma=s.lj_sigma,
            bonds=s.bonds, bond_r0=s.bond_r0, bond_k=s.bond_k,
            box_edge=s.box_edge,
            angles=np.array([[0, 1, 9]]),
            angle_theta0=np.array([1.0]),
            angle_k=np.array([1.0]),
        )
