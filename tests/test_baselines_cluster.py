"""Unit tests for the commodity-cluster baseline."""

import pytest

from repro.baselines import ClusterNetwork, MpiContext
from repro.constants import DDR2_INFINIBAND
from repro.engine import Simulator


def _mpi(nodes=2, params=DDR2_INFINIBAND):
    sim = Simulator()
    return MpiContext(ClusterNetwork(sim, nodes, params))


def test_ping_pong_near_published_latency():
    """One-way 0-byte latency lands in the DDR2 IB class (~2–4 µs):
    base latency plus per-message CPU costs."""
    t = _mpi().ping_pong_ns(0)
    assert 2_000 < t < 5_000


def test_latency_grows_with_size():
    mpi = _mpi()
    t0 = mpi.ping_pong_ns(0)
    t64k = mpi.ping_pong_ns(65536)
    assert t64k > t0 + 65536 * 8 / DDR2_INFINIBAND.bandwidth_gbps * 0.9


def test_transfer_time_grows_with_message_count():
    """The commodity-cluster property the paper contrasts with Anton:
    many small messages are much slower than one large one (Fig. 7)."""
    mpi = _mpi()
    t1 = mpi.transfer_ns(2048, 1)
    t64 = mpi.transfer_ns(2048, 64)
    assert t64 / t1 > 5.0  # Fig. 7b: roughly 7-8x on InfiniBand


def test_allreduce_512_near_paper():
    """§IV.B.4: 35.5 µs for a 32-byte all-reduce on 512 IB nodes."""
    mpi = _mpi(nodes=512)
    t = mpi.allreduce_ns(32) / 1000.0
    assert t == pytest.approx(35.5, rel=0.15)


def test_allreduce_requires_power_of_two():
    mpi = _mpi(nodes=6)
    with pytest.raises(ValueError):
        mpi.allreduce_ns(32)


def test_message_counting():
    sim = Simulator()
    net = ClusterNetwork(sim, 2)
    mpi = MpiContext(net)
    mpi.transfer_ns(1000, 5)
    assert net.messages_total == 5
    assert net.node(0).messages_sent == 5
    assert net.node(1).messages_received == 5


def test_self_send_rejected():
    sim = Simulator()
    net = ClusterNetwork(sim, 2)

    def bad():
        yield from net.send(0, 0, 10, "t")

    with pytest.raises(ValueError):
        sim.run(until=sim.process(bad()))


def test_empty_cluster_rejected():
    with pytest.raises(ValueError):
        ClusterNetwork(Simulator(), 0)
