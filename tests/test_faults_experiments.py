"""The degradation-study experiments (faults/study.py) and their
registration through the PR-4 runner: the latency-vs-BER curve, the
link-degradation workload, and the Anton-vs-cluster crossover.
"""

import json
import os

import pytest

from repro.faults.study import (
    cluster_incast_ns,
    crossover_vs_cluster,
    run_fault_sensitivity,
    run_link_degradation,
)
from repro.runner.spec import ExperimentSpec, ensure_registered

ensure_registered()

SHAPE = (3, 3, 3)


def _values(outcome):
    return {m.metric: m.value for m in outcome.measurements}


class TestFaultSensitivity:
    def spec(self, **extras):
        base = ExperimentSpec("fault_sensitivity", shape=SHAPE, rounds=2)
        return base.with_extras(**extras) if extras else base

    def test_ber_zero_is_the_fault_free_control(self):
        out = run_fault_sensitivity(self.spec())
        v = _values(out)
        assert v["faults_retransmissions"] == 0
        assert v["faults_packets_lost"] == 0
        assert out.elapsed_ns == v["incast_latency_ns"] > 0

    def test_latency_monotone_in_ber_with_zero_loss(self):
        """The acceptance curve: latency rises with BER, every
        corruption is recovered by retransmission, nothing is lost."""
        curve = []
        for ber in (0.0, 1e-4, 3e-4, 1e-3):
            out = run_fault_sensitivity(self.spec(
                ber=ber, max_retries=64, backoff_max_ns=640.0))
            v = _values(out)
            assert v["faults_packets_lost"] == 0
            assert v["faults_retry_exhausted"] == 0
            if ber > 0.0:
                assert v["faults_retransmissions"] > 0
            curve.append(out.elapsed_ns)
        assert curve == sorted(curve)
        assert curve[-1] > curve[0]

    def test_deterministic_for_a_fixed_spec(self):
        spec = self.spec(ber=3e-4, max_retries=64)
        a = run_fault_sensitivity(spec)
        b = run_fault_sensitivity(spec)
        assert a.elapsed_ns == b.elapsed_ns
        assert _values(a) == _values(b)

    def test_seed_is_a_real_axis(self):
        outcomes = {
            run_fault_sensitivity(
                ExperimentSpec("fault_sensitivity", shape=SHAPE, rounds=2,
                               seed=s).with_extras(ber=3e-4, max_retries=64)
            ).elapsed_ns
            for s in range(4)
        }
        assert len(outcomes) > 1


class TestLinkDegradation:
    def spec(self, **extras):
        base = ExperimentSpec("link_degradation", shape=SHAPE, rounds=2)
        return base.with_extras(**extras) if extras else base

    def test_default_degrades_the_incast_bottleneck(self):
        """The default selector (z+) must be on the incast's critical
        path — with dimension-ordered routing the z links into the sink
        carry the terminal queue, so the degradation is visible
        end-to-end."""
        control = run_fault_sensitivity(
            ExperimentSpec("fault_sensitivity", shape=SHAPE, rounds=2))
        degraded = run_link_degradation(self.spec())
        assert degraded.elapsed_ns > control.elapsed_ns

    def test_down_mode_blocks_then_recovers(self):
        out = run_link_degradation(self.spec(mode="down", window_ns=2000.0))
        v = _values(out)
        assert v["faults_link_down_blocks"] > 0
        assert out.elapsed_ns > 2000.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="degradation mode"):
            run_link_degradation(self.spec(mode="melt"))


class TestCrossover:
    def test_cluster_baseline_dwarfs_fault_free_anton(self):
        anton = run_fault_sensitivity(
            ExperimentSpec("fault_sensitivity", shape=SHAPE, rounds=2))
        cluster = cluster_incast_ns(26, rounds=2)
        assert cluster > anton.elapsed_ns  # the paper's whole point

    def test_crossover_found_at_high_ber(self):
        res = crossover_vs_cluster(shape=SHAPE, bers=(0.0, 1e-4, 1e-3),
                                   rounds=2)
        assert [p.ber for p in res.points] == [0.0, 1e-4, 1e-3]
        assert all(p.packets_lost == 0 for p in res.points)
        assert res.points[0].anton_ns < res.cluster_ns
        assert res.points[-1].anton_ns >= res.cluster_ns
        assert res.crossover_ber == 1e-3
        text = res.render_text()
        assert "crossover at ber=0.001" in text
        assert "SLOWER" in text and "faster" in text


class TestThroughTheRunner:
    def test_sweep_cli_emits_the_curve(self, tmp_path):
        """The acceptance command: ``repro sweep fault_sensitivity
        --grid ber=...`` completes, exits 0, and persists monotone
        latencies with retransmissions > 0 and zero loss."""
        from repro.__main__ import main

        out = str(tmp_path / "curve")
        rc = main([
            "sweep", "fault_sensitivity", "--shape", "3x3x3",
            "--rounds", "2", "--grid", "ber=0,0.0001,0.0003",
            "--grid", "max_retries=64", "--no-cache", "--out", out,
        ])
        assert rc == 0
        doc = json.load(open(os.path.join(out, "results.json")))
        rows = doc["results"]

        def of(metric):
            picked = [r for r in rows if r["metric"] == metric]
            picked.sort(key=lambda r: float(
                r["config"]["extras"].get("ber", 0.0)))
            return [r["value"] for r in picked]

        lat = of("incast_latency_ns")
        assert len(lat) == 3
        assert lat == sorted(lat) and lat[-1] > lat[0]
        assert sum(of("faults_retransmissions")) > 0
        assert of("faults_packets_lost") == [0.0, 0.0, 0.0]

    def test_attribute_cli_shows_the_retry_component(self, capsys):
        """``repro attribute --ber`` surfaces the retry time as its own
        Fig. 6 row, and the attributed total still matches exactly."""
        from repro.__main__ import main

        rc = main(["attribute", "latency", "--hops", "3",
                   "--shape", "4x4x4", "--ber", "0.001"])
        out = capsys.readouterr().out
        assert rc == 0  # zero drift between attribution and simulation
        assert "retransmission" in out
        rc = main(["attribute", "latency", "--hops", "3",
                   "--shape", "4x4x4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "retransmission" not in out

    def test_experiments_are_registered(self):
        from repro.runner.spec import get_experiment

        assert get_experiment("fault_sensitivity")
        assert get_experiment("link_degradation")
        assert get_experiment("selftest")
