"""Unit tests for the intra-node ring layout model."""

import pytest

from repro.constants import HOP_NS, LINK_COST_NS, THROUGH_RING_NS
from repro.topology.ring import NUM_RING_ROUTERS, RingClient, RingLayout


def test_every_client_is_placed():
    layout = RingLayout()
    for client in RingClient:
        router = layout.router_of(client)
        assert 0 <= router < NUM_RING_ROUTERS


def test_ring_hops_symmetric_and_bounded():
    for a in range(NUM_RING_ROUTERS):
        for b in range(NUM_RING_ROUTERS):
            h = RingLayout.ring_hops(a, b)
            assert h == RingLayout.ring_hops(b, a)
            assert 0 <= h <= NUM_RING_ROUTERS // 2


def test_ring_hops_bad_index():
    with pytest.raises(ValueError):
        RingLayout.ring_hops(0, 6)


def test_x_transit_crosses_more_routers_than_y_or_z():
    """Fig. 5: X hops cost 76 ns vs 54 ns for Y/Z because X-dimension
    transit traffic traverses more on-chip routers per node."""
    layout = RingLayout()
    assert layout.transit_hops("x") > layout.transit_hops("y")
    assert layout.transit_hops("x") > layout.transit_hops("z")


def test_calibrated_constants_consistent_with_layout():
    """The derived THROUGH_RING costs must order the same way as the
    layout's transit hop counts, and each marginal hop cost must
    decompose as link cost + through-ring cost."""
    layout = RingLayout()
    assert THROUGH_RING_NS["x"] > THROUGH_RING_NS["y"] >= THROUGH_RING_NS["z"]
    for d in ("x", "y", "z"):
        assert LINK_COST_NS[d] + THROUGH_RING_NS[d] == pytest.approx(HOP_NS[d])
