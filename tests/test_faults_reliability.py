"""The link-level reliability protocol (faults/session.py + the
network transport's fault hooks): exact stop-and-wait retry arithmetic,
in-order delivery across retries, loud loss accounting, availability
windows, and the RETRY component's exact attribution tiling.
"""

import pytest

from repro.asic import build_machine
from repro.constants import HOP_NS, LINK_COST_NS
from repro.engine import Simulator
from repro.faults.plan import (
    BitError,
    Degradation,
    FaultPlan,
    LinkDown,
    NodeStall,
    single_link_fault_plan,
)
from repro.faults.session import FaultSession, RetryExhausted, use_faults
from repro.trace.metrics import MetricsRegistry
from tests.conftest import run_exchange


def one_way_under(plan, dst=(1, 0, 0), payload_bytes=0, shape=(4, 4, 4),
                  registry=None):
    """One counted write under ``plan``; returns (elapsed, session, m)."""
    sim = Simulator()
    session = FaultSession(plan, registry=registry)
    with use_faults(session):
        m = build_machine(sim, *shape)
    src = m.node((0, 0, 0)).slice(0)
    rcv = m.node(dst).slice(0)
    t = run_exchange(sim, src, rcv, payload_bytes=payload_bytes)
    return t, session, m


def forced_plan(k, **kwargs):
    """Deterministically corrupt the first ``k`` attempts everywhere."""
    return FaultPlan(bit_errors=(BitError(links="*", corrupt_attempts=k),),
                     **kwargs)


class TestStopAndWaitArithmetic:
    def test_each_retry_costs_serialization_detect_nak_backoff(self):
        t0, _, _ = one_way_under(FaultPlan())  # disabled session: 162 ns
        t1, s1, _ = one_way_under(forced_plan(1))
        t2, s2, _ = one_way_under(forced_plan(2))
        assert t0 == pytest.approx(162.0)
        plan = forced_plan(1)
        d1 = t1 - t0  # one failed attempt: ser + detect + nak + base
        d2 = t2 - t1  # second attempt backs off twice as long
        assert d2 - d1 == pytest.approx(plan.backoff_base_ns)
        ser = d1 - plan.detect_ns - plan.nak_ns - plan.backoff_base_ns
        assert ser > 0  # header serialization time
        assert t2 == pytest.approx(
            162.0 + 2 * (ser + plan.detect_ns + plan.nak_ns)
            + plan.backoff_base_ns * (1 + 2)
        )
        assert s1.stats.retransmissions == 1
        assert s2.stats.retransmissions == 2
        assert s2.stats.corrupted == 2
        assert s2.stats.max_retries_seen == 2
        assert s2.stats.packets_lost == 0

    def test_backoff_cap_truncates_the_exponential(self):
        base = FaultPlan().backoff_base_ns
        t_uncapped, _, _ = one_way_under(forced_plan(4))
        t_capped, _, _ = one_way_under(forced_plan(4, backoff_max_ns=base))
        # Uncapped backoffs: 1+2+4+8 bases; capped: 4 bases.
        assert t_uncapped - t_capped == pytest.approx((15 - 4) * base)

    def test_retries_land_on_link_counters_and_metrics(self):
        registry = MetricsRegistry()
        _, session, m = one_way_under(forced_plan(2), registry=registry)
        link = m.network.link((0, 0, 0), "x", 1)
        assert link.retransmissions == 2
        assert registry.counter("faults.retransmissions").value == 2
        assert registry.counter("faults.corrupted").value == 2
        assert registry.counter("faults.packets_lost").value == 0
        assert registry.histogram(
            "faults.retries_per_traversal").count == 1

    def test_retries_scale_with_hop_count(self):
        _, s1, _ = one_way_under(forced_plan(1), dst=(1, 0, 0))
        _, s3, _ = one_way_under(forced_plan(1), dst=(1, 1, 1))
        assert s1.stats.retransmissions == 1
        assert s3.stats.retransmissions == 3  # one per traversed link


class TestDeterminism:
    def plan(self, seed):
        return single_link_fault_plan(2e-4, seed=seed, max_retries=64)

    def run(self, seed):
        return one_way_under(self.plan(seed), dst=(2, 1, 0),
                             payload_bytes=256)

    def test_same_plan_same_bytes(self):
        ta, sa, _ = self.run(seed=1)
        tb, sb, _ = self.run(seed=1)
        assert ta == tb
        assert sa.stats.as_dict() == sb.stats.as_dict()

    def test_seed_changes_the_draw(self):
        outcomes = {self.run(seed=s)[0] for s in range(6)}
        assert len(outcomes) > 1  # some seed observes a corruption


class TestInOrderDelivery:
    def test_order_preserved_across_retries(self):
        """Three ordered writes through a corrupting link still deliver
        in issue order (stop-and-wait holds the channel, preserving the
        per-link FCFS the in-order gate relies on)."""
        sim = Simulator()
        with use_faults(FaultSession(forced_plan(1))):
            m = build_machine(sim, 4, 4, 4)
        src = m.node((0, 0, 0)).slice(0)
        dst = m.node((1, 0, 0)).slice(0)
        dst.memory.allocate("seq", 3)
        arrivals = []

        def sender():
            for i in range(3):
                yield from src.send_write(
                    (1, 0, 0), dst.name, counter_id="seq",
                    address=("seq", i), payload=i,
                )

        def receiver():
            for n in (1, 2, 3):
                yield from dst.poll("seq", n)
                arrivals.append(dst.memory.read(("seq", n - 1)))

        procs = [sim.process(sender()), sim.process(receiver())]
        sim.run(until=sim.all_of(procs))
        assert arrivals == [0, 1, 2]


class TestEscalation:
    def test_error_policy_raises_retry_exhausted(self):
        plan = forced_plan(5, max_retries=2)
        with pytest.raises(RetryExhausted, match="exceeded 2"):
            one_way_under(plan)

    def test_drop_policy_loses_loudly(self):
        registry = MetricsRegistry()
        sim = Simulator()
        plan = forced_plan(5, max_retries=2, on_exhaust="drop")
        session = FaultSession(plan, registry=registry)
        with use_faults(session):
            m = build_machine(sim, 4, 4, 4)
        src = m.node((0, 0, 0)).slice(0)
        dst = m.node((1, 0, 0)).slice(0)
        dst.memory.allocate("rx", 1)

        def sender():
            yield from src.send_write(
                (1, 0, 0), dst.name, counter_id="c", address=("rx", 0),
            )

        sim.process(sender())
        sim.run()
        net = m.network
        assert net.packets_lost == 1
        assert net.deliveries_lost == 1
        assert net.packets_delivered == 0
        assert net.packets_in_flight == 0  # completed, not leaked
        assert session.stats.packets_lost == 1
        assert session.stats.retry_exhausted == 1
        assert registry.counter("faults.packets_lost").value == 1

    def test_drop_does_not_wedge_the_inorder_gate(self):
        """A successor of a dropped in-order packet still delivers."""
        sim = Simulator()
        plan = FaultPlan(
            max_retries=0, on_exhaust="drop",
            bit_errors=(BitError(links="*", corrupt_attempts=1),),
        )
        session = FaultSession(plan)
        with use_faults(session):
            m = build_machine(sim, 4, 4, 4)
        src = m.node((0, 0, 0)).slice(0)
        dst = m.node((1, 0, 0)).slice(0)
        dst.memory.allocate("rx", 2)

        def sender():
            # First packet: first attempt corrupts, retry budget 0 -> drop.
            # Second: its first attempt also corrupts... every packet
            # drops under corrupt_attempts=1 + max_retries=0, so instead
            # check the run terminates with all losses accounted.
            for i in range(2):
                yield from src.send_write(
                    (1, 0, 0), dst.name, counter_id="c", address=("rx", i),
                )

        sim.process(sender())
        sim.run()
        assert m.network.packets_lost == 2
        assert m.network.packets_in_flight == 0
        assert session.stats.deliveries_lost == 2


class TestAvailabilityWindows:
    def test_link_down_delays_until_window_end(self):
        plan = FaultPlan(link_downs=(
            LinkDown(links="x+", start_ns=0.0, end_ns=500.0),))
        t, session, _ = one_way_under(plan)
        assert t > 500.0  # waited out the outage, then delivered
        assert t < 500.0 + 162.0
        assert session.stats.link_down_blocks >= 1

    def test_down_window_in_the_past_costs_nothing(self):
        plan = FaultPlan(link_downs=(
            LinkDown(links="x+", start_ns=1e6, end_ns=2e6),))
        t, session, _ = one_way_under(plan)
        assert t == pytest.approx(162.0)
        assert session.stats.link_down_blocks == 0

    def test_node_stall_blocks_forwarding(self):
        plan = FaultPlan(node_stalls=(
            NodeStall(node=(0, 0, 0), start_ns=0.0, end_ns=300.0),))
        t, session, _ = one_way_under(plan)
        assert t > 300.0
        assert session.stats.node_stall_blocks >= 1

    def test_degraded_bandwidth_stretches_channel_occupancy(self):
        """A solo cut-through packet's latency is untouched by a
        bandwidth degradation (only its channel hold grows), so the
        signal is back-to-back traffic: the second packet's head waits
        out the stretched occupancy of the first."""

        def two_writes(plan):
            sim = Simulator()
            with use_faults(FaultSession(plan)):
                m = build_machine(sim, 4, 4, 4)
            src = m.node((0, 0, 0)).slice(0)
            dst = m.node((1, 0, 0)).slice(0)
            dst.memory.allocate("rx", 2)
            done = {}

            def sender():
                for i in range(2):
                    yield from src.send_write(
                        (1, 0, 0), dst.name, counter_id="c",
                        address=("rx", i), payload_bytes=256,
                    )

            def receiver():
                done["t"] = yield from dst.poll("c", 2)

            procs = [sim.process(sender()), sim.process(receiver())]
            sim.run(until=sim.all_of(procs))
            return done["t"]

        base = two_writes(FaultPlan())
        slow = two_writes(FaultPlan(degradations=(
            Degradation(links="x+", bandwidth_factor=8.0),)))
        assert slow > base

    def test_degraded_latency_adds_per_hop_cost(self):
        plan = FaultPlan(degradations=(
            Degradation(links="x+", latency_factor=2.0),))
        t, _, _ = one_way_under(plan)
        assert t == pytest.approx(162.0 + LINK_COST_NS["x"])


class TestMulticastUnderFaults:
    def build(self, plan):
        from repro.network.multicast import compile_pattern

        sim = Simulator()
        session = FaultSession(plan)
        with use_faults(session):
            m = build_machine(sim, 4, 1, 1)
        src = m.node((0, 0, 0)).slice(0)
        dests = {(k, 0, 0): ["slice0"] for k in (1, 2, 3)}
        pid = m.network.register_pattern(
            compile_pattern(m.torus, (0, 0, 0), dests))
        for k in (1, 2, 3):
            m.node((k, 0, 0)).slice(0).memory.allocate("mc", 1)
        return sim, m, src, pid, session

    def send(self, sim, m, src, pid, expect=(1, 2, 3)):
        times = {}

        def sender():
            yield from src.send_write(
                (0, 0, 0), "slice0", counter_id="mc", address=("mc", 0),
                payload_bytes=0, pattern_id=pid,
            )

        def receiver(k):
            times[k] = yield from m.node((k, 0, 0)).slice(0).poll("mc", 1)

        procs = [sim.process(sender())]
        procs += [sim.process(receiver(k)) for k in expect]
        sim.run(until=sim.all_of(procs))
        return times

    def test_multicast_retries_every_branch(self):
        sim, m, src, pid, session = self.build(forced_plan(1))
        times = self.send(sim, m, src, pid)
        assert sorted(times) == [1, 2, 3]
        assert session.stats.retransmissions == 3  # one per tree edge

    def test_multicast_drop_prunes_the_subtree_loudly(self):
        plan = forced_plan(5, max_retries=1, on_exhaust="drop")
        sim, m, src, pid, session = self.build(plan)

        def sender():
            yield from src.send_write(
                (0, 0, 0), "slice0", counter_id="mc", address=("mc", 0),
                payload_bytes=0, pattern_id=pid,
            )

        sim.process(sender())
        sim.run()
        # The tree forks at the source (x+ chain to 1,2 and the x-
        # wraparound to 3); both first edges drop, every downstream
        # delivery is accounted, and the packet completes.
        assert m.network.packets_lost == 2
        assert session.stats.deliveries_lost == 3
        assert m.network.packets_in_flight == 0


class TestRetryAttribution:
    def test_retry_tiles_exactly(self):
        """The RETRY component appears with the retransmission cost and
        the attribution still sums to the measured latency exactly."""
        from repro.analysis.attribution import Component, measure_attribution

        with use_faults(FaultSession(forced_plan(2))):
            m = measure_attribution(hops=1, shape=(4, 4, 4))
        attr = m.attribution
        totals = attr.totals
        assert totals[Component.RETRY] > 0.0
        assert totals[Component.UNATTRIBUTED] == pytest.approx(0.0, abs=1e-9)
        assert attr.total_ns == pytest.approx(m.elapsed_ns)
        assert sum(totals.values()) == pytest.approx(m.elapsed_ns)

    def test_fault_free_attribution_has_no_retry_row(self):
        from repro.analysis.attribution import Component, measure_attribution

        m = measure_attribution(hops=1, shape=(4, 4, 4))
        assert m.attribution.totals[Component.RETRY] == 0.0
        assert "retransmission" not in __import__(
            "repro.analysis.attribution", fromlist=["render_attribution"]
        ).render_attribution(m.attribution)


class TestFlightRecorderIntegration:
    def test_hop_records_carry_retry_cost(self):
        from repro.trace.flight import FlightRecorder, use_flight

        sim = Simulator()
        fl = FlightRecorder()
        with use_flight(fl), use_faults(FaultSession(forced_plan(2))):
            m = build_machine(sim, 4, 4, 4)
        src = m.node((0, 0, 0)).slice(0)
        dst = m.node((1, 0, 0)).slice(0)
        run_exchange(sim, src, dst)
        [flight] = fl.packets()
        hop = flight.hops[0]
        assert hop.retries == 2
        assert hop.retry_ns > 0.0
        # The channel was held for the retries: occupancy says so too.
        assert hop.release_ns - hop.grant_ns == pytest.approx(
            hop.retry_ns + (hop.release_ns - hop.grant_ns - hop.retry_ns)
        )
        name = hop.link
        (g, r, _pid) = fl.link_occupancy[name][-1]
        assert r - g == pytest.approx(hop.release_ns - hop.grant_ns)


class TestWatchdogIntegration:
    def run_monitored(self, plan):
        from repro.monitor.health import use_monitoring

        sim = Simulator()
        session = FaultSession(plan)
        with use_monitoring() as mon, use_faults(session):
            m = build_machine(sim, 4, 4, 4)
        src = m.node((0, 0, 0)).slice(0)
        dst = m.node((1, 0, 0)).slice(0)
        run_exchange(sim, src, dst)
        [verdict] = mon.finalize()
        return verdict

    def test_recovered_faults_stay_healthy(self):
        verdict = self.run_monitored(forced_plan(2))
        assert verdict.healthy
        names = {c.name for c in verdict.checks}
        assert "fault_packet_loss" in names
        assert "fault_retry_bounds" in names
        assert "retransmission" in verdict.render_text()

    def test_fault_free_verdict_keeps_historical_checks(self):
        verdict = self.run_monitored(FaultPlan())  # disabled session
        names = {c.name for c in verdict.checks}
        assert "fault_packet_loss" not in names
        assert "fault_retry_bounds" not in names

    def test_accounted_loss_is_flagged(self):
        from repro.monitor.health import use_monitoring

        sim = Simulator()
        plan = forced_plan(5, max_retries=1, on_exhaust="drop")
        with use_monitoring() as mon, use_faults(FaultSession(plan)):
            m = build_machine(sim, 4, 4, 4)
        src = m.node((0, 0, 0)).slice(0)
        dst = m.node((1, 0, 0)).slice(0)
        dst.memory.allocate("rx", 1)

        def sender():
            yield from src.send_write(
                (1, 0, 0), dst.name, counter_id="c", address=("rx", 0),
            )

        sim.process(sender())
        sim.run()
        [verdict] = mon.finalize()
        assert not verdict.healthy
        flagged = {c.name: c for c in verdict.checks}
        assert flagged["fault_packet_loss"].status == "error"
        # Conservation still closes: the loss is accounted, not silent.
        assert flagged["packet_conservation"].status == "ok"
