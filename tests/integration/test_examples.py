"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their results"


def test_quickstart_reports_headline_latency():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300,
    )
    assert "162 ns" in proc.stdout
