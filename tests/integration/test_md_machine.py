"""Integration tests: the full MD time step on the simulated machine.

These exercise the complete Fig. 2 dataflow — position multicast, HTIS
processing, bonded forces, FFT convolution, force accumulation,
integration, thermostat, migration — on small machines, in payload
mode, and verify the *numerical* results against the serial kernels.
"""

import numpy as np
import pytest

from repro.md.bonded import bond_energy_forces
from repro.md.forcefield import ForceField
from repro.md.machine import AntonMD
from repro.md.rangelimited import range_limited_forces
from repro.md.system import tiny_system


@pytest.fixture(scope="module")
def md():
    system = tiny_system(64, box_edge=16.0, seed=1)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.3)
    return AntonMD(
        system, (2, 2, 2), ff=ff, grid=8, payload_mode=True, slack=0.5,
        migration_interval=1,
    )


def test_range_limited_step_runs(md):
    report = md.run_step("range_limited")
    assert report.kind == "range_limited"
    assert report.total_us > 0
    assert report.packets_injected > 0
    assert report.packets_injected == report.packets_delivered or (
        report.packets_delivered > report.packets_injected  # multicast fanout
    )


def test_distributed_forces_match_serial_reference(md):
    """The headline integration check: forces accumulated through
    simulated counted remote writes equal the serial kernels."""
    md.run_step("range_limited")
    ref = (
        range_limited_forces(md.system, md.ff).forces
        + bond_energy_forces(md.system)[1]
    )
    err = np.abs(md.collected_forces - ref).max()
    scale = np.abs(ref).max()
    assert err < 1e-9 * max(scale, 1.0)


def test_every_pair_computed_exactly_once(md):
    """Midpoint assignment must partition the pair set across nodes."""
    counts, _ = md._midpoint_pairs()
    total = sum(counts.values())
    serial = range_limited_forces(md.system, md.ff).pair_count
    assert total == serial


def test_long_range_step_runs_all_phases(md):
    report = md.run_step("long_range")
    assert report.kind == "long_range"
    for phase in ("positions", "range_limited", "bonded", "fft_convolution",
                  "integration", "thermostat"):
        assert phase in report.phase_spans, phase
    # The long-range step costs more than the range-limited step.
    rl = md.run_step("range_limited")
    assert report.total_ns > rl.total_ns


def test_message_counts_are_fixed_across_steps(md):
    """§IV.A: fixed communication patterns — as long as no migration
    or regeneration intervenes, every step moves the same packets."""
    md.migration_interval = 0
    try:
        r1 = md.run_step("range_limited")
        r2 = md.run_step("range_limited")
        assert r1.packets_injected == r2.packets_injected
        assert r1.packets_delivered == r2.packets_delivered
    finally:
        md.migration_interval = 1


def test_steps_are_deterministic():
    def run_once():
        system = tiny_system(48, box_edge=14.0, seed=3)
        ff = ForceField(cutoff=4.0, ewald_alpha=0.3)
        md = AntonMD(system, (2, 2, 2), ff=ff, grid=8, payload_mode=False)
        return [md.run_step().total_ns for _ in range(3)]

    assert run_once() == run_once()


def test_migration_moves_follow_positions():
    system = tiny_system(64, box_edge=16.0, seed=2)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.3)
    md = AntonMD(system, (2, 2, 2), ff=ff, payload_mode=False, slack=0.25,
                 migration_interval=1)
    atom = int(md.decomp.atoms_of((0, 0, 0))[0])
    system.positions[atom] += md.decomp.box_widths * 1.0
    system.wrap()
    md.run_step("range_limited")
    assert md.decomp.node_of_atom(atom) == md.torus.coord((1, 1, 1))


def test_expected_counts_follow_migration():
    """Migration hands off per-atom force-packet expectations — the
    bookkeeping §IV.B.5 mentions; the next step must not deadlock."""
    system = tiny_system(64, box_edge=16.0, seed=4)
    ff = ForceField(cutoff=4.0, ewald_alpha=0.3)
    md = AntonMD(system, (2, 2, 2), ff=ff, payload_mode=False, slack=0.25,
                 migration_interval=1)
    rng = np.random.default_rng(0)
    for _ in range(3):
        # Diffuse, run a step (which migrates at the end), repeat.
        system.positions += rng.normal(scale=0.6, size=system.positions.shape)
        system.wrap()
        report = md.run_step("range_limited")
        assert report.total_us > 0


def test_bond_regeneration_shortens_spans():
    """After heavy drift, regenerating the bond program must reduce
    the bond communication distances (Fig. 11's mechanism)."""
    system = tiny_system(96, box_edge=20.0, seed=5)
    ff = ForceField(cutoff=5.0, ewald_alpha=0.3)
    md = AntonMD(system, (4, 4, 4), ff=ff, payload_mode=False, slack=0.25,
                 migration_interval=1)
    rng = np.random.default_rng(1)
    system.positions += rng.normal(scale=4.0, size=system.positions.shape)
    system.wrap()
    md.decomp.rehome_all()
    stale = md.bond_program.stats()
    md.bond_program.regenerate()
    md._setup_bond_patterns()
    fresh = md.bond_program.stats()
    assert fresh.hops_mean <= stale.hops_mean
