"""Failure-injection tests: the model must surface software bugs the
way the real machine would (hangs, counter mismatches, overflow), not
silently absorb them."""

import pytest

from repro.asic import build_machine
from repro.comm import CountedGather, GatherSource
from repro.engine import Simulator


def test_undersent_counted_write_deadlocks_visibly(sim, machine222):
    """A receiver expecting more packets than are ever sent must hang —
    and the simulator must report the deadlock instead of returning a
    bogus completion."""
    target = machine222.node((0, 0, 0)).slice(0)
    src = machine222.node((1, 0, 0)).slice(0)
    target.memory.allocate("g", 4)

    def sender():
        yield from src.send_write((0, 0, 0), "slice0", counter_id="g",
                                  address=("g", 0), payload_bytes=0)

    def receiver():
        yield from target.poll("g", 3)  # expects 3, only 1 arrives

    sim.process(sender())
    waiter = sim.process(receiver())
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run(until=waiter)


def test_oversent_packets_detected_by_counter_state(sim, machine222):
    """Sending more packets than the fixed count leaves the counter
    over target — observable state for debugging tools."""
    target = machine222.node((0, 0, 0)).slice(0)
    src = machine222.node((1, 0, 0)).slice(0)
    target.memory.allocate("g", 4)

    def sender():
        for i in range(4):
            yield from src.send_write((0, 0, 0), "slice0", counter_id="g",
                                      address=("g", i), payload_bytes=0)

    def receiver():
        yield from target.poll("g", 2)

    p1, p2 = sim.process(sender()), sim.process(receiver())
    sim.run(until=sim.all_of([p1, p2]))
    sim.run()  # drain in-flight packets
    assert target.counter("g").count == 4  # overshoot is visible


def test_write_to_wrong_slot_is_a_hard_error(sim, machine222):
    """Mis-programmed remote-write addresses fail loudly (pre-allocated
    receive storage, §IV.A)."""
    src = machine222.node((1, 0, 0)).slice(0)
    machine222.node((0, 0, 0)).slice(0).memory.allocate("buf", 2)

    def sender():
        yield from src.send_write((0, 0, 0), "slice0", counter_id="c",
                                  address=("buf", 7), payload_bytes=0)

    sim.process(sender())
    with pytest.raises(IndexError, match="out of\\s+bounds"):
        sim.run()


def test_fifo_overflow_backpressure_never_drops():
    """A burst far beyond FIFO capacity parks in the overflow queue
    (backpressure) and drains completely, in order."""
    sim = Simulator()
    m = build_machine(sim, 2, 1, 1, fifo_capacity=4)
    src = m.node((0, 0, 0)).slice(0)
    dst = m.node((1, 0, 0)).slice(0)

    def sender():
        for i in range(40):
            yield from src.send_fifo_message((1, 0, 0), "slice0",
                                             payload=i, payload_bytes=8)

    sim.run(until=sim.process(sender()))
    sim.run()
    assert dst.fifo.backpressure_stalls > 0
    out = []
    while (pkt := dst.fifo.try_poll()) is not None:
        out.append(pkt.payload)
    assert out == list(range(40))


def test_reset_mid_phase_raises(sim, machine222):
    """Resetting HTIS buffers while a wait is outstanding is a phase-
    sequencing bug and must raise."""
    htis = machine222.node((0, 0, 0)).htis
    htis.define_buffer("b", (1, 0, 0), 2)
    htis.buffer_ready("b")  # registers a waiter
    with pytest.raises(RuntimeError, match="waiters pending"):
        htis.reset_buffers()


def test_gather_reset_before_completion_raises(sim, machine222):
    target = machine222.node((0, 0, 0)).slice(0)
    g = CountedGather(
        target, "g",
        [GatherSource(machine222.torus.coord((1, 0, 0)), "slice0", 2)],
    )
    g.complete()  # someone is waiting
    with pytest.raises(RuntimeError, match="waiters pending"):
        g.reset()
