"""Unit tests for the trace/instrumentation package."""

import pytest

from repro.trace import (
    Activity,
    ActivityKind,
    ActivityRecorder,
    communication_split,
    per_node_communication_split,
    render_timeline,
    timeline_csv,
)


def test_record_and_query(sim):
    rec = ActivityRecorder(sim)
    rec.record("u1", ActivityKind.COMPUTE, 0.0, 10.0, "work")
    rec.record("u1", ActivityKind.SEND, 10.0, 12.0)
    rec.record("u2", ActivityKind.WAIT, 0.0, 5.0)
    assert len(rec) == 3
    assert rec.units() == ["u1", "u2"]
    assert rec.busy_ns("u1") == 12.0
    assert rec.busy_ns("u1", ActivityKind.COMPUTE) == 10.0
    assert len(rec.intervals(kind=ActivityKind.WAIT)) == 1


def test_interval_validation():
    with pytest.raises(ValueError):
        Activity("u", ActivityKind.COMPUTE, 5.0, 4.0)


def test_begin_end_spans(sim):
    rec = ActivityRecorder(sim)
    rec.begin("core", ActivityKind.COMPUTE)
    sim.schedule(30.0, lambda: None)
    sim.run()
    rec.end("core")
    (a,) = rec.intervals(unit="core")
    assert a.duration_ns == 30.0
    with pytest.raises(RuntimeError):
        rec.begin("core", ActivityKind.COMPUTE)
        rec.begin("core", ActivityKind.COMPUTE)


def test_record_span_ends_now(sim):
    rec = ActivityRecorder(sim)
    sim.schedule(100.0, lambda: None)
    sim.run()
    rec.record_span("u", ActivityKind.SEND, 25.0)
    (a,) = rec.intervals(unit="u")
    assert (a.start_ns, a.end_ns) == (75.0, 100.0)


def test_disabled_recorder_is_silent(sim):
    rec = ActivityRecorder(sim)
    rec.enabled = False
    rec.record("u", ActivityKind.COMPUTE, 0, 1)
    assert len(rec) == 0


def test_communication_kinds():
    assert ActivityKind.SEND.is_communication
    assert ActivityKind.WAIT.is_communication
    assert not ActivityKind.COMPUTE.is_communication


def test_communication_split_subtracts_compute_union(sim):
    rec = ActivityRecorder(sim)
    # Overlapping compute on two units: union = [0, 15).
    rec.record("a", ActivityKind.COMPUTE, 0.0, 10.0)
    rec.record("b", ActivityKind.COMPUTE, 5.0, 15.0)
    stats = communication_split(rec, "phase", 0.0, 20.0)
    assert stats.total_ns == 20.0
    assert stats.compute_ns == 15.0
    assert stats.communication_ns == 5.0
    assert 0 < stats.communication_fraction < 1


def test_split_clips_to_phase(sim):
    rec = ActivityRecorder(sim)
    rec.record("a", ActivityKind.COMPUTE, 0.0, 100.0)
    stats = communication_split(rec, "phase", 40.0, 60.0)
    assert stats.compute_ns == 20.0
    assert stats.communication_ns == 0.0


def test_per_node_split_averages_over_nodes(sim):
    rec = ActivityRecorder(sim)
    rec.record("(0,0,0):gc", ActivityKind.COMPUTE, 0.0, 4.0)
    rec.record("(1,0,0):gc", ActivityKind.COMPUTE, 0.0, 8.0)
    stats = per_node_communication_split(rec, "phase", 0.0, 10.0)
    assert stats.compute_ns == pytest.approx(6.0)
    assert stats.communication_ns == pytest.approx(4.0)


def test_timeline_renders_buckets(sim):
    rec = ActivityRecorder(sim)
    rec.record("ts", ActivityKind.SEND, 0.0, 50.0)
    rec.record("gc", ActivityKind.COMPUTE, 50.0, 100.0)
    rec.record("gc", ActivityKind.WAIT, 0.0, 50.0)
    text = render_timeline(rec, 0.0, 100.0, buckets=10)
    assert "legend" in text
    assert "s" in text and "#" in text and "." in text


def test_timeline_grouping(sim):
    rec = ActivityRecorder(sim)
    rec.record("(0,0,0):gc", ActivityKind.COMPUTE, 0.0, 10.0)
    rec.record("(1,0,0):gc", ActivityKind.COMPUTE, 5.0, 15.0)
    text = render_timeline(
        rec, 0.0, 20.0, buckets=4,
        group_by={"(0,0,0):gc": "GC", "(1,0,0):gc": "GC"},
    )
    assert "GC" in text


def test_timeline_csv(sim):
    rec = ActivityRecorder(sim)
    rec.record("u", ActivityKind.LINK, 1.0, 2.0, "x+")
    csv = timeline_csv(rec, 0.0, 10.0)
    assert csv.splitlines()[0] == "unit,kind,start_ns,end_ns,label"
    assert "u,link,1.0,2.0,x+" in csv
