"""The hardened sweep harness: per-point timeouts that kill hung
workers, bounded retry with backoff, corrupt-checkpoint tolerance on
resume, and the CLI's non-zero exit code on any failed grid point.

Uses the ``selftest`` experiment (a non-simulating point whose
``behavior`` extra can crash, hang, or fail-once) so the harness is
exercised without paying for real simulations.
"""

import json
import logging
import os

import pytest

from repro.runner.spec import ExperimentSpec, ensure_registered
from repro.runner.sweep import _load_point, run_sweep
from repro.trace.metrics import MetricsRegistry

ensure_registered()


def selftest(behavior="ok", **extras):
    return ExperimentSpec("selftest", shape=(4, 4, 4)).with_extras(
        behavior=behavior, **extras)


class TestGuardedScheduler:
    def test_crash_is_marked_not_raised(self):
        report = run_sweep([selftest("ok"), selftest("crash")], timeout_s=30)
        assert not report.ok
        assert report.points[0].ok
        assert "deliberate crash" in report.points[1].error

    def test_hang_is_killed_and_the_sweep_finishes(self):
        report = run_sweep(
            [selftest("ok"), selftest("hang", sleep_s=60.0)],
            jobs=2, timeout_s=1.0,
        )
        assert not report.ok
        assert report.points[0].ok
        assert "timeout" in report.points[1].error
        # One hanging point plus one crashing point, per the acceptance
        # criterion: both marked, neither takes the sweep down.
        mixed = run_sweep(
            [selftest("hang", sleep_s=60.0), selftest("crash"),
             selftest("ok")],
            jobs=2, timeout_s=1.0,
        )
        assert not mixed.ok
        assert len(mixed.failures) == 2
        assert mixed.points[2].ok

    def test_retries_recover_a_transient_failure(self, tmp_path):
        marker = str(tmp_path / "flaky.marker")
        registry = MetricsRegistry()
        report = run_sweep(
            [selftest("flaky", marker=marker)],
            retries=2, retry_backoff_s=0.01, registry=registry,
        )
        assert report.ok
        assert registry.counter("sweep.retries").value == 1
        assert registry.counter("sweep.failures").value == 0

    def test_retries_exhaust_and_the_point_fails(self):
        registry = MetricsRegistry()
        report = run_sweep(
            [selftest("crash")],
            retries=1, retry_backoff_s=0.01, registry=registry,
        )
        assert not report.ok
        assert registry.counter("sweep.retries").value == 1
        assert registry.counter("sweep.failures").value == 1

    def test_guarded_results_checkpoint_and_cache_normally(self, tmp_path):
        out = str(tmp_path / "sweep")
        specs = [selftest("ok")]
        report = run_sweep(specs, timeout_s=30, out_dir=out)
        assert report.ok
        assert os.path.exists(os.path.join(out, "points", "0000.json"))
        resumed = run_sweep(specs, out_dir=out, resume=True)
        assert resumed.resumed == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="retries"):
            run_sweep([selftest("ok")], retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            run_sweep([selftest("ok")], timeout_s=0.0)


GRID = [
    ExperimentSpec("latency", shape=(2, 2, 2), hops=h) for h in (0, 1, 2)
]


class TestCorruptCheckpointResume:
    """Satellite: a corrupt or truncated checkpoint must be warned
    about and recomputed — never crash the resume."""

    def _corrupt(self, out, index, data):
        path = os.path.join(out, "points", f"{index:04d}.json")
        with open(path, "wb") as fh:
            fh.write(data)
        return path

    def test_truncated_checkpoint_recomputed_mid_sweep(self, tmp_path, caplog):
        out = str(tmp_path / "sweep")
        first = run_sweep(GRID, out_dir=out)
        assert first.ok
        # Simulate a crash mid-write: the checkpoint is cut in half.
        path = os.path.join(out, "points", "0001.json")
        raw = open(path, "rb").read()
        self._corrupt(out, 1, raw[: len(raw) // 2])
        registry = MetricsRegistry()
        with caplog.at_level(logging.WARNING, logger="repro.sweep"):
            report = run_sweep(GRID, out_dir=out, resume=True,
                               registry=registry)
        assert report.ok
        assert report.resumed == 2
        assert report.points[1].status == "computed"
        assert registry.counter("sweep.checkpoint_corrupt").value == 1
        assert any("recomputing" in r.message for r in caplog.records)
        # The recomputed value matches the original run.
        assert report.points[1].result.elapsed_ns == \
            first.points[1].result.elapsed_ns
        # And the checkpoint on disk is valid again.
        again, problem = _load_point(out, 1, GRID[1])
        assert problem is None and again is not None

    @pytest.mark.parametrize("garbage", [
        b"", b"not json at all", b"[1, 2, 3]", b'{"schema": "wrong"}',
    ])
    def test_garbage_checkpoints_never_raise(self, tmp_path, garbage):
        out = str(tmp_path / "sweep")
        run_sweep(GRID, out_dir=out)
        self._corrupt(out, 0, garbage)
        report = run_sweep(GRID, out_dir=out, resume=True)
        assert report.ok
        assert report.points[0].status == "computed"

    def test_load_point_reports_the_reason(self, tmp_path):
        out = str(tmp_path / "sweep")
        run_sweep(GRID, out_dir=out)
        result, problem = _load_point(out, 0, GRID[0])
        assert result is not None and problem is None
        # Absent: silent (nothing to warn about).
        result, problem = _load_point(out, 7, GRID[0])
        assert result is None and problem is None
        # Tampered payload: hash mismatch, named as such.
        path = os.path.join(out, "points", "0000.json")
        doc = json.load(open(path))
        doc["payload"]["elapsed_ns"] = 1.0
        with open(path, "w") as fh:
            json.dump(doc, fh)
        result, problem = _load_point(out, 0, GRID[0])
        assert result is None and "hash mismatch" in problem


class TestExitCodes:
    """Satellite: ``python -m repro sweep`` must exit non-zero when any
    grid point errors, zero when all complete."""

    def test_all_ok_exits_zero(self, capsys):
        from repro.__main__ import main

        rc = main(["sweep", "selftest", "--grid", "behavior=ok",
                   "--no-cache"])
        capsys.readouterr()
        assert rc == 0

    def test_any_failure_exits_nonzero(self, capsys):
        from repro.__main__ import main

        rc = main(["sweep", "selftest", "--grid", "behavior=ok,crash",
                   "--no-cache"])
        capsys.readouterr()
        assert rc == 1

    def test_timeout_and_retry_flags_reach_the_harness(self, capsys):
        from repro.__main__ import main

        rc = main(["sweep", "selftest",
                   "--grid", "behavior=hang", "--grid", "sleep_s=60",
                   "--timeout", "1", "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "timeout" in out
