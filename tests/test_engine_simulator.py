"""Unit tests for the simulator core."""

import pytest

from repro.engine import Simulator


def test_schedule_runs_in_time_order(sim):
    seen = []
    sim.schedule(5.0, seen.append, "b")
    sim.schedule(2.0, seen.append, "a")
    sim.schedule(9.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_time_preserves_scheduling_order(sim):
    seen = []
    for tag in range(20):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == list(range(20))


def test_schedule_into_past_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_run_until_time_stops_clock_exactly(sim):
    seen = []
    sim.schedule(10.0, seen.append, "late")
    sim.run(until=4.0)
    assert seen == []
    assert sim.now == 4.0
    sim.run()
    assert seen == ["late"]


def test_run_until_past_time_rejected(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_event(sim):
    ev = sim.event()
    sim.schedule(3.0, ev.succeed, "payload")
    sim.schedule(99.0, lambda: None)
    assert sim.run(until=ev) == "payload"
    assert sim.now == 3.0


def test_run_until_never_triggered_event_is_deadlock(sim):
    ev = sim.event()
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run(until=ev)


def test_empty_run_is_noop(sim):
    sim.run()
    assert sim.now == 0.0


def test_determinism_across_runs():
    def build_and_run():
        s = Simulator()
        seen = []

        def proc(name):
            for i in range(5):
                yield s.timeout(1.5 * (i + 1))
                seen.append((s.now, name, i))

        for n in ("x", "y", "z"):
            s.process(proc(n))
        s.run()
        return seen

    assert build_and_run() == build_and_run()
