"""Unit tests for multicast pattern compilation and delivery."""

import pytest

from repro.asic import build_machine
from repro.constants import MAX_MULTICAST_PATTERNS
from repro.engine import Simulator
from repro.network.multicast import compile_pattern
from repro.topology import NodeCoord, Torus3D


def test_pattern_reaches_exactly_the_destinations():
    torus = Torus3D(4, 4, 4)
    dests = {
        (1, 0, 0): ["htis"],
        (2, 3, 0): ["slice0", "slice1"],
        (0, 0, 2): ["accum1"],
        (0, 0, 0): ["slice3"],  # local delivery at the source
    }
    p = compile_pattern(torus, (0, 0, 0), dests)
    reached = p.reached_clients()
    expected = {
        (torus.coord(n), c) for n, clients in dests.items() for c in clients
    }
    assert reached == expected


def test_tree_has_single_inbound_edge_per_node():
    torus = Torus3D(8, 8, 8)
    dests = {(x, y, z): ["htis"] for x in (0, 1, 7) for y in (0, 1) for z in (0, 7)}
    dests.pop((0, 0, 0))
    p = compile_pattern(torus, (0, 0, 0), dests)
    inbound: dict = {}
    for node, entry in p.entries.items():
        for dim, sign in entry.forward:
            nxt = torus.neighbor(node, dim, sign)
            assert nxt not in inbound, f"{nxt} has two inbound edges"
            inbound[nxt] = node
    assert p.source not in inbound


def test_link_traversals_less_than_unicast_equivalent():
    """Multicast saves bandwidth: one traversal per tree edge rather
    than per destination (§III.A)."""
    torus = Torus3D(8, 8, 8)
    peers = torus.axis_peers((0, 0, 0), "x")
    p = compile_pattern(torus, (0, 0, 0), {n: ["slice0"] for n in peers})
    unicast_total = sum(torus.hops((0, 0, 0), n) for n in peers)
    assert p.total_link_traversals < unicast_total
    # A line broadcast covers the ring with N-1 traversals minimum.
    assert p.total_link_traversals == len(peers)


def test_empty_destination_clients_rejected():
    torus = Torus3D(2, 2, 2)
    with pytest.raises(ValueError):
        compile_pattern(torus, 0, {(1, 0, 0): []})


def test_delivery_times_match_unicast_hop_costs(sim):
    """Multicast delivery to each destination costs about the unicast
    latency (plus table lookups) — latency is per-branch, not summed
    over destinations."""
    m = build_machine(sim, 8, 1, 1)
    torus = m.torus
    src = m.node((0, 0, 0)).slice(0)
    dests = {(k, 0, 0): ["slice0"] for k in (1, 2, 3)}
    tree = compile_pattern(torus, (0, 0, 0), dests)
    pid = m.network.register_pattern(tree)
    for k in (1, 2, 3):
        m.node((k, 0, 0)).slice(0).memory.allocate("mc", 1)
    times = {}

    def sender():
        yield from src.send_write(
            (0, 0, 0), "slice0", counter_id="mc", address=("mc", 0),
            payload_bytes=0, pattern_id=pid,
        )

    def receiver(k):
        times[k] = yield from m.node((k, 0, 0)).slice(0).poll("mc", 1)

    procs = [sim.process(sender())]
    procs += [sim.process(receiver(k)) for k in (1, 2, 3)]
    sim.run(until=sim.all_of(procs))
    # Marginal per-hop cost between consecutive destinations is the
    # X through-node cost plus the multicast table lookup.
    from repro.constants import HOP_NS, MULTICAST_LOOKUP_NS

    assert times[2] - times[1] == pytest.approx(HOP_NS["x"] + MULTICAST_LOOKUP_NS)
    assert times[3] - times[2] == pytest.approx(HOP_NS["x"] + MULTICAST_LOOKUP_NS)


def test_pattern_limit_enforced(sim):
    m = build_machine(sim, 2, 1, 1)
    torus = m.torus
    dests = {(1, 0, 0): ["slice0"]}
    for _ in range(MAX_MULTICAST_PATTERNS):
        m.network.register_pattern(compile_pattern(torus, 0, dests))
    with pytest.raises(RuntimeError, match="exceeds"):
        m.network.register_pattern(compile_pattern(torus, 0, dests))


def test_injecting_from_wrong_source_rejected(sim):
    m = build_machine(sim, 2, 2, 1)
    tree = compile_pattern(m.torus, (0, 0, 0), {(1, 0, 0): ["slice0"]})
    pid = m.network.register_pattern(tree)
    wrong = m.node((0, 1, 0)).slice(0)
    m.node((1, 0, 0)).slice(0).memory.allocate("mc", 1)

    def sender():
        yield from wrong.send_write(
            (0, 1, 0), "slice0", counter_id="mc", payload_bytes=0, pattern_id=pid
        )

    sim.process(sender())
    with pytest.raises((ValueError, RuntimeError)):
        sim.run()
