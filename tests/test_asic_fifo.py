"""Unit tests for the hardware message FIFO (§III.C)."""

import pytest

from repro.asic import MessageFifo
from repro.network.packet import FifoPacket
from repro.topology import NodeCoord

A, B = NodeCoord(0, 0, 0), NodeCoord(1, 0, 0)


def pkt(i=0):
    return FifoPacket(
        src_node=A, src_client="slice0", dst_node=B, dst_client="slice0",
        payload=i, payload_bytes=8,
    )


def test_fifo_order_preserved(sim):
    f = MessageFifo(sim, capacity=8)
    for i in range(5):
        f.push(pkt(i))
    out = [f.try_poll().payload for _ in range(5)]
    assert out == [0, 1, 2, 3, 4]
    assert f.try_poll() is None


def test_blocking_poll(sim):
    f = MessageFifo(sim, capacity=4)
    got = []

    def consumer():
        ev = f.poll()
        p = yield ev
        got.append((sim.now, p.payload))

    sim.process(consumer())
    sim.schedule(50.0, f.push, pkt(7))
    sim.run()
    assert got == [(50.0, 7)]


def test_backpressure_overflow_and_drain(sim):
    f = MessageFifo(sim, capacity=2)
    for i in range(5):
        f.push(pkt(i))
    assert f.occupancy == 2
    assert f.backpressure_stalls == 3
    out = []
    while (p := f.try_poll()) is not None:
        out.append(p.payload)
    assert out == [0, 1, 2, 3, 4]  # parked packets admitted in order


def test_high_watermark(sim):
    f = MessageFifo(sim, capacity=8)
    for i in range(6):
        f.push(pkt(i))
    f.try_poll()
    assert f.high_watermark == 6


def test_cancel_withdraws_waiter(sim):
    f = MessageFifo(sim, capacity=4)
    ev = f.poll()
    f.cancel(ev)
    f.push(pkt(1))
    # The cancelled waiter must not have consumed the message.
    assert not ev.triggered
    assert f.try_poll().payload == 1


def test_counters(sim):
    f = MessageFifo(sim, capacity=4)
    f.push(pkt())
    f.push(pkt())
    f.try_poll()
    assert f.total_received == 2
    assert f.total_consumed == 1
    assert len(f) == 1


def test_capacity_validation(sim):
    with pytest.raises(ValueError):
        MessageFifo(sim, capacity=0)
