"""Unit tests for global reductions (§IV.B.4, Table 2)."""

import pytest

from repro.asic import build_machine
from repro.comm.collectives import (
    AllReduce,
    ButterflyAllReduce,
    barrier,
    butterfly_hops,
    butterfly_rounds,
    dimension_ordered_hops,
    dimension_ordered_rounds,
)
from repro.engine import Simulator


def test_hop_and_round_counts_match_paper():
    """An N×N×N machine: 3 rounds and 3N/2 hops dimension-ordered,
    3·log2(N) rounds and 3(N−1) hops for the butterfly."""
    shape = (8, 8, 8)
    assert dimension_ordered_rounds(shape) == 3
    assert dimension_ordered_hops(shape) == 12
    assert butterfly_rounds(shape) == 9
    assert butterfly_hops(shape) == 21


def test_butterfly_requires_power_of_two():
    with pytest.raises(ValueError):
        butterfly_hops((6, 8, 8))


def test_allreduce_computes_correct_sum(sim, machine222):
    ar = AllReduce(machine222, payload_bytes=32)
    result = ar.run({c: float(machine222.torus.rank(c)) ** 2 for c in machine222.torus.nodes()})
    assert result.value == sum(r ** 2 for r in range(8))


def test_allreduce_all_nodes_agree(sim, machine444):
    ar = AllReduce(machine444, payload_bytes=32)
    result = ar.run()
    assert result.value == 64 * 63 / 2
    assert len(result.per_node_done_ns) == 64


def test_allreduce_reusable(sim, machine222):
    ar = AllReduce(machine222, payload_bytes=32)
    r1 = ar.run()
    r2 = ar.run({c: 1.0 for c in machine222.torus.nodes()})
    assert r1.value == 28.0
    assert r2.value == 8.0


def test_zero_byte_reduce_faster_than_32_byte(sim):
    sim1, sim2 = Simulator(), Simulator()
    m0 = build_machine(sim1, 4, 4, 4)
    m32 = build_machine(sim2, 4, 4, 4)
    t0 = AllReduce(m0, payload_bytes=0).run().elapsed_ns
    t32 = AllReduce(m32, payload_bytes=32).run().elapsed_ns
    assert t0 < t32


def test_allreduce_scaling_matches_table2_ordering():
    """Bigger machines take longer; the Table 2 ordering must hold."""
    times = {}
    for shape in [(4, 4, 4), (8, 8, 4), (8, 8, 8)]:
        sim = Simulator()
        m = build_machine(sim, *shape)
        times[shape] = AllReduce(m, payload_bytes=32).run().elapsed_ns
    assert times[(4, 4, 4)] < times[(8, 8, 4)] < times[(8, 8, 8)]


def test_allreduce_latency_near_paper_512():
    sim = Simulator()
    m = build_machine(sim, 8, 8, 8)
    t = AllReduce(m, payload_bytes=32).run().elapsed_us
    # Paper: 1.77 µs for a 32-byte reduction on 512 nodes.
    assert t == pytest.approx(1.77, rel=0.15)


def test_butterfly_slower_than_dimension_ordered():
    sim = Simulator()
    m = build_machine(sim, 4, 4, 4)
    t_do = AllReduce(m, payload_bytes=32).run().elapsed_ns
    sim2 = Simulator()
    m2 = build_machine(sim2, 4, 4, 4)
    bf = ButterflyAllReduce(m2, payload_bytes=32)
    r = bf.run()
    assert r.value == 64 * 63 / 2
    assert r.elapsed_ns > t_do


def test_degenerate_axes_skipped(sim):
    m = build_machine(sim, 4, 1, 1)
    ar = AllReduce(m, payload_bytes=32)
    assert ar.active_dims == ["x"]
    assert ar.run().value == 6.0


def test_barrier_is_zero_byte_reduce():
    sim = Simulator()
    m = build_machine(sim, 2, 2, 2)
    t = barrier(m)
    assert t > 0
