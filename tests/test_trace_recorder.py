"""Regression tests for ActivityRecorder begin/end pairing and the
zero-window utilization guards on TorusLink / Resource."""

import pytest

from repro.engine import Simulator
from repro.engine.resource import Resource
from repro.network.link import LinkId, TorusLink
from repro.trace import ActivityKind, ActivityRecorder


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rec(sim):
    return ActivityRecorder(sim)


class TestBeginEndPairing:
    def test_plain_pair_records(self, sim, rec):
        rec.begin("u", ActivityKind.COMPUTE, "work")
        sim.schedule(10.0, lambda: None)
        sim.run()
        rec.end("u", "work")
        [a] = rec.intervals()
        assert (a.start_ns, a.end_ns, a.label) == (0.0, 10.0, "work")

    def test_begin_enabled_end_disabled_drops_interval(self, rec):
        rec.begin("u", ActivityKind.COMPUTE)
        rec.enabled = False
        rec.end("u")  # must not raise, must not record
        assert len(rec) == 0

    def test_begin_disabled_end_enabled_drops_interval(self, rec):
        rec.enabled = False
        rec.begin("u", ActivityKind.COMPUTE)
        rec.enabled = True
        rec.end("u")  # matched, but opened while off: dropped
        assert len(rec) == 0

    def test_unmatched_end_while_enabled_is_descriptive_error(self, rec):
        with pytest.raises(RuntimeError, match="without a matching begin"):
            rec.end("u", "label")
        # The message names the offending unit and label.
        with pytest.raises(RuntimeError, match=r"'ts3'.*'fft'"):
            rec.end("ts3", "fft")

    def test_unmatched_end_while_disabled_is_silent(self, rec):
        rec.enabled = False
        rec.end("u")  # nothing could have been opened: ignore
        assert len(rec) == 0

    def test_double_begin_rejected(self, rec):
        rec.begin("u", ActivityKind.COMPUTE)
        with pytest.raises(RuntimeError, match="already open"):
            rec.begin("u", ActivityKind.COMPUTE)

    def test_discarded_slot_can_be_reopened(self, rec):
        rec.enabled = False
        rec.begin("u", ActivityKind.COMPUTE)
        rec.enabled = True
        rec.begin("u", ActivityKind.COMPUTE)  # overwrites the sentinel
        rec.end("u")
        assert len(rec) == 1

    def test_distinct_labels_are_independent(self, sim, rec):
        rec.begin("u", ActivityKind.SEND, "a")
        rec.begin("u", ActivityKind.WAIT, "b")
        rec.end("u", "b")
        rec.end("u", "a")
        assert {a.label for a in rec.intervals()} == {"a", "b"}


class TestUtilizationGuards:
    def test_link_utilization_zero_window(self, sim):
        link = TorusLink(sim, LinkId((0, 0, 0), "x", +1))
        assert link.utilization(0.0) == 0.0
        assert link.utilization(-1.0) == 0.0
        # Implicit window at simulated time 0 is also zero-length.
        assert link.utilization() == 0.0

    def test_resource_utilization_zero_window(self, sim):
        res = Resource(sim, capacity=1, name="r")
        assert res.utilization(0.0) == 0.0
        assert res.utilization() == 0.0

    def test_nonzero_window_still_measures(self, sim):
        res = Resource(sim, capacity=1, name="r")

        def user():
            yield res.request()
            yield sim.timeout(25.0)
            res.release()

        sim.process(user())
        sim.run()
        sim.schedule(75.0, lambda: None)
        sim.run()
        assert res.utilization() == pytest.approx(0.25)

    def test_peak_queue_length_counts_waiters(self, sim):
        res = Resource(sim, capacity=1, name="r")
        assert res.peak_queue_length == 0

        def user():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        for _ in range(3):
            sim.process(user())
        sim.run()
        assert res.peak_queue_length == 2  # two behind the holder
