"""Live sweep telemetry: the aggregator and its sweep integration."""

import os

import pytest

from repro.profile.telemetry import (
    STATUS_SCHEMA,
    SweepTelemetry,
    make_event,
    read_status,
)
from repro.runner.spec import ExperimentSpec, ensure_registered
from repro.runner.sweep import run_sweep
from repro.trace.metrics import MetricsRegistry

ensure_registered()


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def _latency_specs(n=3, shape=(3, 3, 3)):
    # Vary payload, not hops: hops > 3 is unreachable on a 3x3x3 torus.
    return [
        ExperimentSpec("latency", shape=shape, rounds=1, hops=1, payload=32 * i)
        for i in range(n)
    ]


class TestMakeEvent:
    def test_stamps_pid_and_kind(self):
        ev = make_event("started", 3, spec="x")
        assert ev["pid"] == os.getpid()
        assert ev["kind"] == "started" and ev["index"] == 3

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown telemetry event"):
            make_event("exploded", 0)


class TestAggregator:
    def test_lifecycle_counts_and_inflight(self):
        tel = SweepTelemetry(total=2, clock=FakeClock())
        tel.record(make_event("cache_miss", 0))
        tel.record(make_event("started", 0, pid=11, spec="a"))
        assert [e["pid"] for e in tel.events if e["kind"] == "started"] == [11]
        assert 11 in tel.inflight
        tel.record(make_event(
            "finished", 0, pid=11, wall_s=2.0,
            events_per_second=1000.0, peak_rss_bytes=5,
        ))
        assert tel.inflight == {}
        assert tel.done == 1 and tel.ok == 1
        assert tel.events_per_second == 1000.0
        assert tel.peak_rss_bytes == 5

    def test_failed_event_clears_inflight_despite_parent_pid(self):
        """Failure events come from the parent, whose pid never matches
        the worker that announced ``started``."""
        tel = SweepTelemetry(total=1, clock=FakeClock())
        tel.record(make_event("started", 0, pid=42))
        tel.record(make_event("failed", 0, pid=os.getpid(), error="boom"))
        assert tel.inflight == {}
        assert tel.done == 1 and tel.ok == 0

    def test_cache_hit_rate(self):
        tel = SweepTelemetry(total=4, clock=FakeClock())
        assert tel.cache_hit_rate == 0.0
        tel.record(make_event("cache_hit", 0))
        tel.record(make_event("cache_hit", 1))
        tel.record(make_event("cache_miss", 2))
        tel.record(make_event("cache_miss", 3))
        assert tel.cache_hit_rate == 0.5

    def test_eta_from_settlement_rate(self):
        clock = FakeClock()
        tel = SweepTelemetry(total=4, clock=clock)
        assert tel.eta_s is None  # nothing settled yet
        clock.t = 10.0
        tel.record(make_event("finished", 0, wall_s=10.0))
        assert tel.eta_s == pytest.approx(30.0)  # 3 left at 1 per 10 s
        clock.t = 20.0
        tel.record(make_event("finished", 1, wall_s=10.0))
        assert tel.eta_s == pytest.approx(20.0)

    def test_progress_line_reports_state(self):
        clock = FakeClock()
        tel = SweepTelemetry(total=3, clock=clock)
        tel.record(make_event("started", 0, pid=9))
        clock.t = 5.0
        tel.record(make_event("finished", 0, pid=9))
        line = tel.progress_line()
        assert "[1/3]" in line and "ok=1" in line and "eta=" in line
        tel.record(make_event("cache_hit", 1))
        tel.record(make_event("finished", 2))
        assert "done" in tel.progress_line()

    def test_gauges_track_the_stream(self):
        registry = MetricsRegistry()
        tel = SweepTelemetry(total=2, registry=registry, clock=FakeClock())
        tel.record(make_event("started", 0, pid=5))
        tel.record(make_event("finished", 0, pid=5, peak_rss_bytes=7))
        snap = registry.snapshot()
        assert snap["sweep.done"]["value"] == 1
        assert snap["sweep.total"]["value"] == 2
        assert snap["sweep.workers"]["value"] == 1
        assert snap["sweep.peak_rss_bytes"]["value"] == 7

    def test_on_event_observer(self):
        tel = SweepTelemetry(total=1, clock=FakeClock())
        seen = []
        tel.on_event = seen.append
        ev = make_event("started", 0)
        tel.record(ev)
        assert seen == [ev]

    def test_record_rejects_unknown_kind(self):
        tel = SweepTelemetry(total=1, clock=FakeClock())
        with pytest.raises(ValueError, match="unknown telemetry event"):
            tel.record({"kind": "mystery", "index": 0})

    def test_summary_lines(self):
        tel = SweepTelemetry(total=2, clock=FakeClock())
        tel.record(make_event("cache_hit", 0))
        tel.record(make_event("cache_miss", 1))
        tel.record(make_event("started", 1, pid=3))
        tel.record(make_event(
            "finished", 1, pid=3, peak_rss_bytes=2048,
            events_per_second=500.0,
        ))
        text = "\n".join(tel.summary_lines())
        assert "2 grid points: 2 ok" in text
        assert "1/2 hits (50%)" in text
        assert "2.0 KiB" in text
        assert "500 events/s" in text

    def test_html_section_is_a_fragment(self):
        tel = SweepTelemetry(total=1, clock=FakeClock())
        tel.record(make_event("finished", 0))
        frag = tel.html_section()
        assert "<h2>Sweep telemetry</h2>" in frag
        assert "cache hit-rate" in frag
        assert "<html" not in frag


class TestStatusFile:
    def test_status_doc_and_read_back(self, tmp_path):
        clock = FakeClock()
        tel = SweepTelemetry(
            total=2, out_dir=str(tmp_path), clock=clock,
            status_interval_s=0.0,
        )
        tel.record(make_event("started", 0, pid=7, spec="s0"))
        clock.t = 1.5
        doc = read_status(str(tmp_path))
        assert doc is not None and doc["schema"] == STATUS_SCHEMA
        assert doc["total"] == 2
        assert doc["inflight"][0]["pid"] == 7
        tel.record(make_event("finished", 0, pid=7))
        tel.finalize()
        doc = read_status(str(tmp_path))
        assert doc["done"] == 1 and doc["inflight"] == []

    def test_writes_are_throttled(self, tmp_path):
        clock = FakeClock()
        tel = SweepTelemetry(
            total=10, out_dir=str(tmp_path), clock=clock,
            status_interval_s=5.0,
        )
        for i in range(5):
            tel.record(make_event("cache_hit", i))
        assert tel.status_writes == 1  # only the first got through
        clock.t = 6.0
        tel.record(make_event("cache_hit", 5))
        assert tel.status_writes == 2
        tel.finalize()  # final flush ignores the throttle
        assert tel.status_writes == 3

    def test_read_status_absent_and_corrupt(self, tmp_path):
        assert read_status(str(tmp_path)) is None
        (tmp_path / "status.json").write_text("{truncated")
        assert read_status(str(tmp_path)) is None

    def test_no_dir_means_no_writes(self):
        tel = SweepTelemetry(total=1, clock=FakeClock())
        tel.record(make_event("finished", 0))
        assert tel.write_status() is None
        assert tel.status_writes == 0


class TestSweepIntegration:
    def test_serial_sweep_emits_full_stream(self, tmp_path):
        tel = SweepTelemetry(total=3, out_dir=str(tmp_path))
        report = run_sweep(_latency_specs(3), jobs=1, telemetry=tel)
        assert report.ok
        kinds = [e["kind"] for e in tel.events]
        assert kinds.count("started") == 3
        assert kinds.count("finished") == 3
        finished = [e for e in tel.events if e["kind"] == "finished"]
        assert all(e["events_per_second"] > 0 for e in finished)
        assert all(e["peak_rss_bytes"] > 0 for e in finished)
        doc = read_status(str(tmp_path))
        assert doc["done"] == 3 and doc["ok"] == 3

    def test_parallel_sweep_streams_live_worker_events(self):
        """The acceptance scenario: a 2-job sweep with live progress
        events coming from the worker processes themselves."""
        tel = SweepTelemetry(total=4)
        report = run_sweep(_latency_specs(4), jobs=2, telemetry=tel)
        assert report.ok
        started = [e for e in tel.events if e["kind"] == "started"]
        finished = [e for e in tel.events if e["kind"] == "finished"]
        assert len(started) == 4 and len(finished) == 4
        parent = os.getpid()
        assert all(e["pid"] != parent for e in started)
        assert all(e["pid"] != parent for e in finished)
        assert tel.done == 4 and tel.inflight == {}

    def test_guarded_sweep_has_distinct_worker_pids(self):
        """One killable subprocess per point: every started event
        carries a different worker pid."""
        tel = SweepTelemetry(total=2)
        report = run_sweep(
            _latency_specs(2), jobs=2, retries=1, telemetry=tel,
        )
        assert report.ok
        pids = {e["pid"] for e in tel.events if e["kind"] == "started"}
        assert len(pids) == 2
        assert os.getpid() not in pids
        assert all(p.attempts == 1 for p in report.points)

    def test_cache_hits_reported_with_final_hit_rate(self, tmp_path):
        from repro.runner.cache import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        specs = _latency_specs(2)
        run_sweep(specs, jobs=1, cache=cache)  # warm
        tel = SweepTelemetry(total=2)
        report = run_sweep(specs, jobs=1, cache=cache, telemetry=tel)
        assert report.ok and report.cache_hits == 2
        assert tel.counts["cache_hit"] == 2
        assert tel.cache_hit_rate == 1.0
        assert report.cache_hit_rate == 1.0
        assert any("100%" in line for line in tel.summary_lines())

    def test_retry_and_timeout_events(self, tmp_path):
        crash = ExperimentSpec("selftest", shape=(2, 2, 2)).with_extras(
            behavior="crash"
        )
        tel = SweepTelemetry(total=1)
        report = run_sweep([crash], jobs=1, retries=1, telemetry=tel)
        assert not report.ok
        kinds = [e["kind"] for e in tel.events]
        assert kinds.count("retried") == 1
        assert kinds.count("failed") == 1
        assert report.points[0].attempts == 2

        hang = ExperimentSpec("selftest", shape=(2, 2, 2)).with_extras(
            behavior="hang", sleep_s=30.0
        )
        tel2 = SweepTelemetry(total=1)
        report2 = run_sweep([hang], jobs=1, timeout_s=0.5, telemetry=tel2)
        assert not report2.ok
        assert tel2.counts["timed_out"] == 1
        assert tel2.counts["started"] == 1

    def test_sweep_summary_doc_gains_telemetry_fields(self):
        report = run_sweep(_latency_specs(2), jobs=1)
        doc = report.summary_doc()
        assert doc["retried"] == 0
        assert doc["cache_hit_rate"] == 0.0
        assert doc["wall_s"] >= 0
