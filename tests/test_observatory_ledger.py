"""The append-only run ledger: chaining, robustness, and builders."""

from __future__ import annotations

import json
import logging

import pytest

from repro.bench.results import BenchResult, ResultSet
from repro.observatory.ledger import (
    GENESIS,
    Ledger,
    LedgerRecord,
    build_provenance,
    default_ledger_path,
    log_bench,
    log_profile,
    log_sweep,
    record_id,
)


def _metric(value=162.0, metric="one_way_1hop_ns", better="lower"):
    return BenchResult(
        benchmark="latency", metric=metric, value=value, units="ns",
        better=better, config={"hops": 1},
    ).to_dict()


class TestAppendAndRead:
    def test_roundtrip(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led.jsonl"))
        rec = ledger.append("bench", "first", metrics=[_metric()])
        assert rec.seq == 0
        assert rec.prev == GENESIS
        assert rec.id == record_id(rec.body())
        (got,) = ledger.read()
        assert got.to_dict() == rec.to_dict()
        results = got.bench_results()
        assert len(results) == 1
        assert results[0].value == 162.0

    def test_chain_links_records(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led.jsonl"))
        a = ledger.append("bench", "a")
        b = ledger.append("bench", "b")
        c = ledger.append("profile", "c")
        assert [r.seq for r in ledger.read()] == [0, 1, 2]
        assert b.prev == a.id
        assert c.prev == b.id
        assert ledger.verify() == []

    def test_missing_file_reads_empty(self, tmp_path):
        ledger = Ledger(str(tmp_path / "absent.jsonl"))
        assert ledger.read() == []
        assert ledger.last() is None
        assert ledger.verify() == []

    def test_get_by_prefix(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led.jsonl"))
        a = ledger.append("bench", "a")
        b = ledger.append("bench", "b")
        assert ledger.get(a.id).label == "a"
        # A prefix resolves as long as it is unambiguous.
        prefix = a.id[:6]
        if not b.id.startswith(prefix):
            assert ledger.get(prefix).id == a.id
        assert ledger.get("") is None
        assert ledger.get("zzzzzz") is None

    def test_append_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "led.jsonl"
        Ledger(str(path)).append("bench", "x")
        assert path.exists()


class TestTamperDetection:
    def test_edited_value_breaks_the_chain(self, tmp_path):
        path = tmp_path / "led.jsonl"
        ledger = Ledger(str(path))
        ledger.append("bench", "a", metrics=[_metric(100.0)])
        ledger.append("bench", "b", metrics=[_metric(101.0)])
        text = path.read_text()
        path.write_text(text.replace("100.0", "900.0"))
        problems = ledger.verify()
        assert any("does not hash" in p for p in problems)

    def test_deleted_record_breaks_the_chain(self, tmp_path):
        path = tmp_path / "led.jsonl"
        ledger = Ledger(str(path))
        for label in ("a", "b", "c"):
            ledger.append("bench", label)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0] + lines[2])  # drop the middle record
        problems = ledger.verify()
        assert any("chain broken" in p for p in problems)

    def test_intact_ledger_verifies_clean(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led.jsonl"))
        for i in range(5):
            ledger.append("bench", f"r{i}", metrics=[_metric(100.0 + i)])
        assert ledger.verify() == []


class TestCorruptLineRobustness:
    """Satellite: truncated/garbage trailing line → warn, skip, keep
    appending (mirrors the corrupt-checkpoint recovery discipline)."""

    def test_garbage_line_is_skipped_on_read(self, tmp_path, caplog):
        path = tmp_path / "led.jsonl"
        ledger = Ledger(str(path))
        a = ledger.append("bench", "a")
        with open(path, "a") as fh:
            fh.write("{not json at all\n")
        b = ledger.append("bench", "b")
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            records = ledger.read()
        assert [r.id for r in records] == [a.id, b.id]
        assert len(ledger.skipped) == 1
        assert "skipping" in caplog.text

    def test_truncated_tail_recovered_on_append(self, tmp_path, caplog):
        path = tmp_path / "led.jsonl"
        ledger = Ledger(str(path))
        a = ledger.append("bench", "a")
        ledger.append("bench", "b")
        # Simulate a writer that died mid-append: cut the last line.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 30])
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            c = ledger.append("bench", "c")
        assert "truncated line" in caplog.text
        records = ledger.read()
        assert [r.label for r in records] == ["a", "c"]
        # The new record chains past the torn one, to the last valid.
        assert c.prev == a.id
        # And the file stays appendable: one more record, still clean.
        d = ledger.append("bench", "d")
        assert d.prev == c.id
        assert [r.label for r in ledger.read()] == ["a", "c", "d"]

    def test_json_but_not_a_record_is_skipped(self, tmp_path):
        path = tmp_path / "led.jsonl"
        ledger = Ledger(str(path))
        a = ledger.append("bench", "a")
        with open(path, "a") as fh:
            fh.write(json.dumps({"schema": "something-else/9"}) + "\n")
            fh.write(json.dumps([1, 2, 3]) + "\n")
        assert [r.id for r in ledger.read()] == [a.id]
        assert len(ledger.skipped) == 2
        # verify() reports the unreadable lines, never hides them.
        assert sum("unreadable" in p for p in ledger.verify()) == 2

    def test_blank_lines_are_ignored_silently(self, tmp_path):
        path = tmp_path / "led.jsonl"
        ledger = Ledger(str(path))
        a = ledger.append("bench", "a")
        with open(path, "a") as fh:
            fh.write("\n\n")
        b = ledger.append("bench", "b")
        assert [r.id for r in ledger.read()] == [a.id, b.id]
        assert ledger.skipped == []


class TestDefaultPath:
    def test_unset_env_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert default_ledger_path() == ".repro-ledger.jsonl"

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "OFF",
                                       "disabled", " none "])
    def test_falsey_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_LEDGER", value)
        assert default_ledger_path() is None

    def test_env_path_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "mine.jsonl"))
        assert default_ledger_path() == str(tmp_path / "mine.jsonl")


class TestProvenance:
    def test_provenance_facts(self):
        doc = build_provenance(meta={"wall_time_s": 1.5,
                                     "events_per_second": 2e6,
                                     "peak_rss_bytes": 1024,
                                     "irrelevant": "dropped"})
        assert doc["hostname"]
        assert doc["cpu_model"]
        assert len(doc["source_fingerprint"]) == 12
        assert doc["wall_time_s"] == 1.5
        assert doc["events_per_second"] == 2e6
        assert doc["peak_rss_bytes"] == 1024
        assert "irrelevant" not in doc

    def test_record_schema_validation(self):
        with pytest.raises(ValueError, match="schema"):
            LedgerRecord.from_dict({"schema": "nope/1"})
        with pytest.raises(ValueError, match="missing"):
            LedgerRecord.from_dict({"schema": "repro-ledger/1"})


class TestBuilders:
    def test_log_bench_round_trips_results(self, tmp_path):
        ledger = Ledger(str(tmp_path / "led.jsonl"))
        results = ResultSet([BenchResult.from_dict(_metric())])
        rec = log_bench(ledger, results, label="bench 2x2x2",
                        verdict={"schema": "repro-bench-verdict/1",
                                 "ok": True})
        (got,) = ledger.read()
        assert got.kind == "bench"
        assert got.label == "bench 2x2x2"
        assert got.attachments["verdict"]["ok"] is True
        assert [r.to_dict() for r in got.bench_results()] == rec.metrics

    def test_log_profile_stores_wall_profile(self, tmp_path):
        from repro.profile.capture import run_profiled

        ledger = Ledger(str(tmp_path / "led.jsonl"))
        result = run_profiled("selftest", shape=(2, 2, 2), rounds=1)
        rec = log_profile(ledger, result)
        (got,) = ledger.read()
        wall = got.attachments["wall_profile"]
        assert wall["schema"] == "repro-profile-wall/1"
        assert wall["loop_wall_ns"] == result.profile.loop_wall_ns
        metrics = {r.metric: r for r in got.bench_results()}
        assert metrics["events_total"].value == result.profile.events_total
        assert metrics["events_per_second"].better == "higher"
        assert got.provenance["spec_hash"] == result.spec.spec_hash
        assert rec.id == got.id

    def test_log_profile_requires_a_profile(self, tmp_path):
        from repro.runner.result import run_experiment
        from repro.runner.spec import ExperimentSpec

        result = run_experiment(
            ExperimentSpec("selftest", shape=(2, 2, 2), rounds=1)
        )
        ledger = Ledger(str(tmp_path / "led.jsonl"))
        with pytest.raises(ValueError, match="no profile"):
            log_profile(ledger, result)

    def test_log_sweep_stores_rows_and_summary(self, tmp_path):
        from repro.runner.sweep import expand_grid, run_sweep

        specs = expand_grid("latency", {"hops": [0, 1]},
                            {"shape": (2, 2, 2)})
        report = run_sweep(specs)
        ledger = Ledger(str(tmp_path / "led.jsonl"))
        log_sweep(ledger, report, label="latency sweep")
        (got,) = ledger.read()
        assert got.kind == "sweep"
        assert len(got.bench_results()) == len(report.result_set())
        assert got.attachments["summary"]["points"] == 2

    def test_run_sweep_ledger_hook_appends(self, tmp_path):
        from repro.runner.sweep import expand_grid, run_sweep

        specs = expand_grid("latency", {"hops": [0]}, {"shape": (2, 2, 2)})
        ledger = Ledger(str(tmp_path / "led.jsonl"))
        report = run_sweep(specs, ledger=ledger)
        assert report.ledger_record is not None
        assert ledger.read()[0].id == report.ledger_record.id

    def test_run_sweep_broken_ledger_never_fails_the_sweep(self, tmp_path):
        from repro.runner.sweep import expand_grid, run_sweep

        class BrokenLedger(Ledger):
            def append(self, *args, **kwargs):
                raise OSError("disk full")

        specs = expand_grid("latency", {"hops": [0]}, {"shape": (2, 2, 2)})
        ledger = BrokenLedger(str(tmp_path / "led.jsonl"))
        report = run_sweep(specs, ledger=ledger)
        assert report.ok
        assert report.ledger_record is None
