"""Calibration tests: the network must reproduce Figs. 5 & 6 exactly.

These are the reproduction's anchor tests — if any of them fails, every
downstream timing result is meaningless.
"""

import pytest

from repro.asic import build_machine
from repro.constants import (
    HOP_NS,
    ONE_HOP_X_NS,
    ZERO_HOP_NS,
)
from repro.engine import Simulator
from tests.conftest import run_exchange


def one_way(shape, dst, payload_bytes=0):
    sim = Simulator()
    m = build_machine(sim, *shape)
    src = m.node((0, 0, 0)).slice(0)
    rcv = m.node(dst).slice(1 if dst == (0, 0, 0) else 0)
    return run_exchange(sim, src, rcv, payload_bytes=payload_bytes)


def test_headline_162ns():
    """A 0-byte counted remote write between X-neighbours is 162 ns."""
    assert one_way((8, 8, 8), (1, 0, 0)) == pytest.approx(162.0)
    assert ONE_HOP_X_NS == pytest.approx(162.0)


def test_zero_hop_intra_node():
    assert one_way((8, 8, 8), (0, 0, 0)) == pytest.approx(ZERO_HOP_NS)


@pytest.mark.parametrize("hops", [2, 3, 4])
def test_marginal_x_hop_is_76ns(hops):
    assert one_way((8, 8, 8), (hops, 0, 0)) == pytest.approx(
        162.0 + (hops - 1) * HOP_NS["x"]
    )


def test_y_and_z_hops_cost_54ns():
    base = one_way((8, 8, 8), (4, 0, 0))
    assert one_way((8, 8, 8), (4, 1, 0)) == pytest.approx(base + HOP_NS["y"])
    assert one_way((8, 8, 8), (4, 1, 1)) == pytest.approx(
        base + HOP_NS["y"] + HOP_NS["z"]
    )


def test_machine_diameter_latency():
    """Fig. 5: 12 hops on an 8x8x8 is about five times one hop."""
    far = one_way((8, 8, 8), (4, 4, 4))
    assert far == pytest.approx(162.0 + 3 * 76.0 + 8 * 54.0)  # 822 ns
    assert 4.5 < far / 162.0 < 5.5


def test_payload_serialization_latency_paid_once():
    """256-byte packets ride cut-through: payload time is added once,
    not per hop (Fig. 5's parallel curves)."""
    d1 = one_way((8, 8, 8), (1, 0, 0), 256) - one_way((8, 8, 8), (1, 0, 0), 0)
    d4 = one_way((8, 8, 8), (4, 0, 0), 256) - one_way((8, 8, 8), (4, 0, 0), 0)
    assert d1 == pytest.approx(d4)
    assert d1 > 0


def test_wraparound_routes_shorter_than_linear():
    """(7,0,0) is one hop away on the torus, not seven."""
    assert one_way((8, 8, 8), (7, 0, 0)) == pytest.approx(162.0)


def test_inline_payload_has_zero_extra_latency():
    assert one_way((8, 8, 8), (1, 0, 0), 8) == pytest.approx(162.0)


def test_wire_latency_values_documented_in_fig6():
    from repro.analysis.latency import breakdown_162ns

    parts = breakdown_162ns()
    assert sum(v for _, v in parts) == pytest.approx(162.0)
    labels = [name for name, _ in parts]
    assert any("poll" in l for l in labels)
    assert any("link adapter" in l for l in labels)
