"""Tests for the deprecated CLI aliases and their removal notices.

The two hidden aliases kept for compatibility — ``--payload-bytes``
(canonical: ``--payload``) and positional all-reduce shapes (canonical:
repeatable ``--shape``) — must parse identically to their replacements
while raising a :class:`DeprecationWarning` that names the replacement
and announces removal.
"""

import argparse

import pytest

from repro.__main__ import _canonical_parent, _parse_shape, main


def _parse(argv):
    parser = argparse.ArgumentParser(parents=[_canonical_parent()])
    return parser.parse_args(argv)


class TestPayloadBytesAlias:
    def test_warns_with_removal_notice(self, capsys):
        with pytest.warns(DeprecationWarning) as caught:
            _parse(["--payload-bytes", "64"])
        [w] = caught
        msg = str(w.message)
        assert "--payload-bytes is deprecated" in msg
        assert "will be removed" in msg
        assert "use --payload instead" in msg
        # CLI users see the same notice on stderr (DeprecationWarnings
        # are hidden by default outside __main__).
        assert "--payload-bytes is deprecated" in capsys.readouterr().err

    def test_parses_identically_to_canonical(self):
        with pytest.warns(DeprecationWarning):
            old = _parse(["--payload-bytes", "64"])
        new = _parse(["--payload", "64"])
        assert old.payload == new.payload == 64

    def test_canonical_spelling_is_silent(self, recwarn):
        ns = _parse(["--payload", "32"])
        assert ns.payload == 32
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestAllreducePositionalShapes:
    def test_warns_and_matches_flag_spelling(self, capsys):
        with pytest.warns(DeprecationWarning) as caught:
            assert main(["allreduce", "2x2x2"]) == 0
        old_out = capsys.readouterr().out
        assert any(
            "shapes is deprecated" in str(w.message)
            and "use --shape instead" in str(w.message)
            for w in caught
        )
        assert main(["allreduce", "--shape", "2x2x2"]) == 0
        new_out = capsys.readouterr().out
        assert old_out == new_out  # identical parse ⇒ identical run

    def test_parse_shape_rejects_garbage(self):
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_shape("not-a-shape")
