"""Exporter tests: Chrome trace_event JSON, JSONL, text summary, CLI.

Includes the determinism regression: two identical runs must export
byte-identical traces (global packet ids are renumbered per run).
"""

import json

import pytest

from repro.__main__ import main
from repro.engine import Simulator
from repro.trace import (
    ActivityKind,
    ActivityRecorder,
    dumps_chrome_trace,
    flight_summary,
    jsonl_lines,
)
from repro.trace.capture import EXPERIMENTS, run_traced


@pytest.fixture(scope="module")
def congestion_capture():
    return run_traced("congestion", shape=(2, 2, 2))


class TestChromeTrace:
    def test_valid_trace_event_json(self, congestion_capture):
        cap = congestion_capture
        doc = json.loads(dumps_chrome_trace(cap.flight, metrics=cap.registry))
        assert doc["displayTimeUnit"] == "ns"
        events = doc["traceEvents"]
        assert events, "trace must contain events"
        for e in events:
            assert e["ph"] in ("M", "X", "i", "C")
            assert "pid" in e
            if e["ph"] == "X":
                assert e["dur"] >= 0
                assert e["ts"] >= 0

    def test_per_packet_spans_with_per_hop_events(self, congestion_capture):
        cap = congestion_capture
        doc = json.loads(dumps_chrome_trace(cap.flight))
        events = doc["traceEvents"]
        packets = [e for e in events if e.get("cat") == "packet"]
        xmits = [e for e in events if e.get("cat") == "hop"
                 and e["name"].startswith("xmit")]
        waits = [e for e in events if e.get("cat") == "hop"
                 and e["name"].startswith("wait")]
        deliveries = [e for e in events if e.get("cat") == "delivery"]
        flights = cap.flight.packets()
        assert len(packets) == len(flights)
        assert len(xmits) == sum(len(f.hops) for f in flights)
        assert len(waits) == cap.flight.contended_hops()
        assert len(deliveries) == sum(len(f.deliveries) for f in flights)

    def test_hop_events_nest_inside_packet_span(self, congestion_capture):
        doc = json.loads(dumps_chrome_trace(congestion_capture.flight))
        events = doc["traceEvents"]
        by_tid = {}
        for e in events:
            if e.get("cat") == "packet":
                by_tid[(e["pid"], e["tid"])] = (e["ts"], e["ts"] + e["dur"])
        for e in events:
            if e.get("cat") == "hop":
                lo, hi = by_tid[(e["pid"], e["tid"])]
                assert lo <= e["ts"]
                assert e["ts"] + e["dur"] <= hi + 1e-9

    def test_queue_counter_events_present_under_congestion(
        self, congestion_capture
    ):
        doc = json.loads(dumps_chrome_trace(congestion_capture.flight))
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters, "incast must produce queue-depth samples"
        assert all("waiting" in e["args"] for e in counters)

    def test_metrics_embedded_as_other_data(self, congestion_capture):
        cap = congestion_capture
        doc = json.loads(dumps_chrome_trace(cap.flight, metrics=cap.registry))
        metrics = doc["otherData"]["metrics"]
        assert metrics["net.packets_injected"]["value"] == len(cap.flight)

    def test_activity_recorder_exported_as_units_process(self):
        cap = run_traced("congestion", shape=(2, 2, 2))
        sim = Simulator()
        rec = ActivityRecorder(sim)
        rec.record("n0:ts0", ActivityKind.COMPUTE, 0.0, 50.0, "force")
        doc = json.loads(dumps_chrome_trace(cap.flight, recorder=rec))
        unit_events = [e for e in doc["traceEvents"]
                       if e.get("cat") == "compute"]
        assert len(unit_events) == 1
        assert unit_events[0]["name"] == "force"


class TestDeterminism:
    def test_identical_runs_export_identical_bytes(self):
        """Two captures of the same experiment in one process differ in
        global packet ids and counter tags; the export must not."""
        a = run_traced("congestion", shape=(2, 2, 2))
        b = run_traced("congestion", shape=(2, 2, 2))
        assert dumps_chrome_trace(a.flight, metrics=a.registry) == \
            dumps_chrome_trace(b.flight, metrics=b.registry)
        assert list(jsonl_lines(a.flight)) == list(jsonl_lines(b.flight))

    def test_latency_experiment_also_deterministic(self):
        a = run_traced("latency", shape=(2, 2, 2), rounds=1)
        b = run_traced("latency", shape=(2, 2, 2), rounds=1)
        assert dumps_chrome_trace(a.flight) == dumps_chrome_trace(b.flight)


class TestJsonl:
    def test_every_line_parses_and_types_cover_run(self, congestion_capture):
        lines = list(jsonl_lines(congestion_capture.flight))
        records = [json.loads(line) for line in lines]
        types = {r["type"] for r in records}
        assert {"packet", "link", "queue_depth"} <= types
        packets = [r for r in records if r["type"] == "packet"]
        assert all(r["latency_ns"] > 0 for r in packets)
        assert all(len(r["hops"]) >= 1 for r in packets)


class TestSummary:
    def test_summary_tables(self, congestion_capture):
        cap = congestion_capture
        text = flight_summary(cap.flight, cap.registry)
        assert "Packet flight summary" in text
        assert "Busiest links" in text
        assert "Metrics" in text
        assert "net.packet_latency_ns" in text


class TestCaptureHarness:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_traced("nope")

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_every_experiment_records_flights(self, experiment):
        cap = run_traced(experiment, shape=(2, 2, 2), rounds=1)
        assert len(cap.flight) > 0
        assert cap.registry.counter("net.packets_injected").value == \
            len(cap.flight)
        assert cap.description


class TestCli:
    def test_trace_subcommand_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        rc = main(["trace", "congestion", "--shape", "2x2x2",
                   "--out", str(out), "--jsonl", str(jsonl)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert jsonl.read_text().strip()
        assert "Packet flight summary" in capsys.readouterr().out

    def test_metrics_flag_prints_registry(self, capsys):
        rc = main(["latency", "--shape", "2x2x2", "--metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "One-way latency" in out
        assert "net.packet_latency_ns" in out

    def test_metrics_flag_on_network_free_command(self, capsys):
        rc = main(["breakdown", "--metrics"])
        assert rc == 0
        assert "162" in capsys.readouterr().out.replace("162.00", "162")
