"""Unit tests for the counted-remote-write gather (§III.B, Fig. 4)."""

import pytest

from repro.comm import CountedGather, GatherSource


def _sources(machine, specs):
    return [
        GatherSource(machine.torus.coord(node), client, packets)
        for node, client, packets in specs
    ]


def test_gather_basic_flow(sim, machine222):
    """Fig. 4's example: two source slices write to one target slice;
    the target learns completion from a single counter."""
    target = machine222.node((0, 0, 0)).slice(0)
    a = machine222.node((1, 0, 0)).slice(0)
    b = machine222.node((0, 1, 0)).slice(0)
    g = CountedGather(target, "gather", _sources(
        machine222, [((1, 0, 0), "slice0", 2), ((0, 1, 0), "slice0", 3)]
    ))
    assert g.expected == 5
    t = {}

    def send_a():
        yield from g.send_from(a, ["a0", "a1"], payload_bytes=8)

    def send_b():
        yield sim.timeout(500.0)
        yield from g.send_from(b, ["b0", "b1", "b2"], payload_bytes=8)

    def wait():
        t["done"] = yield from g.wait(target)

    procs = [sim.process(send_a()), sim.process(send_b()), sim.process(wait())]
    sim.run(until=sim.all_of(procs))
    assert g.gathered() == ["a0", "a1", "b0", "b1", "b2"]
    assert t["done"] > 500.0


def test_slot_layout_is_deterministic(sim, machine222):
    target = machine222.node((0, 0, 0)).slice(0)
    g = CountedGather(target, "g", _sources(
        machine222, [((1, 0, 0), "slice0", 2), ((0, 1, 0), "slice1", 1)]
    ))
    assert g.slot((1, 0, 0), "slice0", 0) == 0
    assert g.slot((1, 0, 0), "slice0", 1) == 1
    assert g.slot((0, 1, 0), "slice1", 0) == 2
    with pytest.raises(IndexError):
        g.slot((1, 0, 0), "slice0", 2)
    with pytest.raises(KeyError):
        g.slot((0, 0, 1), "slice0", 0)


def test_fixed_count_contract_enforced(sim, machine222):
    """Sending a different number of packets than declared would hang
    the receiver on real hardware; the model rejects it."""
    target = machine222.node((0, 0, 0)).slice(0)
    a = machine222.node((1, 0, 0)).slice(0)
    g = CountedGather(target, "g", _sources(machine222, [((1, 0, 0), "slice0", 2)]))

    def bad():
        yield from g.send_from(a, ["only-one"])

    with pytest.raises(ValueError, match="declared 2 packets"):
        sim.run(until=sim.process(bad()))


def test_duplicate_source_rejected(machine222):
    target = machine222.node((0, 0, 0)).slice(0)
    with pytest.raises(ValueError, match="duplicate source"):
        CountedGather(target, "g", _sources(
            machine222,
            [((1, 0, 0), "slice0", 1), ((1, 0, 0), "slice0", 2)],
        ))


def test_empty_sources_rejected(machine222):
    with pytest.raises(ValueError):
        CountedGather(machine222.node(0).slice(0), "g", [])


def test_zero_packet_source_rejected():
    from repro.topology import NodeCoord

    with pytest.raises(ValueError):
        GatherSource(NodeCoord(0, 0, 0), "slice0", 0)


def test_reset_for_next_phase(sim, machine222):
    target = machine222.node((0, 0, 0)).slice(0)
    a = machine222.node((1, 0, 0)).slice(0)
    g = CountedGather(target, "g", _sources(machine222, [((1, 0, 0), "slice0", 1)]))

    def roundtrip():
        yield from g.send_from(a, ["x"])
        yield from g.wait(target)

    sim.run(until=sim.process(roundtrip()))
    g.reset()
    assert g.gathered() == []
    assert target.counter("g").count == 0

    def second():
        yield from g.send_from(a, ["y"])
        yield from g.wait(target)

    sim.run(until=sim.process(second()))
    assert g.gathered() == ["y"]


def test_gather_into_accumulation_memory(sim, machine222):
    """Gathers can target accumulation memories; a slice on the same
    node polls the counter across the ring."""
    node = machine222.node((0, 0, 0))
    target = node.accum[0]
    a = machine222.node((1, 0, 0)).slice(0)
    g = CountedGather(target, "g", _sources(machine222, [((1, 0, 0), "slice0", 1)]))
    t = {}

    def send():
        yield from g.send_from(a, [1.0], payload_bytes=8)

    def wait():
        t["done"] = yield from g.wait(node.slice(0))

    p1, p2 = sim.process(send()), sim.process(wait())
    sim.run(until=sim.all_of([p1, p2]))
    assert "done" in t
