"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper and

* prints it (visible with ``pytest -s``),
* writes it to ``benchmarks/results/<name>.txt``,

so `bench_output.txt` plus the results directory together hold the
whole reproduced evaluation.  Set ``REPRO_BENCH_SCALE=quick`` to run
the MD benchmarks on a reduced machine (4×4×4) when iterating.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def get_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


def md_shape() -> tuple[int, int, int]:
    """Machine shape for the MD benchmarks (paper: 8×8×8 = 512 nodes)."""
    return (4, 4, 4) if get_scale() == "quick" else (8, 8, 8)


def md_atoms() -> int:
    from repro.constants import DHFR_ATOMS

    return DHFR_ATOMS // 8 if get_scale() == "quick" else DHFR_ATOMS


@pytest.fixture
def publish(request):
    """Print a regenerated artifact and persist it under results/."""

    def _publish(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _publish


def once(benchmark, fn):
    """Run a heavy harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
