"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper and

* prints it (visible with ``pytest -s``),
* writes it to ``benchmarks/results/<name>.txt``,
* records its headline numbers as machine-readable ``repro-bench/1``
  JSON in ``benchmarks/results/<name>.json`` (the ``record`` fixture),

so `bench_output.txt` plus the results directory together hold the
whole reproduced evaluation, and CI can diff the JSON against a
committed baseline (see ``repro.bench.compare``).  Set
``REPRO_BENCH_SCALE=quick`` to run the MD benchmarks on a reduced
machine (4×4×4) when iterating.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def get_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


def md_shape() -> tuple[int, int, int]:
    """Machine shape for the MD benchmarks (paper: 8×8×8 = 512 nodes)."""
    return (4, 4, 4) if get_scale() == "quick" else (8, 8, 8)


def md_atoms() -> int:
    from repro.constants import DHFR_ATOMS

    return DHFR_ATOMS // 8 if get_scale() == "quick" else DHFR_ATOMS


@pytest.fixture
def record(request):
    """Record machine-readable metrics for the regression pipeline.

    ``record(benchmark, metric, value, units, better="lower",
    **config)`` — at test teardown all records are grouped by benchmark
    name and written as ``repro-bench/1`` ResultSet JSON to
    ``results/<benchmark>.json``.  The scale (quick vs paper) is folded
    into every config so reduced-scale CI runs never collide with a
    full-scale baseline.
    """
    from repro.bench.results import BenchResult, ResultSet

    collected: list[BenchResult] = []

    def _record(benchmark, metric, value, units, better="lower", **config):
        config.setdefault("scale", get_scale())
        collected.append(
            BenchResult(
                benchmark=benchmark,
                metric=metric,
                value=value,
                units=units,
                better=better,
                config=config,
            )
        )

    yield _record
    if not collected:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    by_name: dict[str, list[BenchResult]] = {}
    for r in collected:
        by_name.setdefault(r.benchmark, []).append(r)
    for name, results in by_name.items():
        ResultSet(results).write(str(RESULTS_DIR / f"{name}.json"))


@pytest.fixture
def publish(request):
    """Print a regenerated artifact and persist it under results/."""

    def _publish(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _publish


def once(benchmark, fn):
    """Run a heavy harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
