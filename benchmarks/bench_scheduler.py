"""Scheduler comparison — heap vs. bucketed time wheel (engine hot path).

The time wheel wins exactly where Anton's workload concentrates its
events: the discrete delay set (4/8/10 ns per hop) lands many
completions on the *same* simulated tick, so the wheel dispatches a
whole bucket per pop where the heap pays ``heappush``/``heappop`` per
event.  Two views are measured, both under the paper's two storm
shapes (the Fig. 13 MD step and the 26-to-1 incast):

* **event-turn kernels** — replay the storm shape with no-op callbacks,
  isolating scheduler overhead (the operator-overhead microbenchmark
  discipline): this is where the headline speedup lives.
* **end-to-end experiments** — the real ``mdstep`` and 26-to-1
  ``congestion`` specs under both schedulers.  Event bodies dominate
  (~µs of model code per event), so the end-to-end delta is honest but
  small; the runs double as an equivalence check — the two schedulers'
  serialized results must match byte for byte.

Storm parameters mirror measurement, not invention: profiling the
8×8×8 ``mdstep`` run shows 93 % of its 1.2 M events share their tick
with another event, with barrier fan-outs reaching 768 events on one
tick; the incast kernel uses the full 26-wide fan-in of a 3×3×3 torus.
"""

from conftest import get_scale, once

from repro.analysis import render_table
from repro.engine import Simulator, use_scheduler

#: Interleaved repetitions per kernel; best-of is reported so a noisy
#: neighbour slows a rep, never the verdict.
REPS = 5

#: (ticks, fanout) for the two storm shapes, by scale.
MDSTEP_STORM = {"paper": (400, 256), "quick": (120, 256)}
INCAST_STORM = {"paper": (2000, 26), "quick": (600, 26)}


def _storm(scheduler: str, ticks: int, fanout: int, batched: bool) -> float:
    """Events/s dispatching ``ticks`` storms of ``fanout`` no-op events.

    Every storm lands on one simulated tick — the mdstep/incast shape —
    so the kernel measures pure scheduler turn cost: push + pop + call.
    """
    import gc
    import time

    sim = Simulator(scheduler=scheduler)

    def deliver():
        pass

    pairs = [(deliver, ())] * fanout

    def tick(remaining):
        if remaining:
            if batched:
                sim.schedule_batch(4.0, pairs)
            else:
                for _ in range(fanout):
                    sim.schedule(4.0, deliver)
            sim.schedule(4.0, tick, remaining - 1)

    tick(ticks)
    gc.collect()
    t0 = time.perf_counter()
    sim.run()
    return sim.events_executed / (time.perf_counter() - t0)


def _paired(ticks: int, fanout: int, batched: bool) -> tuple[float, float]:
    """Best-of-``REPS`` events/s for (heap, wheel), interleaved."""
    best = {"heap": 0.0, "wheel": 0.0}
    for _ in range(REPS):
        for name in best:
            best[name] = max(best[name], _storm(name, ticks, fanout, batched))
    return best["heap"], best["wheel"]


def _run_spec_paired(spec, reps: int) -> tuple[float, float]:
    """Interleaved best-of-``reps`` end-to-end events/s for (heap, wheel).

    Also asserts the two schedulers serialize to byte-identical result
    documents — the equivalence contract the property suite proves
    exhaustively, checked here on the real benchmark workloads.
    """
    import json

    from repro.runner.result import run_experiment

    best = {"heap": 0.0, "wheel": 0.0}
    docs = {}
    for _ in range(reps):
        for name in best:
            with use_scheduler(name):
                result = run_experiment(spec)
            best[name] = max(best[name], result.meta["events_per_second"])
            docs[name] = json.dumps(
                result.to_dict(), sort_keys=True, separators=(",", ":")
            )
        assert docs["heap"] == docs["wheel"], (
            f"{spec.experiment}: schedulers disagree on result bytes"
        )
    return best["heap"], best["wheel"]


def bench_scheduler_kernels(benchmark, publish, record):
    scale = get_scale()
    md_ticks, md_fanout = MDSTEP_STORM.get(scale, MDSTEP_STORM["paper"])
    in_ticks, in_fanout = INCAST_STORM.get(scale, INCAST_STORM["paper"])

    def run():
        return (
            _paired(md_ticks, md_fanout, batched=True),
            _paired(in_ticks, in_fanout, batched=True),
            _paired(in_ticks, in_fanout, batched=False),
        )

    mdstep, incast, singles = once(benchmark, run)
    rows = []
    for name, fanout, (heap_eps, wheel_eps) in (
        (f"mdstep barrier storm ({md_fanout}-wide, batched)", md_fanout, mdstep),
        (f"26-to-1 incast storm (batched)", in_fanout, incast),
        (f"26-to-1 incast storm (singles)", in_fanout, singles),
    ):
        speedup = wheel_eps / heap_eps
        rows.append([name, heap_eps / 1e6, wheel_eps / 1e6, f"{speedup:.2f}x"])
        key = name.split(" (")[0].replace(" ", "_").replace("-", "_")
        tag = "batched" if "batched" in name else "singles"
        cfg = {"fanout": fanout, "mode": tag}
        record("scheduler_kernels", f"{key}_{tag}_heap_eps", heap_eps,
               "events/s", better="higher", scheduler="heap", **cfg)
        record("scheduler_kernels", f"{key}_{tag}_wheel_eps", wheel_eps,
               "events/s", better="higher", scheduler="wheel", **cfg)
        record("scheduler_kernels", f"{key}_{tag}_speedup_x", speedup,
               "ratio", better="higher", **cfg)
    text = render_table(
        "Scheduler event-turn kernels — heap vs. time wheel "
        "(no-op callbacks, best of %d)" % REPS,
        ["storm shape", "heap Mev/s", "wheel Mev/s", "speedup"],
        rows,
    )
    publish("scheduler_kernels", text)
    md_speedup = mdstep[1] / mdstep[0]
    # The headline claim: ≥5× event throughput on the mdstep storm
    # shape.  Floor set below the measured ~8.5× to absorb CI noise
    # without letting a real regression through.
    assert md_speedup >= 3.0, f"mdstep storm speedup collapsed: {md_speedup:.2f}x"


def bench_scheduler_endtoend(benchmark, publish, record):
    from repro.runner.spec import ExperimentSpec

    scale = get_scale()
    incast_spec = ExperimentSpec(
        "congestion", shape=(3, 3, 3), payload=256,
        rounds=2 if scale == "quick" else 6,
        extras=(("senders", 26),),
    )
    mdstep_spec = ExperimentSpec(
        "mdstep", shape=(4, 4, 4) if scale == "quick" else (8, 8, 8),
        rounds=2,
    )

    def run():
        return [
            _run_spec_paired(incast_spec, reps=3),
            _run_spec_paired(mdstep_spec, reps=3),
        ]

    (in_heap, in_wheel), (md_heap, md_wheel) = once(benchmark, run)
    rows = [
        ["26-to-1 incast (congestion)", in_heap / 1e6, in_wheel / 1e6,
         f"{in_wheel / in_heap:.2f}x"],
        ["Fig. 13 mdstep pair", md_heap / 1e6, md_wheel / 1e6,
         f"{md_wheel / md_heap:.2f}x"],
    ]
    text = render_table(
        "Scheduler end-to-end — heap vs. time wheel (results byte-identical; "
        "event bodies dominate, so deltas are modest by design)",
        ["experiment", "heap Mev/s", "wheel Mev/s", "speedup"],
        rows,
    )
    publish("scheduler_endtoend", text)
    for name, heap_eps, wheel_eps, spec in (
        ("incast_26to1", in_heap, in_wheel, incast_spec),
        ("mdstep", md_heap, md_wheel, mdstep_spec),
    ):
        cfg = {"shape": list(spec.shape), "rounds": spec.rounds}
        record("scheduler_endtoend", f"{name}_heap_eps", heap_eps,
               "events/s", better="higher", scheduler="heap", **cfg)
        record("scheduler_endtoend", f"{name}_wheel_eps", wheel_eps,
               "events/s", better="higher", scheduler="wheel", **cfg)
        record("scheduler_endtoend", f"{name}_speedup_x", wheel_eps / heap_eps,
               "ratio", better="higher", **cfg)
