"""Table 3 — critical-path communication and total time, Anton vs the
512-node Xeon/InfiniBand Desmond configuration.

Paper (µs, comm/total): Anton average 9.8/15.6, range-limited 5.0/9.0,
long-range 14.6/22.2, FFT convolution 7.5/8.5, thermostat 2.6/3.0;
Desmond 262/565, 108/351, 416/779, 230/290, 78/99.  Headline: Anton's
critical-path communication is ~1/27 of Desmond's.
"""

from conftest import md_atoms, md_shape, once

from repro.analysis import render_table
from repro.analysis.mdstep import build_dhfr_md, run_table3
from repro.baselines.desmond import DesmondModel
from repro.constants import PAPER_TABLE3_US

ROWS = ["average", "range_limited", "long_range", "fft_convolution", "thermostat"]


def bench_table3(benchmark, publish, record):
    shape = md_shape()

    def run():
        anton = run_table3(build_dhfr_md(shape=shape, atoms=md_atoms()))
        desmond = DesmondModel().table3()
        return anton, desmond

    anton, desmond = once(benchmark, run)
    rows = []
    for name in ROWS:
        a = anton[name]
        d = desmond[name]
        pa = PAPER_TABLE3_US[name]["anton"]
        pd = PAPER_TABLE3_US[name]["desmond"]
        rows.append(
            [
                name,
                a.communication_us, pa[0], a.total_us, pa[1],
                d.communication_us, pd[0], d.total_us, pd[1],
            ]
        )
    text = render_table(
        f"Table 3 — critical-path times (µs) on {shape} "
        "(sim vs paper; Anton then Desmond)",
        ["step", "A comm", "(paper)", "A total", "(paper)",
         "D comm", "(paper)", "D total", "(paper)"],
        rows,
        float_format="{:.1f}",
    )
    ratio = desmond["average"].communication_us / anton["average"].communication_us
    text += (
        f"\n\nDesmond/Anton average communication ratio: {ratio:.0f}x "
        "(paper: 27x — 'less than 4% that of the next fastest platform')"
    )
    publish("table3_critical_path", text)
    for name in ROWS:
        record("table3_critical_path", f"anton_{name}_comm_us",
               anton[name].communication_us, "us", shape=list(shape), step=name)
        record("table3_critical_path", f"anton_{name}_total_us",
               anton[name].total_us, "us", shape=list(shape), step=name)
    record("table3_critical_path", "desmond_anton_comm_ratio", ratio, "x",
           better="higher", shape=list(shape))
    if shape == (8, 8, 8):
        # The headline must hold in shape: a huge communication gap.
        assert ratio > 10.0
        # Anton totals within factor-level agreement of the paper
        # (DESIGN.md: shape, not absolute numbers, is the target).
        for name in ROWS:
            pa = PAPER_TABLE3_US[name]["anton"]
            assert abs(anton[name].total_us - pa[1]) / pa[1] < 0.75, name
        # Communication dominates Anton's long-range step, as in Fig. 13.
        lr = anton["long_range"]
        assert lr.communication_us / lr.total_us > 0.5
