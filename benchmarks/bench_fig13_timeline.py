"""Figure 13 — machine activity for two time steps.

Paper: a range-limited step (~8 µs) followed by a long-range step
(~24 µs); the torus links are occupied for much of the step, and the
computational units spend a significant fraction of the time stalled
waiting for data.
"""

from conftest import md_atoms, md_shape, once

from repro.analysis.mdstep import build_dhfr_md, fig13_timeline
from repro.trace.recorder import ActivityKind


def bench_fig13(benchmark, publish, record):
    shape = md_shape()

    def run():
        md = build_dhfr_md(shape=shape, atoms=md_atoms())
        return md, *fig13_timeline(md, buckets=64)

    md, text, rl, lr = once(benchmark, run)
    header = (
        f"Figure 13 — activity for two time steps on {shape}: "
        f"range-limited ({rl.total_us:.1f} µs) then long-range "
        f"({lr.total_us:.1f} µs)\n"
    )
    publish("fig13_timeline", header + text)
    record("fig13_timeline", "range_limited_step_us", rl.total_us, "us",
           shape=list(shape))
    record("fig13_timeline", "long_range_step_us", lr.total_us, "us",
           shape=list(shape))
    # The long-range step dominates, as in the figure.
    assert lr.total_ns > rl.total_ns
    # Compute units are busy *and* communication dominates overall:
    # there is recorded compute activity and the step spans exceed it.
    total_compute = sum(
        a.duration_ns
        for a in md.recorder.intervals(kind=ActivityKind.COMPUTE)
    )
    assert total_compute > 0
