"""Telemetry overhead — tracing must be free when off, cheap when on.

Runs the Fig. 5 latency sweep three ways: untraced (the null flight
recorder, the default), with flight recording attached, and with flight
recording feeding a metrics registry.  Asserts that telemetry never
perturbs the simulated results, and reports the wall-clock cost of
each mode so a regression in the disabled path (which every ordinary
run pays) is visible in the published table.
"""

import time

from conftest import once

from repro.analysis import latency_vs_hops, render_table
from repro.trace.flight import FlightRecorder, use_flight
from repro.trace.metrics import MetricsRegistry


def _timed_sweep(mode: str):
    """One Fig. 5 sweep on a 4x4x4 machine; returns (seconds, points)."""
    shape = (4, 4, 4)
    start = time.perf_counter()
    if mode == "untraced":
        points = latency_vs_hops(shape=shape)
        flights = 0
    else:
        metrics = MetricsRegistry() if mode == "metrics" else None
        fl = FlightRecorder(metrics=metrics)
        with use_flight(fl):
            points = latency_vs_hops(shape=shape)
        flights = len(fl)
    return time.perf_counter() - start, points, flights


def bench_trace_overhead(benchmark, publish, record):
    results = once(
        benchmark,
        lambda: {mode: _timed_sweep(mode)
                 for mode in ("untraced", "flight", "metrics")},
    )
    base_s, base_points, _ = results["untraced"]
    rows = []
    for mode, (secs, points, flights) in results.items():
        # Telemetry observes the simulation; it must never change it.
        assert [p.uni_0b for p in points] == [p.uni_0b for p in base_points]
        assert [p.uni_256b for p in points] == [p.uni_256b for p in base_points]
        rows.append([mode, f"{secs * 1e3:.1f}", f"{secs / base_s:.2f}x",
                     flights])
    publish("trace_overhead", render_table(
        "Telemetry overhead — Fig. 5 sweep (4x4x4), wall clock",
        ["mode", "ms", "vs untraced", "packets recorded"],
        rows,
    ))
    # Wall-clock overhead ratios are host-dependent (informational,
    # not baseline-gated); the packet count is deterministic.
    for mode in ("flight", "metrics"):
        record("trace_overhead", f"{mode}_overhead_ratio",
               results[mode][0] / base_s, "x", shape=[4, 4, 4], mode=mode)
    record("trace_overhead", "packets_recorded",
           float(results["flight"][2]), "packets", shape=[4, 4, 4])
    assert results["flight"][2] > 0, "flight mode must actually record"
    assert base_points[1].uni_0b == 162.0
