"""Ablation — direct all-neighbour exchange vs staged forwarding (Fig. 8a/b).

On a commodity cluster, the staged 6-message scheme (forwarding through
dimension order) beats 26 direct messages because per-message overhead
dominates.  On Anton the preference *inverts*: a single round of direct
fine-grained messages avoids both the extra communication rounds and
the data-recombination work forwarding requires (Fig. 8b's local
copies), so it finishes sooner even though it sends more packets.

Both schemes run symmetrically on every node; completion is when every
node holds every neighbour's chunk.
"""

from conftest import get_scale, once

from repro.analysis import render_table
from repro.asic import build_machine
from repro.baselines import ClusterNetwork
from repro.constants import DDR2_INFINIBAND
from repro.engine import Simulator

#: Bytes each node must deliver to each of its 26 neighbours.
CHUNK = 256

#: Tensilica cost to repack one received chunk before forwarding it in
#: the next stage (the local copy/permute work direct remote writes
#: eliminate, Fig. 8b).
REPACK_NS = 60.0


def _anton(direct: bool, shape):
    sim = Simulator()
    machine = build_machine(sim, *shape)
    torus = machine.torus
    done = {}

    def direct_node(c):
        s = machine.node(c).slices[0]
        neighbors = torus.moore_neighbors(c)
        for m in neighbors:
            yield from s.send_write(m, "slice0", counter_id="d",
                                    payload_bytes=CHUNK)
        yield from s.poll("d", len(neighbors))
        done[c] = sim.now

    def staged_node(c):
        s = machine.node(c).slices[0]
        # Round 1 (X): send 9 chunks each way — own data plus the data
        # destined for the YZ fan behind each X neighbour.
        for sign in (1, -1):
            m = torus.neighbor(c, "x", sign)
            for _ in range(9):
                yield from s.send_write(m, "slice0", counter_id="s1",
                                        payload_bytes=CHUNK)
        yield from s.poll("s1", 18)
        yield from s.tensilica_work(18 * REPACK_NS)  # recombine for Y
        # Round 2 (Y): 3 chunks each way (own X-line's worth).
        for sign in (1, -1):
            m = torus.neighbor(c, "y", sign)
            for _ in range(3):
                yield from s.send_write(m, "slice0", counter_id="s2",
                                        payload_bytes=CHUNK)
        yield from s.poll("s2", 6)
        yield from s.tensilica_work(6 * REPACK_NS)  # recombine for Z
        # Round 3 (Z): 1 chunk each way.
        for sign in (1, -1):
            m = torus.neighbor(c, "z", sign)
            yield from s.send_write(m, "slice0", counter_id="s3",
                                    payload_bytes=CHUNK)
        yield from s.poll("s3", 2)
        done[c] = sim.now

    proc = direct_node if direct else staged_node
    procs = [sim.process(proc(c)) for c in torus.nodes()]
    sim.run(until=sim.all_of(procs))
    return max(done.values()), machine.network.packets_injected / torus.num_nodes


def _cluster(direct: bool):
    """One representative node's exchange on the InfiniBand model
    (messages per node: 26 direct vs 6 staged)."""
    sim = Simulator()
    net = ClusterNetwork(sim, 27, DDR2_INFINIBAND)

    def run():
        if direct:
            for peer in range(1, 27):
                yield from net.send(0, peer, CHUNK, "d")
            yield net.recv(1, "d", 1)
        else:
            for r, mult in ((1, 9), (2, 3), (3, 1)):
                for peer in (1, 2):
                    yield from net.send(0, peer, mult * CHUNK, f"r{r}")
                # Forwarding dependency: wait a full message latency
                # before the next round can use the received data.
                yield sim.timeout(net.wire_ns(mult * CHUNK)
                                  + DDR2_INFINIBAND.recv_overhead_ns)

    sim.run(until=sim.process(run()))
    return sim.now


def bench_ablation_direct_vs_staged(benchmark, publish, record):
    shape = (4, 4, 4) if get_scale() == "quick" else (8, 8, 8)

    def run():
        return (_anton(True, shape), _anton(False, shape),
                _cluster(True), _cluster(False))

    (a_direct, msgs_d), (a_staged, msgs_s), c_direct, c_staged = once(benchmark, run)
    text = render_table(
        "Ablation — 26-neighbour exchange: direct vs staged (Fig. 8), µs",
        ["network", "direct (26 msgs)", "staged (6 msgs, 3 rounds)"],
        [
            ["Anton (all nodes, symmetric)", a_direct / 1000, a_staged / 1000],
            ["InfiniBand cluster (per node)", c_direct / 1000, c_staged / 1000],
        ],
    )
    text += (
        f"\n\nAnton messages/node: direct {msgs_d:.0f} vs staged {msgs_s:.0f}; "
        "the preference inverts: Anton favours the single direct round "
        "(fine-grained messages are cheap, no recombination work); the "
        "cluster favours staging (message count dominates)"
    )
    publish("ablation_direct_vs_staged", text)
    record("ablation_direct_vs_staged", "anton_direct_ns", a_direct, "ns",
           shape=list(shape), chunk_bytes=CHUNK)
    record("ablation_direct_vs_staged", "anton_staged_ns", a_staged, "ns",
           shape=list(shape), chunk_bytes=CHUNK)
    record("ablation_direct_vs_staged", "cluster_direct_ns", c_direct, "ns",
           chunk_bytes=CHUNK)
    record("ablation_direct_vs_staged", "cluster_staged_ns", c_staged, "ns",
           chunk_bytes=CHUNK)
    assert a_direct < a_staged, "Anton must prefer direct exchange"
    assert c_staged < c_direct, "the cluster must prefer staged exchange"
