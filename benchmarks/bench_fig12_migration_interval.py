"""Figure 12 — average step time vs migration interval.

Paper: on a 17,758-particle system, relaxing the home-box boundaries
and migrating every 8 steps instead of every step improves average
step time by 19%; the curve falls steeply from N=1 and flattens.
"""

from conftest import get_scale, md_shape, once

from repro.analysis import render_series
from repro.analysis.mdstep import fig12_series
from repro.constants import FIG12_PARTICLES


def bench_fig12(benchmark, publish, record):
    shape = md_shape()
    atoms = FIG12_PARTICLES if shape == (8, 8, 8) else FIG12_PARTICLES // 8

    def run():
        return fig12_series(shape=shape, atoms=atoms)

    points = once(benchmark, run)
    text = render_series(
        f"Figure 12 — average step time (µs) vs migration interval "
        f"({atoms} particles on {shape})",
        "interval",
        [p.migration_interval for p in points],
        {
            "step time": [p.step_time_us for p in points],
            "migration cost": [p.migration_cost_us for p in points],
            "atoms moved": [float(p.atoms_migrated) for p in points],
        },
        float_format="{:.2f}",
    )
    gain = (points[0].step_time_us - points[-1].step_time_us) / points[0].step_time_us
    text += (
        f"\n\nstep time N=1 → N=8: {points[0].step_time_us:.2f} → "
        f"{points[-1].step_time_us:.2f} µs ({gain * 100:.0f}% improvement; "
        "paper: 19%)"
    )
    publish("fig12_migration_interval", text)
    for p in (points[0], points[-1]):
        record("fig12_migration_interval",
               f"step_time_interval{p.migration_interval}_us",
               p.step_time_us, "us",
               shape=list(shape), atoms=atoms,
               interval=p.migration_interval)
    # The curve must fall and flatten: the N=1→2 saving exceeds N=7→8.
    times = [p.step_time_us for p in points]
    assert times[0] > times[-1]
    assert (times[0] - times[1]) > (times[-2] - times[-1]) - 1e-9
