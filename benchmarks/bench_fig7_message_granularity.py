"""Figure 7 — 2 KB transferred as 1–64 messages: Anton vs InfiniBand.

Paper (panel b, normalised): Anton's total transfer time grows only
~3.5× from one message to 64, while the InfiniBand cluster grows
~7–8×; in absolute terms the cluster is an order of magnitude slower
throughout (panel a).
"""

from conftest import once

from repro.analysis import render_series, transfer_split_series

COUNTS = (1, 2, 4, 8, 16, 24, 32, 48, 64)


def bench_fig7(benchmark, publish, record):
    points = once(benchmark, lambda: transfer_split_series(2048, COUNTS))
    xs = [p.num_messages for p in points]
    absolute = render_series(
        "Figure 7a — total 2 KB transfer time (µs) vs number of messages",
        "messages",
        xs,
        {
            "InfiniBand": [p.infiniband_ns / 1000 for p in points],
            "Anton 4 hops": [p.anton_4hop_ns / 1000 for p in points],
            "Anton 1 hop": [p.anton_1hop_ns / 1000 for p in points],
        },
        float_format="{:.2f}",
    )
    base = points[0]
    normalised = render_series(
        "Figure 7b — transfer time normalised to the single-message case",
        "messages",
        xs,
        {
            "InfiniBand": [p.infiniband_ns / base.infiniband_ns for p in points],
            "Anton 4 hops": [p.anton_4hop_ns / base.anton_4hop_ns for p in points],
            "Anton 1 hop": [p.anton_1hop_ns / base.anton_1hop_ns for p in points],
        },
        float_format="{:.2f}",
    )
    publish("fig7_message_granularity", absolute + "\n\n" + normalised)
    last = points[-1]
    for p in (base, last):
        cfg = dict(total_bytes=2048, num_messages=p.num_messages)
        record("fig7_message_granularity",
               f"anton_1hop_{p.num_messages}msg_ns", p.anton_1hop_ns, "ns",
               hops=1, **cfg)
        record("fig7_message_granularity",
               f"infiniband_{p.num_messages}msg_ns", p.infiniband_ns, "ns",
               **cfg)
    # Anton: modest growth; InfiniBand: large growth (the paper's point).
    assert last.anton_1hop_ns / base.anton_1hop_ns < 4.5
    assert last.infiniband_ns / base.infiniband_ns > 5.0
    # Absolute gap: the cluster is slower at every point.
    for p in points:
        assert p.infiniband_ns > p.anton_4hop_ns > p.anton_1hop_ns
