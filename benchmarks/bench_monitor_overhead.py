"""Continuous-monitoring overhead — always-on must stay cheap.

Runs one range-limited MD step twice per mode: bare, and with the
health monitor attached (time-series sampler over every link
direction plus invariant watchdogs at the default 500 ns cadence).
Asserts the monitored run's *simulated* results are bit-identical to
the bare run — monitoring is a passive observer — and that its
wall-clock cost stays within the 15% overhead budget an always-on
layer must respect.  The min-of-two timing per mode filters warmup
and scheduler noise; the published ratio is recorded through the
``repro-bench/1`` pipeline (the deterministic perturbation gate lives
in the suite's ``monitor`` benchmark, baselined at exactly 0.0 in
``benchmarks/baseline.json``).
"""

import time

from conftest import once

from repro.analysis import render_table
from repro.analysis.mdstep import build_dhfr_md
from repro.monitor.health import use_monitoring

#: Wall-clock budget for always-on monitoring (fraction over bare).
OVERHEAD_BUDGET = 0.15

_SHAPE = (4, 4, 4)
_ATOMS = 2944  # DHFR scaled to 64 nodes (23,558 * 64 / 512)


def _one_step(monitored: bool):
    """One range-limited step; returns (seconds, results, monitor)."""
    start = time.perf_counter()
    if monitored:
        with use_monitoring() as session:
            md = build_dhfr_md(_SHAPE, atoms=_ATOMS)
        report = md.run_step("range_limited")
        verdicts = session.finalize()
        assert all(v.healthy for v in verdicts), "MD step must be healthy"
        monitor = session.monitors[0]
    else:
        md = build_dhfr_md(_SHAPE, atoms=_ATOMS)
        report = md.run_step("range_limited")
        monitor = None
    secs = time.perf_counter() - start
    net = md.machine.network
    results = (
        report.total_ns,
        md.sim.now,
        net.packets_injected,
        net.packets_delivered,
        net.packets_completed,
    )
    return secs, results, monitor


def bench_monitor_overhead(benchmark, publish, record):
    def measure():
        out = {}
        for mode in ("bare", "monitored"):
            runs = [_one_step(monitored=(mode == "monitored")) for _ in range(2)]
            secs = min(r[0] for r in runs)
            assert runs[0][1] == runs[1][1], f"{mode} run is nondeterministic"
            out[mode] = (secs, runs[0][1], runs[-1][2])
        return out

    results = once(benchmark, measure)
    bare_s, bare_results, _ = results["bare"]
    mon_s, mon_results, monitor = results["monitored"]

    # The monitor observes the simulation; it must never change it.
    assert mon_results == bare_results, (
        f"monitoring perturbed the simulation: {mon_results} != {bare_results}"
    )
    ratio = mon_s / bare_s
    samples = monitor.sampler.samples_recorded

    publish("monitor_overhead", render_table(
        "Continuous-monitoring overhead — range-limited MD step "
        f"({_SHAPE[0]}x{_SHAPE[1]}x{_SHAPE[2]}, {_ATOMS} atoms), wall clock",
        ["mode", "ms", "vs bare", "samples", "series"],
        [
            ["bare", f"{bare_s * 1e3:.0f}", "1.00x", 0, 0],
            ["monitored", f"{mon_s * 1e3:.0f}", f"{ratio:.2f}x",
             samples, len(monitor.sampler)],
        ],
    ))
    # The ratio is host-dependent (informational in the JSON results);
    # the budget assertion is the hard gate.
    record("monitor_overhead", "overhead_ratio", ratio, "x",
           shape=list(_SHAPE), atoms=_ATOMS)
    record("monitor_overhead", "samples_recorded", float(samples),
           "samples", shape=list(_SHAPE), atoms=_ATOMS)
    assert samples > 0, "the sampler must actually sample"
    assert monitor.sampler.ticks > 0
    assert ratio <= 1.0 + OVERHEAD_BUDGET, (
        f"monitoring overhead {ratio:.2f}x exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
