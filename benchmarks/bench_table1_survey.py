"""Table 1 — survey of published inter-node software-to-software
(ping-pong) latency measurements.

The non-Anton rows are published numbers (data, not simulation); the
Anton row is replaced by the value measured on the simulated machine,
which must round to the paper's 0.16 µs.
"""

from conftest import once

from repro.analysis import ping_pong_ns
from repro.baselines.survey import SURVEY, anton_advantage, survey_table


def bench_table1(benchmark, publish, record):
    measured_us = once(
        benchmark, lambda: ping_pong_ns((8, 8, 8), (1, 0, 0), 0) / 1000.0
    )
    text = survey_table(measured_anton_us=measured_us)
    text += (
        f"\n\nAnton (simulated) vs best non-Anton: "
        f"{min(e.latency_us for e in SURVEY if e.machine != 'Anton') / measured_us:.1f}x "
        f"(paper: {anton_advantage():.1f}x)"
    )
    publish("table1_survey", text)
    record("table1_survey", "anton_ping_pong_us", measured_us, "us",
           shape=[8, 8, 8], hops=1, payload_bytes=0)
    assert round(measured_us, 2) == 0.16
    # Anton beats every surveyed machine by a wide margin.
    assert all(
        e.latency_us / measured_us > 7.0
        for e in SURVEY
        if e.machine != "Anton"
    )
