"""Ablation — all-reduce partial sums: slices vs accumulation memories.

§IV.B.4: "One could, in principle, perform the partial sums within the
accumulation memories, but the overhead of polling the accumulation
memory synchronization counters is much larger than the cost of
performing the sums in software within the processing slices."  This
ablation measures one reduction round both ways.
"""

from conftest import get_scale, once

from repro.analysis import render_table
from repro.asic import build_machine
from repro.constants import ACCUM_POLL_NS, POLL_SUCCESS_NS, REDUCE_SUM_NS_PER_WORD
from repro.engine import Simulator

SOURCES = 7  # one X-axis round on an 8-ring
WORDS = 8    # a 32-byte payload


def _round(via_accum: bool, shape):
    """One node's receive side of a 1-D all-reduce round."""
    sim = Simulator()
    machine = build_machine(sim, *shape)
    torus = machine.torus
    centre = torus.coord((0, 0, 0))
    node = machine.node(centre)
    sources = torus.axis_peers(centre, "x")[:SOURCES]
    target_client = "accum0" if via_accum else "slice0"
    if not via_accum:
        node.slices[0].memory.allocate("rx", len(sources))

    def feed(i, origin):
        s = machine.node(origin).slices[0]
        if via_accum:
            yield from s.send_accum(centre, "accum0", counter_id="r",
                                    address="sum", payload=1.0,
                                    payload_bytes=4 * WORDS)
        else:
            yield from s.send_write(centre, "slice0", counter_id="r",
                                    address=("rx", i), payload=1.0,
                                    payload_bytes=4 * WORDS)

    def receiver():
        s0 = node.slices[0]
        if via_accum:
            # Poll the accumulation-memory counter across the ring; the
            # memory already holds the sum.
            yield from s0.poll_accum(node.accum[0], "r", len(sources))
            yield from s0.read_accum_lines(1)
        else:
            yield from s0.poll("r", len(sources))
            # Software sum on the Tensilica.
            yield from s0.tensilica_work(
                REDUCE_SUM_NS_PER_WORD * WORDS * len(sources)
            )

    procs = [sim.process(feed(i, o)) for i, o in enumerate(sources)]
    procs.append(sim.process(receiver()))
    sim.run(until=sim.all_of(procs))
    return sim.now


def bench_ablation_accum_reduce(benchmark, publish, record):
    shape = (4, 4, 4) if get_scale() == "quick" else (8, 8, 8)

    def run():
        return _round(False, shape), _round(True, shape)

    via_slice, via_accum = once(benchmark, run)
    text = render_table(
        "Ablation — one all-reduce round: software sums in slices vs "
        "hardware sums in accumulation memories (ns)",
        ["scheme", "round ns"],
        [
            ["slice software sum (paper's choice)", via_slice],
            ["accumulation-memory sum", via_accum],
        ],
        float_format="{:.0f}",
    )
    text += (
        f"\n\nlocal poll {POLL_SUCCESS_NS:.0f} ns + "
        f"{REDUCE_SUM_NS_PER_WORD * WORDS * SOURCES:.0f} ns of adds beats the "
        f"{ACCUM_POLL_NS:.0f} ns cross-ring accumulation-counter poll + readback"
    )
    publish("ablation_accum_reduce", text)
    record("ablation_accum_reduce", "slice_sum_round_ns", via_slice, "ns",
           shape=list(shape), sources=SOURCES, words=WORDS)
    record("ablation_accum_reduce", "accum_sum_round_ns", via_accum, "ns",
           shape=list(shape), sources=SOURCES, words=WORDS)
    assert via_slice < via_accum, "the paper's design choice must win"
