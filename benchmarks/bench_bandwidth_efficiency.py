"""§III.D — fine-grained messages use the network bandwidth well.

Paper: Anton reaches 50% of its maximum possible data bandwidth with
28-byte messages, versus 1.4 KB (Blue Gene/L), 16 KB (Red Storm) and
39 KB (ASC Purple) — three orders of magnitude smaller.
"""

from conftest import once

from repro.analysis import bandwidth_efficiency, render_series
from repro.analysis.transfer import half_bandwidth_payload

PAYLOADS = (4, 8, 16, 24, 28, 32, 48, 64, 96, 128, 192, 256)

#: Published half-bandwidth message sizes of the comparison machines
#: ([25] via §III.D), in bytes.
COMPARISON = {"Blue Gene/L": 1_400, "Red Storm": 16_000, "ASC Purple": 39_000}


def bench_bandwidth_efficiency(benchmark, publish, record):
    effs = once(
        benchmark,
        lambda: [bandwidth_efficiency(p) for p in PAYLOADS],
    )
    text = render_series(
        "Bandwidth efficiency vs payload size (fraction of max data bandwidth)",
        "payload B",
        list(PAYLOADS),
        {"efficiency": effs},
        float_format="{:.3f}",
    )
    p50 = half_bandwidth_payload()
    text += f"\n\n50% of max data bandwidth at {p50} B (paper: 28 B); "
    text += ", ".join(f"{m}: {b:,} B" for m, b in COMPARISON.items())
    publish("bandwidth_efficiency", text)
    record("bandwidth_efficiency", "half_bandwidth_payload_bytes",
           float(p50), "bytes")
    record("bandwidth_efficiency", "efficiency_28B",
           effs[PAYLOADS.index(28)], "fraction", better="higher",
           payload_bytes=28)
    assert 24 <= p50 <= 32
    # Three orders of magnitude below the best commodity comparison.
    assert min(COMPARISON.values()) / p50 > 40
