"""Figure 6 — component breakdown of the 162 ns single-hop write.

Paper: 36 ns slice send + 19 ns source ring + 2×20 ns link adapters
(wire folded in) + 25 ns destination ring + 42 ns successful counter
poll = 162 ns.  The benchmark verifies the simulated end-to-end number
equals the sum of the calibrated components.
"""

from conftest import once

from repro.analysis import breakdown_162ns, ping_pong_ns, render_table


def bench_fig6(benchmark, publish, record):
    parts = breakdown_162ns()
    measured = once(
        benchmark, lambda: ping_pong_ns((8, 8, 8), (1, 0, 0), 0)
    )
    rows = [[label, ns] for label, ns in parts]
    rows.append(["TOTAL (sum of components)", sum(ns for _, ns in parts)])
    rows.append(["measured end-to-end (simulated)", measured])
    text = render_table(
        "Figure 6 — single X-hop counted-remote-write latency breakdown (ns)",
        ["component", "ns"],
        rows,
        float_format="{:.1f}",
    )
    publish("fig6_breakdown", text)
    record("fig6_breakdown", "one_x_hop_ns", measured, "ns",
           shape=[8, 8, 8], hops=1, payload_bytes=0)
    assert measured == sum(ns for _, ns in parts) == 162.0
