"""Engine self-profiler overhead — per-event accounting must stay cheap.

Runs one range-limited MD step in two modes, interleaved: bare, and
with the engine profiler attached (per-event wall accounting with
component / phase attribution).  Asserts the profiled run's
*simulated* results are bit-identical to the bare run — the profiler
is a passive observer — that its event accounting tiles the run-loop
wall time exactly, and that its CPU cost stays within the 10%
overhead budget from the PR acceptance gate.

The gate compares ``time.process_time`` (CPU time), not wall clock:
the profiler's cost is pure per-event bookkeeping, and on shared /
virtualized hosts wall-clock jitter between runs exceeds the budget
itself.  Even CPU time drifts run-to-run (allocator warmup, host
contention), but the drift is slow relative to one run — so modes
are interleaved and the gate takes the *minimum over adjacent
bare/profiled pair ratios*: any pair where both runs sit near the
floor yields the true overhead, and noise only ever inflates a pair.
"""

import time

from conftest import once

from repro.analysis import render_table
from repro.analysis.mdstep import build_dhfr_md
from repro.profile import use_profiling

#: Wall-clock budget for profiled runs (fraction over bare).
OVERHEAD_BUDGET = 0.10

_SHAPE = (4, 4, 4)
_ATOMS = 2944  # DHFR scaled to 64 nodes (23,558 * 64 / 512)


def _one_step(profiled: bool):
    """One range-limited step; returns (cpu seconds, results, profiler)."""
    start = time.process_time()
    if profiled:
        with use_profiling() as profiler:
            md = build_dhfr_md(_SHAPE, atoms=_ATOMS)
            report = md.run_step("range_limited")
    else:
        md = build_dhfr_md(_SHAPE, atoms=_ATOMS)
        report = md.run_step("range_limited")
        profiler = None
    secs = time.process_time() - start
    net = md.machine.network
    results = (
        report.total_ns,
        md.sim.now,
        net.packets_injected,
        net.packets_delivered,
        net.packets_completed,
    )
    if profiler is not None:
        assert profiler.events_total == md.sim.events_executed
    return secs, results, profiler


def bench_profile_overhead(benchmark, publish, record):
    def measure():
        runs = {"bare": [], "profiled": []}
        for _ in range(4):
            for mode in ("bare", "profiled"):
                runs[mode].append(_one_step(profiled=(mode == "profiled")))
        return runs

    runs = once(benchmark, measure)
    for mode, rs in runs.items():
        assert all(r[1] == rs[0][1] for r in rs), (
            f"{mode} run is nondeterministic"
        )
    bare_s = min(r[0] for r in runs["bare"])
    prof_s = min(r[0] for r in runs["profiled"])
    bare_results = runs["bare"][0][1]
    prof_results = runs["profiled"][0][1]
    profiler = runs["profiled"][-1][2]

    # The profiler observes event execution; it must never change it.
    assert prof_results == bare_results, (
        f"profiling perturbed the simulation: {prof_results} != {bare_results}"
    )
    # The exact-tiling invariant must hold at benchmark scale too.
    totals = profiler.component_totals()
    assert sum(w for _, w in totals.values()) == profiler.loop_wall_ns

    ratio = min(
        p[0] / b[0] for b, p in zip(runs["bare"], runs["profiled"])
    )
    publish("profile_overhead", render_table(
        "Engine self-profiler overhead — range-limited MD step "
        f"({_SHAPE[0]}x{_SHAPE[1]}x{_SHAPE[2]}, {_ATOMS} atoms), CPU time",
        ["mode", "min cpu ms", "paired overhead", "events", "event types"],
        [
            ["bare", f"{bare_s * 1e3:.0f}", "1.00x", 0, 0],
            ["profiled", f"{prof_s * 1e3:.0f}", f"{ratio:.2f}x",
             profiler.events_total, len(profiler.cells())],
        ],
    ))
    # The ratio is host-dependent (informational in the JSON results);
    # the budget assertion is the hard gate.
    record("profile_overhead", "overhead_ratio", ratio, "x",
           shape=list(_SHAPE), atoms=_ATOMS)
    record("profile_overhead", "events_profiled",
           float(profiler.events_total), "events",
           better="higher", shape=list(_SHAPE), atoms=_ATOMS)
    assert profiler.events_total > 0, "the profiler must actually profile"
    assert profiler.loop_wall_ns > 0
    assert ratio <= 1.0 + OVERHEAD_BUDGET, (
        f"profiling overhead {ratio:.2f}x exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
