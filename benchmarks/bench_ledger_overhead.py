"""Observatory ledger append cost — logging a run must stay negligible.

Appends a realistic stream of bench records (the full suite's result
rows, provenance, a verdict attachment) to a fresh ledger and measures
the per-append CPU cost, fsync included.  The ledger hangs off every
``bench``/``profile``/``sweep`` invocation, so an append has to be
orders of magnitude cheaper than the run it describes; the hard gate
asserts the whole stream costs less than a second of CPU and the chain
it leaves behind verifies clean.

Wall-clock throughput is host-dependent and therefore *published* (the
human-readable table) but not *recorded*: the recorded metrics are the
deterministic facts of the stream — records written, bytes per record
— which CI can baseline without flakiness.
"""

import os
import tempfile
import time

from conftest import once

from repro.analysis import render_table
from repro.bench.results import BenchResult
from repro.observatory.ledger import Ledger

_APPENDS = 200
_ROWS_PER_RECORD = 12


def _rows(i: int) -> list[dict]:
    return [
        BenchResult(
            "latency", f"metric_{m}", 162.0 + i + m, "ns", "lower",
            {"hops": m},
        ).to_dict()
        for m in range(_ROWS_PER_RECORD)
    ]


def _measure():
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "ledger.jsonl")
        ledger = Ledger(path)
        start = time.process_time()
        for i in range(_APPENDS):
            ledger.append(
                "bench", f"bench 4x4x4 #{i}", metrics=_rows(i),
                provenance={"hostname": "bench", "source_fingerprint": "x"},
                attachments={"verdict": {"ok": True, "compared": 0}},
            )
        cpu_s = time.process_time() - start
        records = ledger.read()
        problems = ledger.verify()
        size = os.path.getsize(path)
    return cpu_s, len(records), problems, size


def bench_ledger_overhead(benchmark, publish, record):
    cpu_s, n_records, problems, size = once(benchmark, _measure)

    assert n_records == _APPENDS, "every append must land"
    assert problems == [], f"chain must verify clean: {problems}"

    per_append_us = cpu_s / _APPENDS * 1e6
    bytes_per_record = size / _APPENDS
    publish("ledger_overhead", render_table(
        "Observatory ledger append cost "
        f"({_APPENDS} bench records, {_ROWS_PER_RECORD} metric rows each)",
        ["appends", "cpu ms total", "cpu us/append", "bytes/record"],
        [[_APPENDS, f"{cpu_s * 1e3:.1f}", f"{per_append_us:.0f}",
          f"{bytes_per_record:.0f}"]],
    ))
    record("ledger_overhead", "records_written", float(n_records),
           "records", better="higher", rows_per_record=_ROWS_PER_RECORD)
    record("ledger_overhead", "bytes_per_record", bytes_per_record,
           "bytes", rows_per_record=_ROWS_PER_RECORD)
    # The CPU cost is host-dependent (published above); the hard gate
    # is generous and exists to catch the append path blowing up —
    # e.g. a full chain re-verification sneaking into every append.
    assert cpu_s < 1.0, (
        f"{_APPENDS} ledger appends cost {cpu_s:.2f}s CPU; appends must "
        "stay negligible next to the runs they describe"
    )
