"""Congestion X-ray overhead — telemetry must stay off the hot path.

Runs one range-limited MD step in two modes, interleaved: bare, and
with the congestion recorder attached ambiently (per-link-direction
queue-depth and occupancy timelines recorded at every contended
enqueue and every grant).  Asserts the instrumented run's *simulated*
results are bit-identical to the bare run — the recorder is a passive
observer — and that its CPU cost stays within the 10% overhead budget
from the PR acceptance gate.

Same measurement discipline as ``bench_profile_overhead``: the gate
compares ``time.process_time`` (CPU time) over interleaved
bare/instrumented pairs and takes the *minimum pair ratio*, so
host-load noise can only ever inflate a pair, never fake a pass.
"""

import time

from conftest import once

from repro.analysis import render_table
from repro.analysis.mdstep import build_dhfr_md
from repro.congestion import use_congestion

#: CPU-time budget for instrumented runs (fraction over bare).
OVERHEAD_BUDGET = 0.10

_SHAPE = (4, 4, 4)
_ATOMS = 2944  # DHFR scaled to 64 nodes (23,558 * 64 / 512)


def _one_step(instrumented: bool):
    """One range-limited step; returns (cpu seconds, results, recorder)."""
    start = time.process_time()
    if instrumented:
        with use_congestion() as recorder:
            md = build_dhfr_md(_SHAPE, atoms=_ATOMS)
            report = md.run_step("range_limited")
    else:
        md = build_dhfr_md(_SHAPE, atoms=_ATOMS)
        report = md.run_step("range_limited")
        recorder = None
    secs = time.process_time() - start
    net = md.machine.network
    results = (
        report.total_ns,
        md.sim.now,
        net.packets_injected,
        net.packets_delivered,
        net.packets_completed,
        net.link_traversals,
    )
    return secs, results, recorder


def bench_congestion_overhead(benchmark, publish, record):
    def measure():
        runs = {"bare": [], "instrumented": []}
        for _ in range(4):
            for mode in ("bare", "instrumented"):
                runs[mode].append(
                    _one_step(instrumented=(mode == "instrumented"))
                )
        return runs

    runs = once(benchmark, measure)
    for mode, rs in runs.items():
        assert all(r[1] == rs[0][1] for r in rs), (
            f"{mode} run is nondeterministic"
        )
    bare_s = min(r[0] for r in runs["bare"])
    inst_s = min(r[0] for r in runs["instrumented"])
    bare_results = runs["bare"][0][1]
    inst_results = runs["instrumented"][0][1]
    recorder = runs["instrumented"][-1][2]

    # The recorder observes the transport; it must never change it.
    assert inst_results == bare_results, (
        f"congestion recording perturbed the simulation: "
        f"{inst_results} != {bare_results}"
    )
    # It must also have actually seen the traffic.
    grants = sum(recorder.grants.values())
    assert grants > 0, "the recorder must actually record"
    assert grants <= bare_results[5], "more grants than link traversals"

    ratio = min(
        p[0] / b[0] for b, p in zip(runs["bare"], runs["instrumented"])
    )
    publish("congestion_overhead", render_table(
        "Congestion X-ray overhead — range-limited MD step "
        f"({_SHAPE[0]}x{_SHAPE[1]}x{_SHAPE[2]}, {_ATOMS} atoms), CPU time",
        ["mode", "min cpu ms", "paired overhead", "grants", "links",
         "HOL wait ns"],
        [
            ["bare", f"{bare_s * 1e3:.0f}", "1.00x", 0, 0, 0.0],
            ["instrumented", f"{inst_s * 1e3:.0f}", f"{ratio:.2f}x",
             grants, len(recorder), recorder.total_wait_ns()],
        ],
        float_format="{:.1f}",
    ))
    # The ratio is host-dependent (informational in the JSON results);
    # the budget assertion is the hard gate.
    record("congestion_overhead", "overhead_ratio", ratio, "x",
           shape=list(_SHAPE), atoms=_ATOMS)
    record("congestion_overhead", "grants_recorded", float(grants),
           "grants", better="higher", shape=list(_SHAPE), atoms=_ATOMS)
    assert ratio <= 1.0 + OVERHEAD_BUDGET, (
        f"congestion telemetry overhead {ratio:.2f}x exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
