"""Table 2 — global all-reduce times across machine configurations.

Paper (µs): 64 nodes 0.96/1.31; 128 (8×2×8) 1.24/1.64; 256 (8×8×4)
1.27/1.68; 512 1.32/1.77; 1024 (8×8×16) 1.56/2.06 for 0-byte/32-byte
reductions.
"""

import pytest
from conftest import get_scale, once

from repro.analysis import render_table
from repro.asic import build_machine
from repro.comm.collectives import AllReduce
from repro.constants import PAPER_TABLE2_US
from repro.engine import Simulator

SHAPES = [(4, 4, 4), (8, 2, 8), (8, 8, 4), (8, 8, 8), (8, 8, 16)]


def _measure(shape):
    sim = Simulator()
    machine = build_machine(sim, *shape)
    r0 = AllReduce(machine, payload_bytes=0).run().elapsed_us
    r32 = AllReduce(machine, payload_bytes=32).run().elapsed_us
    return r0, r32


def bench_table2(benchmark, publish, record):
    shapes = SHAPES[:3] if get_scale() == "quick" else SHAPES

    def run():
        return {shape: _measure(shape) for shape in shapes}

    results = once(benchmark, run)
    rows = []
    for shape in shapes:
        r0, r32 = results[shape]
        paper = PAPER_TABLE2_US[shape]
        n = shape[0] * shape[1] * shape[2]
        rows.append(
            [
                f"{n} ({shape[0]}x{shape[1]}x{shape[2]})",
                r0, paper["reduce0"], r32, paper["reduce32"],
            ]
        )
    text = render_table(
        "Table 2 — global all-reduce time (µs), simulated vs paper",
        ["nodes", "0B sim", "0B paper", "32B sim", "32B paper"],
        rows,
    )
    publish("table2_allreduce", text)
    for shape in shapes:
        r0, r32 = results[shape]
        tag = f"{shape[0]}x{shape[1]}x{shape[2]}"
        record("table2_allreduce", f"reduce0_{tag}_us", r0, "us",
               shape=list(shape), payload_bytes=0)
        record("table2_allreduce", f"reduce32_{tag}_us", r32, "us",
               shape=list(shape), payload_bytes=32)
    for shape in shapes:
        r0, r32 = results[shape]
        paper = PAPER_TABLE2_US[shape]
        assert r0 == pytest.approx(paper["reduce0"], rel=0.20)
        assert r32 == pytest.approx(paper["reduce32"], rel=0.20)
    # Monotone in machine size, and 32B costs more than 0B.
    times0 = [results[s][0] for s in shapes]
    assert times0 == sorted(times0)
