"""Figure 11 — step time over millions of steps, ± bond-program
regeneration.

Paper: without regeneration the 23,558-atom simulation's step time
climbs steadily as atoms diffuse away from their bond terms' nodes;
regenerating the bond program every 120,000 steps keeps it flat, a 14%
overall improvement over the 8M-step run.
"""

from conftest import get_scale, md_atoms, md_shape, once

from repro.analysis import render_series
from repro.analysis.mdstep import fig11_series


def bench_fig11(benchmark, publish, record):
    shape = md_shape()
    epochs = 4 if get_scale() == "quick" else 8

    def run():
        return fig11_series(
            total_steps=8_000_000, epochs=epochs, regen_interval=120_000,
            shape=shape, atoms=md_atoms(),
        )

    points = once(benchmark, run)
    text = render_series(
        f"Figure 11 — step execution time (µs) vs steps completed on {shape}",
        "steps",
        [p.steps_completed for p in points],
        {
            "no regeneration": [p.step_time_no_regen_us for p in points],
            "regen every 120k": [p.step_time_with_regen_us for p in points],
        },
        float_format="{:.2f}",
    )
    no_regen_avg = sum(p.step_time_no_regen_us for p in points) / len(points)
    regen_avg = sum(p.step_time_with_regen_us for p in points) / len(points)
    gain = (no_regen_avg - regen_avg) / no_regen_avg * 100
    text += (
        f"\n\nmean step: no-regen {no_regen_avg:.2f} µs, with-regen "
        f"{regen_avg:.2f} µs → {gain:.0f}% improvement (paper: 14%)"
    )
    publish("fig11_bond_regen", text)
    record("fig11_bond_regen", "mean_step_no_regen_us", no_regen_avg, "us",
           shape=list(shape), epochs=epochs)
    record("fig11_bond_regen", "mean_step_with_regen_us", regen_avg, "us",
           shape=list(shape), epochs=epochs)
    # Shape checks: drift makes the no-regen curve climb; regeneration
    # keeps the other curve at/below it everywhere past the start.
    assert points[-1].step_time_no_regen_us > points[0].step_time_no_regen_us
    assert points[-1].step_time_with_regen_us < points[-1].step_time_no_regen_us
    late = points[len(points) // 2:]
    assert all(
        p.step_time_with_regen_us <= p.step_time_no_regen_us * 1.02 for p in late
    )
