"""Ablation — the HTIS high-priority queue (§IV.B.1).

The HTIS processes position buffers in a software order, except that
buffers flagged high-priority are consumed as soon as they complete —
used for the origins whose force results must travel farthest, so the
long sends hide behind the remaining computation.  This ablation
measures the time until the *farthest* origin's forces have been
accumulated, with and without the priority flag.
"""

from conftest import get_scale, once

from repro.analysis import render_table
from repro.asic import build_machine
from repro.engine import Simulator

ORIGINS = 8
PACKETS = 12
WORK_NS = 600.0


def _run(priority_on: bool, shape):
    sim = Simulator()
    machine = build_machine(sim, *shape)
    torus = machine.torus
    centre = torus.coord((0, 0, 0))
    htis = machine.node(centre).htis
    # Origins at growing distance; the farthest one gets the priority
    # flag (its results travel the longest way back).
    origins = [torus.coord((min(i, torus.nx // 2), i % 2, 0)) for i in range(ORIGINS)]
    far = max(origins, key=lambda c: torus.hops(centre, c))
    for i, o in enumerate(origins):
        htis.define_buffer(
            f"b{i}", o, expected_packets=PACKETS,
            priority=(priority_on and o == far),
        )

    def feed(i, origin):
        s = machine.node(origin).slices[0]
        # The farthest origin's data arrives *early*; near ones trickle.
        delay = 0.0 if origin == far else 200.0 * (i + 1)
        yield sim.timeout(delay)
        for _ in range(PACKETS):
            yield from s.send_write(centre, "htis", counter_id=f"b{i}",
                                    payload_bytes=32)

    done = {}

    def on_done(buf):
        sim.process(
            htis.send_accum_results(
                buf.origin, "accum0", 2, counter_id="forces", payload_bytes=240
            )
        )

    def controller():
        yield from htis.process_buffers(
            [f"b{i}" for i in range(ORIGINS)],
            work_ns=lambda b: WORK_NS,
            on_done=on_done,
        )

    far_wait = machine.node(far).accum[0].counter("forces").wait_for(2)
    procs = [sim.process(feed(i, o)) for i, o in enumerate(origins)]
    procs.append(sim.process(controller()))
    sim.run(until=sim.all_of(procs + [far_wait]))
    return far_wait.value  # time the farthest origin's forces landed


def bench_ablation_priority_queue(benchmark, publish, record):
    shape = (4, 4, 4) if get_scale() == "quick" else (8, 8, 8)

    def run():
        return _run(True, shape), _run(False, shape)

    with_pri, without_pri = once(benchmark, run)
    text = render_table(
        "Ablation — HTIS high-priority queue: time until the farthest "
        "origin's forces are accumulated (µs)",
        ["configuration", "µs"],
        [
            ["priority queue on (paper)", with_pri / 1000],
            ["software order only", without_pri / 1000],
        ],
    )
    text += (
        f"\n\nthe priority queue hides {without_pri - with_pri:.0f} ns of "
        "long-haul send latency behind the remaining HTIS computation"
    )
    publish("ablation_priority_queue", text)
    record("ablation_priority_queue", "priority_on_ns", with_pri, "ns",
           shape=list(shape), origins=ORIGINS, packets=PACKETS)
    record("ablation_priority_queue", "priority_off_ns", without_pri, "ns",
           shape=list(shape), origins=ORIGINS, packets=PACKETS)
    assert with_pri < without_pri
