"""Fault-injection overhead — injection must be free when disabled.

Runs the Fig. 5 latency sweep three ways: bare (no fault subsystem in
sight, the default), with an *empty* fault plan installed (the
zero-perturbation contract: the network normalizes a disabled session
away at construction, so the hot path pays one attribute load and one
is-None test), and with a real bit-error plan (retransmissions on —
results expected to differ).  Asserts the empty-plan run is identical
to the bare run point for point, and reports the wall-clock cost of
each mode so a regression in the disabled path (which every fault-free
run pays) is visible.
"""

import time

from conftest import once

from repro.analysis import latency_vs_hops, render_table
from repro.faults.plan import BitError, FaultPlan
from repro.faults.session import FaultSession, use_faults


def _timed_sweep(mode: str):
    """One Fig. 5 sweep on a 4x4x4 machine; returns (seconds, points,
    retransmissions)."""
    shape = (4, 4, 4)
    start = time.perf_counter()
    if mode == "bare":
        points = latency_vs_hops(shape=shape)
        retrans = 0
    else:
        plan = FaultPlan() if mode == "empty_plan" else FaultPlan(
            seed=1,
            bit_errors=(BitError(links="*", ber=1e-4),),
            max_retries=64,
            backoff_max_ns=640.0,
        )
        session = FaultSession(plan)
        with use_faults(session):
            points = latency_vs_hops(shape=shape)
        retrans = session.stats.retransmissions
    return time.perf_counter() - start, points, retrans


def _all_modes():
    latency_vs_hops(shape=(4, 4, 4))  # warm-up: imports + allocator
    return {mode: _timed_sweep(mode)
            for mode in ("bare", "empty_plan", "ber_1e-4")}


def bench_fault_overhead(benchmark, publish, record):
    results = once(benchmark, _all_modes)
    base_s, base_points, _ = results["bare"]
    empty_s, empty_points, empty_retrans = results["empty_plan"]
    # The zero-perturbation contract: an empty plan changes nothing.
    assert [p.uni_0b for p in empty_points] == \
        [p.uni_0b for p in base_points]
    assert [p.uni_256b for p in empty_points] == \
        [p.uni_256b for p in base_points]
    assert empty_retrans == 0
    # A real plan must actually inject (and therefore perturb).
    faulty_s, faulty_points, faulty_retrans = results["ber_1e-4"]
    assert faulty_retrans > 0
    assert sum(p.uni_256b for p in faulty_points) > \
        sum(p.uni_256b for p in base_points)

    rows = [
        [mode, f"{secs * 1e3:.1f}", f"{secs / base_s:.2f}x", retrans]
        for mode, (secs, _, retrans) in results.items()
    ]
    publish("fault_overhead", render_table(
        "Fault-injection overhead — Fig. 5 sweep (4x4x4), wall clock",
        ["mode", "ms", "vs bare", "retransmissions"],
        rows,
    ))
    # Wall-clock ratios are host-dependent (informational, not
    # baseline-gated); the retransmission count is deterministic.
    record("fault_overhead", "empty_plan_overhead_ratio",
           empty_s / base_s, "x", shape=[4, 4, 4], mode="empty_plan")
    record("fault_overhead", "ber_overhead_ratio",
           faulty_s / base_s, "x", shape=[4, 4, 4], mode="ber_1e-4")
    record("fault_overhead", "retransmissions",
           float(faulty_retrans), "count", shape=[4, 4, 4], mode="ber_1e-4")
    assert base_points[1].uni_0b == 162.0
