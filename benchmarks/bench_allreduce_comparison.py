"""§IV.B.4 — all-reduce algorithm and platform comparisons.

Paper claims checked here:

* dimension-ordered beats a radix-2 butterfly on the torus (3 rounds /
  3N/2 hops vs 3·log2 N rounds / 3(N−1) hops);
* Anton's 512-node 32-byte all-reduce (1.77 µs) is ~20× faster than
  the same reduction on a 512-node DDR2 InfiniBand cluster (35.5 µs);
* it also beats Blue Gene/L's specialised tree network (4.22 µs for
  16 bytes across 512 nodes).
"""

from conftest import get_scale, once

from repro.analysis import render_table
from repro.asic import build_machine
from repro.baselines import ClusterNetwork, MpiContext
from repro.comm.collectives import (
    AllReduce,
    ButterflyAllReduce,
    butterfly_hops,
    butterfly_rounds,
    dimension_ordered_hops,
    dimension_ordered_rounds,
)
from repro.constants import BGL_TREE_ALLREDUCE_512_NS
from repro.engine import Simulator


def bench_allreduce_comparison(benchmark, publish, record):
    shape = (4, 4, 4) if get_scale() == "quick" else (8, 8, 8)
    nodes = shape[0] * shape[1] * shape[2]

    def run():
        sim = Simulator()
        m = build_machine(sim, *shape)
        t_do = AllReduce(m, payload_bytes=32).run().elapsed_us
        sim2 = Simulator()
        m2 = build_machine(sim2, *shape)
        t_bf = ButterflyAllReduce(m2, payload_bytes=32).run().elapsed_us
        sim3 = Simulator()
        mpi = MpiContext(ClusterNetwork(sim3, nodes))
        t_ib = mpi.allreduce_ns(32) / 1000.0
        return t_do, t_bf, t_ib

    t_do, t_bf, t_ib = once(benchmark, run)
    rows = [
        ["Anton dimension-ordered", t_do,
         dimension_ordered_rounds(shape), dimension_ordered_hops(shape)],
        ["Anton radix-2 butterfly", t_bf,
         butterfly_rounds(shape), butterfly_hops(shape)],
        ["InfiniBand cluster (recursive doubling)", t_ib, "-", "-"],
        ["Blue Gene/L tree network (published, 16B)",
         BGL_TREE_ALLREDUCE_512_NS / 1000.0, "-", "-"],
    ]
    text = render_table(
        f"All-reduce comparison — 32 B across {nodes} nodes (µs)",
        ["implementation", "µs", "rounds", "seq. hops"],
        rows,
    )
    text += f"\n\nAnton vs InfiniBand cluster: {t_ib / t_do:.1f}x (paper: ~20x)"
    publish("allreduce_comparison", text)
    record("allreduce_comparison", "dimension_ordered_32B_us", t_do, "us",
           shape=list(shape), payload_bytes=32)
    record("allreduce_comparison", "butterfly_32B_us", t_bf, "us",
           shape=list(shape), payload_bytes=32)
    record("allreduce_comparison", "infiniband_32B_us", t_ib, "us",
           nodes=nodes, payload_bytes=32)
    assert t_do < t_bf, "dimension-ordered must beat the butterfly"
    if shape == (8, 8, 8):
        assert 14.0 < t_ib / t_do < 28.0  # paper: 20x
        assert t_do < BGL_TREE_ALLREDUCE_512_NS / 1000.0
