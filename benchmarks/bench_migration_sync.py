"""§IV.B.5 — the migration flush synchronization costs 0.56 µs.

An empty migration phase exercises only the protocol overhead: the
in-order multicast counted remote write to all 26 neighbours plus the
receivers' flush-counter poll and FIFO drain.
"""

import pytest
from conftest import get_scale, once

from repro.analysis import render_table
from repro.asic import build_machine
from repro.comm import MigrationProtocol
from repro.engine import Simulator


def bench_migration_sync(benchmark, publish, record):
    shape = (4, 4, 4) if get_scale() == "quick" else (8, 8, 8)

    def run():
        sim = Simulator()
        machine = build_machine(sim, *shape)
        mig = MigrationProtocol(machine)
        empty = mig.run().elapsed_us
        # A busy migration for contrast: 4 atoms leave every node.
        torus = machine.torus
        moves = {}
        for c in torus.nodes():
            neigh = torus.moore_neighbors(c)
            moves[c] = [(neigh[i % len(neigh)], i) for i in range(4)]
        busy = mig.run(moves)
        return empty, busy.elapsed_us, busy.messages_sent

    empty_us, busy_us, msgs = once(benchmark, run)
    text = render_table(
        f"Migration synchronization on {shape[0]}x{shape[1]}x{shape[2]}",
        ["phase", "µs"],
        [
            ["empty migration (pure flush sync; paper: 0.56)", empty_us],
            [f"migration moving {msgs} atoms", busy_us],
        ],
    )
    publish("migration_sync", text)
    record("migration_sync", "empty_migration_us", empty_us, "us",
           shape=list(shape), moves=0)
    record("migration_sync", "busy_migration_us", busy_us, "us",
           shape=list(shape), moves=msgs)
    if shape == (8, 8, 8):
        assert empty_us == pytest.approx(0.56, rel=0.5)
    assert busy_us > empty_us
