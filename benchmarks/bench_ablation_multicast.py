"""Ablation — multicast vs repeated unicast for position distribution.

§III.A: "Using multicast significantly reduces both sender overhead
and network bandwidth for data that must be sent to multiple
destinations."  Positions go to up to 17–19 HTIS units (§IV.B.1); this
ablation sends one node's worth of position packets to its import set
both ways and compares sender-side time and link traversals.
"""

from conftest import get_scale, once

from repro.analysis import render_table
from repro.asic import build_machine
from repro.engine import Simulator
from repro.md.decomposition import Decomposition
from repro.md.forcefield import ForceField
from repro.md.system import synthetic_dhfr
from repro.network.multicast import compile_pattern

ATOMS_PER_NODE = 46  # DHFR / 512


def _run(use_multicast: bool, shape):
    sim = Simulator()
    machine = build_machine(sim, *shape)
    atoms = synthetic_dhfr(atoms=2000 if shape != (8, 8, 8) else 23558)
    decomp = Decomposition(
        atoms, machine.torus, import_radius=6.5, import_volume_threshold=0.4
    )
    src_node = machine.torus.coord((0, 0, 0))
    imports = decomp.import_nodes(src_node)
    for m in imports:
        machine.node(m).htis.define_buffer("pos", src_node, ATOMS_PER_NODE)
    slices = machine.node(src_node).slices
    pid = None
    if use_multicast:
        tree = compile_pattern(machine.torus, src_node, {m: ["htis"] for m in imports})
        pid = machine.network.register_pattern(tree)

    def sender(k):
        s = slices[k]
        for _ in range(ATOMS_PER_NODE // 4 + (1 if k < ATOMS_PER_NODE % 4 else 0)):
            if use_multicast:
                yield from s.send_write(src_node, "htis", counter_id="pos",
                                        payload_bytes=32, pattern_id=pid)
            else:
                for m in imports:
                    yield from s.send_write(m, "htis", counter_id="pos",
                                            payload_bytes=32)

    waits = [
        machine.node(m).htis.counter("pos").wait_for(ATOMS_PER_NODE)
        for m in imports
    ]
    procs = [sim.process(sender(k)) for k in range(4)]
    sim.run(until=sim.all_of(procs + [sim.all_of(waits)]))
    return sim.now, machine.network.link_traversals, len(imports)


def bench_ablation_multicast(benchmark, publish, record):
    shape = (4, 4, 4) if get_scale() == "quick" else (8, 8, 8)

    def run():
        return _run(True, shape), _run(False, shape)

    (t_mc, trav_mc, fanout), (t_uc, trav_uc, _) = once(benchmark, run)
    text = render_table(
        f"Ablation — multicast vs unicast position distribution "
        f"(46 atoms to {fanout} HTIS units)",
        ["scheme", "completion µs", "link traversals"],
        [
            ["multicast (Anton)", t_mc / 1000, float(trav_mc)],
            ["repeated unicast", t_uc / 1000, float(trav_uc)],
        ],
    )
    text += (
        f"\n\nmulticast saves {t_uc / t_mc:.1f}x sender-limited time and "
        f"{trav_uc / trav_mc:.1f}x link bandwidth"
    )
    publish("ablation_multicast", text)
    record("ablation_multicast", "multicast_completion_ns", t_mc, "ns",
           shape=list(shape))
    record("ablation_multicast", "unicast_completion_ns", t_uc, "ns",
           shape=list(shape))
    record("ablation_multicast", "multicast_link_traversals",
           float(trav_mc), "traversals", shape=list(shape))
    record("ablation_multicast", "unicast_link_traversals",
           float(trav_uc), "traversals", shape=list(shape))
    assert t_mc < t_uc
    assert trav_mc < trav_uc
