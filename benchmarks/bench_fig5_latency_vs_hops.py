"""Figure 5 — one-way counted-remote-write latency vs network hops.

Paper: 162 ns at one X hop; +76 ns per extra X hop; +54 ns per Y/Z
hop; 822 ns at the 12-hop diameter of the 8×8×8 machine; the 256-byte
and bidirectional curves run parallel to the 0-byte unidirectional
curve.
"""

from conftest import once

from repro.analysis import latency_vs_hops, render_series


def bench_fig5(benchmark, publish, record):
    points = once(benchmark, lambda: latency_vs_hops(shape=(8, 8, 8)))
    text = render_series(
        "Figure 5 — one-way latency (ns) vs network hops (8x8x8 machine)",
        "hops",
        [p.hops for p in points],
        {
            "0B uni": [p.uni_0b for p in points],
            "0B bidi": [p.bi_0b for p in points],
            "256B uni": [p.uni_256b for p in points],
            "256B bidi": [p.bi_256b for p in points],
        },
    )
    publish("fig5_latency_vs_hops", text)
    one_hop = points[1]
    twelve = points[12]
    for p in (points[0], one_hop, twelve):
        record("fig5_latency_vs_hops", f"uni_0B_{p.hops}hop_ns", p.uni_0b,
               "ns", shape=[8, 8, 8], hops=p.hops, payload_bytes=0)
    record("fig5_latency_vs_hops", "uni_256B_1hop_ns", one_hop.uni_256b,
           "ns", shape=[8, 8, 8], hops=1, payload_bytes=256)
    assert one_hop.uni_0b == 162.0, "headline latency must be exact"
    assert twelve.uni_0b == 822.0
    assert 4.5 < twelve.uni_0b / one_hop.uni_0b < 5.5  # "five times higher"
