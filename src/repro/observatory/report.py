"""Observatory rendering: the HTML dashboard and Prometheus text.

Reuses the monitor report pipeline — same stylesheet, same stat-tile
and status idioms, same :class:`~repro.monitor.report.PromText`
builder — so every self-contained HTML artifact in the repo looks and
escapes identically.  The dashboard carries:

* stat tiles (ledger length, metrics tracked, trend verdict counts,
  latest record provenance);
* one sparkline per metric series (inline SVG, latest point marked)
  with the latest-vs-window delta and the trend status as icon+label
  (never color alone), plus a table view of the raw values;
* optionally a profile-diff flame table (top movers, ``(other)``
  aggregate, residual row — the same exact-tiling rows as the text
  renderer).
"""

from __future__ import annotations

import html
import math
from typing import Optional

from repro.monitor.report import PromText, prom_labels
from repro.observatory.diff import RESIDUAL_LABEL, ProfileDiff
from repro.observatory.trends import MetricSeries, TrendReport, TrendVerdict
from repro.report_common import fmt as _fmt, html_page, sparkline, stat_tiles

_STATUS = {
    "ok": ("status-good", "&#10003;", "ok"),
    "improvement": ("status-good", "&#8595;", "improved"),
    "regression": ("status-critical", "&#10007;", "REGRESSION"),
    "insufficient": ("status-warning", "&#8230;", "insufficient history"),
}

#: Extra rules on top of the shared stylesheet.
_OBS_CSS = """
.metric-name { font-weight: 600; }
.mono { font-variant-numeric: tabular-nums; }
td.neg { color: var(--good); }
td.pos { color: var(--critical); }
"""


def _sparkline(
    series: MetricSeries, width: int = 160, height: int = 36
) -> str:
    """The shared sparkline over one metric series' trajectory."""
    return sparkline(series.name, series.values, width, height)


def _pct(worsening: float) -> str:
    if math.isinf(worsening):
        return "inf"
    return f"{worsening * 100.0:+.1f}%"


def _tiles(report: TrendReport, records: int, latest: Optional[dict]) -> str:
    stats = [
        ("ledger records", _fmt(records)),
        ("metrics tracked", _fmt(len(report.verdicts))),
        ("regressions", _fmt(len(report.regressions))),
        ("improvements", _fmt(len(report.improvements))),
    ]
    if latest:
        for key in ("git_rev", "hostname", "source_fingerprint"):
            if latest.get(key):
                stats.append((key.replace("_", " "), str(latest[key])))
    return stat_tiles(stats)


def _trend_rows(report: TrendReport) -> str:
    rows = []
    ordered = sorted(
        report.verdicts,
        key=lambda v: (v.status != "regression", v.series.key),
    )
    for v in ordered:
        cls, icon, label = _STATUS.get(v.status, _STATUS["ok"])
        rows.append(
            "<tr>"
            f'<td class="metric-name">{html.escape(v.series.benchmark)}'
            f"/{html.escape(v.series.metric)}</td>"
            f"<td>{html.escape(v.series.units) or '-'}</td>"
            f"<td>{_sparkline(v.series)}</td>"
            f'<td class="num">{len(v.series.values)}</td>'
            f'<td class="num">'
            f"{_fmt(v.median) if v.window else '-'}</td>"
            f'<td class="num">'
            f"{_fmt(v.latest) if v.window else '-'}</td>"
            f'<td class="num">'
            f"{_pct(v.worsening) if v.window else '-'}</td>"
            f'<td class="{cls}">{icon} {html.escape(label)}</td>'
            "</tr>"
        )
        rows.append(_values_detail(v))
    return "".join(rows)


def _values_detail(v: TrendVerdict) -> str:
    body = "".join(
        f'<tr><td>{html.escape(tag) or "-"}</td>'
        f'<td class="num">{_fmt(value)}</td></tr>'
        for tag, value in zip(v.series.tags, v.series.values)
    )
    return (
        '<tr><td colspan="8">'
        "<details><summary>table view (all points)</summary>"
        "<table><thead><tr><th>run</th>"
        '<th class="num">value</th></tr></thead>'
        f"<tbody>{body}</tbody></table></details>"
        "</td></tr>"
    )


def _diff_section(diff: ProfileDiff, top: int = 15) -> str:
    def delta_cell(ns: int) -> str:
        cls = "pos" if ns > 0 else "neg" if ns < 0 else ""
        return f'<td class="num {cls}">{ns / 1e6:+.3f}</td>'

    ranked = diff.sorted_rows()
    shown, rest = ranked[:top], ranked[top:]
    rows = []
    for r in shown:
        rows.append(
            "<tr>"
            f"<td>{html.escape(r.phase)}</td>"
            f"<td>{html.escape(r.component)}</td>"
            f"<td>{html.escape(r.label)}</td>"
            + delta_cell(r.delta_wall_ns)
            + f'<td class="num">{r.base_wall_ns / 1e6:.3f}</td>'
            f'<td class="num">{r.cur_wall_ns / 1e6:.3f}</td>'
            f'<td class="num">{r.delta_events:+d}</td>'
            "</tr>"
        )
    if rest:
        rows.append(
            "<tr><td></td><td></td>"
            f"<td>(other: {len(rest)} rows)</td>"
            + delta_cell(sum(r.delta_wall_ns for r in rest))
            + f'<td class="num">'
            f"{sum(r.base_wall_ns for r in rest) / 1e6:.3f}</td>"
            f'<td class="num">'
            f"{sum(r.cur_wall_ns for r in rest) / 1e6:.3f}</td>"
            f'<td class="num">'
            f"{sum(r.delta_events for r in rest):+d}</td></tr>"
        )
    if diff.residual_ns:
        rows.append(
            "<tr><td></td><td></td>"
            f"<td>{html.escape(RESIDUAL_LABEL)}</td>"
            + delta_cell(diff.residual_ns)
            + "<td></td><td></td><td></td></tr>"
        )
    return (
        f"<h2>Profile diff: {html.escape(diff.base_label)} &rarr; "
        f"{html.escape(diff.cur_label)}</h2>"
        f'<p class="note">loop wall '
        f"{diff.base_loop_wall_ns / 1e6:.3f} ms &rarr; "
        f"{diff.cur_loop_wall_ns / 1e6:.3f} ms "
        f"(&Delta; {diff.delta_loop_wall_ns / 1e6:+.3f} ms, residual "
        f"{diff.residual_ns / 1e6:+.3f} ms)</p>"
        "<table><thead><tr><th>phase</th><th>component</th><th>event</th>"
        '<th class="num">&Delta; ms</th><th class="num">base ms</th>'
        '<th class="num">cur ms</th><th class="num">&Delta; events</th>'
        "</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def render_observatory_html(
    report: TrendReport,
    records: int = 0,
    latest_provenance: Optional[dict] = None,
    diff: Optional[ProfileDiff] = None,
    title: str = "Performance observatory",
    source: str = "",
) -> str:
    """The full self-contained observatory dashboard."""
    cls, icon, label = (
        ("status-good", "&#10003;", "NO TREND REGRESSIONS")
        if report.ok
        else ("status-critical", "&#10007;",
              f"{len(report.regressions)} TREND REGRESSION(S)")
    )
    subtitle = (
        html.escape(source) if source else "run ledger"
    ) + f" &middot; {len(report.verdicts)} metric series"
    body = (
        _tiles(report, records, latest_provenance)
        + f'<p><span class="verdict-banner {cls}">{icon} {label}'
        "</span></p>\n"
        "<h2>Metric trajectories</h2>\n"
        "<table><thead><tr><th>metric</th><th>units</th>"
        "<th>trajectory</th>"
        '<th class="num">n</th><th class="num">median</th>'
        '<th class="num">latest</th><th class="num">worsening</th>'
        "<th>status</th></tr></thead>"
        f"<tbody>{_trend_rows(report)}</tbody></table>\n"
        + (_diff_section(diff) if diff is not None else "")
    )
    return html_page(title, subtitle, body, extra_css=_OBS_CSS)


def render_observatory_prometheus(report: TrendReport) -> str:
    """Trend verdicts as a Prometheus text exposition."""
    out = PromText()
    status_code = {
        "ok": 0, "improvement": 0, "insufficient": 1, "regression": 2,
    }

    def labels(v: TrendVerdict) -> str:
        return prom_labels(
            benchmark=v.series.benchmark,
            metric=v.series.metric,
            config=v.series.config_hash,
        )

    judged = [v for v in report.verdicts if v.status != "insufficient"]
    out.metric(
        "repro_obs_trend_status", "gauge",
        "Trend status: 0 ok/improved, 1 insufficient, 2 regression.",
        [(labels(v), status_code.get(v.status, 1))
         for v in report.verdicts],
    )
    out.metric(
        "repro_obs_latest", "gauge",
        "Latest value of every tracked metric series.",
        [(labels(v), v.latest) for v in judged],
    )
    out.metric(
        "repro_obs_window_median", "gauge",
        "Robust window median of every tracked metric series.",
        [(labels(v), v.median) for v in judged],
    )
    out.metric(
        "repro_obs_worsening", "gauge",
        "Direction-signed relative change of latest vs window median.",
        [(labels(v), v.worsening) for v in judged
         if not math.isinf(v.worsening)],
    )
    out.metric(
        "repro_obs_regressions", "gauge",
        "Number of metric series flagged as trend regressions.",
        [("", len(report.regressions))],
    )
    return out.text()
