"""The append-only run ledger: every measurement, with provenance.

PR 2's regression gate compares one run against one committed baseline
and PR 6's profiler captures one run at a time — both are point-in-time
tools.  The ledger is the longitudinal layer underneath them: an
append-only JSONL file that every ``python -m repro bench``, ``repro
profile``, and ``repro sweep`` invocation appends one record to, so the
repository accumulates a machine-readable performance trajectory that
:mod:`repro.observatory.trends` can mine for regressions and
:mod:`repro.observatory.diff` can pull profile captures out of.

Design rules:

* **Append-only, hash-chained.**  A record's ``id`` is the SHA-256 (12
  hex digits) of its canonical body, and the body embeds the ``id`` of
  the previous record — so reordering, deleting, or editing history is
  detectable with :meth:`Ledger.verify`, the same
  verify-never-trust discipline as the result cache.
* **Robust to torn writes.**  Appends are single ``write()`` calls of
  one newline-terminated line, flushed and fsynced; a reader that
  races an append (or finds a line a crashed writer truncated) warns,
  skips the bad line, and keeps going — and a subsequent append starts
  cleanly on a fresh line.  A damaged ledger never blocks new records.
* **Observability only, never results.**  Nothing in this module is
  consulted by a simulation: run results, sweep checkpoints, and bench
  JSON are byte-identical with the ledger enabled or disabled
  (property-tested).  Records carry wall-clock timestamps and host
  facts precisely *because* they are not part of the deterministic
  result surface.

Every record carries **provenance**: the repro source fingerprint (the
same digest the content-addressed result cache keys on), git revision,
hostname, CPU model, Python version, and — when the producing run
supplied them — wall seconds, simulator events/second, and peak RSS in
bytes.  That is what makes a value from last month comparable to one
from today: the record says what code, what machine, and how fast.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.bench.results import BenchResult, ResultSet, canonical_json

if TYPE_CHECKING:  # pragma: no cover
    from repro.runner.result import RunResult

#: Record schema; bump on incompatible layout changes.
SCHEMA = "repro-ledger/1"

#: ``prev`` value of the first record in a chain.
GENESIS = "0" * 12

#: Default ledger location (cwd-relative, like ``.repro-cache``).
DEFAULT_LEDGER_PATH = ".repro-ledger.jsonl"

#: Record kinds the CLI produces; free-form kinds are allowed too.
KNOWN_KINDS = ("bench", "profile", "sweep", "run")

_LOG = logging.getLogger("repro.obs")

_ENV_OFF = ("", "0", "off", "none", "disabled")


def default_ledger_path() -> Optional[str]:
    """The ambient ledger path: ``$REPRO_LEDGER`` if set (a falsey
    value — ``0``/``off``/``none``/empty — disables the ledger
    entirely), else :data:`DEFAULT_LEDGER_PATH`."""
    env = os.environ.get("REPRO_LEDGER")
    if env is None:
        return DEFAULT_LEDGER_PATH
    if env.strip().lower() in _ENV_OFF:
        return None
    return env


def record_id(body: dict) -> str:
    """12-hex-digit digest of a record body (everything but ``id``)."""
    return hashlib.sha256(
        canonical_json(body).encode("utf-8")
    ).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------

_HOST_FACTS: Optional[dict] = None


def _cpu_model() -> str:
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.partition(":")[2].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def host_facts() -> dict:
    """Hostname / CPU / Python facts, gathered once per process."""
    global _HOST_FACTS
    if _HOST_FACTS is None:
        _HOST_FACTS = {
            "hostname": platform.node() or "unknown",
            "cpu_model": _cpu_model(),
            "python": platform.python_version(),
            "platform": sys.platform,
        }
    return dict(_HOST_FACTS)


def git_revision() -> Optional[str]:
    """The current git revision: ``$GITHUB_SHA`` in CI, else a
    best-effort ``git rev-parse HEAD`` (``None`` outside a repo)."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def source_fingerprint() -> str:
    """The repro source fingerprint — the same digest the
    content-addressed result cache keys entries on, truncated to 12
    hex digits.  Two ledger records with equal fingerprints measured
    identical simulator code."""
    from repro.runner.cache import code_fingerprint

    return code_fingerprint()[:12]


def build_provenance(
    spec=None, meta: Optional[dict] = None
) -> dict:
    """One record's provenance block: code identity (fingerprint, git
    rev), host identity, and — from a run's ``meta`` when available —
    wall seconds, events/second, the engine scheduler that produced
    the run, and peak RSS **in bytes** (normalized at the source by
    :func:`repro.profile.telemetry.peak_rss_bytes`, so records are
    comparable across Linux and macOS hosts)."""
    doc = host_facts()
    doc["source_fingerprint"] = source_fingerprint()
    rev = git_revision()
    if rev:
        doc["git_rev"] = rev
    if spec is not None:
        doc["spec_hash"] = spec.spec_hash
    for key in (
        "wall_time_s", "events_per_second", "peak_rss_bytes", "scheduler"
    ):
        if meta and key in meta:
            doc[key] = meta[key]
    return doc


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------

@dataclass
class LedgerRecord:
    """One appended measurement record."""

    seq: int
    id: str
    prev: str
    ts: float
    kind: str
    label: str
    provenance: dict = field(default_factory=dict)
    #: ``repro-bench/1`` result rows (benchmark/metric/value/units/
    #: better/config/config_hash) — the trend detector's input.
    metrics: list = field(default_factory=list)
    #: Kind-specific payloads (a profile capture's wall profile, a
    #: bench compare verdict, a sweep summary).
    attachments: dict = field(default_factory=dict)

    def body(self) -> dict:
        doc = {
            "schema": SCHEMA,
            "seq": self.seq,
            "prev": self.prev,
            "ts": self.ts,
            "kind": self.kind,
            "label": self.label,
            "provenance": self.provenance,
            "metrics": self.metrics,
        }
        if self.attachments:
            doc["attachments"] = self.attachments
        return doc

    def to_dict(self) -> dict:
        doc = self.body()
        doc["id"] = self.id
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "LedgerRecord":
        if not isinstance(doc, dict):
            raise ValueError("record must be a JSON object")
        if doc.get("schema") != SCHEMA:
            raise ValueError(f"unsupported record schema {doc.get('schema')!r}")
        missing = {"seq", "id", "prev", "kind", "label"} - set(doc)
        if missing:
            raise ValueError(f"record missing fields: {sorted(missing)}")
        metrics = doc.get("metrics", [])
        if not isinstance(metrics, list):
            raise ValueError("record metrics must be a list")
        return cls(
            seq=int(doc["seq"]),
            id=str(doc["id"]),
            prev=str(doc["prev"]),
            ts=float(doc.get("ts", 0.0)),
            kind=str(doc["kind"]),
            label=str(doc["label"]),
            provenance=doc.get("provenance", {}) or {},
            metrics=metrics,
            attachments=doc.get("attachments", {}) or {},
        )

    def bench_results(self) -> list[BenchResult]:
        """The record's metric rows as typed results (rows that fail
        validation are skipped — the ledger may span schema eras)."""
        out = []
        for row in self.metrics:
            try:
                out.append(BenchResult.from_dict(row))
            except (TypeError, ValueError):
                continue
        return out


@dataclass
class SkippedLine:
    """One unreadable ledger line a reader stepped over."""

    lineno: int
    reason: str


# ---------------------------------------------------------------------------
# The ledger
# ---------------------------------------------------------------------------

class Ledger:
    """An append-only, hash-chained JSONL measurement log."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        #: Lines the most recent :meth:`read` could not parse.
        self.skipped: list[SkippedLine] = []

    # -- read --------------------------------------------------------------
    def read(self) -> list[LedgerRecord]:
        """Every parseable record, in file order.

        A corrupt line — torn write, truncated tail, stray garbage —
        is warned about (``repro.obs`` logger), remembered on
        :attr:`skipped`, and stepped over: one bad line never hides
        the rest of the history.
        """
        self.skipped = []
        records: list[LedgerRecord] = []
        try:
            with open(self.path, "r", encoding="utf-8", errors="replace") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return records
        for lineno, line in enumerate(lines, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                records.append(LedgerRecord.from_dict(json.loads(text)))
            except (ValueError, TypeError) as exc:
                reason = f"{type(exc).__name__}: {exc}"
                self.skipped.append(SkippedLine(lineno, reason))
                _LOG.warning(
                    "ledger %s line %d unreadable (%s); skipping",
                    self.path, lineno, reason,
                )
        return records

    def last(self) -> Optional[LedgerRecord]:
        records = self.read()
        return records[-1] if records else None

    def get(self, id_or_prefix: str) -> Optional[LedgerRecord]:
        """The unique record whose id matches ``id_or_prefix`` (full id
        or unambiguous prefix, most recent wins on exact match)."""
        wanted = id_or_prefix.strip().lower()
        if not wanted:
            return None
        matches = [
            rec for rec in self.read() if rec.id.lower().startswith(wanted)
        ]
        exact = [rec for rec in matches if rec.id.lower() == wanted]
        if exact:
            return exact[-1]
        distinct = {rec.id for rec in matches}
        if len(distinct) == 1:
            return matches[-1]
        return None

    def verify(self) -> list[str]:
        """Hash-chain problems, empty when the ledger is intact:
        recomputed ids must match stored ids, ``prev`` pointers must
        chain, and ``seq`` must increase."""
        problems = []
        prev_id = GENESIS
        prev_seq = -1
        for rec in self.read():
            if record_id(rec.body()) != rec.id:
                problems.append(
                    f"record {rec.id} (seq {rec.seq}): body does not "
                    f"hash to its id — edited after append?"
                )
            if rec.prev != prev_id:
                problems.append(
                    f"record {rec.id} (seq {rec.seq}): prev {rec.prev} "
                    f"!= {prev_id} — chain broken (deleted/reordered "
                    "records, or records lost to corruption)"
                )
            if rec.seq <= prev_seq:
                problems.append(
                    f"record {rec.id}: seq {rec.seq} does not increase "
                    f"past {prev_seq}"
                )
            prev_id, prev_seq = rec.id, rec.seq
        for skip in self.skipped:
            problems.append(
                f"line {skip.lineno}: unreadable ({skip.reason})"
            )
        return problems

    # -- append ------------------------------------------------------------
    def append(
        self,
        kind: str,
        label: str,
        metrics: Iterable[dict] = (),
        provenance: Optional[dict] = None,
        attachments: Optional[dict] = None,
        ts: Optional[float] = None,
    ) -> LedgerRecord:
        """Append one record, chained to the last *valid* record.

        The write is a single newline-terminated line, flushed and
        fsynced.  If the file currently ends in a truncated line (a
        writer died mid-append), a newline is emitted first so the new
        record starts clean — the damage stays confined to the one
        torn line, which readers already skip.
        """
        last = self.last()
        record = LedgerRecord(
            seq=(last.seq + 1) if last is not None else 0,
            id="",
            prev=last.id if last is not None else GENESIS,
            ts=float(ts) if ts is not None else time.time(),
            kind=str(kind),
            label=str(label),
            provenance=provenance if provenance is not None else {},
            metrics=[dict(row) for row in metrics],
            attachments=dict(attachments or {}),
        )
        record.id = record_id(record.body())
        line = canonical_json(record.to_dict()) + "\n"
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        needs_newline = False
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() > 0:
                    fh.seek(-1, os.SEEK_END)
                    needs_newline = fh.read(1) != b"\n"
        except FileNotFoundError:
            pass
        if needs_newline:
            _LOG.warning(
                "ledger %s ends in a truncated line (torn write); "
                "starting a fresh line and appending past it", self.path,
            )
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(("\n" if needs_newline else "") + line)
            fh.flush()
            os.fsync(fh.fileno())
        return record


# ---------------------------------------------------------------------------
# Record builders for the three producing pipelines
# ---------------------------------------------------------------------------

def log_bench(
    ledger: Ledger,
    results: ResultSet,
    label: str = "bench",
    verdict: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> LedgerRecord:
    """Append a bench-suite run: every ``repro-bench/1`` row, plus the
    compare verdict when the run was gated against a baseline."""
    attachments = {"verdict": verdict} if verdict is not None else {}
    return ledger.append(
        kind="bench",
        label=label,
        metrics=[r.to_dict() for r in results],
        provenance=build_provenance(meta=meta),
        attachments=attachments,
    )


def log_profile(ledger: Ledger, result: "RunResult") -> LedgerRecord:
    """Append a profile capture: headline engine metrics as rows (so
    trends can watch events/second over time) and the full wall
    profile as an attachment (so ``--diff <ledger-id>`` can align a
    future capture against this one)."""
    profiler = result.profile
    if profiler is None:
        raise ValueError("result carries no profile; run with profile=True")
    config = result.spec.to_dict()
    rows = [
        BenchResult("profile", "loop_wall_ns", profiler.loop_wall_ns,
                    "ns", "lower", config),
        BenchResult("profile", "events_total", profiler.events_total,
                    "events", "lower", config),
        BenchResult("profile", "events_per_second",
                    profiler.events_per_second, "events/s", "higher",
                    config),
    ]
    return ledger.append(
        kind="profile",
        label=f"profile {result.spec.label()}",
        metrics=[r.to_dict() for r in rows],
        provenance=build_provenance(spec=result.spec, meta=result.meta),
        attachments={"wall_profile": profiler.wall_profile()},
    )


def log_congest(ledger: Ledger, result: "RunResult", tree) -> LedgerRecord:
    """Append a congestion X-ray: the headline backpressure scalars as
    rows (so ``repro obs trends`` watches HOL-wait regressions over
    time) and the full congestion tree as an attachment."""
    config = result.spec.to_dict()
    worst = tree.worst
    rows = [
        BenchResult("congest", "hol_wait_total_ns", tree.total_wait_ns,
                    "ns", "lower", config),
        BenchResult("congest", "worst_link_wait_ns",
                    worst.wait_ns if worst is not None else 0.0,
                    "ns", "lower", config),
        BenchResult("congest", "contended_links", len(tree.links),
                    "links", "lower", config),
        BenchResult("congest", "contended_hops", tree.contended_hops,
                    "hops", "lower", config),
        BenchResult("congest", "episodes", len(tree.episodes()),
                    "episodes", "lower", config),
        BenchResult("congest", "max_peak_queue",
                    max((lc.peak_depth for lc in tree.links), default=0),
                    "packets", "lower", config),
    ]
    return ledger.append(
        kind="congest",
        label=f"congest {result.spec.label()}",
        metrics=[r.to_dict() for r in rows],
        provenance=build_provenance(spec=result.spec, meta=result.meta),
        attachments={"congestion": tree.to_doc(top=16)},
    )


def log_sweep(ledger: Ledger, report, label: str = "sweep") -> LedgerRecord:
    """Append a sweep: every completed point's measurements as rows
    plus the execution summary (cache hit rate, retries, wall time)."""
    return ledger.append(
        kind="sweep",
        label=label,
        metrics=[r.to_dict() for r in report.result_set()],
        provenance=build_provenance(),
        attachments={"summary": report.summary_doc()},
    )
