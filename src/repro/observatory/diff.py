"""Differential profiling: attribute a wall-time delta between two
EngineProfiler captures.

Aligns two ``repro-profile-wall/1`` documents on the full
``(phase, component, event label)`` key — the union of both captures,
so a row that exists only on one side still shows up (as pure growth
or pure disappearance) instead of being silently dropped.  The rows
obey the same exact-tiling discipline as attribution and the profiler
itself:

    sum(row deltas) + residual == current.loop_wall_ns - base.loop_wall_ns

with the residual carried as an explicit ``(unattributed)`` row.  For
two native captures the residual is zero by construction (component
totals tile ``loop_wall_ns`` exactly on each side); for a capture
reconstructed from a sampled speedscope export it absorbs whatever the
sampling lost — visibly, never silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Schema tag of the diff document (``repro obs diff --json``).
DIFF_SCHEMA = "repro-profile-diff/1"

#: Label of the residual row that makes the rows tile the total delta.
RESIDUAL_LABEL = "(unattributed)"

Key = tuple[str, str, str]


@dataclass
class DiffRow:
    """One aligned ``(phase, component, label)`` cell of the diff."""

    phase: str
    component: str
    label: str
    base_wall_ns: int = 0
    cur_wall_ns: int = 0
    base_events: int = 0
    cur_events: int = 0

    @property
    def key(self) -> Key:
        return (self.phase, self.component, self.label)

    @property
    def delta_wall_ns(self) -> int:
        return self.cur_wall_ns - self.base_wall_ns

    @property
    def delta_events(self) -> int:
        return self.cur_events - self.base_events

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "component": self.component,
            "label": self.label,
            "base_wall_ns": self.base_wall_ns,
            "cur_wall_ns": self.cur_wall_ns,
            "delta_wall_ns": self.delta_wall_ns,
            "base_events": self.base_events,
            "cur_events": self.cur_events,
            "delta_events": self.delta_events,
        }


def _flatten(profile: dict) -> dict[Key, tuple[int, int]]:
    """``(phase, component, label) -> (events, wall_ns)`` of one
    wall-profile document."""
    out: dict[Key, tuple[int, int]] = {}
    for phase, comps in profile.get("phases", {}).items():
        for comp, labels in comps.items():
            for label, node in labels.items():
                key = (str(phase), str(comp), str(label))
                events = int(node.get("events", 0))
                wall = int(node.get("wall_ns", 0))
                if key in out:
                    prev = out[key]
                    out[key] = (prev[0] + events, prev[1] + wall)
                else:
                    out[key] = (events, wall)
    return out


@dataclass
class ProfileDiff:
    """The aligned difference of two wall-profile captures."""

    base_label: str
    cur_label: str
    base_loop_wall_ns: int
    cur_loop_wall_ns: int
    rows: list[DiffRow] = field(default_factory=list)

    @property
    def delta_loop_wall_ns(self) -> int:
        return self.cur_loop_wall_ns - self.base_loop_wall_ns

    @property
    def attributed_delta_ns(self) -> int:
        return sum(r.delta_wall_ns for r in self.rows)

    @property
    def residual_ns(self) -> int:
        """What the per-row deltas do NOT explain of the total loop
        delta.  Zero for two native captures; nonzero (and displayed)
        when one side came from a lossy source."""
        return self.delta_loop_wall_ns - self.attributed_delta_ns

    def tiles_exactly(self) -> bool:
        """The invariant: row deltas + residual == total delta."""
        return (
            self.attributed_delta_ns + self.residual_ns
            == self.delta_loop_wall_ns
        )

    def sorted_rows(self) -> list[DiffRow]:
        """Rows by descending |delta|, ties broken by key."""
        return sorted(
            self.rows, key=lambda r: (-abs(r.delta_wall_ns), r.key)
        )

    def to_doc(self) -> dict:
        return {
            "schema": DIFF_SCHEMA,
            "base": self.base_label,
            "current": self.cur_label,
            "base_loop_wall_ns": self.base_loop_wall_ns,
            "cur_loop_wall_ns": self.cur_loop_wall_ns,
            "delta_loop_wall_ns": self.delta_loop_wall_ns,
            "residual_ns": self.residual_ns,
            "rows": [r.to_dict() for r in self.sorted_rows()],
        }


def diff_profiles(
    base: dict,
    current: dict,
    base_label: str = "base",
    cur_label: str = "current",
) -> ProfileDiff:
    """Align two wall-profile documents into a :class:`ProfileDiff`.

    Both arguments are ``repro-profile-wall/1`` dicts (e.g. from
    :meth:`EngineProfiler.wall_profile`, a ledger attachment, or
    :func:`repro.profile.export.load_wall_profile`).
    """
    base_cells = _flatten(base)
    cur_cells = _flatten(current)
    rows = []
    for key in sorted(set(base_cells) | set(cur_cells)):
        b_events, b_wall = base_cells.get(key, (0, 0))
        c_events, c_wall = cur_cells.get(key, (0, 0))
        rows.append(DiffRow(
            phase=key[0],
            component=key[1],
            label=key[2],
            base_wall_ns=b_wall,
            cur_wall_ns=c_wall,
            base_events=b_events,
            cur_events=c_events,
        ))
    return ProfileDiff(
        base_label=base_label,
        cur_label=cur_label,
        base_loop_wall_ns=int(base.get("loop_wall_ns", 0)),
        cur_loop_wall_ns=int(current.get("loop_wall_ns", 0)),
        rows=rows,
    )


def _ms(ns: int) -> str:
    return f"{ns / 1e6:+.3f}" if ns else "+0.000"


def render_diff(diff: ProfileDiff, top: int = 15) -> str:
    """Human-readable flame-style delta table: the ``top`` largest
    movers, an ``(other)`` aggregate for the rest, and the residual
    row when nonzero — every nanosecond of the total delta appears
    exactly once."""
    out: list[str] = []
    out.append(
        f"profile diff: {diff.base_label} -> {diff.cur_label}"
    )
    out.append(
        f"loop wall: {diff.base_loop_wall_ns / 1e6:.3f} ms -> "
        f"{diff.cur_loop_wall_ns / 1e6:.3f} ms "
        f"(delta {_ms(diff.delta_loop_wall_ns)} ms)"
    )
    out.append("")
    out.append(
        f"{'phase':<14} {'component':<12} {'event':<26} "
        f"{'delta ms':>10} {'base ms':>10} {'cur ms':>10} {'d.events':>9}"
    )
    ranked = diff.sorted_rows()
    shown = ranked[:top]
    rest = ranked[top:]
    for row in shown:
        out.append(
            f"{row.phase:<14} {row.component:<12} {row.label:<26} "
            f"{_ms(row.delta_wall_ns):>10} "
            f"{row.base_wall_ns / 1e6:>10.3f} "
            f"{row.cur_wall_ns / 1e6:>10.3f} "
            f"{row.delta_events:>+9d}"
        )
    if rest:
        other_delta = sum(r.delta_wall_ns for r in rest)
        other_base = sum(r.base_wall_ns for r in rest)
        other_cur = sum(r.cur_wall_ns for r in rest)
        other_events = sum(r.delta_events for r in rest)
        out.append(
            f"{'':<14} {'':<12} {f'(other: {len(rest)} rows)':<26} "
            f"{_ms(other_delta):>10} "
            f"{other_base / 1e6:>10.3f} "
            f"{other_cur / 1e6:>10.3f} "
            f"{other_events:>+9d}"
        )
    if diff.residual_ns:
        out.append(
            f"{'':<14} {'':<12} {RESIDUAL_LABEL:<26} "
            f"{_ms(diff.residual_ns):>10} "
            f"{'':>10} {'':>10} {'':>9}"
        )
    out.append("")
    sign = "slower" if diff.delta_loop_wall_ns > 0 else "faster"
    out.append(
        f"total: {_ms(diff.delta_loop_wall_ns)} ms ({sign}); "
        f"attributed {_ms(diff.attributed_delta_ns)} ms, "
        f"residual {_ms(diff.residual_ns)} ms"
    )
    return "\n".join(out)
