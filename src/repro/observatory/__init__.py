"""The performance observatory: the longitudinal layer over bench,
profile, and sweep.

Three pieces, each usable alone:

* :mod:`repro.observatory.ledger` — the append-only, hash-chained JSONL
  run ledger every measuring CLI appends to (with provenance: source
  fingerprint, git rev, host facts, wall/events-per-second);
* :mod:`repro.observatory.trends` — robust (median + MAD,
  direction-aware) trend and regression detection over the ledger or
  the committed ``BENCH_TRAJECTORY.json``;
* :mod:`repro.observatory.diff` — differential profiling: attribute a
  wall-ns delta between two profiler captures with exact tiling and an
  explicit residual row.

``python -m repro obs`` is the front end (``log | trends | diff |
report``); :mod:`repro.observatory.report` renders the HTML dashboard
and Prometheus exposition through the monitor pipeline.
"""

from repro.observatory.diff import (
    DIFF_SCHEMA,
    DiffRow,
    ProfileDiff,
    RESIDUAL_LABEL,
    diff_profiles,
    render_diff,
)
from repro.observatory.ledger import (
    DEFAULT_LEDGER_PATH,
    GENESIS,
    Ledger,
    LedgerRecord,
    SCHEMA,
    SkippedLine,
    build_provenance,
    default_ledger_path,
    git_revision,
    host_facts,
    log_bench,
    log_profile,
    log_sweep,
    record_id,
    source_fingerprint,
)
from repro.observatory.report import (
    render_observatory_html,
    render_observatory_prometheus,
)
from repro.observatory.trends import (
    DEFAULT_MAD_MULT,
    DEFAULT_MIN_POINTS,
    DEFAULT_MIN_WORSENING,
    DEFAULT_WINDOW,
    MetricSeries,
    TRAJECTORY_SCHEMA,
    TRENDS_SCHEMA,
    TrendReport,
    TrendVerdict,
    append_trajectory,
    detect,
    read_trajectory,
    series_from_records,
    series_from_trajectory,
    trend_report,
)

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "DEFAULT_MAD_MULT",
    "DEFAULT_MIN_POINTS",
    "DEFAULT_MIN_WORSENING",
    "DEFAULT_WINDOW",
    "DIFF_SCHEMA",
    "DiffRow",
    "GENESIS",
    "Ledger",
    "LedgerRecord",
    "MetricSeries",
    "ProfileDiff",
    "RESIDUAL_LABEL",
    "SCHEMA",
    "SkippedLine",
    "TRAJECTORY_SCHEMA",
    "TRENDS_SCHEMA",
    "TrendReport",
    "TrendVerdict",
    "append_trajectory",
    "build_provenance",
    "default_ledger_path",
    "detect",
    "diff_profiles",
    "git_revision",
    "host_facts",
    "log_bench",
    "log_profile",
    "log_sweep",
    "read_trajectory",
    "record_id",
    "render_diff",
    "render_observatory_html",
    "render_observatory_prometheus",
    "series_from_records",
    "series_from_trajectory",
    "source_fingerprint",
    "trend_report",
]
