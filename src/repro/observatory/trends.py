"""Trend and regression detection over the run ledger.

The PR-2 gate answers "is this run worse than the one committed
baseline?".  This module answers the longitudinal question: "is the
*latest* value of each metric consistent with its own recent history?"
— using a robust location/scale estimate (median + MAD over a sliding
window) instead of a single reference point, direction-aware exactly
like :mod:`repro.bench.compare` (``better: lower`` vs ``higher``).

Detection rule, per metric series:

* baseline = the window of values *before* the latest;
* ``worsening`` = relative change of the latest vs the window median,
  signed so that positive always means "worse" for this metric;
* the threshold adapts to the series' own noise:
  ``max(min_worsening, mad_mult * MAD / |median|)`` — a deterministic
  flat series gets the tight floor, a jittery series earns slack
  proportional to its observed spread, so jitter alone never pages
  anyone but a genuine shift (the injected 3x latency regression of
  the acceptance test) always does.

A zero median is handled like a zero baseline in ``bench/compare``:
any nonzero latest value is an infinite change in its direction —
zero-valued hard gates (e.g. ``monitor/sim_time_delta_ns``) stay hard.

The same detector also runs over ``BENCH_TRAJECTORY.json``, the
committed CI trajectory artifact: one ``repro-trajectory/1`` document
holding an ordered list of points, each a set of ``repro-bench/1``
rows plus provenance.  CI appends a point per run and runs the
detector as a non-blocking annotation step.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from statistics import median
from typing import Optional

from repro.bench.results import ResultSet

#: Trajectory document schema; bump on layout changes.
TRAJECTORY_SCHEMA = "repro-trajectory/1"

#: Trend verdict document schema (``repro obs trends --json``).
TRENDS_SCHEMA = "repro-obs-trends/1"

#: Default sliding-window length (baseline points before the latest).
DEFAULT_WINDOW = 20

#: Minimum series length before a verdict is attempted.
DEFAULT_MIN_POINTS = 4

#: Floor on the worsening threshold (fraction); a flat deterministic
#: series regresses at >10%, mirroring the single-baseline gate's
#: spirit while leaving room for intentional small retunings.
DEFAULT_MIN_WORSENING = 0.10

#: Noise multiplier: the threshold grows to ``mad_mult`` robust
#: standard-deviations-worth of the series' own MAD.
DEFAULT_MAD_MULT = 5.0

Key = tuple[str, str, str]


@dataclass
class MetricSeries:
    """One metric's trajectory, in ledger/trajectory order."""

    benchmark: str
    metric: str
    config_hash: str
    units: str = ""
    better: str = "lower"
    values: list = field(default_factory=list)
    #: One provenance tag per value (ledger record id / trajectory seq).
    tags: list = field(default_factory=list)

    @property
    def key(self) -> Key:
        return (self.benchmark, self.metric, self.config_hash)

    @property
    def name(self) -> str:
        return f"{self.benchmark}/{self.metric}"

    def add(self, value: float, tag: str = "") -> None:
        self.values.append(float(value))
        self.tags.append(tag)


def _collect_rows(out: dict, rows, tag: str) -> None:
    for result in rows:
        series = out.get(result.key)
        if series is None:
            series = out[result.key] = MetricSeries(
                benchmark=result.benchmark,
                metric=result.metric,
                config_hash=result.config_hash,
                units=result.units,
                better=result.better,
            )
        series.add(result.value, tag)


def series_from_records(records) -> dict[Key, MetricSeries]:
    """Per-metric series from ledger records, keyed like the bench
    compare pipeline: ``(benchmark, metric, config_hash)`` — a changed
    configuration starts a new series rather than polluting an old one."""
    out: dict[Key, MetricSeries] = {}
    for record in records:
        _collect_rows(out, record.bench_results(), record.id)
    return out


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------

@dataclass
class TrendVerdict:
    """The detector's judgement of one metric series."""

    series: MetricSeries
    #: ``ok`` | ``regression`` | ``improvement`` | ``insufficient``
    status: str
    latest: float = 0.0
    median: float = 0.0
    mad: float = 0.0
    #: Direction-signed relative change of the latest vs the window
    #: median (positive = worse); ``inf`` on a zero-median shift.
    worsening: float = 0.0
    threshold: float = 0.0
    window: int = 0

    @property
    def is_regression(self) -> bool:
        return self.status == "regression"

    def detail(self) -> str:
        if self.status == "insufficient":
            return (
                f"{len(self.series.values)} point(s); need more history"
            )
        pct = (
            "inf" if math.isinf(self.worsening)
            else f"{self.worsening * 100.0:+.1f}%"
        )
        return (
            f"latest {self.latest:g} vs median {self.median:g} "
            f"over {self.window} point(s): worsening {pct} "
            f"(threshold {self.threshold * 100.0:.1f}%, "
            f"MAD {self.mad:g})"
        )

    def to_dict(self) -> dict:
        return {
            "benchmark": self.series.benchmark,
            "metric": self.series.metric,
            "config_hash": self.series.config_hash,
            "units": self.series.units,
            "better": self.series.better,
            "status": self.status,
            "points": len(self.series.values),
            "latest": self.latest,
            "median": self.median,
            "mad": self.mad,
            "worsening": (
                None if math.isinf(self.worsening) else self.worsening
            ),
            "threshold": self.threshold,
            "window": self.window,
        }


def detect(
    series: MetricSeries,
    window: int = DEFAULT_WINDOW,
    min_points: int = DEFAULT_MIN_POINTS,
    min_worsening: float = DEFAULT_MIN_WORSENING,
    mad_mult: float = DEFAULT_MAD_MULT,
) -> TrendVerdict:
    """Judge a series' latest value against its own recent history."""
    values = series.values
    if len(values) < max(min_points, 2):
        return TrendVerdict(series=series, status="insufficient")
    latest = values[-1]
    baseline = values[:-1][-window:]
    med = median(baseline)
    mad = median(abs(v - med) for v in baseline)
    if med == 0.0:
        # Mirror compare.py's zero-baseline rule: any nonzero latest
        # is an infinite change in its direction.
        change = (
            0.0 if latest == 0.0
            else math.copysign(math.inf, latest)
        )
        mad_rel = 0.0
    else:
        change = (latest - med) / abs(med)
        mad_rel = mad / abs(med)
    worsening = change if series.better == "lower" else -change
    threshold = max(min_worsening, mad_mult * mad_rel)
    if worsening > threshold:
        status = "regression"
    elif worsening < -threshold:
        status = "improvement"
    else:
        status = "ok"
    return TrendVerdict(
        series=series,
        status=status,
        latest=latest,
        median=med,
        mad=mad,
        worsening=worsening,
        threshold=threshold,
        window=len(baseline),
    )


@dataclass
class TrendReport:
    """All per-metric verdicts of one detection pass."""

    verdicts: list[TrendVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> list[TrendVerdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    @property
    def improvements(self) -> list[TrendVerdict]:
        return [v for v in self.verdicts if v.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_doc(self) -> dict:
        return {
            "schema": TRENDS_SCHEMA,
            "ok": self.ok,
            "metrics": len(self.verdicts),
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def render_text(self) -> str:
        from repro.analysis.report import render_table

        rows = []
        for v in sorted(
            self.verdicts,
            key=lambda v: (v.status != "regression", v.series.key),
        ):
            flag = {
                "regression": "REGRESSION",
                "improvement": "improved",
                "insufficient": "(insufficient history)",
            }.get(v.status, "")
            pct = (
                "-" if v.status == "insufficient"
                else "inf" if math.isinf(v.worsening)
                else f"{v.worsening * 100.0:+.1f}%"
            )
            rows.append([
                v.series.benchmark,
                v.series.metric,
                len(v.series.values),
                v.median if v.window else float("nan"),
                v.latest if v.window else float("nan"),
                pct,
                flag,
            ])
        lines = [render_table(
            "Trend detection over the ledger window",
            ["benchmark", "metric", "n", "median", "latest",
             "worsening", ""],
            rows,
            float_format="{:.2f}",
        )]
        lines.append(
            "OK: no metric drifted outside its window"
            if self.ok
            else f"TREND ALERT: {len(self.regressions)} metric(s) "
                 "regressed vs their own history"
        )
        return "\n".join(lines)


def trend_report(
    series_map: dict[Key, MetricSeries],
    window: int = DEFAULT_WINDOW,
    min_points: int = DEFAULT_MIN_POINTS,
    min_worsening: float = DEFAULT_MIN_WORSENING,
    mad_mult: float = DEFAULT_MAD_MULT,
) -> TrendReport:
    """Run :func:`detect` over every series, in deterministic order."""
    return TrendReport(verdicts=[
        detect(
            series_map[key],
            window=window,
            min_points=min_points,
            min_worsening=min_worsening,
            mad_mult=mad_mult,
        )
        for key in sorted(series_map)
    ])


# ---------------------------------------------------------------------------
# The committed trajectory artifact (CI's longitudinal record)
# ---------------------------------------------------------------------------

def read_trajectory(path: str) -> dict:
    """The trajectory document at ``path`` (an empty one if the file
    does not exist yet); raises ``ValueError`` on schema mismatch."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return {"schema": TRAJECTORY_SCHEMA, "points": []}
    if not isinstance(doc, dict) or doc.get("schema") != TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{path} is not a {TRAJECTORY_SCHEMA} document"
        )
    if not isinstance(doc.get("points"), list):
        raise ValueError(f"{path} has no points list")
    return doc


def append_trajectory(
    path: str,
    results: ResultSet,
    provenance: Optional[dict] = None,
    ts: Optional[float] = None,
) -> dict:
    """Append one trajectory point (read-modify-write, atomic) and
    return the updated document."""
    from repro.runner.cache import atomic_write_json

    doc = read_trajectory(path)
    points = doc["points"]
    points.append({
        "seq": (points[-1]["seq"] + 1) if points else 0,
        "ts": float(ts) if ts is not None else time.time(),
        "provenance": provenance if provenance is not None else {},
        "results": [r.to_dict() for r in results],
    })
    atomic_write_json(path, doc)
    return doc


def series_from_trajectory(doc: dict) -> dict[Key, MetricSeries]:
    """Per-metric series from a trajectory document, same keying as
    :func:`series_from_records`."""
    out: dict[Key, MetricSeries] = {}
    for point in doc.get("points", ()):
        rows = []
        for raw in point.get("results", ()):
            from repro.bench.results import BenchResult

            try:
                rows.append(BenchResult.from_dict(raw))
            except (TypeError, ValueError):
                continue
        _collect_rows(out, rows, f"seq {point.get('seq', '?')}")
    return out
