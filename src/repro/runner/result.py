"""The one result type every run produces: :class:`RunResult`.

``run_traced`` used to hand back an ad-hoc capture object, the monitor
CLI another, and the bench suite raw floats.  The runner subsystem
funnels them all through :class:`RunResult`: the spec that produced
the run, the headline simulated elapsed nanoseconds, the named
measurements, a plain-data metrics snapshot, and any artifact paths.
The serializable core round-trips through :meth:`RunResult.to_dict` /
:meth:`RunResult.from_dict` — that is what the content-addressed cache
stores and what sweep workers ship back across the process boundary.
Live handles (the flight recorder and metrics registry of an
in-process run) ride along as non-serialized attributes for the trace
and monitor exporters.
"""

from __future__ import annotations

import math
import random
from contextlib import ExitStack
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import TYPE_CHECKING, Iterable, Optional

from repro.bench.results import BenchResult
from repro.runner.spec import ExperimentSpec, get_experiment
from repro.trace.metrics import MetricsRegistry, use_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.congestion.recorder import CongestionRecorder
    from repro.profile.profiler import EngineProfiler
    from repro.trace.flight import FlightRecorder

_BETTER = ("lower", "higher")


@dataclass(frozen=True)
class Measurement:
    """One named scalar a run measured (maps 1:1 onto a
    ``repro-bench/1`` result row when a sweep persists it)."""

    metric: str
    value: float
    units: str = "ns"
    better: str = "lower"

    def __post_init__(self) -> None:
        if not self.metric or not self.units:
            raise ValueError("metric and units must be non-empty")
        if self.better not in _BETTER:
            raise ValueError(f"better must be one of {_BETTER}")
        object.__setattr__(self, "value", float(self.value))
        if not math.isfinite(self.value):
            raise ValueError(f"{self.metric}: value must be finite")

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "value": self.value,
            "units": self.units,
            "better": self.better,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Measurement":
        missing = {"metric", "value"} - set(doc)
        if missing:
            raise ValueError(f"measurement missing fields: {sorted(missing)}")
        return cls(
            metric=doc["metric"],
            value=doc["value"],
            units=doc.get("units", "ns"),
            better=doc.get("better", "lower"),
        )


@dataclass
class Outcome:
    """What a registered experiment function returns: the pieces of a
    :class:`RunResult` the framework cannot derive itself."""

    description: str
    elapsed_ns: float
    measurements: tuple[Measurement, ...] = ()


@dataclass
class RunResult:
    """One completed run.  ``metrics`` is a plain-data registry
    snapshot (serializable); ``registry`` and ``flight`` are the live
    in-process objects and are dropped on serialization."""

    spec: ExperimentSpec
    elapsed_ns: float
    description: str
    measurements: tuple[Measurement, ...] = ()
    metrics: dict = field(default_factory=dict)
    artifacts: tuple[str, ...] = ()
    registry: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False
    )
    flight: "Optional[FlightRecorder]" = field(
        default=None, repr=False, compare=False
    )
    #: Wall-clock facts about how this run executed (wall_time_s,
    #: events_executed, events_per_second, peak_rss_bytes).  Host- and
    #: load-dependent, so deliberately OUTSIDE the serializable core:
    #: cached results and sweep checkpoints must stay byte-identical
    #: regardless of where and how fast a point computed.  Sweep
    #: workers ship it separately, via the telemetry stream.
    meta: dict = field(default_factory=dict, repr=False, compare=False)
    #: The live :class:`~repro.profile.profiler.EngineProfiler` when
    #: the run was profiled (``Captures(profile=True)``).
    profile: "Optional[EngineProfiler]" = field(
        default=None, repr=False, compare=False
    )
    #: The live :class:`~repro.congestion.recorder.CongestionRecorder`
    #: when the run carried the congestion X-ray
    #: (``Captures(congestion=True)``).
    congestion: "Optional[CongestionRecorder]" = field(
        default=None, repr=False, compare=False
    )

    @property
    def experiment(self) -> str:
        return self.spec.experiment

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.spec.shape

    def value(self, metric: str) -> float:
        for m in self.measurements:
            if m.metric == metric:
                return m.value
        raise KeyError(
            f"no measurement {metric!r} in "
            f"{[m.metric for m in self.measurements]}"
        )

    def to_bench_results(self) -> list[BenchResult]:
        """Measurements as ``repro-bench/1`` rows keyed by the spec."""
        config = self.spec.to_config()
        return [
            BenchResult(
                benchmark=self.spec.experiment,
                metric=m.metric,
                value=m.value,
                units=m.units,
                better=m.better,
                config=config,
            )
            for m in self.measurements
        ]

    # -- serialization (the cacheable core) --------------------------------
    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "elapsed_ns": float(self.elapsed_ns),
            "description": self.description,
            "measurements": [m.to_dict() for m in self.measurements],
            "metrics": self.metrics,
            "artifacts": list(self.artifacts),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RunResult":
        missing = {"spec", "elapsed_ns", "description"} - set(doc)
        if missing:
            raise ValueError(f"result document missing fields: {sorted(missing)}")
        return cls(
            spec=ExperimentSpec.from_dict(doc["spec"]),
            elapsed_ns=float(doc["elapsed_ns"]),
            description=doc["description"],
            measurements=tuple(
                Measurement.from_dict(m) for m in doc.get("measurements", ())
            ),
            metrics=doc.get("metrics", {}),
            artifacts=tuple(doc.get("artifacts", ())),
        )


@dataclass(frozen=True)
class Captures:
    """Which live observers to attach to a run — the one bundle that
    replaced ``run_experiment``'s grown-by-accretion boolean flags.

    * ``flight`` — attach a :class:`~repro.trace.flight.FlightRecorder`
      (per-packet causal spans); hands it back on ``result.flight``.
    * ``profile`` — attach the engine self-profiler to every simulator
      the experiment builds; hands it back on ``result.profile``.
    * ``congestion`` — attach the congestion X-ray recorder
      (per-link-direction queue timelines); back on
      ``result.congestion``.
    * ``registry`` — accumulate metrics into a caller-owned
      :class:`~repro.trace.metrics.MetricsRegistry` instead of a fresh
      run-owned one (the monitor's Prometheus path).

    Frozen so a single instance can parameterize a whole sweep.  All
    captures are passive: the serialized result core is byte-identical
    with every combination on or off.
    """

    flight: bool = False
    profile: bool = False
    congestion: bool = False
    registry: Optional[MetricsRegistry] = None

    def __bool__(self) -> bool:
        return (
            self.flight or self.profile or self.congestion
            or self.registry is not None
        )


_LEGACY_FLAGS_MSG = (
    "run_experiment(flight=/registry=/profile=/congestion=) is deprecated; "
    "pass captures=Captures(...) instead (see the runner migration note in "
    "README.md)"
)


def run_experiment(
    spec: ExperimentSpec,
    captures: Optional[Captures] = None,
    *,
    flight: Optional[bool] = None,
    registry: Optional[MetricsRegistry] = None,
    profile: Optional[bool] = None,
    congestion: Optional[bool] = None,
) -> RunResult:
    """Execute one spec through the registry and wrap the outcome.

    The run is hermetic and deterministic: the ambient RNG is seeded
    from the spec's content (so stochastic components, if any, repeat
    bit-for-bit in any process), and a fresh metrics registry is
    installed unless the caller supplies one to accumulate into.
    ``captures`` selects the live observers to attach (flight
    recorder, engine self-profiler, congestion X-ray, caller-owned
    metrics registry) — see :class:`Captures`.

    The keyword flags ``flight=``/``registry=``/``profile=``/
    ``congestion=`` are deprecated shims for the pre-``Captures`` API:
    they emit :class:`DeprecationWarning` and translate onto an
    equivalent ``Captures`` (passing both forms is an error).

    Every run also gets wall-clock execution facts on ``result.meta``
    (events/sec, peak RSS, wall seconds, the scheduler that ran it) —
    observed from outside the simulation, never serialized with it.
    """
    import warnings

    from repro.engine.simulator import add_new_sim_hook, remove_new_sim_hook

    if (flight, registry, profile, congestion) != (None, None, None, None):
        warnings.warn(_LEGACY_FLAGS_MSG, DeprecationWarning, stacklevel=2)
        if captures is not None:
            raise TypeError(
                "pass either captures=Captures(...) or the legacy "
                "flight=/registry=/profile=/congestion= flags, not both"
            )
        captures = Captures(
            flight=bool(flight),
            profile=bool(profile),
            congestion=bool(congestion),
            registry=registry,
        )
    caps = captures if captures is not None else Captures()
    flight = caps.flight
    profile = caps.profile
    congestion = caps.congestion
    registry = caps.registry

    defn = get_experiment(spec)
    own_registry = registry is None
    if own_registry:
        registry = MetricsRegistry()
    random.seed(spec.derived_seed())
    recorder = None
    profiler = None
    congestion_recorder = None
    sims: list = []
    hook = add_new_sim_hook(sims.append)
    try:
        with ExitStack() as stack:
            stack.enter_context(use_registry(registry))
            if flight:
                from repro.trace.flight import FlightRecorder, use_flight

                recorder = FlightRecorder(metrics=registry)
                stack.enter_context(use_flight(recorder))
            if congestion:
                from repro.congestion.recorder import (
                    CongestionRecorder,
                    use_congestion,
                )

                # congestion.* metrics flow only into a caller-supplied
                # registry (the monitor's Prometheus path); the
                # run-owned registry serializes into the cacheable
                # snapshot, which must stay byte-identical with the
                # X-ray on or off.
                congestion_recorder = CongestionRecorder(
                    metrics=None if own_registry else registry
                )
                stack.enter_context(use_congestion(congestion_recorder))
            if profile:
                from repro.profile.profiler import use_profiling

                profiler = stack.enter_context(use_profiling())
            wall_t0 = perf_counter_ns()
            outcome = defn.func(spec)
            wall_ns = perf_counter_ns() - wall_t0
    finally:
        remove_new_sim_hook(hook)
    if not isinstance(outcome, Outcome):
        raise TypeError(
            f"experiment {spec.experiment!r} returned {type(outcome)}, "
            "expected Outcome"
        )
    from repro.engine.scheduler import resolve_scheduler
    from repro.profile.telemetry import peak_rss_bytes

    events_executed = sum(sim.events_executed for sim in sims)
    wall_s = wall_ns / 1e9
    meta = {
        "wall_time_s": wall_s,
        "events_executed": events_executed,
        "events_per_second": events_executed / wall_s if wall_s > 0 else 0.0,
        "peak_rss_bytes": peak_rss_bytes(),
        # Engine provenance: which scheduler produced this run.  The
        # schedulers are proven byte-equivalent, so this rides in meta
        # (outside the cacheable core and the cache key) — recorded so
        # ledger entries and sweep telemetry can attribute wall-clock
        # deltas to the engine configuration that produced them.
        "scheduler": (
            sims[0].scheduler_name if sims else resolve_scheduler()
        ),
    }
    return RunResult(
        spec=spec,
        elapsed_ns=float(outcome.elapsed_ns),
        description=outcome.description,
        measurements=tuple(outcome.measurements),
        metrics=registry.snapshot() if own_registry else {},
        registry=registry,
        flight=recorder,
        meta=meta,
        profile=profiler,
        congestion=congestion_recorder,
    )


def results_to_set(results: Iterable[RunResult]):
    """Collect many runs' measurements into one
    :class:`~repro.bench.results.ResultSet`."""
    from repro.bench.results import ResultSet

    out = ResultSet()
    for result in results:
        for row in result.to_bench_results():
            out.add(row)
    return out
