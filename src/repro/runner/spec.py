"""The one way to name and parameterize a run: :class:`ExperimentSpec`.

Before the runner subsystem existed, every entry point kept its own
string-to-function table (``repro.trace.capture._RUNNERS``, the
monitor CLI's copy with ``mdstep`` bolted on, the ``__main__`` elif
chain).  This module replaces them with a single registry:

* :class:`ExperimentSpec` — a frozen, hashable description of one run
  (experiment name, machine shape, rounds, payload, seed, optional hop
  count, plus experiment-specific ``extras``).  Its canonical JSON form
  is the identity used by the result cache and the sweep checkpoints.
* :func:`register_experiment` — decorator that publishes a runner
  function ``(spec) -> Outcome`` under a name.  ``repro.trace.capture``,
  ``repro.monitor.capture``, the bench quick suite, and ``python -m
  repro sweep`` all dispatch through :func:`get_experiment`.

The registry itself imports nothing heavy; experiment implementations
live in :mod:`repro.runner.experiments` and lazy-import the analysis
stack inside their bodies, so importing this module stays cheap.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace as _dc_replace
from typing import Any, Callable, Optional, Union

from repro.bench.results import canonical_json

#: Extra values must stay JSON-scalar so the spec's canonical form is
#: stable across processes and Python versions.
_SCALAR = (str, int, float, bool, type(None))

Shape = tuple[int, int, int]


def _coerce_shape(shape: Any) -> Shape:
    try:
        x, y, z = (int(v) for v in shape)
    except (TypeError, ValueError):
        raise ValueError(f"shape must be three ints, got {shape!r}") from None
    if min(x, y, z) < 1:
        raise ValueError(f"shape dimensions must be >= 1, got {(x, y, z)}")
    return (x, y, z)


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen description of one simulation run.

    Two specs with the same field values are equal, hash equal, and
    serialize to byte-identical canonical JSON — which is exactly what
    the content-addressed result cache keys on.
    """

    experiment: str
    shape: Shape = (4, 4, 4)
    rounds: int = 2
    payload: int = 0
    seed: int = 0
    #: Network hops for point experiments (``None`` means "the
    #: experiment's own default sweep", e.g. Fig. 5 walks every hop).
    hops: Optional[int] = None
    #: Experiment-specific parameters as a sorted tuple of
    #: ``(name, scalar)`` pairs; use :meth:`with_extras` to build.
    extras: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.experiment or not isinstance(self.experiment, str):
            raise ValueError("experiment name must be a non-empty string")
        object.__setattr__(self, "shape", _coerce_shape(self.shape))
        if int(self.rounds) < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        object.__setattr__(self, "rounds", int(self.rounds))
        if int(self.payload) < 0:
            raise ValueError(f"payload must be >= 0, got {self.payload}")
        object.__setattr__(self, "payload", int(self.payload))
        object.__setattr__(self, "seed", int(self.seed))
        if self.hops is not None:
            if int(self.hops) < 0:
                raise ValueError(f"hops must be >= 0, got {self.hops}")
            object.__setattr__(self, "hops", int(self.hops))
        norm = []
        for pair in self.extras:
            key, value = pair
            if not isinstance(key, str) or not key:
                raise ValueError(f"extra keys must be non-empty strings: {pair!r}")
            if not isinstance(value, _SCALAR):
                raise ValueError(
                    f"extra {key!r} must be a JSON scalar, got {type(value)}"
                )
            norm.append((key, value))
        norm.sort()
        if len({k for k, _ in norm}) != len(norm):
            raise ValueError(f"duplicate extra keys in {self.extras!r}")
        object.__setattr__(self, "extras", tuple(norm))

    # -- convenience -------------------------------------------------------
    def extra(self, key: str, default: Any = None) -> Any:
        for k, v in self.extras:
            if k == key:
                return v
        return default

    def with_extras(self, **extras: Any) -> "ExperimentSpec":
        """A copy with ``extras`` merged in (sorted, duplicate-free)."""
        merged = {k: v for k, v in self.extras}
        merged.update(extras)
        return _dc_replace(self, extras=tuple(sorted(merged.items())))

    def replace(self, **changes: Any) -> "ExperimentSpec":
        return _dc_replace(self, **changes)

    @property
    def nodes(self) -> int:
        return self.shape[0] * self.shape[1] * self.shape[2]

    def label(self) -> str:
        """Short human identity: ``latency shape=2x2x2 hops=1``."""
        parts = [self.experiment, "shape=%dx%dx%d" % self.shape]
        if self.hops is not None:
            parts.append(f"hops={self.hops}")
        if self.payload:
            parts.append(f"payload={self.payload}")
        if self.rounds != 2:
            parts.append(f"rounds={self.rounds}")
        if self.seed:
            parts.append(f"seed={self.seed}")
        parts.extend(f"{k}={v}" for k, v in self.extras)
        return " ".join(parts)

    # -- canonical identity ------------------------------------------------
    def to_dict(self) -> dict:
        doc: dict[str, Any] = {
            "experiment": self.experiment,
            "shape": list(self.shape),
            "rounds": self.rounds,
            "payload": self.payload,
            "seed": self.seed,
        }
        if self.hops is not None:
            doc["hops"] = self.hops
        if self.extras:
            doc["extras"] = {k: v for k, v in self.extras}
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ExperimentSpec":
        if not isinstance(doc, dict) or "experiment" not in doc:
            raise ValueError(f"spec document must name an experiment: {doc!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        extras = doc.get("extras", {})
        if not isinstance(extras, dict):
            raise ValueError(f"extras must be an object, got {extras!r}")
        return cls(
            experiment=doc["experiment"],
            shape=tuple(doc.get("shape", (4, 4, 4))),
            rounds=doc.get("rounds", 2),
            payload=doc.get("payload", 0),
            seed=doc.get("seed", 0),
            hops=doc.get("hops"),
            extras=tuple(sorted(extras.items())),
        )

    def canonical(self) -> str:
        """The canonical JSON identity (sorted keys, no whitespace)."""
        return canonical_json(self.to_dict())

    @property
    def spec_hash(self) -> str:
        """12-hex-digit digest of the canonical form."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:12]

    def derived_seed(self) -> int:
        """Deterministic per-run RNG seed: stable across processes,
        distinct for distinct specs, shifted by the ``seed`` field."""
        digest = hashlib.sha256(
            b"repro-run-seed\0" + self.canonical().encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def to_config(self) -> dict:
        """Benchmark-result config dict (``repro-bench/1`` ``config``)
        for sweep outputs: the spec minus the experiment name, which
        becomes the ``benchmark`` field."""
        doc = self.to_dict()
        doc.pop("experiment")
        return doc


# ---------------------------------------------------------------------------
# Experiment registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentDef:
    """One registered experiment: a runner plus dispatch metadata."""

    name: str
    func: Callable[[ExperimentSpec], Any]
    help: str = ""
    #: Eligible for ``python -m repro trace`` (flight recorder on).
    traceable: bool = True
    #: Eligible for ``python -m repro monitor`` / ``report``.
    monitorable: bool = True


_REGISTRY: dict[str, ExperimentDef] = {}
_BOOTSTRAPPED = False


def register_experiment(
    name: str,
    *,
    help: str = "",
    traceable: bool = True,
    monitorable: bool = True,
) -> Callable[[Callable], Callable]:
    """Publish a runner function ``(ExperimentSpec) -> Outcome`` as the
    implementation of ``name``.  Registration is import-time and
    idempotent per name: re-registering an existing name is an error
    (it would silently change what every entry point runs)."""

    def deco(func: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} is already registered")
        _REGISTRY[name] = ExperimentDef(
            name=name,
            func=func,
            help=help,
            traceable=traceable,
            monitorable=monitorable,
        )
        return func

    return deco


def ensure_registered() -> None:
    """Import the built-in experiment implementations exactly once."""
    global _BOOTSTRAPPED
    if not _BOOTSTRAPPED:
        _BOOTSTRAPPED = True
        import repro.runner.experiments  # noqa: F401  (registers on import)


def experiment_names(
    traceable: Optional[bool] = None,
    monitorable: Optional[bool] = None,
) -> tuple[str, ...]:
    """Registered names in registration order, optionally filtered."""
    ensure_registered()
    names = []
    for defn in _REGISTRY.values():
        if traceable is not None and defn.traceable != traceable:
            continue
        if monitorable is not None and defn.monitorable != monitorable:
            continue
        names.append(defn.name)
    return tuple(names)


def get_experiment(name: Union[str, ExperimentSpec]) -> ExperimentDef:
    """Resolve a name (or a spec's name) to its registered definition."""
    ensure_registered()
    if isinstance(name, ExperimentSpec):
        name = name.experiment
    defn = _REGISTRY.get(name)
    if defn is None:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {experiment_names()}"
        )
    return defn
