"""Parallel sweep orchestration over grids of independent runs.

The paper's figures are all sweeps — latency vs hops (Fig. 5),
message granularity (Fig. 7), all-reduce across torus shapes
(Table 2) — and every grid point is an independent discrete-event
simulation.  :func:`run_sweep` executes such a grid:

* **Parallel but reproducible** — points run across a
  ``ProcessPoolExecutor`` (``jobs`` workers), yet results are
  collected *by grid index*, so the persisted output is bit-identical
  to a serial run: parallelism changes wall-clock, never bytes.
* **Deterministic seeds** — every run derives its RNG seed from the
  spec's content (:meth:`ExperimentSpec.derived_seed`), so a point
  computes the same result in any process, any order, any worker.
* **Content-addressed caching** — an optional
  :class:`~repro.runner.cache.ResultCache` is consulted before
  dispatch; hits skip the simulation entirely and corrupt entries are
  detected (hash validation) and recomputed, never served.
* **Resumable checkpointing** — with an output directory, every
  completed point is written atomically under ``points/`` next to a
  sweep manifest; ``resume=True`` picks up where a previous partial
  sweep stopped.  A truncated or corrupt checkpoint is warned about
  (``repro.sweep`` logger, ``sweep.checkpoint_corrupt`` counter) and
  recomputed — it never crashes the resume.
* **Hardened execution** — optional per-point wall-clock timeouts
  (``timeout_s``) that kill hung workers, and bounded retry with
  exponential backoff (``retries``/``retry_backoff_s``), via one
  killable subprocess per point.
* **Progress and failure reporting** — per-point counters land in the
  metrics registry (``sweep.*``) and the final judgement is an
  ordinary :class:`~repro.monitor.watchdog.HealthVerdict`, so sweep
  health renders and gates exactly like the monitor subsystem's.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import math
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

from repro.bench.results import ResultSet, canonical_json
from repro.monitor.watchdog import LEVELS, CheckResult, HealthVerdict
from repro.runner.cache import ResultCache, atomic_write_json
from repro.runner.result import Captures, RunResult, run_experiment
from repro.runner.spec import ExperimentSpec, get_experiment
from repro.trace.metrics import MetricsRegistry, active_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.profile.telemetry import SweepTelemetry

#: Manifest schema for sweep checkpoints; bump on layout changes.
SWEEP_SCHEMA = "repro-sweep/1"

_LOG = logging.getLogger("repro.sweep")

#: Spec fields a grid axis may target directly; anything else becomes
#: an experiment-specific extra.
SPEC_AXES = ("shape", "rounds", "payload", "seed", "hops")


# ---------------------------------------------------------------------------
# Grid parsing and expansion
# ---------------------------------------------------------------------------

def _parse_shape_value(text: str) -> tuple[int, int, int]:
    try:
        x, y, z = (int(p) for p in text.lower().split("x"))
        return (x, y, z)
    except ValueError:
        raise ValueError(f"shape must look like 8x8x8, got {text!r}") from None


def _parse_axis_value(key: str, text: str) -> Any:
    text = text.strip()
    if key == "shape":
        return _parse_shape_value(text)
    if key in ("rounds", "payload", "seed", "hops"):
        try:
            return int(text)
        except ValueError:
            raise ValueError(f"grid axis {key!r} needs integers, got {text!r}")
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            pass
    return text


def parse_grid(items: Iterable[str]) -> dict[str, list]:
    """Parse repeated ``--grid key=v1,v2,...`` arguments into ordered
    axes.  Axis order is preserved: it defines expansion order."""
    axes: dict[str, list] = {}
    for item in items:
        key, sep, values = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(
                f"grid axis must look like key=v1,v2,... got {item!r}"
            )
        if key in axes:
            raise ValueError(f"duplicate grid axis {key!r}")
        parsed = [
            _parse_axis_value(key, v) for v in values.split(",") if v.strip()
        ]
        if not parsed:
            raise ValueError(f"grid axis {key!r} has no values")
        axes[key] = parsed
    return axes


def expand_grid(
    experiment: str,
    axes: dict[str, list],
    base: Optional[dict[str, Any]] = None,
) -> list[ExperimentSpec]:
    """The cartesian product of ``axes`` as specs, in deterministic
    order (axes in given order, last axis fastest)."""
    get_experiment(experiment)  # fail fast on unknown names
    base = dict(base or {})
    keys = list(axes)
    specs = []
    for combo in itertools.product(*(axes[k] for k in keys)):
        params = dict(base)
        params.update(zip(keys, combo))
        spec_kwargs = {k: v for k, v in params.items() if k in SPEC_AXES}
        extras = {k: v for k, v in params.items() if k not in SPEC_AXES}
        spec = ExperimentSpec(experiment=experiment, **spec_kwargs)
        if extras:
            spec = spec.with_extras(**extras)
        specs.append(spec)
    return specs


# ---------------------------------------------------------------------------
# Sweep execution
# ---------------------------------------------------------------------------

@dataclass
class SweepPoint:
    """One grid point's fate."""

    index: int
    spec: ExperimentSpec
    result: Optional[RunResult] = None
    cached: bool = False
    error: Optional[str] = None
    #: Execution attempts this point consumed (0 for cache/resume hits,
    #: 1 for a clean first run, more when the guarded scheduler
    #: retried).
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.result is not None and self.error is None

    @property
    def status(self) -> str:
        if self.error is not None:
            return "failed"
        return "cached" if self.cached else "computed"


@dataclass
class SweepReport:
    """Everything one sweep produced, in grid order."""

    points: list[SweepPoint]
    jobs: int
    cache: Optional[ResultCache] = None
    out_dir: Optional[str] = None
    resumed: int = 0
    #: Parent-observed wall-clock seconds the whole sweep took.
    wall_s: float = 0.0
    #: The observatory ledger record this sweep appended (``None`` when
    #: no ledger was attached or the append failed).
    ledger_record: Optional[object] = None

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.points)

    @property
    def failures(self) -> list[SweepPoint]:
        return [p for p in self.points if p.error is not None]

    @property
    def cache_hits(self) -> int:
        return sum(1 for p in self.points if p.cached)

    @property
    def computed(self) -> int:
        return sum(1 for p in self.points if p.ok and not p.cached)

    @property
    def retried(self) -> int:
        """Extra execution attempts beyond each point's first."""
        return sum(max(0, p.attempts - 1) for p in self.points)

    @property
    def cache_hit_rate(self) -> float:
        """Hits over consultations (resumed points never consulted the
        cache); 0.0 when no cache was attached."""
        consulted = len(self.points) - self.resumed
        hits = self.cache_hits - self.resumed
        return hits / consulted if consulted > 0 else 0.0

    def results(self) -> list[RunResult]:
        return [p.result for p in self.points if p.ok]

    def result_set(self) -> ResultSet:
        """All measurements as one ``repro-bench/1`` document.  Built
        from points in grid order; since specs are distinct and the
        set orders canonically, the bytes are independent of worker
        scheduling — a ``--jobs 8`` sweep serializes identically to
        ``--jobs 1``."""
        out = ResultSet()
        for p in self.points:
            if p.ok:
                for row in p.result.to_bench_results():
                    out.add(row)
        return out

    def verdict(self) -> HealthVerdict:
        """The sweep's health as the monitor subsystem's verdict type
        (renders and gates like any other health check)."""
        total = len(self.points)
        done = sum(1 for p in self.points if p.ok)
        checks = [
            CheckResult(
                name="sweep.completed",
                status="ok" if done == total else "error",
                detail=f"{done}/{total} grid points completed",
            ),
            CheckResult(
                name="sweep.failures",
                status="ok" if not self.failures else "error",
                detail=(
                    "no failed points"
                    if not self.failures
                    else "; ".join(
                        f"#{p.index} {p.spec.label()}: {p.error}"
                        for p in self.failures[:4]
                    )
                    + ("" if len(self.failures) <= 4 else " ...")
                ),
            ),
        ]
        corrupt = self.cache.stats.corrupt if self.cache else 0
        checks.append(
            CheckResult(
                name="sweep.cache_integrity",
                status="ok" if corrupt == 0 else "warning",
                detail=(
                    "all cache entries verified"
                    if corrupt == 0
                    else f"{corrupt} corrupt cache entr"
                    + ("y" if corrupt == 1 else "ies")
                    + " detected and recomputed"
                ),
            )
        )
        return HealthVerdict(
            checks=checks,
            sim_time_ns=sum(p.result.elapsed_ns for p in self.points if p.ok),
            packets_injected=0,
            packets_delivered=0,
            packets_in_flight=0,
            samples_recorded=done,
            dropped_samples=0,
            dropped_events=0,
            dropped_diagnostics=0,
            diagnostic_counts={level: 0 for level in LEVELS},
        )

    def summary_doc(self) -> dict:
        return {
            "schema": "repro-sweep-summary/1",
            "points": len(self.points),
            "completed": sum(1 for p in self.points if p.ok),
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "resumed": self.resumed,
            "retried": self.retried,
            "cache_hit_rate": self.cache_hit_rate,
            "wall_s": self.wall_s,
            "failures": [
                {"index": p.index, "spec": p.spec.to_dict(), "error": p.error}
                for p in self.failures
            ],
            "jobs": self.jobs,
            "cache": self.cache.stats.as_dict() if self.cache else None,
        }


def sweep_key(specs: Sequence[ExperimentSpec]) -> str:
    """12-hex identity of a sweep: the ordered list of its specs."""
    doc = {"schema": SWEEP_SCHEMA, "specs": [s.to_dict() for s in specs]}
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()[:12]


def _execute_spec(doc: dict) -> dict:
    """Worker entry point: runs in a fresh process, returns an
    envelope of plain data — the RunResult's serializable core under
    ``payload`` (byte-stable, what checkpoints and caches persist) and
    the wall-clock execution facts under ``meta`` (events/sec, peak
    RSS, worker pid; never persisted with the payload)."""
    spec = ExperimentSpec.from_dict(doc)
    result = run_experiment(spec)
    meta = dict(result.meta)
    meta["pid"] = os.getpid()
    return {"payload": result.to_dict(), "meta": meta}


def _settle_payload(point: SweepPoint, envelope: dict) -> None:
    """Decode a worker envelope into ``point`` (meta rides along on
    the non-serialized attribute)."""
    try:
        point.result = RunResult.from_dict(envelope["payload"])
        point.result.meta = dict(envelope.get("meta", {}))
        point.error = None
    except Exception as exc:  # noqa: BLE001
        point.error = f"{type(exc).__name__}: {exc}"


def _telemetry_pool_entry(doc: dict, index: int, queue) -> dict:
    """Pool-worker entry with a live heartbeat: announce ``started``
    on the telemetry queue before computing (queue failures never fail
    the point — telemetry is best-effort by design)."""
    from repro.profile.telemetry import make_event

    spec = ExperimentSpec.from_dict(doc)
    try:
        queue.put(make_event("started", index, spec=spec.label()))
    except Exception:  # noqa: BLE001 — heartbeats must not kill work
        pass
    return _execute_spec(doc)


def _point_entry(doc: dict, conn, index: int = -1) -> None:
    """Guarded-worker entry: run one spec, ship the outcome over the
    pipe.  Emits a ``("event", started)`` heartbeat first, then exactly
    one ``("ok", envelope)`` or ``("error", message)``.  Catches
    ``BaseException`` so even a ``SystemExit`` inside an experiment
    reports instead of silently dying."""
    try:
        try:
            from repro.profile.telemetry import make_event

            spec_label = ExperimentSpec.from_dict(doc).label()
            conn.send(("event", make_event("started", index, spec=spec_label)))
        except Exception:  # noqa: BLE001 — heartbeats must not kill work
            pass
        envelope = _execute_spec(doc)
        conn.send(("ok", envelope))
    except BaseException as exc:  # noqa: BLE001 — reported over the pipe
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _run_guarded(
    pending: "list[SweepPoint]",
    *,
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
    retry_backoff_s: float,
    settle: Callable[["SweepPoint"], None],
    on_retry: Callable[["SweepPoint", int], None],
    on_event: Optional[Callable[[dict], None]] = None,
) -> None:
    """Run ``pending`` with one killable subprocess per point.

    A ``ProcessPoolExecutor`` cannot abandon a hung worker (its future
    has no kill switch), so hardened sweeps spawn a dedicated
    ``multiprocessing.Process`` per point and poll a result pipe
    against a wall-clock deadline: a point that exceeds ``timeout_s``
    is terminated and marked failed, and a failed point re-queues up to
    ``retries`` times with exponential backoff before it settles.
    """
    import multiprocessing as mp
    import time

    jobs = max(1, jobs)
    # (point, attempt, earliest wall-clock start)
    waiting: list[tuple[SweepPoint, int, float]] = [
        (p, 0, 0.0) for p in pending
    ]
    running: list[list] = []  # [point, attempt, process, conn, deadline]
    while waiting or running:
        now = time.monotonic()
        while len(running) < jobs:
            idx = next(
                (i for i, (_, _, t0) in enumerate(waiting) if t0 <= now),
                None,
            )
            if idx is None:
                break
            point, attempt, _ = waiting.pop(idx)
            parent, child = mp.Pipe(duplex=False)
            proc = mp.Process(
                target=_point_entry,
                args=(point.spec.to_dict(), child, point.index),
                daemon=True,
            )
            proc.start()
            child.close()  # parent keeps only the read end
            deadline = math.inf if timeout_s is None else now + timeout_s
            running.append([point, attempt, proc, parent, deadline])

        progressed = False
        still: list[list] = []
        for entry in running:
            point, attempt, proc, conn, deadline = entry
            outcome = None
            # Drain heartbeat events ahead of (and up to) the outcome.
            while conn.poll(0):
                try:
                    msg = conn.recv()
                except EOFError:
                    outcome = ("error", "worker died without reporting")
                    break
                if msg[0] == "event":
                    if on_event is not None:
                        on_event(msg[1])
                    continue
                outcome = msg
                break
            if outcome is None and not proc.is_alive() and not conn.poll(0):
                outcome = (
                    "error",
                    f"worker exited with code {proc.exitcode} "
                    "before reporting",
                )
            if outcome is None and time.monotonic() >= deadline:
                proc.terminate()
                proc.join(1.0)
                if proc.is_alive():  # pragma: no cover — SIGTERM ignored
                    proc.kill()
                outcome = (
                    "error",
                    f"killed: exceeded per-point timeout of {timeout_s:g}s",
                )
                if on_event is not None:
                    from repro.profile.telemetry import make_event

                    on_event(
                        make_event(
                            "timed_out", point.index, pid=proc.pid,
                            timeout_s=timeout_s, attempt=attempt + 1,
                        )
                    )
            if outcome is None:
                still.append(entry)
                continue
            progressed = True
            proc.join()
            conn.close()
            point.attempts = attempt + 1
            kind, payload = outcome
            if kind == "ok":
                _settle_payload(point, payload)
            else:
                point.error = payload
            if point.error is not None and attempt < retries:
                backoff = retry_backoff_s * (2.0 ** attempt)
                _LOG.warning(
                    "sweep point #%d failed (%s); retry %d/%d in %.2fs",
                    point.index, point.error, attempt + 1, retries, backoff,
                )
                on_retry(point, attempt + 1)
                waiting.append(
                    (point, attempt + 1, time.monotonic() + backoff)
                )
            else:
                settle(point)
        running = still
        if not progressed:
            time.sleep(0.02)


def _point_path(out_dir: str, index: int) -> str:
    return os.path.join(out_dir, "points", f"{index:04d}.json")


def _write_point(out_dir: str, point: SweepPoint) -> None:
    payload = point.result.to_dict()
    atomic_write_json(
        _point_path(out_dir, point.index),
        {
            "schema": SWEEP_SCHEMA,
            "index": point.index,
            "spec_hash": point.spec.spec_hash,
            "payload": payload,
            "payload_sha256": hashlib.sha256(
                canonical_json(payload).encode("utf-8")
            ).hexdigest(),
        },
    )


def _load_point(
    out_dir: str, index: int, spec: ExperimentSpec
) -> tuple[Optional[RunResult], Optional[str]]:
    """A previously checkpointed point as ``(result, problem)``.

    ``(result, None)`` is a verified checkpoint; ``(None, None)`` means
    the point was simply never checkpointed; ``(None, reason)`` means a
    file *was* there but could not be trusted — truncated, corrupt, or
    for a different spec.  The caller warns and recomputes; a damaged
    checkpoint directory must never crash a resume (same trust model as
    the cache: verify, never assume)."""
    path = _point_path(out_dir, index)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return None, None
    except OSError as exc:
        return None, f"unreadable checkpoint: {exc}"
    except ValueError:
        return None, "corrupt checkpoint (not valid JSON — truncated write?)"
    try:
        if not isinstance(doc, dict):
            return None, "corrupt checkpoint (not a JSON object)"
        if doc.get("schema") != SWEEP_SCHEMA or doc.get("index") != index:
            return None, "corrupt checkpoint (schema/index mismatch)"
        if doc.get("spec_hash") != spec.spec_hash:
            return None, "checkpoint is for a different spec"
        payload = doc["payload"]
        digest = hashlib.sha256(
            canonical_json(payload).encode("utf-8")
        ).hexdigest()
        if digest != doc.get("payload_sha256"):
            return None, "corrupt checkpoint (payload hash mismatch)"
        result = RunResult.from_dict(payload)
        if result.spec != spec:
            return None, "checkpoint payload decodes to a different spec"
        return result, None
    except (KeyError, TypeError, ValueError) as exc:
        return None, f"corrupt checkpoint ({type(exc).__name__}: {exc})"


def _write_manifest(out_dir: str, specs: Sequence[ExperimentSpec]) -> None:
    atomic_write_json(
        os.path.join(out_dir, "manifest.json"),
        {
            "schema": SWEEP_SCHEMA,
            "sweep_key": sweep_key(specs),
            "specs": [s.to_dict() for s in specs],
        },
    )


def _check_resumable(out_dir: str, specs: Sequence[ExperimentSpec]) -> None:
    path = os.path.join(out_dir, "manifest.json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return  # nothing to resume from; fresh checkpoint dir
    except (OSError, ValueError):
        raise ValueError(f"unreadable sweep manifest {path}") from None
    if doc.get("sweep_key") != sweep_key(specs):
        raise ValueError(
            f"{out_dir} checkpoints a different sweep "
            f"(manifest key {doc.get('sweep_key')!r}, "
            f"this sweep {sweep_key(specs)!r}); pass a fresh --resume dir"
        )


def run_sweep(
    specs: Sequence[ExperimentSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    out_dir: Optional[str] = None,
    resume: bool = False,
    registry: Optional[MetricsRegistry] = None,
    run_registry: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[SweepPoint], None]] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.25,
    telemetry: "Optional[SweepTelemetry]" = None,
    ledger=None,
) -> SweepReport:
    """Execute every spec and collect results in grid order.

    ``jobs`` > 1 fans uncached points out over a process pool; 1 runs
    them serially in-process (same bytes either way).  ``cache`` makes
    unchanged points hits; ``out_dir`` checkpoints each completed
    point and, with ``resume=True``, skips points a previous partial
    sweep already finished.  ``registry`` (default: the ambient one)
    receives ``sweep.*`` progress counters; ``run_registry`` lets a
    serial caller accumulate per-run metrics into a shared registry
    (the CLI's ``--metrics``).  ``progress`` is invoked once per point
    as it settles, in settlement order.

    ``timeout_s`` and/or ``retries`` switch computation to the guarded
    scheduler (one killable subprocess per point): a point that runs
    longer than ``timeout_s`` wall-clock seconds is terminated and
    marked failed, and any failed point is retried up to ``retries``
    times with exponential backoff starting at ``retry_backoff_s``.
    Both are off by default — the common all-deterministic sweep pays
    no subprocess overhead.

    ``telemetry`` attaches a live
    :class:`~repro.profile.telemetry.SweepTelemetry` aggregator:
    workers stream structured heartbeat events (started / finished /
    retried / timed-out, cache hits, peak RSS, events/sec) back to the
    parent as they happen, feeding ``sweep.*`` gauges, the
    periodically rewritten ``status.json``, and the CLI progress line.
    Telemetry is pure parent-side wall-clock bookkeeping: persisted
    sweep bytes are identical with it on or off.

    ``ledger`` attaches an observatory
    :class:`~repro.observatory.ledger.Ledger`: the finished sweep's
    measurements and execution summary are appended as one record.
    The append is best-effort (a broken ledger warns, never fails the
    sweep) and strictly additive — results, checkpoints, and
    ``results.json`` bytes are identical with it on or off.
    """
    specs = list(specs)
    if len(set(specs)) != len(specs):
        raise ValueError("sweep contains duplicate specs")
    for spec in specs:
        get_experiment(spec)  # fail fast before any work
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
    registry = registry if registry is not None else active_registry()

    def count(name: str, amount: float = 1.0) -> None:
        if registry is not None:
            registry.counter(
                f"sweep.{name}", help="sweep progress/failure reporting"
            ).inc(amount)

    def emit(kind: str, index: int, **fields) -> None:
        if telemetry is not None:
            from repro.profile.telemetry import make_event

            telemetry.record(make_event(kind, index, **fields))

    t_sweep0 = time.monotonic()
    count("points", len(specs))
    points = [SweepPoint(index=i, spec=s) for i, s in enumerate(specs)]

    if out_dir:
        if resume:
            _check_resumable(out_dir, specs)
        _write_manifest(out_dir, specs)

    resumed = 0
    pending: list[SweepPoint] = []
    for point in points:
        if out_dir and resume:
            prior, problem = _load_point(out_dir, point.index, point.spec)
            if problem is not None:
                _LOG.warning(
                    "sweep point #%d: %s at %s; recomputing",
                    point.index, problem,
                    _point_path(out_dir, point.index),
                )
                count("checkpoint_corrupt")
            if prior is not None:
                point.result = prior
                point.cached = True
                resumed += 1
                count("resumed")
                emit("resumed", point.index, spec=point.spec.label())
                if progress:
                    progress(point)
                continue
        if cache is not None:
            hit = cache.get(point.spec)
            if hit is not None:
                point.result = hit
                point.cached = True
                count("cache_hits")
                emit("cache_hit", point.index, spec=point.spec.label())
                if out_dir:
                    _write_point(out_dir, point)
                if progress:
                    progress(point)
                continue
            count("cache_misses")
            emit("cache_miss", point.index, spec=point.spec.label())
        pending.append(point)

    def settle(point: SweepPoint) -> None:
        if point.ok:
            count("computed")
            meta = getattr(point.result, "meta", None) or {}
            emit(
                "finished",
                point.index,
                pid=meta.get("pid", os.getpid()),
                spec=point.spec.label(),
                wall_s=meta.get("wall_time_s", 0.0),
                events_executed=meta.get("events_executed", 0),
                events_per_second=meta.get("events_per_second", 0.0),
                peak_rss_bytes=meta.get("peak_rss_bytes", 0),
            )
            if cache is not None:
                cache.put(point.result)
            if out_dir:
                _write_point(out_dir, point)
        else:
            count("failures")
            emit(
                "failed", point.index,
                spec=point.spec.label(), error=point.error,
            )
        if progress:
            progress(point)

    if timeout_s is not None or retries > 0:
        def on_retry(point: SweepPoint, attempt: int) -> None:
            count("retries")
            emit(
                "retried", point.index,
                spec=point.spec.label(), attempt=attempt,
            )

        _run_guarded(
            pending,
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            retry_backoff_s=retry_backoff_s,
            settle=settle,
            on_retry=on_retry,
            on_event=telemetry.record if telemetry is not None else None,
        )
    elif jobs == 1 or len(pending) <= 1:
        for point in pending:
            emit("started", point.index, spec=point.spec.label())
            point.attempts = 1
            try:
                point.result = run_experiment(
                    point.spec, Captures(registry=run_registry)
                )
            except Exception as exc:  # noqa: BLE001 — reported, not hidden
                point.error = f"{type(exc).__name__}: {exc}"
            settle(point)
    else:
        from concurrent.futures import (
            FIRST_COMPLETED,
            ProcessPoolExecutor,
            wait,
        )
        from queue import Empty

        heartbeats = None
        manager = None
        if telemetry is not None:
            # A plain mp.Queue cannot cross a ProcessPoolExecutor task
            # boundary (it only shares via inheritance); a manager
            # queue proxy pickles fine.
            import multiprocessing as mp

            manager = mp.Manager()
            heartbeats = manager.Queue()

        def drain_heartbeats() -> None:
            if heartbeats is None:
                return
            while True:
                try:
                    event = heartbeats.get_nowait()
                except (Empty, OSError, EOFError):
                    break
                telemetry.record(event)

        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))
            ) as pool:
                if heartbeats is None:
                    futures = {
                        pool.submit(_execute_spec, point.spec.to_dict()): point
                        for point in pending
                    }
                else:
                    futures = {
                        pool.submit(
                            _telemetry_pool_entry,
                            point.spec.to_dict(),
                            point.index,
                            heartbeats,
                        ): point
                        for point in pending
                    }
                outstanding = set(futures)
                while outstanding:
                    done_now, outstanding = wait(
                        outstanding,
                        timeout=0.1 if heartbeats is not None else None,
                        return_when=FIRST_COMPLETED,
                    )
                    drain_heartbeats()
                    for future in done_now:
                        point = futures[future]
                        point.attempts = 1
                        try:
                            envelope = future.result()
                        except Exception as exc:  # noqa: BLE001
                            point.error = f"{type(exc).__name__}: {exc}"
                        else:
                            _settle_payload(point, envelope)
                        settle(point)
                drain_heartbeats()
        finally:
            if manager is not None:
                manager.shutdown()

    report = SweepReport(
        points=points,
        jobs=jobs,
        cache=cache,
        out_dir=out_dir,
        resumed=resumed,
        wall_s=time.monotonic() - t_sweep0,
    )
    if cache is not None:
        count("cache_corrupt", cache.stats.corrupt)
    if out_dir:
        report.result_set().write(os.path.join(out_dir, "results.json"))
        atomic_write_json(
            os.path.join(out_dir, "summary.json"), report.summary_doc()
        )
    if telemetry is not None:
        telemetry.finalize()
    if ledger is not None:
        from repro.observatory.ledger import log_sweep

        try:
            report.ledger_record = log_sweep(ledger, report)
        except OSError as exc:
            _LOG.warning(
                "sweep ledger append to %s failed (%s); results are "
                "unaffected", getattr(ledger, "path", "?"), exc,
            )
    return report
