"""Built-in experiments, registered once via :func:`register_experiment`.

Importing this module populates the registry that ``repro trace``,
``repro monitor``/``report``, ``repro sweep``, the figure pipelines,
and the bench quick suite all dispatch through (import it via
:func:`repro.runner.spec.ensure_registered`, not directly).  Every
runner lazy-imports the analysis/asic stack inside its body so the
registry itself stays import-cheap and cycle-free.

Conventions:

* A runner receives one :class:`~repro.runner.spec.ExperimentSpec` and
  returns an :class:`~repro.runner.result.Outcome` whose measurements
  are the sweepable scalars (they become ``repro-bench/1`` rows).
* ``spec.hops is None`` means "the experiment's own default sweep"
  (e.g. ``latency`` walks every hop like Fig. 5); an integer pins the
  run to one grid point so a sweep can parallelize across hops.
"""

from __future__ import annotations

from repro.runner.result import Measurement, Outcome
from repro.runner.spec import ExperimentSpec, register_experiment


@register_experiment(
    "latency",
    help="one-way counted-write latency (Fig. 5 point or full sweep)",
)
def _latency(spec: ExperimentSpec) -> Outcome:
    if spec.hops is None:
        # Full Fig. 5 sweep in one run — the trace pipeline's workload.
        from repro.analysis.latency import latency_vs_hops

        points = latency_vs_hops(shape=spec.shape, rounds=spec.rounds)
        measurements = []
        for p in points:
            measurements.extend(
                (
                    Measurement(f"uni_0B_{p.hops}hop_ns", p.uni_0b),
                    Measurement(f"uni_256B_{p.hops}hop_ns", p.uni_256b),
                )
            )
        return Outcome(
            description=(
                f"Fig. 5 ping-pong sweep, hops 0..{points[-1].hops}, "
                f"{spec.rounds} rounds per configuration"
            ),
            elapsed_ns=points[-1].uni_0b,
            measurements=tuple(measurements),
        )

    # One grid point: the single uncontended counted write of Fig. 6,
    # whose elapsed time the attribution reproduces exactly.
    from repro.analysis.attribution import measure_attribution

    m = measure_attribution(
        hops=spec.hops, shape=spec.shape, payload_bytes=spec.payload
    )
    return Outcome(
        description=(
            f"one-way counted write, {m.hops} hop(s) to {m.destination} "
            f"on {m.shape}, {m.payload_bytes} B payload "
            f"({m.elapsed_ns:.1f} ns)"
        ),
        elapsed_ns=m.elapsed_ns,
        measurements=(
            Measurement(f"one_way_{m.hops}hop_ns", m.elapsed_ns),
        ),
    )


@register_experiment(
    "fig5",
    help="all four Fig. 5 curves (uni/bi x 0B/256B) at one hop count",
)
def _fig5(spec: ExperimentSpec) -> Outcome:
    """One hop count, all four published curves.  Unlike ``latency``
    this pays for bidirectional ping-pong too, so the Fig. 5 pipeline
    sweeps it with one machine build per grid point."""
    from repro.analysis.latency import _destination_for_hops, ping_pong_ns
    from repro.asic.node import build_machine
    from repro.engine.simulator import Simulator

    hops = 1 if spec.hops is None else spec.hops
    dst = _destination_for_hops(spec.shape, hops)
    sim = Simulator()
    machine = build_machine(sim, *spec.shape)
    curves = {
        "uni_0B": ping_pong_ns(spec.shape, dst, 0, spec.rounds, False, machine),
        "uni_256B": ping_pong_ns(spec.shape, dst, 256, spec.rounds, False, machine),
        "bi_0B": ping_pong_ns(spec.shape, dst, 0, spec.rounds, True, machine),
        "bi_256B": ping_pong_ns(spec.shape, dst, 256, spec.rounds, True, machine),
    }
    return Outcome(
        description=(
            f"Fig. 5 curves at {hops} hop(s) to {dst} "
            f"(uni 0B {curves['uni_0B']:.1f} ns)"
        ),
        elapsed_ns=curves["uni_0B"],
        measurements=tuple(
            Measurement(f"{name}_{hops}hop_ns", value)
            for name, value in curves.items()
        ),
    )


@register_experiment(
    "allreduce",
    help="global all-reduce on one machine shape (Table 2 point)",
)
def _allreduce(spec: ExperimentSpec) -> Outcome:
    from repro.asic.node import build_machine
    from repro.comm.collectives import AllReduce, ButterflyAllReduce
    from repro.engine.simulator import Simulator

    algorithm = spec.extra("algorithm", "dimension_ordered")
    cls = {
        "dimension_ordered": AllReduce,
        "butterfly": ButterflyAllReduce,
    }.get(algorithm)
    if cls is None:
        raise ValueError(
            f"unknown all-reduce algorithm {algorithm!r} "
            "(dimension_ordered or butterfly)"
        )
    sim = Simulator()
    machine = build_machine(sim, *spec.shape)
    elapsed = cls(machine, payload_bytes=spec.payload).run().elapsed_ns
    return Outcome(
        description=(
            f"{algorithm.replace('_', '-')} all-reduce over "
            f"{spec.nodes} nodes, {spec.payload} B "
            f"({elapsed / 1e3:.2f} µs)"
        ),
        elapsed_ns=elapsed,
        measurements=(
            Measurement(f"{algorithm}_{spec.payload}B_ns", elapsed),
        ),
    )


@register_experiment(
    "transfer",
    help="2 KB message-granularity transfer (Fig. 7 point)",
)
def _transfer(spec: ExperimentSpec) -> Outcome:
    from repro.analysis.transfer import anton_transfer_ns

    total = spec.extra("total_bytes", 2048)
    messages = spec.extra("messages", 8)
    hops = 1 if spec.hops is None else max(1, spec.hops)
    ns = anton_transfer_ns(total, messages, hops=hops, shape=spec.shape)
    return Outcome(
        description=(
            f"{total} B transfer as {messages} messages over "
            f"{hops} X hop(s) ({ns:.0f} ns)"
        ),
        elapsed_ns=ns,
        measurements=(
            Measurement(f"split_{total}B_{messages}msg_ns", ns),
        ),
    )


@register_experiment(
    "congestion",
    help="many-to-one incast of counted writes (queueing stress)",
)
def _congestion(spec: ExperimentSpec) -> Outcome:
    """Many-to-one incast: the heaviest head-of-line queueing the
    torus produces, for exercising the queue-depth telemetry."""
    from repro.asic.node import build_machine
    from repro.engine.simulator import Simulator

    payload = spec.payload or 256
    sim = Simulator()
    machine = build_machine(sim, *spec.shape)
    target = machine.torus.coord((0, 0, 0))
    dst = machine.node(target).slice(0)
    # Fan-in width rides along as a spec extra so the congest CLI can
    # widen the incast (e.g. the full 26-to-1 on a 3x3x3) without
    # perturbing the cached default-8 results.
    fan_in = max(1, int(spec.extra("senders", 8)))
    senders = [
        machine.node(c).slice(0)
        for c in machine.torus.nodes()
        if c != target
    ][:fan_in]
    dst.memory.allocate("sink", len(senders))

    def sender(s, slot):
        for _ in range(spec.rounds):
            yield from s.send_write(
                target, dst.name, counter_id="sink", address=("sink", slot),
                payload_bytes=payload,
            )

    def receiver():
        yield from dst.poll("sink", len(senders) * spec.rounds)

    start = sim.now
    procs = [sim.process(sender(s, i)) for i, s in enumerate(senders)]
    procs.append(sim.process(receiver()))
    sim.run(until=sim.all_of(procs))
    elapsed = sim.now - start
    return Outcome(
        description=(
            f"{len(senders)}-to-1 incast of {payload} B writes, "
            f"{spec.rounds} rounds per sender"
        ),
        elapsed_ns=elapsed,
        measurements=(
            Measurement(f"incast_{len(senders)}x{payload}B_ns", elapsed),
        ),
    )


@register_experiment(
    "fault_sensitivity",
    help="incast latency under a uniform link bit-error rate (sweep ber=)",
)
def _fault_sensitivity(spec: ExperimentSpec) -> Outcome:
    from repro.faults.study import run_fault_sensitivity

    return run_fault_sensitivity(spec)


@register_experiment(
    "link_degradation",
    help="incast latency with a degraded or downed link class",
)
def _link_degradation(spec: ExperimentSpec) -> Outcome:
    from repro.faults.study import run_link_degradation

    return run_link_degradation(spec)


@register_experiment(
    "selftest",
    help="harness self-test point (behavior=ok|crash|hang|flaky)",
    traceable=False,
    monitorable=False,
)
def _selftest(spec: ExperimentSpec) -> Outcome:
    """A non-simulating point for exercising the sweep harness itself:
    ``crash`` raises, ``hang`` sleeps wall-clock (to be killed by
    ``--timeout``), ``flaky`` fails until a marker file exists (so
    ``--retries`` can be shown recovering a transient failure)."""
    import os
    import time

    behavior = str(spec.extra("behavior", "ok"))
    if behavior == "ok":
        pass
    elif behavior == "crash":
        raise RuntimeError("selftest: deliberate crash")
    elif behavior == "hang":
        time.sleep(float(spec.extra("sleep_s", 60.0)))
    elif behavior == "flaky":
        marker = str(spec.extra("marker", ""))
        if not marker:
            raise ValueError("selftest: behavior=flaky needs a marker path")
        if not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write("attempted\n")
            raise RuntimeError("selftest: deliberate first-attempt failure")
    else:
        raise ValueError(f"selftest: unknown behavior {behavior!r}")
    return Outcome(
        description=f"selftest behavior={behavior}",
        elapsed_ns=1.0,
        measurements=(Measurement("selftest_ns", 1.0),),
    )


@register_experiment(
    "table3_critical_path",
    help="Table 3 per-phase critical-path accounting (DHFR MD step pair)",
    traceable=False,  # per-packet flight record would dwarf the run
)
def _table3_critical_path(spec: ExperimentSpec) -> Outcome:
    """The paper's Table 3: simulate one range-limited + long-range
    step pair and split every phase's critical path into communication
    and computation microseconds.  Also the profiling walkthrough's
    reference workload — its per-phase simulated accounting is exactly
    what the engine self-profiler mirrors in host wall time."""
    from repro.analysis.mdstep import build_dhfr_md, run_table3
    from repro.constants import DHFR_ATOMS

    atoms = int(spec.extra("atoms", 0)) or max(
        512, DHFR_ATOMS * spec.nodes // 512
    )
    md = build_dhfr_md(spec.shape, atoms=atoms, seed=spec.seed)
    rows = run_table3(md)
    measurements = []
    for name, row in sorted(rows.items()):
        measurements.append(
            Measurement(f"{name}_comm_us", row.communication_us, units="us")
        )
        measurements.append(
            Measurement(f"{name}_total_us", row.total_us, units="us")
        )
    average = rows["average"]
    return Outcome(
        description=(
            f"Table 3 critical path, {atoms} atoms on {spec.nodes} nodes "
            f"(average step {average.total_us:.2f} µs, "
            f"communication {average.communication_us:.2f} µs)"
        ),
        elapsed_ns=average.total_us * 1e3,
        measurements=tuple(measurements),
    )


@register_experiment(
    "mdstep",
    help="Fig. 13 MD step pair (range-limited + long-range)",
    traceable=False,  # per-packet flight record would dwarf the run
)
def _mdstep(spec: ExperimentSpec) -> Outcome:
    """Fig. 13's workload: ``rounds``/2 range-limited + long-range step
    pairs, atom count scaled with machine size from the paper's DHFR
    benchmark (23,558 atoms on 512 nodes)."""
    from repro.analysis.mdstep import build_dhfr_md
    from repro.constants import DHFR_ATOMS

    atoms = max(512, DHFR_ATOMS * spec.nodes // 512)
    md = build_dhfr_md(spec.shape, atoms=atoms)
    rl_ns = lr_ns = 0.0
    for _ in range(max(1, spec.rounds // 2)):
        rl_ns = md.run_step("range_limited").total_ns
        lr_ns = md.run_step("long_range").total_ns
    return Outcome(
        description=(
            f"Fig. 13 step pair, {atoms} atoms on {spec.nodes} nodes "
            f"(range-limited {rl_ns / 1e3:.2f} µs, "
            f"long-range {lr_ns / 1e3:.2f} µs)"
        ),
        elapsed_ns=rl_ns + lr_ns,
        measurements=(
            Measurement("range_limited_step_ns", rl_ns),
            Measurement("long_range_step_ns", lr_ns),
        ),
    )
