"""Content-addressed on-disk cache of :class:`RunResult` payloads.

A cache entry is keyed by the SHA-256 of the canonical JSON of
``{schema, spec, code}`` where ``code`` is a fingerprint over the
source of the installed ``repro`` package.  Consequences:

* re-running an unchanged grid point is a hit;
* changing any spec field (shape, rounds, payload, seed, hops,
  extras) forces a recompute;
* editing any simulator source file invalidates the whole cache —
  stale physics can never be served.

Integrity is checked on *read*, not trusted from the filesystem: every
entry stores the SHA-256 of its canonical payload, and an entry whose
key, spec, or payload hash does not verify is treated as a miss,
counted, and deleted so the recompute overwrites it.  Writes are
atomic (same-directory temp file + ``os.replace``), so a crashed or
concurrent writer can never leave a half-written entry that a later
read would trust.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional

from repro.bench.results import canonical_json
from repro.runner.result import RunResult
from repro.runner.spec import ExperimentSpec

#: Bump on incompatible changes to the entry layout.
CACHE_SCHEMA = "repro-cache/1"

#: Default cache root; override per-call or with ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = ".repro-cache"

_fingerprint_cache: dict[str, str] = {}


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


def code_fingerprint(package_dir: Optional[str] = None) -> str:
    """SHA-256 over every ``.py`` file of the ``repro`` package
    (sorted relative paths + contents).  Memoized per directory: the
    tree is read once per process, not once per grid point."""
    if package_dir is None:
        import repro

        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    cached = _fingerprint_cache.get(package_dir)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for root, dirs, files in sorted(os.walk(package_dir)):
        dirs.sort()
        dirs[:] = [d for d in dirs if d != "__pycache__"]
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            rel = os.path.relpath(path, package_dir)
            digest.update(rel.encode("utf-8") + b"\0")
            with open(path, "rb") as fh:
                digest.update(fh.read())
            digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _fingerprint_cache[package_dir] = fingerprint
    return fingerprint


def _payload_sha256(payload: dict) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Per-:class:`ResultCache` counters (hits/misses/corrupt/writes)."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
        }


class ResultCache:
    """Content-addressed store of run results under one directory."""

    def __init__(
        self,
        root: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = str(root) if root is not None else default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()

    # -- addressing --------------------------------------------------------
    def key(self, spec: ExperimentSpec) -> str:
        doc = {
            "schema": CACHE_SCHEMA,
            "code": self.fingerprint,
            "spec": spec.to_dict(),
        }
        return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()

    def path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # -- read --------------------------------------------------------------
    def get(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None`` on miss.

        A present-but-invalid entry (wrong key, payload hash mismatch,
        unparseable JSON, spec disagreement) is *corruption*: it is
        counted, deleted best-effort, and reported as a miss so the
        caller recomputes instead of serving poisoned data.
        """
        import json

        key = self.key(spec)
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            self._discard_corrupt(path)
            return None
        try:
            if doc.get("schema") != CACHE_SCHEMA or doc.get("key") != key:
                raise ValueError("entry schema/key mismatch")
            payload = doc["payload"]
            if _payload_sha256(payload) != doc.get("payload_sha256"):
                raise ValueError("payload hash mismatch")
            result = RunResult.from_dict(payload)
            if result.spec != spec:
                raise ValueError("entry spec does not match requested spec")
        except (KeyError, TypeError, ValueError):
            self._discard_corrupt(path)
            return None
        self.stats.hits += 1
        return result

    def _discard_corrupt(self, path: str) -> None:
        self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            os.remove(path)
        except OSError:
            pass

    # -- write -------------------------------------------------------------
    def put(self, result: RunResult) -> str:
        """Store ``result`` atomically; returns the entry path."""
        key = self.key(result.spec)
        path = self.path(key)
        from repro.engine.scheduler import engine_config

        engine = engine_config()
        if result.meta.get("scheduler"):
            # Prefer the recorded fact over ambient resolution: sweep
            # workers may have computed this result in another process.
            engine["scheduler"] = result.meta["scheduler"]
        payload = result.to_dict()
        doc = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "payload": payload,
            "payload_sha256": _payload_sha256(payload),
            # Engine provenance (which scheduler computed this entry).
            # Deliberately outside the key and the payload hash: the
            # equivalence suite proves results byte-identical across
            # schedulers, so an entry is valid under either — this
            # records how it was produced, it does not partition the
            # cache.
            "engine": engine,
        }
        atomic_write_json(path, doc)
        self.stats.writes += 1
        return path


def atomic_write_json(path: str, doc: dict) -> None:
    """Write JSON so readers see either nothing or the full document:
    temp file in the destination directory, fsync, ``os.replace``."""
    import json

    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    tmp = os.path.join(parent, f".tmp.{os.getpid()}.{os.path.basename(path)}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        try:
            os.remove(tmp)
        except OSError:
            pass
