"""Unified experiment API: specs, registry, results, cache, sweeps.

The runner package is the repo's front door for executing
simulations.  Everything that used to be a private string-to-function
table now goes through:

* :class:`ExperimentSpec` / :func:`register_experiment` — name and
  parameterize a run (``repro.runner.spec``);
* :class:`RunResult` / :func:`run_experiment` — execute one spec and
  get the one result type back (``repro.runner.result``);
* :class:`ResultCache` — content-addressed on-disk cache keyed by
  (spec, code fingerprint) (``repro.runner.cache``);
* :func:`run_sweep` / :func:`parse_grid` / :func:`expand_grid` —
  parallel, cached, resumable grids of runs (``repro.runner.sweep``).
"""

from repro.runner.cache import ResultCache, code_fingerprint, default_cache_dir
from repro.runner.result import (
    Captures,
    Measurement,
    Outcome,
    RunResult,
    results_to_set,
    run_experiment,
)
from repro.runner.spec import (
    ExperimentDef,
    ExperimentSpec,
    ensure_registered,
    experiment_names,
    get_experiment,
    register_experiment,
)
from repro.runner.sweep import (
    SweepPoint,
    SweepReport,
    expand_grid,
    parse_grid,
    run_sweep,
    sweep_key,
)

__all__ = [
    "Captures",
    "ExperimentDef",
    "ExperimentSpec",
    "Measurement",
    "Outcome",
    "ResultCache",
    "RunResult",
    "SweepPoint",
    "SweepReport",
    "code_fingerprint",
    "default_cache_dir",
    "ensure_registered",
    "expand_grid",
    "experiment_names",
    "get_experiment",
    "parse_grid",
    "register_experiment",
    "results_to_set",
    "run_experiment",
    "run_sweep",
    "sweep_key",
]
