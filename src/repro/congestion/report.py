"""Congestion X-ray rendering: text, HTML section, Prometheus, JSON.

Four views of one :class:`~repro.congestion.tree.CongestionTree`:

* :func:`render_congestion_text` — the CLI tables (congestion tree
  ranked by contributed wait, the feeder breakdown of the worst link,
  and the episode list);
* :func:`congestion_section` — the HTML fragment the monitor health
  report embeds (queue-depth sparklines per link direction from the
  congestion recorder's ring-buffered timelines, congestion-tree
  table, episode list), built from the shared
  :mod:`repro.report_common` blocks;
* :func:`render_congestion_html` — a standalone page around that
  section for ``python -m repro congest --html``;
* :func:`render_congestion_prometheus` — ``congestion.*`` metric
  families with one labelled sample per link direction (label values
  like ``z+`` exercise the exposition escaping rules).
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, Optional

from repro.congestion.tree import CongestionTree
from repro.report_common import (
    details_table,
    fmt,
    fmt_ns,
    html_page,
    html_table,
    sparkline,
    stat_tiles,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.congestion.recorder import CongestionRecorder
    from repro.monitor.series import RingSeries


# ---------------------------------------------------------------------------
# Text (CLI)
# ---------------------------------------------------------------------------

def render_congestion_text(tree: CongestionTree, top: int = 10) -> str:
    """The congestion tree, worst feeders, and episodes as tables."""
    from repro.analysis.report import render_table

    if not tree.links:
        return (
            f"Congestion tree: no head-of-line waits recorded "
            f"({tree.packets} packets, 0 contended hops).\n"
        )
    rows = []
    for lc in tree.links[:top]:
        feeders = lc.ranked_feeders()
        worst_feeder = (
            f"{feeders[0][0]} ({feeders[0][1]:.0f} ns)" if feeders else "-"
        )
        rows.append(
            [lc.link, lc.direction, lc.wait_ns, lc.waits, lc.peak_depth,
             lc.occupancy_ns, worst_feeder]
        )
    parts = [
        render_table(
            f"Congestion tree — {len(tree.links)} contended link(s), "
            f"{tree.total_wait_ns:.0f} ns total HOL wait "
            f"({tree.contended_hops} contended hops, {tree.packets} packets)",
            ["link", "dir", "wait ns", "waits", "peak q", "busy ns",
             "worst feeder"],
            rows,
            float_format="{:.1f}",
        )
    ]
    worst = tree.worst
    if worst is not None and worst.fed_by:
        parts.append(
            render_table(
                f"Backpressure into {worst.link} (ranked by contributed ns)",
                ["fed by", "wait ns", "share"],
                [
                    [feeder, ns, f"{ns / worst.wait_ns:.1%}"]
                    for feeder, ns in worst.ranked_feeders()
                ],
                float_format="{:.1f}",
            )
        )
    episodes = tree.episodes()[:top]
    if episodes:
        parts.append(
            render_table(
                "Sustained HOL-blocking episodes (worst first)",
                ["link", "start ns", "end ns", "duration ns", "packets",
                 "wait ns"],
                [
                    [e.link, e.start_ns, e.end_ns, e.duration_ns, e.packets,
                     e.wait_ns]
                    for e in episodes
                ],
                float_format="{:.1f}",
            )
        )
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# HTML
# ---------------------------------------------------------------------------

def _depth_sparkline(
    series: "Optional[dict[str, RingSeries]]", link: str
) -> str:
    if not series:
        return '<span class="note">-</span>'
    s = series.get(link)
    if s is None or len(s) == 0:
        return '<span class="note">-</span>'
    return sparkline(s.name, s.values())


def congestion_section(
    tree: CongestionTree,
    series: "Optional[dict[str, RingSeries]]" = None,
    top: int = 12,
) -> str:
    """The congestion X-ray as an HTML fragment (embeddable).

    ``series`` maps link name → queue-depth
    :class:`~repro.monitor.series.RingSeries` (the congestion
    recorder's ``depth_series``); omitted, the tree table renders
    without sparklines.
    """
    worst = tree.worst
    tiles = stat_tiles([
        ("total HOL wait", fmt_ns(tree.total_wait_ns)),
        ("contended links", fmt(len(tree.links))),
        ("contended hops", fmt(tree.contended_hops)),
        ("packets", fmt(tree.packets)),
        ("worst link", worst.link if worst is not None else "-"),
        (
            "worst direction",
            worst.direction if worst is not None else "-",
        ),
    ])
    if not tree.links:
        return (
            "<h2>Congestion X-ray</h2>\n" + tiles
            + '<p class="note">No head-of-line waits were recorded.</p>'
        )
    rows = []
    for lc in tree.links[:top]:
        feeders = lc.ranked_feeders()
        worst_feeder = (
            f"{feeders[0][0]} ({fmt(feeders[0][1])} ns)" if feeders else "-"
        )
        rows.append(
            "<tr>"
            f"<td>{html.escape(lc.link)}</td>"
            f"<td>{html.escape(lc.direction)}</td>"
            f"<td>{_depth_sparkline(series, lc.link)}</td>"
            f'<td class="num">{fmt(lc.wait_ns)}</td>'
            f'<td class="num">{fmt(lc.waits)}</td>'
            f'<td class="num">{fmt(lc.peak_depth)}</td>'
            f'<td class="num">{fmt(lc.occupancy_ns)}</td>'
            f"<td>{html.escape(worst_feeder)}</td>"
            "</tr>"
        )
    hidden = len(tree.links) - min(top, len(tree.links))
    note = (
        f'<p class="note">{hidden} further contended link(s) omitted.</p>'
        if hidden > 0 else ""
    )
    tree_table = (
        "<table><thead><tr><th>link</th><th>dir</th><th>queue depth</th>"
        '<th class="num">wait ns</th><th class="num">waits</th>'
        '<th class="num">peak q</th><th class="num">busy ns</th>'
        "<th>worst feeder</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>{note}"
    )
    feeder_detail = ""
    if worst is not None and worst.fed_by:
        feeder_detail = details_table(
            f"backpressure into {worst.link} (all feeders)",
            ["fed by", "wait ns", "share"],
            [
                [feeder, fmt(ns), f"{ns / worst.wait_ns:.1%}"]
                for feeder, ns in worst.ranked_feeders()
            ],
            num=(1, 2),
        )
    episodes = tree.episodes()[:top]
    episode_table = (
        html_table(
            ["link", "dir", "start ns", "end ns", "duration ns",
             "packets", "wait ns"],
            [
                [e.link, e.direction, fmt(e.start_ns), fmt(e.end_ns),
                 fmt(e.duration_ns), fmt(e.packets), fmt(e.wait_ns)]
                for e in episodes
            ],
            num=(2, 3, 4, 5, 6),
        )
        if episodes
        else '<p class="note">No blocking episodes.</p>'
    )
    return (
        "<h2>Congestion X-ray</h2>\n" + tiles
        + "<h2>Congestion tree (ranked by contributed HOL wait)</h2>\n"
        + tree_table + feeder_detail
        + "<h2>HOL-blocking episodes</h2>\n" + episode_table
    )


def render_congestion_html(
    tree: CongestionTree,
    series: "Optional[dict[str, RingSeries]]" = None,
    title: str = "Congestion X-ray",
    experiment: str = "",
    shape: Optional[tuple[int, int, int]] = None,
) -> str:
    """A standalone page for ``python -m repro congest --html``."""
    subtitle_parts = []
    if shape is not None:
        subtitle_parts.append(f"{shape[0]}×{shape[1]}×{shape[2]} torus")
    if experiment:
        subtitle_parts.append(f"experiment: {html.escape(experiment)}")
    subtitle_parts.append(f"{tree.packets} packets recorded")
    return html_page(
        title,
        " &middot; ".join(subtitle_parts),
        congestion_section(tree, series),
    )


# ---------------------------------------------------------------------------
# Prometheus
# ---------------------------------------------------------------------------

def render_congestion_prometheus(
    tree: CongestionTree,
    recorder: "Optional[CongestionRecorder]" = None,
) -> str:
    """``congestion.*`` metric families, one sample per link direction.

    Label values carry the raw link name and the ``z+``-style direction
    tag (exercising the exposition's escaping rules); the recorder,
    when given, contributes the telemetry-loss counter so dropped ring
    samples are never silent.
    """
    from repro.monitor.report import PromText, prom_labels

    out = PromText()

    def by_link(value):
        return [
            (prom_labels(link=lc.link, direction=lc.direction), value(lc))
            for lc in tree.links
        ]

    out.metric(
        "repro_congestion_hol_wait_ns", "counter",
        "Total head-of-line wait contributed by each link direction.",
        by_link(lambda lc: lc.wait_ns),
    )
    out.metric(
        "repro_congestion_waits", "counter",
        "Contended hops (packets that queued) per link direction.",
        by_link(lambda lc: lc.waits),
    )
    out.metric(
        "repro_congestion_peak_queue", "gauge",
        "Deepest head-of-line queue per link direction.",
        by_link(lambda lc: lc.peak_depth),
    )
    out.metric(
        "repro_congestion_episodes", "gauge",
        "Merged HOL-blocking episodes per link direction.",
        by_link(lambda lc: len(lc.episodes)),
    )
    out.metric(
        "repro_congestion_total_hol_wait_ns", "counter",
        "Total head-of-line wait across the machine.",
        [("", tree.total_wait_ns)],
    )
    out.metric(
        "repro_congestion_contended_links", "gauge",
        "Link directions that caused at least one HOL wait.",
        [("", len(tree.links))],
    )
    if recorder is not None:
        out.metric(
            "repro_congestion_samples_dropped", "counter",
            "Timeline samples overwritten by ring-buffer capacity.",
            [("", recorder.total_dropped())],
        )
    return out.text()


# ---------------------------------------------------------------------------
# JSON (machine-readable, one canonical document)
# ---------------------------------------------------------------------------

def congestion_doc(
    tree: CongestionTree,
    experiment: str = "",
    shape: Optional[tuple[int, int, int]] = None,
    top: Optional[int] = None,
) -> dict:
    """The ``repro-congest/1`` document the CLI's ``--json`` emits."""
    doc = tree.to_doc(top=top)
    if experiment:
        doc["experiment"] = experiment
    if shape is not None:
        doc["shape"] = list(shape)
    return doc
