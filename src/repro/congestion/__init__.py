"""Congestion X-ray: queue telemetry, delay decomposition, attribution.

Three layers over the network's head-of-line queues:

* :mod:`repro.congestion.recorder` — zero-perturbation event hooks
  that sample per-link-direction queue depth and occupancy into
  fixed-capacity ring buffers (off by default, ambient like the
  flight recorder);
* :mod:`repro.congestion.decompose` — per-packet queueing-delay
  decomposition that tiles each delivery's end-to-end latency exactly
  into serialization / wire / HOL wait / retry / through-node /
  endpoint segments with an explicit UNATTRIBUTED residual;
* :mod:`repro.congestion.tree` — the backpressure congestion tree
  (which upstream links feed waits into which bottleneck) and
  sustained HOL-blocking episodes.

Rendering lives in :mod:`repro.congestion.report`; CLI capture in
:mod:`repro.congestion.capture` (kept out of this namespace so the
package stays import-cycle-free, like :mod:`repro.trace`).
"""

from repro.congestion.recorder import (
    NULL_CONGESTION,
    CongestionRecorder,
    NullCongestionRecorder,
    active_congestion,
    direction_label,
    use_congestion,
)

__all__ = [
    "NULL_CONGESTION",
    "CongestionRecorder",
    "NullCongestionRecorder",
    "active_congestion",
    "direction_label",
    "use_congestion",
]
