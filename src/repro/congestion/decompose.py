"""Per-packet queueing-delay decomposition (the X-ray's time axis).

:mod:`repro.analysis.attribution` splits one packet's journey into
Fig. 6's component taxonomy; this module answers the congestion
question instead: *for every packet in a run, where between injection
and delivery did the time go* — split per hop into serialization,
wire, head-of-line wait, retry backoff, and through-node cost, plus
the endpoint ring traversals outside the hops.

The discipline is identical to the attribution module (whose
:func:`~repro.analysis.attribution.hop_components` does the calibrated
arithmetic for both): every decomposition tiles the flight recorder's
end-to-end latency (``inject → last delivery``) **exactly**, with
whatever the structural model cannot explain reported as an explicit
``UNATTRIBUTED`` residual, never silently folded into a real bucket.
:meth:`PacketDecomposition.check` asserts the tiling and the
hypothesis property tests exercise it across random contended runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional, Sequence

from repro.analysis.attribution import Component, hop_components, payload_extra_ns
from repro.congestion.recorder import direction_label
from repro.trace.flight import Delivery, HopRecord, PacketFlight

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology.torus import Torus3D
    from repro.trace.flight import FlightRecorder


class DelayBucket(Enum):
    """Where one nanosecond of a packet's life was spent."""

    ENDPOINT = "endpoint rings (source/destination on-chip)"
    HOL_WAIT = "head-of-line wait"
    SERIALIZATION = "payload serialization"
    WIRE = "wire + link adapters"
    RETRY = "retry backoff"
    THROUGH_NODE = "through-node cost"
    UNATTRIBUTED = "UNATTRIBUTED residual"


#: Rendering and summation order.
BUCKET_ORDER = tuple(DelayBucket)

#: How the attribution taxonomy folds into the congestion buckets.
_COMPONENT_BUCKET = {
    Component.RETRY: DelayBucket.RETRY,
    Component.LINK_ADAPTER: DelayBucket.WIRE,
    Component.WIRE: DelayBucket.WIRE,
    Component.SERIALIZATION: DelayBucket.SERIALIZATION,
    Component.MCAST_LOOKUP: DelayBucket.THROUGH_NODE,
    Component.TRANSIT_RING: DelayBucket.THROUGH_NODE,
    Component.DST_RING: DelayBucket.ENDPOINT,
    Component.UNATTRIBUTED: DelayBucket.UNATTRIBUTED,
}


@dataclass(slots=True)
class HopDelay:
    """One hop's ``[enqueue, next-enqueue-or-delivery]`` stretch,
    split into the congestion buckets."""

    link: str
    direction: str
    start_ns: float
    end_ns: float
    hol_wait_ns: float = 0.0
    serialization_ns: float = 0.0
    wire_ns: float = 0.0
    retry_ns: float = 0.0
    through_node_ns: float = 0.0
    #: Destination-ring share of the terminal hop's segment (folded
    #: into the packet's ENDPOINT total, not a per-hop network cost).
    endpoint_ns: float = 0.0
    unattributed_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class PacketDecomposition:
    """One packet's end-to-end latency, exactly tiled.

    ``endpoint_ns`` carries the source-ring lead-in (injection to first
    enqueue; the whole journey for an intra-node delivery); each
    :class:`HopDelay` covers one contiguous hop stretch.  The bucket
    totals sum to ``end_ns - start_ns`` to within float tolerance.
    """

    packet_id: int
    start_ns: float
    end_ns: float
    endpoint_ns: float = 0.0
    hops: list[HopDelay] = field(default_factory=list)

    @property
    def total_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def totals(self) -> dict[DelayBucket, float]:
        out = {b: 0.0 for b in BUCKET_ORDER}
        out[DelayBucket.ENDPOINT] = self.endpoint_ns
        for h in self.hops:
            out[DelayBucket.HOL_WAIT] += h.hol_wait_ns
            out[DelayBucket.SERIALIZATION] += h.serialization_ns
            out[DelayBucket.WIRE] += h.wire_ns
            out[DelayBucket.RETRY] += h.retry_ns
            out[DelayBucket.THROUGH_NODE] += h.through_node_ns
            out[DelayBucket.ENDPOINT] += h.endpoint_ns
            out[DelayBucket.UNATTRIBUTED] += h.unattributed_ns
        return out

    def ns(self, bucket: DelayBucket) -> float:
        return self.totals[bucket]

    def check(self, tol_ns: float = 1e-6) -> None:
        """Assert the buckets tile [start, end] exactly."""
        covered = sum(self.totals.values())
        if abs(covered - self.total_ns) > tol_ns:
            raise AssertionError(
                f"decomposition of packet {self.packet_id} covers "
                f"{covered} ns of a {self.total_ns} ns journey"
            )


def decompose_path(
    flight: PacketFlight,
    hops: Sequence[HopRecord],
    delivery: Delivery,
) -> PacketDecomposition:
    """Decompose one causal chain (injection → ``delivery``).

    For unicast pass ``flight.hops``; for multicast pass one branch of
    the fan-out tree (:func:`repro.analysis.critical_path.branch_hops`).
    """
    start = flight.inject_ns
    end = delivery.time_ns
    out = PacketDecomposition(
        packet_id=flight.packet_id, start_ns=start, end_ns=end
    )
    if not hops:
        # Intra-node delivery: the whole journey is ring traversal.
        out.endpoint_ns = end - start
        out.check()
        return out
    payload_extra = payload_extra_ns(flight.wire_bytes)
    out.endpoint_ns = hops[0].enqueue_ns - start
    for i, hop in enumerate(hops):
        seg_end = hops[i + 1].enqueue_ns if i + 1 < len(hops) else end
        hd = HopDelay(
            link=hop.link,
            direction=direction_label(hop.dim, hop.sign),
            start_ns=hop.enqueue_ns,
            end_ns=seg_end,
            hol_wait_ns=hop.wait_ns,
        )
        for comp, dur, _detail in hop_components(
            hop,
            first_link=(i == 0),
            terminal=(i + 1 == len(hops)),
            multicast=flight.multicast,
            payload_extra_ns=payload_extra,
            segment_end_ns=seg_end,
        ):
            bucket = _COMPONENT_BUCKET[comp]
            if bucket is DelayBucket.RETRY:
                hd.retry_ns += dur
            elif bucket is DelayBucket.WIRE:
                hd.wire_ns += dur
            elif bucket is DelayBucket.SERIALIZATION:
                hd.serialization_ns += dur
            elif bucket is DelayBucket.THROUGH_NODE:
                hd.through_node_ns += dur
            elif bucket is DelayBucket.ENDPOINT:
                hd.endpoint_ns += dur
            else:
                hd.unattributed_ns += dur
        out.hops.append(hd)
    out.check()
    return out


def decompose_flight(
    flight: PacketFlight,
    torus: "Optional[Torus3D]" = None,
    delivery: Optional[Delivery] = None,
) -> PacketDecomposition:
    """Decompose one flight against its last (or given) delivery.

    Multicast flights interleave every branch's hops in one list, so
    reconstructing the causal chain behind the delivery needs the
    ``torus`` geometry; unicast flights work without it.
    """
    if not flight.deliveries:
        raise ValueError(f"packet {flight.packet_id} was never delivered")
    if delivery is None:
        delivery = flight.deliveries[-1]
    if flight.multicast:
        if torus is None:
            raise ValueError(
                "decomposing a multicast flight needs the torus geometry"
            )
        from repro.analysis.critical_path import branch_hops

        hops: Sequence[HopRecord] = branch_hops(flight, torus, delivery)
    else:
        hops = flight.hops
    return decompose_path(flight, hops, delivery)


def decompose_run(
    recorder: "FlightRecorder", torus: "Optional[Torus3D]" = None
) -> list[PacketDecomposition]:
    """Every delivered flight's decomposition, in injection order."""
    return [
        decompose_flight(f, torus)
        for f in recorder.delivered_flights()
    ]


def aggregate_totals(
    decomps: Sequence[PacketDecomposition],
) -> dict[DelayBucket, float]:
    """Bucket totals summed across packets (the run-level X-ray)."""
    out = {b: 0.0 for b in BUCKET_ORDER}
    for d in decomps:
        for bucket, ns in d.totals.items():
            out[bucket] += ns
    return out


def render_decomposition(
    decomps: Sequence[PacketDecomposition],
    title: str = "Per-packet delay decomposition",
) -> str:
    """Run-level bucket table: total ns, share, per-packet mean."""
    from repro.analysis.report import render_table

    totals = aggregate_totals(decomps)
    grand = sum(totals.values())
    n = max(1, len(decomps))
    rows = []
    for bucket in BUCKET_ORDER:
        ns = totals[bucket]
        if ns == 0.0 and bucket is not DelayBucket.UNATTRIBUTED:
            continue
        share = ns / grand if grand > 0 else 0.0
        rows.append([bucket.value, ns, f"{share:.1%}", ns / n])
    rows.append(["TOTAL (inject → deliver)", grand, "100.0%", grand / n])
    return render_table(
        f"{title} ({len(decomps)} packets)",
        ["bucket", "ns", "share", "ns/packet"],
        rows,
        float_format="{:.1f}",
    )
