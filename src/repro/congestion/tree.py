"""Backpressure attribution: the congestion tree and HOL episodes.

Fig. 7's question is not just *how much* packets waited but *where the
colliding traffic came from*.  This module reconstructs that from
hop-enqueue causality in the flight recorder: a packet's enqueue on a
congested link happens-after its traversal of the upstream link that
delivered it there, so every nanosecond of head-of-line wait on a link
can be attributed to the feeder direction (or to direct injection at
the link's home node) that carried the waiting packet in.  Summed over
a run this yields, per congested link, a ranked ``fed_by`` breakdown —
the congestion tree, rooted at the worst offender — plus, via the
FCFS grant order, the packet each waiter was directly blocked behind.

Sustained head-of-line blocking shows up as *episodes*: per link, the
union of all packets' wait intervals, merged wherever they overlap or
touch, each with start/end timestamps, the number of packets that
queued, and the total wait accumulated inside it.

Ranking is deterministic: links sort by total contributed wait, with
exact ties broken in fixed direction order (``x+ x- y+ y- z+ z-``,
positive sign first — mirroring the router's positive-direction
preference for tied shortest paths) and then by link name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.congestion.recorder import direction_label
from repro.trace.flight import FlightRecorder, PacketFlight

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology.torus import Torus3D

#: Feeder tag for packets that waited on their first hop (entered the
#: congested link straight from the source node's ring).
INJECTION = "(injection)"

#: Deterministic tie-break order for equally congested directions.
DIRECTION_ORDER = ("x+", "x-", "y+", "y-", "z+", "z-")


@dataclass(slots=True)
class Episode:
    """One sustained head-of-line blocking episode on one link."""

    link: str
    direction: str
    start_ns: float
    end_ns: float
    #: Packets whose wait interval fell inside the episode.
    packets: int
    #: Total wait accumulated inside the episode (> duration when
    #: several packets queued concurrently).
    wait_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class LinkCongestion:
    """Aggregate congestion evidence for one link direction."""

    link: str
    direction: str
    wait_ns: float = 0.0
    waits: int = 0
    peak_depth: int = 0
    #: Total serialization time streamed (from the occupancy log).
    occupancy_ns: float = 0.0
    #: Upstream feeder link (or ``(injection)``) → HOL wait ns at THIS
    #: link contributed by packets that arrived via that feeder.
    fed_by: dict[str, float] = field(default_factory=dict)
    episodes: list[Episode] = field(default_factory=list)

    def ranked_feeders(self) -> list[tuple[str, float]]:
        return sorted(self.fed_by.items(), key=lambda kv: (-kv[1], kv[0]))


@dataclass
class CongestionTree:
    """The run-level congestion tree: contended links, ranked."""

    links: list[LinkCongestion]
    packets: int = 0
    contended_hops: int = 0

    @property
    def total_wait_ns(self) -> float:
        return sum(lc.wait_ns for lc in self.links)

    @property
    def worst(self) -> Optional[LinkCongestion]:
        return self.links[0] if self.links else None

    def episodes(self) -> list[Episode]:
        """Every episode across every link, longest wait first."""
        out = [e for lc in self.links for e in lc.episodes]
        out.sort(key=lambda e: (-e.wait_ns, e.link, e.start_ns))
        return out

    def to_doc(self, top: Optional[int] = None) -> dict:
        """Canonical ``repro-congest/1`` document (deterministic)."""
        shown = self.links if top is None else self.links[:top]
        return {
            "schema": "repro-congest/1",
            "packets": self.packets,
            "contended_hops": self.contended_hops,
            "contended_links": len(self.links),
            "total_hol_wait_ns": self.total_wait_ns,
            "links": [
                {
                    "link": lc.link,
                    "direction": lc.direction,
                    "wait_ns": lc.wait_ns,
                    "waits": lc.waits,
                    "peak_depth": lc.peak_depth,
                    "occupancy_ns": lc.occupancy_ns,
                    "fed_by": dict(lc.ranked_feeders()),
                    "episodes": [
                        {
                            "start_ns": e.start_ns,
                            "end_ns": e.end_ns,
                            "packets": e.packets,
                            "wait_ns": e.wait_ns,
                        }
                        for e in lc.episodes
                    ],
                }
                for lc in shown
            ],
        }


def _rank_key(lc: LinkCongestion) -> tuple:
    try:
        dir_rank = DIRECTION_ORDER.index(lc.direction)
    except ValueError:  # pragma: no cover - defensive
        dir_rank = len(DIRECTION_ORDER)
    return (-lc.wait_ns, dir_rank, lc.link)


def _feeders(
    flight: PacketFlight, torus: "Optional[Torus3D]"
) -> list[str]:
    """For each hop of ``flight``, the link that carried the packet
    into the hop's home node (``(injection)`` for hops leaving the
    source).

    With the torus geometry this works for multicast fan-out trees too
    (every node is entered by at most one link); without it, unicast
    hop lists are sequential chains and multicast hops degrade to
    ``(injection)``.
    """
    hops = flight.hops
    if torus is not None:
        entered: dict[tuple, str] = {}
        for hop in hops:
            dst = tuple(torus.neighbor(hop.from_node, hop.dim, hop.sign))
            entered[dst] = hop.link
        src = tuple(torus.coord(flight.src_node))
        return [
            INJECTION if tuple(torus.coord(h.from_node)) == src
            else entered.get(tuple(torus.coord(h.from_node)), INJECTION)
            for h in hops
        ]
    if not flight.multicast:
        return [INJECTION] + [h.link for h in hops[:-1]]
    return [INJECTION] * len(hops)


def _merge_episodes(
    link: str,
    direction: str,
    intervals: list[tuple[float, float]],
    min_episode_ns: float,
) -> list[Episode]:
    """Merge overlapping/touching wait intervals into episodes."""
    out: list[Episode] = []
    for start, end in sorted(intervals):
        if out and start <= out[-1].end_ns:
            ep = out[-1]
            ep.end_ns = max(ep.end_ns, end)
            ep.packets += 1
            ep.wait_ns += end - start
        else:
            out.append(
                Episode(
                    link=link,
                    direction=direction,
                    start_ns=start,
                    end_ns=end,
                    packets=1,
                    wait_ns=end - start,
                )
            )
    return [e for e in out if e.duration_ns >= min_episode_ns]


def build_congestion_tree(
    recorder: FlightRecorder,
    torus: "Optional[Torus3D]" = None,
    min_episode_ns: float = 0.0,
) -> CongestionTree:
    """Reconstruct the congestion tree from a recorded run.

    Only links that caused at least one head-of-line wait appear (an
    uncontended link is not congestion evidence); each carries its
    aggregate wait, peak queue depth, occupancy, ``fed_by`` breakdown,
    and merged blocking episodes.  ``min_episode_ns`` drops episodes
    shorter than the threshold (0 keeps all).
    """
    per: dict[str, LinkCongestion] = {}
    intervals: dict[str, list[tuple[float, float]]] = {}
    contended_hops = 0
    for flight in recorder.flights.values():
        feeders = _feeders(flight, torus)
        for hop, feeder in zip(flight.hops, feeders):
            wait = hop.wait_ns
            if wait <= 0.0:
                continue
            contended_hops += 1
            lc = per.get(hop.link)
            if lc is None:
                lc = LinkCongestion(
                    link=hop.link,
                    direction=direction_label(hop.dim, hop.sign),
                )
                per[hop.link] = lc
            lc.wait_ns += wait
            lc.waits += 1
            lc.fed_by[feeder] = lc.fed_by.get(feeder, 0.0) + wait
            depth = hop.queue_depth + 1  # waiters including this packet
            if depth > lc.peak_depth:
                lc.peak_depth = depth
            intervals.setdefault(hop.link, []).append(
                (hop.enqueue_ns, hop.grant_ns)
            )
    for name, lc in per.items():
        lc.occupancy_ns = recorder.link_busy_ns(name)
        lc.episodes = _merge_episodes(
            name, lc.direction, intervals[name], min_episode_ns
        )
    links = sorted(per.values(), key=_rank_key)
    return CongestionTree(
        links=links,
        packets=len(recorder.flights),
        contended_hops=contended_hops,
    )


def blocked_behind(
    recorder: FlightRecorder, flight: PacketFlight, hop_index: int
) -> Optional[int]:
    """The packet id a waiter was directly blocked behind.

    FCFS grant semantics: the wait on ``flight.hops[hop_index]`` ended
    the instant the previous occupant released the channel, so the
    blocker is the occupancy record on the same link whose release time
    equals the waiter's grant time.  Returns ``None`` for an
    uncontended hop or when no occupancy matches (e.g. truncated
    records).
    """
    hop = flight.hops[hop_index]
    if hop.wait_ns <= 0.0:
        return None
    for grant, release, pid in recorder.link_occupancy.get(hop.link, ()):
        if release == hop.grant_ns and pid != flight.packet_id:
            return pid
        if grant > hop.grant_ns:
            break
    return None
