"""Run a named experiment with the congestion X-ray attached.

This is the machinery behind ``python -m repro congest <experiment>``:
it dispatches an :class:`~repro.runner.spec.ExperimentSpec` through
the experiment registry with both the flight recorder (per-packet
causal spans, which the decomposition and the congestion tree are
derived from) and the :class:`~repro.congestion.recorder.
CongestionRecorder` (per-link-direction ring-buffered timelines)
installed, and hands back the unified
:class:`~repro.runner.result.RunResult` whose ``flight`` and
``congestion`` attributes carry the live recorders.

Kept out of ``repro.congestion.__init__`` for the same reason as
:mod:`repro.trace.capture`: the registered experiments import the
analysis/asic stack, and importing this lazily keeps the package
cycle-free.
"""

from __future__ import annotations

from typing import Optional

from repro.runner.result import Captures, RunResult, run_experiment
from repro.runner.spec import ExperimentSpec, experiment_names

#: Experiments the congest CLI can capture (same gate as the trace
#: CLI: per-packet records must stay proportionate to the run).
EXPERIMENTS = experiment_names(traceable=True)


def run_congested(
    experiment: str,
    shape: tuple[int, int, int] = (4, 4, 4),
    rounds: int = 2,
    payload: int = 0,
    seed: int = 0,
    hops: Optional[int] = None,
    senders: Optional[int] = None,
) -> RunResult:
    """Capture one experiment with flight + congestion recording on.

    ``senders`` (when given) rides along as a spec extra — the
    ``congestion`` incast experiment reads it to widen the many-to-one
    fan-in (e.g. 26 for the full 3x3x3 26-to-1 incast).
    """
    spec = ExperimentSpec(
        experiment=experiment,
        shape=shape,
        rounds=rounds,
        payload=payload,
        seed=seed,
        hops=hops,
    )
    if senders is not None:
        spec = spec.with_extras(senders=int(senders))
    return run_experiment(spec, Captures(flight=True, congestion=True))
