"""Per-link-direction queue-occupancy telemetry (the congestion X-ray).

The flight recorder already captures *per-packet* causal spans; this
recorder captures the *per-link* side of the same story: an
event-driven timeline of queue depth and cumulative occupancy for every
link direction that carries traffic, recorded into the same
fixed-capacity :class:`~repro.monitor.series.RingSeries` buffers the
continuous-monitoring sampler uses — bounded memory whatever the run
length, with overwritten samples counted in ``dropped``, never lost
silently.

Like the flight recorder, the fault session, and the engine profiler,
this is a passive observer with a zero-cost disabled path: the
network's default recorder is the module-level :data:`NULL_CONGESTION`
singleton whose ``enabled`` flag is ``False``, and the transport guards
every hook behind that flag.  An instrumented run is
simulation-identical to a bare one (property-tested by
``tests/properties/test_congestion_equivalence.py``).

When a :class:`~repro.trace.metrics.MetricsRegistry` is supplied the
recorder also feeds the ``congestion.*`` aggregate metrics:
``congestion.grants`` / ``congestion.waits`` counters, a
``congestion.hol_wait_ns`` histogram, and a ``congestion.queue_depth``
gauge whose high watermark is the deepest head-of-line queue seen on
any direction.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from repro.monitor.series import RingSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.link import TorusLink
    from repro.network.packet import Packet
    from repro.trace.metrics import MetricsRegistry


def direction_label(dim: str, sign: int) -> str:
    """The six-way direction tag (``x+`` … ``z-``) used to group link
    telemetry across the machine."""
    return f"{dim}{'+' if sign > 0 else '-'}"


class NullCongestionRecorder:
    """The do-nothing recorder guarding the disabled fast path.

    The transport checks ``recorder.enabled`` before calling any hook,
    so these methods exist only as a safety net for direct callers.
    """

    enabled = False
    metrics: "Optional[MetricsRegistry]" = None

    def hop_enqueued(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        pass

    def hop_granted(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        pass


#: Shared default recorder for every uninstrumented network.
NULL_CONGESTION = NullCongestionRecorder()


class _LinkStats:
    """Mutable per-link accumulator on the recorder's hot path.

    Keyed by the :class:`~repro.network.link.TorusLink` object itself
    (identity hash — no string formatting per event); the link name is
    rendered once, at first sight.
    """

    __slots__ = (
        "name", "direction", "depth", "occupancy",
        "wait_ns", "waits", "grants", "peak_depth", "occupied_ns",
    )

    def __init__(self, name: str, direction: str) -> None:
        self.name = name
        self.direction = direction
        self.depth: Optional[RingSeries] = None
        self.occupancy: Optional[RingSeries] = None
        self.wait_ns = 0.0
        self.waits = 0
        self.grants = 0
        self.peak_depth = 0
        self.occupied_ns = 0.0


class CongestionRecorder:
    """Event-driven per-link-direction congestion timelines.

    Parameters
    ----------
    series_capacity:
        Ring-buffer capacity of every per-link timeline (same default
        as the monitor sampler's series).
    metrics:
        Optional registry for the ``congestion.*`` aggregates.
    """

    def __init__(
        self,
        series_capacity: int = 512,
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> None:
        self.enabled = True
        self.metrics = metrics
        self.series_capacity = int(series_capacity)
        #: Per-link accumulators, keyed by the live link object.
        self._stats: "dict[TorusLink, _LinkStats]" = {}
        #: (packet_id, link) → enqueue time of an unresolved wait.
        self._pending: "dict[tuple[int, TorusLink], float]" = {}

    # ------------------------------------------------------------------
    # hooks (called by the network transport, behind ``enabled``)
    # ------------------------------------------------------------------
    def _make(self, link: "TorusLink") -> _LinkStats:
        lid = link.link_id
        st = _LinkStats(repr(lid), direction_label(lid.dim, lid.sign))
        self._stats[link] = st
        return st

    def hop_enqueued(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        """The packet found the link busy and joined its queue."""
        st = self._stats.get(link)
        if st is None:
            st = self._make(link)
        depth = link.channel.queue_length + 1  # including this packet
        self._pending[(packet.packet_id, link)] = now
        series = st.depth
        if series is None:
            series = st.depth = RingSeries(
                f"{st.name}.depth", self.series_capacity
            )
        series.append(now, float(depth))
        if depth > st.peak_depth:
            st.peak_depth = depth
        m = self.metrics
        if m is not None:
            m.gauge("congestion.queue_depth").set(depth)

    def hop_granted(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        """The packet acquired the channel and starts streaming."""
        st = self._stats.get(link)
        if st is None:
            st = self._make(link)
        m = self.metrics
        if self._pending:
            enqueue_ns = self._pending.pop((packet.packet_id, link), None)
            if enqueue_ns is not None:
                wait = now - enqueue_ns
                st.wait_ns += wait
                st.waits += 1
                # The grant drains one waiter; sample the shrinking queue.
                st.depth.append(now, float(link.channel.queue_length))
                if m is not None:
                    m.histogram("congestion.hol_wait_ns").observe(wait)
                    m.counter("congestion.waits").inc()
        st.grants += 1
        st.occupied_ns += packet.serialization_ns
        series = st.occupancy
        if series is None:
            series = st.occupancy = RingSeries(
                f"{st.name}.occupancy_ns", self.series_capacity
            )
        series.append(now, st.occupied_ns)
        if m is not None:
            m.counter("congestion.grants").inc()

    # ------------------------------------------------------------------
    # queries (name-keyed views over the per-link accumulators)
    # ------------------------------------------------------------------
    @property
    def depth_series(self) -> dict[str, RingSeries]:
        """Link name → queue-depth timeline (only links that queued)."""
        return {st.name: st.depth for st in self._stats.values()
                if st.depth is not None}

    @property
    def occupancy_series(self) -> dict[str, RingSeries]:
        """Link name → cumulative occupancy-ns timeline."""
        return {st.name: st.occupancy for st in self._stats.values()
                if st.occupancy is not None}

    @property
    def directions(self) -> dict[str, str]:
        """Link name → direction tag ("z+" …)."""
        return {st.name: st.direction for st in self._stats.values()}

    @property
    def wait_ns(self) -> dict[str, float]:
        return {st.name: st.wait_ns for st in self._stats.values()
                if st.waits}

    @property
    def waits(self) -> dict[str, int]:
        return {st.name: st.waits for st in self._stats.values()
                if st.waits}

    @property
    def grants(self) -> dict[str, int]:
        return {st.name: st.grants for st in self._stats.values()
                if st.grants}

    @property
    def peak_depth(self) -> dict[str, int]:
        return {st.name: st.peak_depth for st in self._stats.values()
                if st.peak_depth}

    @property
    def occupied_ns(self) -> dict[str, float]:
        return {st.name: st.occupied_ns for st in self._stats.values()
                if st.grants}

    def links(self) -> list[str]:
        """All link directions that saw a grant or a wait, sorted."""
        return sorted(st.name for st in self._stats.values())

    def direction(self, link: str) -> str:
        return self.directions[link]

    def total_wait_ns(self) -> float:
        return sum(st.wait_ns for st in self._stats.values())

    def total_dropped(self) -> int:
        """Ring-buffer samples overwritten across every timeline."""
        return sum(
            s.dropped
            for st in self._stats.values()
            for s in (st.depth, st.occupancy)
            if s is not None
        )

    def max_peak_depth(self) -> int:
        return max(
            (st.peak_depth for st in self._stats.values()), default=0
        )

    def clear(self) -> None:
        self._stats.clear()
        self._pending.clear()

    def __len__(self) -> int:
        return len(self._stats)


# ---------------------------------------------------------------------------
# Ambient recorder (same pattern as repro.trace.flight.use_flight)
# ---------------------------------------------------------------------------
#: Recorder picked up by every Network constructed while it is active.
_active_congestion: "CongestionRecorder | NullCongestionRecorder" = NULL_CONGESTION


def active_congestion() -> "CongestionRecorder | NullCongestionRecorder":
    """The recorder new networks attach at construction time."""
    return _active_congestion


@contextmanager
def use_congestion(
    recorder: Optional[CongestionRecorder] = None,
) -> Iterator[CongestionRecorder]:
    """Install a congestion recorder as the ambient one for the block."""
    global _active_congestion
    if recorder is None:
        recorder = CongestionRecorder()
    prev = _active_congestion
    _active_congestion = recorder
    try:
        yield recorder
    finally:
        _active_congestion = prev
