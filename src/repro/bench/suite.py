"""The curated quick benchmark suite behind ``python -m repro bench``.

A deterministic, seconds-scale sweep over the model's headline numbers
— one-way latency per hop count, all-reduce, message-split transfer,
migration synchronization, bandwidth efficiency — emitted as a
:class:`~repro.bench.results.ResultSet`.  It is intentionally
self-contained (no pytest, no timing of wall-clock anything: every
value is *simulated* nanoseconds or a dimensionless model property),
so the regression gate compares physics, not host noise, and the same
command works locally and in CI:

.. code-block:: console

    $ python -m repro bench --out results.json
    $ python -m repro bench --compare benchmarks/baseline.json

The pytest benchmarks under ``benchmarks/`` measure wall-clock *host*
performance of the simulator itself and publish through the same
schema; this module is the model-behaviour half of the pipeline.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.results import BenchResult, ResultSet

#: Default machine shape for the suite; small enough for seconds-scale
#: runs, large enough for 3 network hops and a non-trivial collective.
DEFAULT_SHAPE = (4, 4, 4)


def _shape_config(shape: tuple[int, int, int], **extra) -> dict:
    cfg = {"shape": list(shape)}
    cfg.update(extra)
    return cfg


def _latency_results(shape: tuple[int, int, int]) -> list[BenchResult]:
    from repro.analysis.attribution import measure_attribution
    from repro.topology.torus import Torus3D

    max_hops = min(3, Torus3D(*shape).max_hops())
    out = []
    for hops in range(max_hops + 1):
        m = measure_attribution(hops=hops, shape=shape)
        out.append(
            BenchResult(
                benchmark="latency",
                metric=f"one_way_{hops}hop_ns",
                value=m.elapsed_ns,
                units="ns",
                better="lower",
                config=_shape_config(shape, hops=hops, payload_bytes=0),
            )
        )
    return out


def _allreduce_results(shape: tuple[int, int, int]) -> list[BenchResult]:
    from repro.asic.node import build_machine
    from repro.comm.collectives import AllReduce, ButterflyAllReduce
    from repro.engine.simulator import Simulator

    out = []
    for metric, cls in (
        ("dimension_ordered_32B_ns", AllReduce),
        ("butterfly_32B_ns", ButterflyAllReduce),
    ):
        sim = Simulator()
        machine = build_machine(sim, *shape)
        elapsed = cls(machine, payload_bytes=32).run().elapsed_ns
        out.append(
            BenchResult(
                benchmark="allreduce",
                metric=metric,
                value=elapsed,
                units="ns",
                better="lower",
                config=_shape_config(shape, payload_bytes=32),
            )
        )
    return out


def _transfer_result(shape: tuple[int, int, int]) -> BenchResult:
    from repro.analysis.transfer import anton_transfer_ns

    return BenchResult(
        benchmark="transfer",
        metric="split_2048B_8msg_ns",
        value=anton_transfer_ns(2048, 8, hops=1, shape=shape),
        units="ns",
        better="lower",
        config=_shape_config(shape, total_bytes=2048, num_messages=8, hops=1),
    )


def _migration_result(shape: tuple[int, int, int]) -> BenchResult:
    from repro.asic.node import build_machine
    from repro.comm.migration import MigrationProtocol
    from repro.engine.simulator import Simulator

    sim = Simulator()
    machine = build_machine(sim, *shape)
    elapsed = MigrationProtocol(machine).run().elapsed_ns
    return BenchResult(
        benchmark="migration",
        metric="sync_only_ns",
        value=elapsed,
        units="ns",
        better="lower",
        config=_shape_config(shape, moves=0),
    )


def _bandwidth_results() -> list[BenchResult]:
    from repro.analysis.transfer import bandwidth_efficiency, half_bandwidth_payload

    return [
        BenchResult(
            benchmark="bandwidth",
            metric="efficiency_28B",
            value=bandwidth_efficiency(28),
            units="fraction",
            better="higher",
            config={"payload_bytes": 28},
        ),
        BenchResult(
            benchmark="bandwidth",
            metric="half_bandwidth_payload_bytes",
            value=half_bandwidth_payload(),
            units="bytes",
            better="lower",
            config={},
        ),
    ]


def _monitor_results(shape: tuple[int, int, int]) -> list[BenchResult]:
    """The continuous-monitoring perturbation gate.

    Runs the dimension-ordered all-reduce twice — monitored (sampler +
    watchdogs at a 100 ns interval) and bare — and reports the
    *simulated-time* difference.  The baseline value is 0.0, and the
    comparison treats a zero baseline specially (any nonzero current
    value is an infinite regression), so this entry is a hard gate:
    monitoring that perturbs simulated results by even a nanosecond
    fails ``python -m repro bench --compare``.  The sample count and
    violation count pin the sampler cadence and the watchdogs' verdict.
    """
    from repro.asic.node import build_machine
    from repro.comm.collectives import AllReduce
    from repro.engine.simulator import Simulator
    from repro.monitor.health import use_monitoring

    def one_run(monitored: bool):
        sim = Simulator()
        if monitored:
            with use_monitoring(interval_ns=100.0) as session:
                machine = build_machine(sim, *shape)
        else:
            session = None
            machine = build_machine(sim, *shape)
        elapsed = AllReduce(machine, payload_bytes=32).run().elapsed_ns
        if session is None:
            return elapsed, None, None
        monitor = session.monitors[0]
        verdict = monitor.finalize()
        return elapsed, monitor, verdict

    bare_ns, _, _ = one_run(monitored=False)
    mon_ns, monitor, verdict = one_run(monitored=True)
    assert monitor is not None and verdict is not None
    violations = sum(1 for c in verdict.checks if c.status == "error")
    cfg = _shape_config(shape, payload_bytes=32, interval_ns=100.0)
    return [
        BenchResult(
            benchmark="monitor",
            metric="sim_time_delta_ns",
            value=abs(mon_ns - bare_ns),
            units="ns",
            better="lower",
            config=cfg,
        ),
        BenchResult(
            benchmark="monitor",
            metric="invariant_violations",
            value=float(violations),
            units="count",
            better="lower",
            config=cfg,
        ),
        BenchResult(
            benchmark="monitor",
            metric="sampler_ticks",
            value=float(monitor.sampler.ticks),
            units="count",
            better="higher",
            config=cfg,
        ),
    ]


def run_suite(
    shape: tuple[int, int, int] = DEFAULT_SHAPE,
    only: Optional[set[str]] = None,
) -> ResultSet:
    """Run the quick suite and return its results.

    ``only`` restricts to a subset of benchmark names (``latency``,
    ``allreduce``, ``transfer``, ``migration``, ``bandwidth``,
    ``monitor``).
    """
    results: list[BenchResult] = []

    def want(name: str) -> bool:
        return only is None or name in only

    if want("latency"):
        results.extend(_latency_results(shape))
    if want("allreduce"):
        results.extend(_allreduce_results(shape))
    if want("transfer"):
        results.append(_transfer_result(shape))
    if want("migration"):
        results.append(_migration_result(shape))
    if want("bandwidth"):
        results.extend(_bandwidth_results())
    if want("monitor"):
        results.extend(_monitor_results(shape))
    return ResultSet(results)


#: Benchmark names ``run_suite`` knows.
SUITE_BENCHMARKS = (
    "latency", "allreduce", "transfer", "migration", "bandwidth", "monitor"
)
