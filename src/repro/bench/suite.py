"""The curated quick benchmark suite behind ``python -m repro bench``.

A deterministic, seconds-scale sweep over the model's headline numbers
— one-way latency per hop count, all-reduce, message-split transfer,
migration synchronization, bandwidth efficiency — emitted as a
:class:`~repro.bench.results.ResultSet`.  It is intentionally
self-contained (no pytest, no timing of wall-clock anything: every
value is *simulated* nanoseconds or a dimensionless model property),
so the regression gate compares physics, not host noise, and the same
command works locally and in CI:

.. code-block:: console

    $ python -m repro bench --out results.json
    $ python -m repro bench --compare benchmarks/baseline.json

The pytest benchmarks under ``benchmarks/`` measure wall-clock *host*
performance of the simulator itself and publish through the same
schema; this module is the model-behaviour half of the pipeline.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.results import BenchResult, ResultSet

#: Default machine shape for the suite; small enough for seconds-scale
#: runs, large enough for 3 network hops and a non-trivial collective.
DEFAULT_SHAPE = (4, 4, 4)


def _shape_config(shape: tuple[int, int, int], **extra) -> dict:
    cfg = {"shape": list(shape)}
    cfg.update(extra)
    return cfg


def _sweep_specs(shape: tuple[int, int, int], only: Optional[set[str]]):
    """The suite's independent-run benchmarks as experiment specs.

    ``latency``/``allreduce``/``transfer`` are grids of standalone
    simulations, so the suite executes them through
    :func:`repro.runner.sweep.run_sweep` — one call, parallelizable
    with ``jobs`` — and maps each :class:`~repro.runner.result.RunResult`
    back onto the suite's historical metric names and config dicts so
    committed baselines keep gating unchanged.
    """
    from repro.runner.spec import ExperimentSpec
    from repro.topology.torus import Torus3D

    def want(name: str) -> bool:
        return only is None or name in only

    specs: list[tuple[ExperimentSpec, BenchResult]] = []
    if want("latency"):
        max_hops = min(3, Torus3D(*shape).max_hops())
        for hops in range(max_hops + 1):
            specs.append((
                ExperimentSpec("latency", shape=shape, hops=hops),
                BenchResult(
                    benchmark="latency",
                    metric=f"one_way_{hops}hop_ns",
                    value=0.0,
                    units="ns",
                    better="lower",
                    config=_shape_config(shape, hops=hops, payload_bytes=0),
                ),
            ))
    if want("allreduce"):
        for algorithm in ("dimension_ordered", "butterfly"):
            specs.append((
                ExperimentSpec(
                    "allreduce", shape=shape, payload=32,
                    extras=(("algorithm", algorithm),),
                ),
                BenchResult(
                    benchmark="allreduce",
                    metric=f"{algorithm}_32B_ns",
                    value=0.0,
                    units="ns",
                    better="lower",
                    config=_shape_config(shape, payload_bytes=32),
                ),
            ))
    if want("transfer"):
        specs.append((
            ExperimentSpec(
                "transfer", shape=shape,
                extras=(("messages", 8), ("total_bytes", 2048)),
            ),
            BenchResult(
                benchmark="transfer",
                metric="split_2048B_8msg_ns",
                value=0.0,
                units="ns",
                better="lower",
                config=_shape_config(
                    shape, total_bytes=2048, num_messages=8, hops=1
                ),
            ),
        ))
    return specs


def _sweep_results(
    shape: tuple[int, int, int], only: Optional[set[str]], jobs: int
) -> list[BenchResult]:
    from dataclasses import replace

    from repro.runner.sweep import run_sweep

    specs = _sweep_specs(shape, only)
    if not specs:
        return []
    report = run_sweep([spec for spec, _ in specs], jobs=jobs)
    if not report.ok:
        failed = report.failures[0]
        raise RuntimeError(
            f"suite benchmark {failed.spec.label()} failed: {failed.error}"
        )
    out = []
    for point, (_, template) in zip(report.points, specs):
        out.append(replace(template, value=point.result.value(template.metric)))
    return out


def _migration_result(shape: tuple[int, int, int]) -> BenchResult:
    from repro.asic.node import build_machine
    from repro.comm.migration import MigrationProtocol
    from repro.engine.simulator import Simulator

    sim = Simulator()
    machine = build_machine(sim, *shape)
    elapsed = MigrationProtocol(machine).run().elapsed_ns
    return BenchResult(
        benchmark="migration",
        metric="sync_only_ns",
        value=elapsed,
        units="ns",
        better="lower",
        config=_shape_config(shape, moves=0),
    )


def _bandwidth_results() -> list[BenchResult]:
    from repro.analysis.transfer import bandwidth_efficiency, half_bandwidth_payload

    return [
        BenchResult(
            benchmark="bandwidth",
            metric="efficiency_28B",
            value=bandwidth_efficiency(28),
            units="fraction",
            better="higher",
            config={"payload_bytes": 28},
        ),
        BenchResult(
            benchmark="bandwidth",
            metric="half_bandwidth_payload_bytes",
            value=half_bandwidth_payload(),
            units="bytes",
            better="lower",
            config={},
        ),
    ]


def _monitor_results(shape: tuple[int, int, int]) -> list[BenchResult]:
    """The continuous-monitoring perturbation gate.

    Runs the dimension-ordered all-reduce twice — monitored (sampler +
    watchdogs at a 100 ns interval) and bare — and reports the
    *simulated-time* difference.  The baseline value is 0.0, and the
    comparison treats a zero baseline specially (any nonzero current
    value is an infinite regression), so this entry is a hard gate:
    monitoring that perturbs simulated results by even a nanosecond
    fails ``python -m repro bench --compare``.  The sample count and
    violation count pin the sampler cadence and the watchdogs' verdict.
    """
    from repro.asic.node import build_machine
    from repro.comm.collectives import AllReduce
    from repro.engine.simulator import Simulator
    from repro.monitor.health import use_monitoring

    def one_run(monitored: bool):
        sim = Simulator()
        if monitored:
            with use_monitoring(interval_ns=100.0) as session:
                machine = build_machine(sim, *shape)
        else:
            session = None
            machine = build_machine(sim, *shape)
        elapsed = AllReduce(machine, payload_bytes=32).run().elapsed_ns
        if session is None:
            return elapsed, None, None
        monitor = session.monitors[0]
        verdict = monitor.finalize()
        return elapsed, monitor, verdict

    bare_ns, _, _ = one_run(monitored=False)
    mon_ns, monitor, verdict = one_run(monitored=True)
    assert monitor is not None and verdict is not None
    violations = sum(1 for c in verdict.checks if c.status == "error")
    cfg = _shape_config(shape, payload_bytes=32, interval_ns=100.0)
    return [
        BenchResult(
            benchmark="monitor",
            metric="sim_time_delta_ns",
            value=abs(mon_ns - bare_ns),
            units="ns",
            better="lower",
            config=cfg,
        ),
        BenchResult(
            benchmark="monitor",
            metric="invariant_violations",
            value=float(violations),
            units="count",
            better="lower",
            config=cfg,
        ),
        BenchResult(
            benchmark="monitor",
            metric="sampler_ticks",
            value=float(monitor.sampler.ticks),
            units="count",
            better="higher",
            config=cfg,
        ),
    ]


def _scheduler_results(shape: tuple[int, int, int]) -> list[BenchResult]:
    """The cross-scheduler equivalence gate.

    Runs the dimension-ordered all-reduce and the incast under both the
    heap and the time-wheel scheduler and reports the *simulated-time*
    difference plus the executed-event-count difference.  Like the
    monitor gate, the baseline values are 0.0 and a zero baseline
    treats any nonzero current value as an infinite regression — so a
    scheduler that perturbs results by one nanosecond or dispatches a
    different number of events fails ``python -m repro bench
    --compare``.  Wall-clock speed is deliberately *not* gated here
    (host noise); the pytest benchmark ``benchmarks/bench_scheduler.py``
    measures it.
    """
    from repro.engine.scheduler import use_scheduler
    from repro.runner.result import run_experiment
    from repro.runner.spec import ExperimentSpec

    def both(spec):
        out = []
        for name in ("heap", "wheel"):
            with use_scheduler(name):
                out.append(run_experiment(spec))
        return out

    results = []
    for tag, spec in (
        ("allreduce", ExperimentSpec(
            "allreduce", shape=shape, payload=32,
            extras=(("algorithm", "dimension_ordered"),),
        )),
        ("incast", ExperimentSpec(
            "congestion", shape=shape, payload=256, rounds=2,
        )),
    ):
        heap, wheel = both(spec)
        cfg = _shape_config(shape, experiment=spec.experiment)
        results.append(BenchResult(
            benchmark="scheduler",
            metric=f"{tag}_sim_time_delta_ns",
            value=abs(heap.elapsed_ns - wheel.elapsed_ns),
            units="ns",
            better="lower",
            config=cfg,
        ))
        results.append(BenchResult(
            benchmark="scheduler",
            metric=f"{tag}_event_count_delta",
            value=float(abs(
                heap.meta["events_executed"] - wheel.meta["events_executed"]
            )),
            units="count",
            better="lower",
            config=cfg,
        ))
    return results


def run_suite(
    shape: tuple[int, int, int] = DEFAULT_SHAPE,
    only: Optional[set[str]] = None,
    jobs: int = 1,
) -> ResultSet:
    """Run the quick suite and return its results.

    ``only`` restricts to a subset of benchmark names (``latency``,
    ``allreduce``, ``transfer``, ``migration``, ``bandwidth``,
    ``monitor``, ``scheduler``).  ``jobs`` parallelizes the independent-run
    benchmarks across worker processes; results are bit-identical to
    ``jobs=1``.
    """
    results: list[BenchResult] = list(_sweep_results(shape, only, jobs))

    def want(name: str) -> bool:
        return only is None or name in only

    if want("migration"):
        results.append(_migration_result(shape))
    if want("bandwidth"):
        results.extend(_bandwidth_results())
    if want("monitor"):
        results.extend(_monitor_results(shape))
    if want("scheduler"):
        results.extend(_scheduler_results(shape))
    return ResultSet(results)


#: Benchmark names ``run_suite`` knows.
SUITE_BENCHMARKS = (
    "latency", "allreduce", "transfer", "migration", "bandwidth", "monitor",
    "scheduler",
)
