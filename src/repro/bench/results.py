"""Machine-readable benchmark results (the ``repro-bench/1`` schema).

Every benchmark in this repo — the pytest-driven suite under
``benchmarks/`` and the curated quick suite behind ``python -m repro
bench`` — reports measurements as :class:`BenchResult` records and
persists them as :class:`ResultSet` JSON documents:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "results": [
        {
          "benchmark": "latency",
          "metric": "one_way_1hop_ns",
          "value": 162.0,
          "units": "ns",
          "better": "lower",
          "config": {"shape": [4, 4, 4], "hops": 1, "payload_bytes": 0},
          "config_hash": "f3b0c4429a1e"
        }
      ]
    }

Two rules make the files diffable and regression-checkable:

* **Identity** — a result is keyed by ``(benchmark, metric,
  config_hash)`` where the hash covers the *configuration that defines
  the measurement* (shape, payload, rounds…), never the measured
  value.  A baseline and a fresh run match up iff their keys match.
* **Determinism** — serialization is canonical (sorted keys, fixed
  separators, results ordered by key, trailing newline, no
  timestamps), so identical measurements produce byte-identical files.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

#: Current schema identifier; bump on incompatible format changes.
SCHEMA = "repro-bench/1"

_BETTER = ("lower", "higher")


def canonical_json(doc: Any) -> str:
    """The one true serialization: sorted keys, no whitespace."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def config_hash(config: dict) -> str:
    """12-hex-digit digest identifying a benchmark configuration."""
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()[:12]


@dataclass
class BenchResult:
    """One measured metric of one benchmark configuration."""

    benchmark: str
    metric: str
    value: float
    units: str
    better: str = "lower"
    config: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.better not in _BETTER:
            raise ValueError(
                f"better must be one of {_BETTER}, got {self.better!r}"
            )
        self.value = float(self.value)
        if not math.isfinite(self.value):
            raise ValueError(
                f"{self.benchmark}/{self.metric}: value must be finite, "
                f"got {self.value!r}"
            )
        if not self.benchmark or not self.metric or not self.units:
            raise ValueError("benchmark, metric and units must be non-empty")

    @property
    def config_hash(self) -> str:
        return config_hash(self.config)

    @property
    def key(self) -> tuple[str, str, str]:
        """Identity for baseline matching."""
        return (self.benchmark, self.metric, self.config_hash)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "metric": self.metric,
            "value": self.value,
            "units": self.units,
            "better": self.better,
            "config": self.config,
            "config_hash": self.config_hash,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "BenchResult":
        missing = {"benchmark", "metric", "value", "units", "better"} - set(doc)
        if missing:
            raise ValueError(f"result record missing fields: {sorted(missing)}")
        result = cls(
            benchmark=doc["benchmark"],
            metric=doc["metric"],
            value=doc["value"],
            units=doc["units"],
            better=doc["better"],
            config=doc.get("config", {}),
        )
        stored = doc.get("config_hash")
        if stored is not None and stored != result.config_hash:
            raise ValueError(
                f"{result.benchmark}/{result.metric}: stored config_hash "
                f"{stored} does not match config (expected "
                f"{result.config_hash}); the record was edited inconsistently"
            )
        return result


class ResultSet:
    """An ordered, duplicate-free collection of benchmark results."""

    def __init__(self, results: Optional[Iterable[BenchResult]] = None) -> None:
        self._by_key: dict[tuple[str, str, str], BenchResult] = {}
        for r in results or ():
            self.add(r)

    def add(self, result: BenchResult) -> None:
        if result.key in self._by_key:
            raise ValueError(
                f"duplicate result for {result.benchmark}/{result.metric} "
                f"(config {result.config_hash})"
            )
        self._by_key[result.key] = result

    def __iter__(self) -> Iterator[BenchResult]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self._by_key)

    def sorted(self) -> list[BenchResult]:
        """Results in canonical (key) order."""
        return [self._by_key[k] for k in sorted(self._by_key)]

    def get(self, key: tuple[str, str, str]) -> Optional[BenchResult]:
        return self._by_key.get(key)

    def keys(self) -> set[tuple[str, str, str]]:
        return set(self._by_key)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "results": [r.to_dict() for r in self.sorted()],
        }

    def dumps(self) -> str:
        """Canonical, human-diffable JSON (byte-identical for identical
        measurements: sorted keys and results, no timestamps)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, doc: dict) -> "ResultSet":
        if not isinstance(doc, dict):
            raise ValueError(f"result document must be an object, got {type(doc)}")
        schema = doc.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"unsupported results schema {schema!r} (expected {SCHEMA!r})"
            )
        records = doc.get("results")
        if not isinstance(records, list):
            raise ValueError("result document missing 'results' list")
        return cls(BenchResult.from_dict(r) for r in records)

    @classmethod
    def loads(cls, text: str) -> "ResultSet":
        return cls.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @classmethod
    def read(cls, path: str) -> "ResultSet":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())

    @classmethod
    def read_many(cls, paths: Iterable[str]) -> "ResultSet":
        """Merge several result files (e.g. one per benchmark module)
        into one set; duplicate keys are an error."""
        merged = cls()
        for path in paths:
            for result in cls.read(path):
                merged.add(result)
        return merged
