"""Benchmark regression detection: diff two result sets.

:func:`compare` matches a current :class:`~repro.bench.results.ResultSet`
against a baseline by result key (benchmark, metric, config hash) and
classifies each pair by its relative change, honouring the metric's
declared direction (``better: lower`` vs ``better: higher``).  A pair
whose *worsening* exceeds the threshold is a regression; CI fails the
build on any (``python -m repro bench --compare baseline.json`` exits
non-zero).

Thresholds are configurable globally and per metric: the lookup tries
``"<benchmark>/<metric>"``, then ``"<benchmark>"``, then the default —
so a single noisy benchmark can get slack without loosening the gate
for everything else.  The simulator is deterministic, so the default
threshold is tight; it exists to absorb intentional small model
retunings, not measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bench.results import BenchResult, ResultSet

#: Default maximum tolerated fractional worsening (5%).
DEFAULT_THRESHOLD = 0.05

#: Schema tag of the machine-readable verdict (``bench --json``).
VERDICT_SCHEMA = "repro-bench-verdict/1"


@dataclass(slots=True)
class Delta:
    """One baseline/current pair and its classification."""

    baseline: BenchResult
    current: BenchResult
    threshold: float

    @property
    def key(self) -> tuple[str, str, str]:
        return self.baseline.key

    @property
    def change(self) -> float:
        """Signed relative change, ``(current - baseline) / baseline``.

        A zero baseline only compares equal to zero: any nonzero
        current value counts as an infinite change in its direction.
        """
        if self.baseline.value == 0.0:
            if self.current.value == 0.0:
                return 0.0
            return float("inf") if self.current.value > 0 else float("-inf")
        return (self.current.value - self.baseline.value) / abs(
            self.baseline.value
        )

    @property
    def worsening(self) -> float:
        """Relative change in the *bad* direction (≤ 0 when no worse)."""
        return self.change if self.baseline.better == "lower" else -self.change

    @property
    def is_regression(self) -> bool:
        return self.worsening > self.threshold

    @property
    def is_improvement(self) -> bool:
        return self.worsening < -self.threshold


@dataclass
class Comparison:
    """Outcome of diffing a current run against a baseline."""

    deltas: list[Delta] = field(default_factory=list)
    #: Keys present in the baseline but absent from the current run —
    #: a silently vanished benchmark would otherwise mask a regression.
    missing: list[tuple[str, str, str]] = field(default_factory=list)
    #: Keys the current run added (informational, never failing).
    added: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.is_regression]

    @property
    def improvements(self) -> list[Delta]:
        return [d for d in self.deltas if d.is_improvement]

    @property
    def ok(self) -> bool:
        """True when nothing regressed and nothing disappeared."""
        return not self.regressions and not self.missing


def threshold_for(
    result: BenchResult,
    default: float = DEFAULT_THRESHOLD,
    overrides: Optional[dict[str, float]] = None,
) -> float:
    """Resolve the regression threshold for one result.

    Most specific wins: ``"<benchmark>/<metric>"`` →
    ``"<benchmark>"`` → ``default``.
    """
    if overrides:
        for key in (f"{result.benchmark}/{result.metric}", result.benchmark):
            if key in overrides:
                return overrides[key]
    return default


def compare(
    baseline: ResultSet,
    current: ResultSet,
    threshold: float = DEFAULT_THRESHOLD,
    overrides: Optional[dict[str, float]] = None,
) -> Comparison:
    """Diff ``current`` against ``baseline``."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    out = Comparison()
    for base in baseline:
        cur = current.get(base.key)
        if cur is None:
            out.missing.append(base.key)
            continue
        out.deltas.append(
            Delta(
                baseline=base,
                current=cur,
                threshold=threshold_for(base, threshold, overrides),
            )
        )
    out.added = sorted(current.keys() - baseline.keys())
    return out


def verdict_doc(cmp: Optional[Comparison]) -> dict:
    """The comparison as one machine-readable verdict document.

    This is the single code path CI, ``bench --json``, and the
    observatory ledger share: ``ok`` mirrors the process exit code,
    and each flagged delta carries its direction-signed worsening.
    ``cmp=None`` (no baseline given) yields a trivially-ok verdict
    with ``compared: 0``.
    """
    if cmp is None:
        return {
            "schema": VERDICT_SCHEMA,
            "ok": True,
            "compared": 0,
            "regressions": [],
            "improvements": [],
            "missing": [],
            "added": [],
        }

    def row(d: Delta) -> dict:
        worsening = d.worsening
        return {
            "benchmark": d.baseline.benchmark,
            "metric": d.baseline.metric,
            "config_hash": d.baseline.config_hash,
            "baseline": d.baseline.value,
            "current": d.current.value,
            "worsening": (
                None if worsening in (float("inf"), float("-inf"))
                else worsening
            ),
            "threshold": d.threshold,
        }

    return {
        "schema": VERDICT_SCHEMA,
        "ok": cmp.ok,
        "compared": len(cmp.deltas),
        "regressions": [row(d) for d in cmp.regressions],
        "improvements": [row(d) for d in cmp.improvements],
        "missing": ["/".join(key) for key in cmp.missing],
        "added": ["/".join(key) for key in cmp.added],
    }


def render_comparison(cmp: Comparison) -> str:
    """Plain-text comparison report: every matched pair with its
    relative change, flagged regressions/improvements, then the keys
    only one side has."""
    from repro.analysis.report import render_table

    rows = []
    for d in sorted(cmp.deltas, key=lambda d: d.key):
        flag = ""
        if d.is_regression:
            flag = "REGRESSION"
        elif d.is_improvement:
            flag = "improved"
        rows.append(
            [
                d.baseline.benchmark,
                d.baseline.metric,
                d.baseline.value,
                d.current.value,
                f"{d.change * 100.0:+.2f}%",
                flag,
            ]
        )
    lines = [
        render_table(
            "Benchmark comparison vs baseline",
            ["benchmark", "metric", "baseline", "current", "change", ""],
            rows,
            float_format="{:.2f}",
        )
    ]
    for key in cmp.missing:
        lines.append(f"MISSING from current run: {'/'.join(key)}")
    for key in cmp.added:
        lines.append(f"new (no baseline): {'/'.join(key)}")
    verdict = "OK" if cmp.ok else (
        f"FAIL: {len(cmp.regressions)} regression(s), "
        f"{len(cmp.missing)} missing"
    )
    lines.append(verdict)
    return "\n".join(lines)
