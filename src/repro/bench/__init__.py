"""The benchmark-regression pipeline.

Three pieces turn ad-hoc benchmark prints into a CI gate:

* :mod:`repro.bench.results` — the ``repro-bench/1`` schema: every
  benchmark writes :class:`BenchResult` records into deterministic,
  diffable :class:`ResultSet` JSON files keyed by (benchmark, metric,
  config hash);
* :mod:`repro.bench.compare` — diffs a run against a committed
  baseline with configurable per-metric thresholds and direction-aware
  regression classification;
* :mod:`repro.bench.suite` — the curated quick suite behind
  ``python -m repro bench``, measuring simulated model behaviour
  (latency, collectives, transfer, migration, bandwidth) so the gate
  compares physics, not host wall-clock noise.
"""

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    Comparison,
    Delta,
    compare,
    render_comparison,
    threshold_for,
)
from repro.bench.results import (
    SCHEMA,
    BenchResult,
    ResultSet,
    canonical_json,
    config_hash,
)
from repro.bench.suite import DEFAULT_SHAPE, SUITE_BENCHMARKS, run_suite

__all__ = [
    "BenchResult",
    "Comparison",
    "DEFAULT_SHAPE",
    "DEFAULT_THRESHOLD",
    "Delta",
    "ResultSet",
    "SCHEMA",
    "SUITE_BENCHMARKS",
    "canonical_json",
    "compare",
    "config_hash",
    "render_comparison",
    "run_suite",
    "threshold_for",
]
