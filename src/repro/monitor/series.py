"""Fixed-capacity time-series storage for the continuous sampler.

A monitored run must never grow without bound, whatever its length —
the same discipline the engine's :class:`~repro.engine.simulator.
EventHistory` and the sketch-backed histograms follow.  A
:class:`RingSeries` keeps the most recent ``capacity`` samples in two
preallocated ``array('d')`` buffers (unboxed doubles: a 4×4×4 machine
carries 384 link-direction series without megabytes of boxed floats)
and counts every overwritten sample in :attr:`dropped` so telemetry
loss is always visible, never silent.
"""

from __future__ import annotations

from array import array


class RingSeries:
    """A bounded ``(time_ns, value)`` series with overwrite-oldest
    semantics and an explicit dropped-sample counter."""

    __slots__ = ("name", "capacity", "_t", "_v", "_head", "dropped")

    def __init__(self, name: str, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._t = array("d")
        self._v = array("d")
        self._head = 0  # oldest retained sample once the ring is full
        #: Samples overwritten to stay within capacity.
        self.dropped = 0

    def append(self, t: float, v: float) -> None:
        if len(self._t) < self.capacity:
            self._t.append(t)
            self._v.append(v)
            return
        head = self._head
        self._t[head] = t
        self._v[head] = v
        self._head = (head + 1) % self.capacity
        self.dropped += 1

    @property
    def total_seen(self) -> int:
        """Every sample ever appended, retained or dropped."""
        return len(self._t) + self.dropped

    @property
    def last(self) -> tuple[float, float]:
        """Most recent ``(time_ns, value)`` sample."""
        if not self._t:
            raise ValueError(f"series {self.name!r} is empty")
        i = (self._head - 1) % len(self._t)
        return (self._t[i], self._v[i])

    def samples(self) -> list[tuple[float, float]]:
        """Retained samples in time order (oldest first)."""
        n = len(self._t)
        head = self._head
        return [
            (self._t[(head + i) % n], self._v[(head + i) % n])
            for i in range(n)
        ]

    def values(self) -> list[float]:
        """Retained values in time order."""
        return [v for _, v in self.samples()]

    def __len__(self) -> int:
        return len(self._t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RingSeries {self.name} n={len(self._t)}/{self.capacity} "
            f"dropped={self.dropped}>"
        )
