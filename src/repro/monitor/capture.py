"""Run a named experiment with continuous monitoring attached.

This is the machinery behind ``python -m repro monitor <experiment>``
and ``python -m repro report``: it opens a
:func:`~repro.monitor.health.use_monitoring` session (every machine the
experiment builds gets a :class:`~repro.monitor.health.HealthMonitor`),
installs a bounded ambient :class:`~repro.trace.metrics.MetricsRegistry`
(histograms capped, falling back to streaming sketches), drives the
experiment, and finalizes every monitor into health verdicts.

Kept out of ``repro.monitor.__init__`` on purpose, like
:mod:`repro.trace.capture`: it imports the analysis/MD stack, which
itself imports the monitored subsystems.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from typing import Optional

from repro.monitor.health import (
    DEFAULT_STALL_NS,
    HealthMonitor,
    use_monitoring,
)
from repro.monitor.report import render_html_report, render_prometheus
from repro.monitor.sampler import DEFAULT_INTERVAL_NS
from repro.monitor.watchdog import HealthVerdict
from repro.trace.metrics import MetricsRegistry, use_registry

#: Experiments the monitor CLI can drive.  ``mdstep`` is the paper's
#: Fig. 13 workload (one range-limited + one long-range step); the
#: rest reuse the trace harnesses.
MONITOR_EXPERIMENTS = ("mdstep", "latency", "allreduce", "transfer", "congestion")

#: Histogram cap for always-on runs: beyond this many observations a
#: histogram falls back to its streaming sketch (1% relative error).
DEFAULT_HISTOGRAM_CAP = 4096


@dataclass
class MonitorCapture:
    """One monitored run: verdicts, series, metrics, and renderers."""

    experiment: str
    shape: tuple[int, int, int]
    description: str
    monitors: list[HealthMonitor]
    verdicts: list[HealthVerdict]
    metrics: MetricsRegistry

    @property
    def monitor(self) -> HealthMonitor:
        """The run's primary monitor: the one that watched the most
        activity (sweep experiments build several machines)."""
        return max(self.monitors, key=lambda m: (m.sim.now, m.sampler.ticks))

    @property
    def verdict(self) -> HealthVerdict:
        return self.verdicts[self.monitors.index(self.monitor)]

    @property
    def healthy(self) -> bool:
        """True when every machine's verdict is free of errors."""
        return all(v.healthy for v in self.verdicts)

    def html(self, title: str = "Continuous health report") -> str:
        monitor = self.monitor
        return render_html_report(
            self.verdict,
            monitor.sampler,
            self.shape,
            registry=self.metrics,
            title=title,
            experiment=f"{self.experiment} — {self.description}",
        )

    def prometheus(self) -> str:
        return render_prometheus(
            self.verdict, self.monitor.sampler, registry=self.metrics
        )

    def write_jsonl(self, path: str) -> None:
        """Diagnostics of the primary monitor as JSONL."""
        self.monitor.log.write_jsonl(path)


def _run_mdstep(shape: tuple[int, int, int], rounds: int) -> str:
    """Fig. 13's workload: ``rounds`` range-limited + long-range step
    pairs, atom count scaled with machine size from the paper's DHFR
    benchmark (23,558 atoms on 512 nodes)."""
    from repro.analysis.mdstep import build_dhfr_md
    from repro.constants import DHFR_ATOMS

    nodes = shape[0] * shape[1] * shape[2]
    atoms = max(512, DHFR_ATOMS * nodes // 512)
    md = build_dhfr_md(shape, atoms=atoms)
    rl_ns = lr_ns = 0.0
    for _ in range(max(1, rounds // 2)):
        rl_ns = md.run_step("range_limited").total_ns
        lr_ns = md.run_step("long_range").total_ns
    return (
        f"Fig. 13 step pair, {atoms} atoms on {nodes} nodes "
        f"(range-limited {rl_ns / 1e3:.2f} µs, long-range {lr_ns / 1e3:.2f} µs)"
    )


def run_monitored(
    experiment: str,
    shape: tuple[int, int, int] = (4, 4, 4),
    rounds: int = 2,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    series_capacity: int = 512,
    slow_every: int = 4,
    stall_ns: float = DEFAULT_STALL_NS,
    histogram_max_samples: Optional[int] = DEFAULT_HISTOGRAM_CAP,
    flight: Optional[bool] = None,
) -> MonitorCapture:
    """Drive ``experiment`` with continuous monitoring attached.

    ``flight=None`` (auto) attaches a
    :class:`~repro.trace.flight.FlightRecorder` for the small trace
    experiments — it feeds the per-packet latency histograms the
    sketch-vs-exact report compares — but not for ``mdstep``, whose
    per-packet record would dwarf the run.  Monitoring itself is
    passive either way: simulated results are bit-identical with the
    monitor on or off.
    """
    from repro.trace.capture import _RUNNERS as _TRACE_RUNNERS

    runners = dict(_TRACE_RUNNERS)
    runners["mdstep"] = _run_mdstep
    runner = runners.get(experiment)
    if runner is None:
        raise ValueError(
            f"unknown experiment {experiment!r}; "
            f"choose from {MONITOR_EXPERIMENTS}"
        )
    if flight is None:
        flight = experiment != "mdstep"

    metrics = MetricsRegistry(histogram_max_samples=histogram_max_samples)
    with ExitStack() as stack:
        session = stack.enter_context(
            use_monitoring(
                interval_ns=interval_ns,
                series_capacity=series_capacity,
                slow_every=slow_every,
                stall_ns=stall_ns,
                registry=metrics,
            )
        )
        stack.enter_context(use_registry(metrics))
        if flight:
            from repro.trace.flight import FlightRecorder, use_flight

            stack.enter_context(use_flight(FlightRecorder(metrics=metrics)))
        description = runner(shape, rounds)
    if not session.monitors:
        raise RuntimeError(
            f"experiment {experiment!r} built no machines to monitor"
        )
    verdicts = session.finalize()
    return MonitorCapture(
        experiment=experiment,
        shape=shape,
        description=description,
        monitors=session.monitors,
        verdicts=verdicts,
        metrics=metrics,
    )
