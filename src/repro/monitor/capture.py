"""Run a named experiment with continuous monitoring attached.

This is the machinery behind ``python -m repro monitor <experiment>``
and ``python -m repro report``: it opens a
:func:`~repro.monitor.health.use_monitoring` session (every machine the
experiment builds gets a :class:`~repro.monitor.health.HealthMonitor`),
installs a bounded :class:`~repro.trace.metrics.MetricsRegistry`
(histograms capped, falling back to streaming sketches), dispatches the
:class:`~repro.runner.spec.ExperimentSpec` through the experiment
registry, and finalizes every monitor into health verdicts.

Kept out of ``repro.monitor.__init__`` on purpose, like
:mod:`repro.trace.capture`: it imports the analysis/MD stack, which
itself imports the monitored subsystems.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from typing import Optional

from repro.monitor.health import (
    DEFAULT_STALL_NS,
    HealthMonitor,
    use_monitoring,
)
from repro.monitor.report import render_html_report, render_prometheus
from repro.monitor.sampler import DEFAULT_INTERVAL_NS
from repro.monitor.watchdog import HealthVerdict
from repro.runner.result import Captures, RunResult, run_experiment
from repro.runner.spec import ExperimentSpec, experiment_names
from repro.trace.metrics import MetricsRegistry

#: Experiments the monitor CLI can drive: every registered experiment
#: marked monitorable (``mdstep`` — the paper's Fig. 13 workload — is
#: the default; the rest are the trace harnesses).
MONITOR_EXPERIMENTS = experiment_names(monitorable=True)

#: Histogram cap for always-on runs: beyond this many observations a
#: histogram falls back to its streaming sketch (1% relative error).
DEFAULT_HISTOGRAM_CAP = 4096


@dataclass
class MonitorCapture:
    """One monitored run: verdicts, series, metrics, and renderers.

    ``result`` is the unified :class:`~repro.runner.result.RunResult`
    of the underlying run; ``experiment``/``shape``/``description``
    are kept as first-class fields for the renderers.
    """

    experiment: str
    shape: tuple[int, int, int]
    description: str
    monitors: list[HealthMonitor]
    verdicts: list[HealthVerdict]
    metrics: MetricsRegistry
    result: Optional[RunResult] = None

    @property
    def monitor(self) -> HealthMonitor:
        """The run's primary monitor: the one that watched the most
        activity (sweep experiments build several machines)."""
        return max(self.monitors, key=lambda m: (m.sim.now, m.sampler.ticks))

    @property
    def verdict(self) -> HealthVerdict:
        return self.verdicts[self.monitors.index(self.monitor)]

    @property
    def healthy(self) -> bool:
        """True when every machine's verdict is free of errors."""
        return all(v.healthy for v in self.verdicts)

    def congestion_tree(self):
        """The run's backpressure congestion tree, when the flight
        recorder rode along (``None`` for untraced runs like mdstep)."""
        if self.result is None or self.result.flight is None:
            return None
        from repro.congestion.tree import build_congestion_tree
        from repro.topology.torus import Torus3D

        return build_congestion_tree(
            self.result.flight, Torus3D(*self.shape)
        )

    def html(self, title: str = "Continuous health report") -> str:
        monitor = self.monitor
        congestion = self.congestion_tree()
        series = None
        if self.result is not None and self.result.congestion is not None:
            series = self.result.congestion.depth_series
        return render_html_report(
            self.verdict,
            monitor.sampler,
            self.shape,
            registry=self.metrics,
            title=title,
            experiment=f"{self.experiment} — {self.description}",
            congestion=congestion,
            congestion_series=series,
        )

    def prometheus(self) -> str:
        return render_prometheus(
            self.verdict, self.monitor.sampler, registry=self.metrics
        )

    def write_jsonl(self, path: str) -> None:
        """Diagnostics of the primary monitor as JSONL."""
        self.monitor.log.write_jsonl(path)


def run_monitored(
    experiment: str,
    shape: tuple[int, int, int] = (4, 4, 4),
    rounds: int = 2,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    series_capacity: int = 512,
    slow_every: int = 4,
    stall_ns: float = DEFAULT_STALL_NS,
    histogram_max_samples: Optional[int] = DEFAULT_HISTOGRAM_CAP,
    flight: Optional[bool] = None,
    payload: int = 0,
    seed: int = 0,
    congestion: bool = False,
) -> MonitorCapture:
    """Drive ``experiment`` with continuous monitoring attached.

    ``flight=None`` (auto) attaches a
    :class:`~repro.trace.flight.FlightRecorder` for experiments the
    registry marks traceable — it feeds the per-packet latency
    histograms the sketch-vs-exact report compares — but not for
    ``mdstep``, whose per-packet record would dwarf the run.
    ``congestion=True`` additionally attaches the congestion X-ray
    recorder, whose queue-depth timelines feed the HTML report's
    sparklines.  Monitoring itself is passive either way: simulated
    results are bit-identical with the monitor on or off.
    """
    from repro.runner.spec import get_experiment

    spec = ExperimentSpec(
        experiment=experiment,
        shape=shape,
        rounds=rounds,
        payload=payload,
        seed=seed,
    )
    defn = get_experiment(spec)
    if experiment not in MONITOR_EXPERIMENTS:
        raise ValueError(
            f"experiment {experiment!r} is not monitorable; "
            f"choose from {MONITOR_EXPERIMENTS}"
        )
    if flight is None:
        flight = defn.traceable

    metrics = MetricsRegistry(histogram_max_samples=histogram_max_samples)
    with ExitStack() as stack:
        session = stack.enter_context(
            use_monitoring(
                interval_ns=interval_ns,
                series_capacity=series_capacity,
                slow_every=slow_every,
                stall_ns=stall_ns,
                registry=metrics,
            )
        )
        result = run_experiment(
            spec,
            Captures(flight=flight, congestion=congestion, registry=metrics),
        )
    if not session.monitors:
        raise RuntimeError(
            f"experiment {experiment!r} built no machines to monitor"
        )
    verdicts = session.finalize()
    return MonitorCapture(
        experiment=experiment,
        shape=shape,
        description=result.description,
        monitors=session.monitors,
        verdicts=verdicts,
        metrics=metrics,
        result=result,
    )
