"""Health-report rendering: self-contained HTML and Prometheus text.

The HTML report is a single file with no external assets — inline CSS
(light and dark from the same palette via ``prefers-color-scheme``)
and inline SVG charts — so it can be archived as a CI artifact and
opened anywhere.  It carries:

* stat tiles for the run's headline numbers;
* the health verdict as a table with icon + label status (never color
  alone);
* a node x direction link-utilization heatmap over the torus
  (sequential single-hue ramp, light→dark = idle→saturated), with a
  table view for accessibility;
* time-series line charts of the machine-wide sampled series, each
  with a table view;
* a sketch-vs-exact percentile table quantifying the streaming
  sketch's accuracy against the exact histograms.

The Prometheus exposition is the standard ``# HELP``/``# TYPE`` text
format: run/verdict gauges, per-check status, the last value of every
sampled series (one labelled sample per link direction), and every
registry metric (histograms and sketches as summaries with quantile
labels).
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, Optional

from repro.monitor.sampler import TimeSeriesSampler
from repro.monitor.series import RingSeries
from repro.monitor.watchdog import LEVELS, HealthVerdict
from repro.report_common import CSS, fmt as _fmt, fmt_ns as _ns, stat_tiles
from repro.trace.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.trace.sketch import QuantileSketch

if TYPE_CHECKING:  # pragma: no cover
    from repro.congestion.tree import CongestionTree

#: Link directions in fixed column order for the heatmap.
DIRECTIONS = ("x+", "x-", "y+", "y-", "z+", "z-")

#: Sequential single-hue ramp (light→dark blue), light mode surface.
HEAT_RAMP = ("#cde2fb", "#a6c8f7", "#7aa7ee", "#4f7fd9", "#2b58a8", "#0d366b")

_STATUS = {
    "ok": ("status-good", "&#10003;", "pass"),
    "warning": ("status-warning", "&#9888;", "warning"),
    "error": ("status-critical", "&#10007;", "fail"),
}

#: Backward-compatible alias for the stylesheet, which lives in
#: :mod:`repro.report_common` now (shared by every HTML artifact).
_CSS = CSS


# ---------------------------------------------------------------------------
# HTML building blocks
# ---------------------------------------------------------------------------

def _stat_tiles(verdict: HealthVerdict) -> str:
    return stat_tiles([
        ("simulated time", _ns(verdict.sim_time_ns)),
        ("packets injected", _fmt(verdict.packets_injected)),
        ("packets delivered", _fmt(verdict.packets_delivered)),
        ("in flight at end", _fmt(verdict.packets_in_flight)),
        ("samples retained", _fmt(verdict.samples_recorded)),
        ("samples dropped", _fmt(verdict.dropped_samples)),
        (
            "diagnostics",
            " / ".join(
                f"{verdict.diagnostic_counts.get(k, 0)} {k}" for k in LEVELS
            ),
        ),
    ])


def _verdict_table(verdict: HealthVerdict) -> str:
    cls, icon, label = (
        ("status-good", "&#10003;", "HEALTHY")
        if verdict.healthy
        else ("status-critical", "&#10007;", "UNHEALTHY")
    )
    rows = []
    for check in verdict.checks:
        ccls, cicon, clabel = _STATUS[check.status]
        rows.append(
            "<tr>"
            f"<td>{html.escape(check.name)}</td>"
            f'<td class="{ccls}">{cicon} {clabel}</td>'
            f"<td>{html.escape(check.detail)}</td>"
            "</tr>"
        )
    return (
        f'<p><span class="verdict-banner {cls}">{icon} {label}</span></p>'
        "<table><thead><tr><th>invariant</th><th>status</th>"
        "<th>detail</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _heat_color(frac: float) -> str:
    idx = min(len(HEAT_RAMP) - 1, int(frac * len(HEAT_RAMP)))
    return HEAT_RAMP[idx]


def _link_utilization(
    sampler: TimeSeriesSampler, num_nodes: int, sim_time_ns: float
) -> dict[tuple[int, str], float]:
    """Busy fraction per (node rank, direction) from the sampled
    cumulative busy-ns series (last sample / total sim time)."""
    out: dict[tuple[int, str], float] = {}
    for rank in range(num_nodes):
        for direction in DIRECTIONS:
            series = sampler.series.get(f"link.n{rank:03d}.{direction}.busy_ns")
            if series is None or len(series) == 0:
                continue
            _, busy = series.last
            out[(rank, direction)] = (
                busy / sim_time_ns if sim_time_ns > 0 else 0.0
            )
    return out


def _heatmap(
    sampler: TimeSeriesSampler, shape: tuple[int, int, int], sim_time_ns: float
) -> str:
    num_nodes = shape[0] * shape[1] * shape[2]
    util = _link_utilization(sampler, num_nodes, sim_time_ns)
    if not util:
        return '<p class="note">No per-link series were sampled.</p>'
    peak = max(util.values()) or 1.0

    header = "<tr><th></th>" + "".join(
        f"<th>{d}</th>" for d in DIRECTIONS
    ) + "</tr>"
    # One row per node rank, one column per link direction.  Cells get
    # a title tooltip; the numeric table view below is the accessible
    # encoding (color is never the only channel).
    body_rows = []
    for rank in range(num_nodes):
        cells = []
        for direction in DIRECTIONS:
            frac = util.get((rank, direction))
            if frac is None:
                cells.append('<td class="cell" style="background:var(--panel)"></td>')
                continue
            color = _heat_color(frac / peak if peak else 0.0)
            cells.append(
                f'<td class="cell" style="background:{color}" '
                f'title="n{rank:03d} {direction}: {frac * 100:.1f}% busy"></td>'
            )
        body_rows.append(f"<tr><th>n{rank:03d}</th>{''.join(cells)}</tr>")

    legend = (
        '<div class="legend">0%'
        + "".join(
            f'<span class="swatch" style="background:{c}"></span>'
            for c in HEAT_RAMP
        )
        + f"{peak * 100:.1f}% (peak busy fraction)</div>"
    )

    table_rows = "".join(
        "<tr>"
        f"<td>n{rank:03d}</td><td>{d}</td>"
        f'<td class="num">{util[(rank, d)] * 100:.2f}</td>'
        "</tr>"
        for rank in range(num_nodes)
        for d in DIRECTIONS
        if (rank, d) in util and util[(rank, d)] > 0
    ) or '<tr><td colspan="3">all links idle</td></tr>'
    table_view = (
        "<details><summary>table view (non-idle links)</summary>"
        "<table><thead><tr><th>node</th><th>direction</th>"
        '<th class="num">busy %</th></tr></thead>'
        f"<tbody>{table_rows}</tbody></table></details>"
    )
    return (
        f'<table class="heatmap"><thead>{header}</thead>'
        f"<tbody>{''.join(body_rows)}</tbody></table>{legend}{table_view}"
    )


def _line_chart(series: RingSeries, width: int = 640, height: int = 150) -> str:
    """One single-series SVG line chart (thin 2px line, recessive
    grid, one y-axis; the heading names the series, so no legend)."""
    samples = series.samples()
    if len(samples) < 2:
        return (
            f'<p class="note">{html.escape(series.name)}: '
            f"{len(samples)} sample(s) — not enough to chart.</p>"
        )
    ml, mr, mt, mb = 58, 10, 8, 22
    pw, ph = width - ml - mr, height - mt - mb
    t0, t1 = samples[0][0], samples[-1][0]
    vs = [v for _, v in samples]
    v0, v1 = min(vs), max(vs)
    if v1 == v0:
        v1 = v0 + 1.0
    tspan = (t1 - t0) or 1.0

    def x(t: float) -> float:
        return ml + (t - t0) / tspan * pw

    def y(v: float) -> float:
        return mt + (1.0 - (v - v0) / (v1 - v0)) * ph

    pts = " ".join(f"{x(t):.1f},{y(v):.1f}" for t, v in samples)
    grid = []
    for frac in (0.0, 0.5, 1.0):
        gv = v0 + frac * (v1 - v0)
        gy = y(gv)
        grid.append(
            f'<line class="gridline" x1="{ml}" y1="{gy:.1f}" '
            f'x2="{ml + pw}" y2="{gy:.1f}"/>'
            f'<text x="{ml - 6}" y="{gy + 4:.1f}" '
            f'text-anchor="end">{_fmt(gv)}</text>'
        )
    vmin, vmax, vlast = min(vs), max(vs), vs[-1]
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="{html.escape(series.name)} over simulated time">'
        + "".join(grid)
        + f'<line class="axis" x1="{ml}" y1="{mt + ph}" '
        f'x2="{ml + pw}" y2="{mt + ph}"/>'
        f'<text x="{ml}" y="{height - 6}">{_ns(t0)}</text>'
        f'<text x="{ml + pw}" y="{height - 6}" text-anchor="end">{_ns(t1)}</text>'
        f'<polyline class="series" points="{pts}">'
        f"<title>{html.escape(series.name)}: min {_fmt(vmin)}, "
        f"max {_fmt(vmax)}, last {_fmt(vlast)}</title></polyline>"
        "</svg>"
    )


def _series_section(sampler: TimeSeriesSampler) -> str:
    """Charts for the machine-wide (fast-cadence) series."""
    parts = []
    for series in sampler:
        if series.name.startswith("link."):
            continue  # per-link series feed the heatmap, not charts
        dropped = (
            f" &middot; {series.dropped} dropped" if series.dropped else ""
        )
        rows = "".join(
            f'<tr><td class="num">{t:.0f}</td><td class="num">{_fmt(v)}</td></tr>'
            for t, v in series.samples()
        )
        parts.append(
            f"<h2>{html.escape(series.name)}</h2>"
            f'<p class="note">{len(series)} samples{dropped}</p>'
            + _line_chart(series)
            + "<details><summary>table view</summary>"
            '<table><thead><tr><th class="num">t (ns)</th>'
            '<th class="num">value</th></tr></thead>'
            f"<tbody>{rows}</tbody></table></details>"
        )
    return "".join(parts)


def _percentile_table(registry: Optional[MetricsRegistry]) -> str:
    """Sketch-vs-exact comparison for every distribution metric."""
    if registry is None:
        return '<p class="note">No metrics registry was attached.</p>'
    rows = []
    for metric in registry:
        if isinstance(metric, Histogram) and metric.count > 0:
            if metric.overflowed:
                assert metric.sketch is not None
                rows.append(
                    [metric.name, metric.count,
                     f"sketch fallback (cap {metric.max_samples}, "
                     f"{metric.sketch.bins_used} bins)",
                     metric.p50, None, metric.p99, None]
                )
                continue
            # Replay the exact values through a sketch to show the
            # accuracy/memory trade side by side.
            sk = QuantileSketch(name=metric.name)
            for v in metric.values():
                sk.observe(v)
            rows.append(
                [metric.name, metric.count,
                 f"exact ({metric.count} values) vs {sk.bins_used} bins",
                 metric.p50, sk.p50, metric.p99, sk.p99]
            )
        elif isinstance(metric, QuantileSketch) and metric.count > 0:
            rows.append(
                [metric.name, metric.count,
                 f"sketch only ({metric.bins_used} bins)",
                 None, metric.p50, None, metric.p99]
            )
    if not rows:
        return '<p class="note">No distribution metrics were recorded.</p>'

    def cell(v) -> str:
        return f'<td class="num">{_fmt(v, 1) if v is not None else "-"}</td>'

    def delta(exact, est) -> str:
        if exact is None or est is None or not exact:
            return '<td class="num">-</td>'
        return f'<td class="num">{(est - exact) / exact * 100:+.2f}%</td>'

    body = "".join(
        "<tr>"
        f"<td>{html.escape(name)}</td>"
        f'<td class="num">{_fmt(n)}</td>'
        f"<td>{html.escape(memo)}</td>"
        + cell(p50e) + cell(p50s) + delta(p50e, p50s)
        + cell(p99e) + cell(p99s) + delta(p99e, p99s)
        + "</tr>"
        for name, n, memo, p50e, p50s, p99e, p99s in rows
    )
    return (
        "<table><thead><tr><th>metric</th>"
        '<th class="num">n</th><th>memory</th>'
        '<th class="num">p50 exact</th><th class="num">p50 sketch</th>'
        '<th class="num">&Delta;</th>'
        '<th class="num">p99 exact</th><th class="num">p99 sketch</th>'
        '<th class="num">&Delta;</th>'
        "</tr></thead>"
        f"<tbody>{body}</tbody></table>"
        '<p class="note">Sketch guarantee: relative error &le; 1% per '
        "quantile at a few KB of bounded memory; exact histograms hold "
        "every observation.</p>"
    )


def render_html_report(
    verdict: HealthVerdict,
    sampler: TimeSeriesSampler,
    shape: tuple[int, int, int],
    registry: Optional[MetricsRegistry] = None,
    title: str = "Continuous health report",
    experiment: str = "",
    congestion: "Optional[CongestionTree]" = None,
    congestion_series: Optional[dict] = None,
) -> str:
    """Render the full self-contained HTML health report.

    When the run carried the congestion X-ray, pass its
    :class:`~repro.congestion.tree.CongestionTree` (and optionally the
    congestion recorder's depth timelines) to append the congestion
    section: occupancy sparklines per link direction, the
    congestion-tree table, and the HOL-blocking episode list.
    """
    from repro.report_common import html_page

    nx, ny, nz = shape
    subtitle = (
        f"{nx}×{ny}×{nz} torus"
        + (f" &middot; experiment: {html.escape(experiment)}" if experiment else "")
        + f" &middot; sampling interval {_ns(sampler.interval_ns)}"
        f" (per-link every {sampler.slow_every} ticks)"
    )
    body = (
        _stat_tiles(verdict)
        + "<h2>Health verdict</h2>\n"
        + _verdict_table(verdict)
        + "<h2>Link utilization (node &times; direction)</h2>\n"
        + _heatmap(sampler, shape, verdict.sim_time_ns)
        + "<h2>Percentiles: streaming sketch vs exact</h2>\n"
        + _percentile_table(registry)
        + _series_section(sampler)
    )
    if congestion is not None:
        from repro.congestion.report import congestion_section

        body += congestion_section(congestion, congestion_series)
    return html_page(title, subtitle, body)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _prom_number(v: float) -> str:
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _prom_label_value(value: str) -> str:
    """A label value escaped per the exposition format: backslash,
    double-quote, and newline get backslash escapes; everything else —
    unicode included — passes through verbatim."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def prom_labels(**labels: str) -> str:
    """A ``{k="v",...}`` label block (empty string for no labels),
    keys in the given order, values escaped."""
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_prom_label_value(v)}"' for k, v in labels.items()
    )
    return "{" + body + "}"


class PromText:
    """Incremental builder for the Prometheus text exposition format.

    One ``metric`` call emits the ``# HELP`` / ``# TYPE`` header and
    its samples; ``registry`` dumps a whole
    :class:`~repro.trace.metrics.MetricsRegistry` (counters and gauges
    directly, histograms and sketches as summaries with quantile
    labels).  Shared by the monitor report and the sweep telemetry so
    both expositions escape and format identically.
    """

    def __init__(self) -> None:
        self.lines: list[str] = []

    def metric(self, name: str, kind: str, help_text: str, samples) -> None:
        """Emit one metric family: ``samples`` is an iterable of
        ``(label_block, value)`` pairs (build blocks with
        :func:`prom_labels`)."""
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            self.lines.append(f"{name}{labels} {_prom_number(value)}")

    def registry(self, registry: Optional[MetricsRegistry]) -> None:
        """Emit every metric of a registry (no-op for ``None``)."""
        if registry is None:
            return
        for metric in registry:
            name = _prom_name(metric.name)
            help_text = metric.help or metric.name
            if isinstance(metric, Counter):
                self.metric(name, "counter", help_text, [("", metric.value)])
            elif isinstance(metric, Gauge):
                self.metric(name, "gauge", help_text, [("", metric.value)])
            elif isinstance(metric, (Histogram, QuantileSketch)):
                self.lines.append(f"# HELP {name} {help_text}")
                self.lines.append(f"# TYPE {name} summary")
                if metric.count:
                    for q in (0.5, 0.9, 0.99):
                        self.lines.append(
                            f'{name}{{quantile="{q}"}} '
                            f"{_prom_number(metric.percentile(q * 100))}"
                        )
                    self.lines.append(
                        f"{name}_sum {_prom_number(metric.sum)}"
                    )
                self.lines.append(f"{name}_count {metric.count}")

    def text(self) -> str:
        """The exposition so far (newline-terminated when non-empty)."""
        if not self.lines:
            return ""
        return "\n".join(self.lines) + "\n"


def render_registry_prometheus(
    registry: Optional[MetricsRegistry],
) -> str:
    """A metrics registry alone as one Prometheus exposition (the
    sweep telemetry's export path)."""
    out = PromText()
    out.registry(registry)
    return out.text()


def render_prometheus(
    verdict: HealthVerdict,
    sampler: TimeSeriesSampler,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Prometheus-style text exposition of the monitored run."""
    out = PromText()
    emit = out.metric

    emit("repro_sim_time_ns", "gauge", "Simulated time at report.",
         [("", verdict.sim_time_ns)])
    emit("repro_packets_injected", "counter", "Packets injected.",
         [("", verdict.packets_injected)])
    emit("repro_packets_delivered", "counter", "Client deliveries.",
         [("", verdict.packets_delivered)])
    emit("repro_packets_in_flight", "gauge", "Packets still in flight.",
         [("", verdict.packets_in_flight)])
    emit("repro_monitor_samples_retained", "gauge",
         "Ring-buffer samples currently retained.",
         [("", verdict.samples_recorded)])
    emit("repro_monitor_samples_dropped", "counter",
         "Samples evicted by ring-buffer capacity.",
         [("", verdict.dropped_samples)])
    emit("repro_monitor_events_dropped", "counter",
         "Engine events evicted by EventHistory capacity.",
         [("", verdict.dropped_events)])
    emit("repro_monitor_diagnostics", "counter",
         "Diagnostics emitted by level.",
         [(prom_labels(level=lvl), verdict.diagnostic_counts.get(lvl, 0))
          for lvl in LEVELS])
    emit("repro_health_check_status", "gauge",
         "Invariant status: 0 ok, 1 warning, 2 error.",
         [(prom_labels(check=c.name),
           {"ok": 0, "warning": 1, "error": 2}[c.status])
          for c in verdict.checks])
    emit("repro_healthy", "gauge",
         "1 when no invariant reached error severity.",
         [("", 1 if verdict.healthy else 0)])
    emit("repro_monitor_series_last", "gauge",
         "Last sampled value of every monitor time series.",
         [(prom_labels(series=s.name), s.last[1])
          for s in sampler if len(s)])
    if verdict.peak_queue_by_direction:
        emit("repro_link_peak_queue", "gauge",
             "Deepest head-of-line queue observed per link direction.",
             [(prom_labels(direction=d), depth)
              for d, depth in sorted(verdict.peak_queue_by_direction.items())])

    out.registry(registry)
    return out.text()
