"""The health monitor: sampler + watchdogs wired to a live machine.

A :class:`HealthMonitor` registers probes over one machine (per-link
busy time and queue depth for every one of the ``6·N`` link
directions, plus machine-wide aggregates), installs itself on the
simulator's monitor hook, and on every sampler tick takes a snapshot
and runs the invariant watchdogs.  :meth:`finalize` runs the stricter
quiescence checks and returns the run's
:class:`~repro.monitor.watchdog.HealthVerdict`.

Attachment is ambient, mirroring the flight recorder:
:func:`use_monitoring` opens a :class:`MonitorSession`, and any machine
built by :func:`~repro.asic.node.build_machine` while the session is
active gets a monitor automatically — which is how experiments that
construct their own machinery (e.g. :class:`~repro.md.machine.AntonMD`)
are monitored without plumbing.

Everything the monitor does is read-only against simulation state, and
the monitor hook lives outside the event queue (no sequence numbers
consumed, no events scheduled), so a monitored run is bit-identical to
an unmonitored one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from repro.monitor.sampler import DEFAULT_INTERVAL_NS, TimeSeriesSampler
from repro.monitor.watchdog import (
    DEFAULT_QUEUE_LIMIT,
    CheckResult,
    DiagnosticLog,
    HealthVerdict,
    InvariantWatchdogs,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.asic.node import Machine
    from repro.engine.simulator import EventHistory, Simulator
    from repro.trace.metrics import MetricsRegistry

#: Default no-progress window before the stall detector fires, in
#: simulated ns.  Generous next to the 162 ns end-to-end latency and
#: the ~8 µs range-limited phase: nothing legitimate keeps packets in
#: flight for 50 µs without a single delivery.
DEFAULT_STALL_NS = 50_000.0


class HealthMonitor:
    """Continuous sampling and invariant checking for one machine."""

    def __init__(
        self,
        sim: "Simulator",
        machine: "Machine",
        interval_ns: float = DEFAULT_INTERVAL_NS,
        series_capacity: int = 512,
        slow_every: int = 4,
        stall_ns: float = DEFAULT_STALL_NS,
        registry: "Optional[MetricsRegistry]" = None,
        log: Optional[DiagnosticLog] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.network = machine.network
        self.registry = registry
        self.log = log if log is not None else DiagnosticLog()
        self.sampler = TimeSeriesSampler(
            interval_ns=interval_ns,
            capacity=series_capacity,
            slow_every=slow_every,
        )
        self.watchdogs = InvariantWatchdogs(
            machine, self.log, stall_ns=stall_ns, queue_limit=queue_limit
        )
        self._histories: list["EventHistory"] = []
        self._finalized = False
        self._register_probes()
        self._prev_hook = sim.set_monitor_hook(self._tick, due=sim.now)

    # -- probe registration --------------------------------------------------
    def _register_probes(self) -> None:
        net = self.network
        sim = self.sim
        probe = self.sampler.probe

        # Fast cadence: machine-wide aggregates, O(1) or one short sweep.
        probe("net.packets_in_flight", lambda: float(net.packets_in_flight))
        probe("net.packets_injected", lambda: float(net.packets_injected))
        probe("net.packets_delivered", lambda: float(net.packets_delivered))
        probe("net.link_traversals", lambda: float(net.link_traversals))
        probe("engine.pending_events", lambda: float(sim.pending))
        probe("engine.events_executed", lambda: float(sim.events_executed))

        fifos = [slc.fifo for node in self.machine for slc in node.slices]
        probe(
            "fifo.total_occupancy",
            lambda: float(sum(f.occupancy for f in fifos)),
        )
        probe(
            "fifo.max_occupancy",
            lambda: float(max(f.occupancy for f in fifos)) if fifos else 0.0,
        )

        # Slow (decimated) cadence: two series per link direction —
        # 6 directions x N nodes, the part that scales with the machine.
        # Touching network.link() here materializes every direction up
        # front (link construction is passive), so the report covers the
        # full torus even for directions that never carry a packet.
        torus = self.machine.torus
        for coord in torus.nodes():
            rank = torus.rank(coord)
            for dim in ("x", "y", "z"):
                for sign in (1, -1):
                    link = net.link(coord, dim, sign)
                    tag = f"link.n{rank:03d}.{dim}{'+' if sign > 0 else '-'}"
                    probe(f"{tag}.busy_ns", lambda ln=link: ln.busy_ns, slow=True)
                    probe(
                        f"{tag}.queue",
                        lambda ln=link: float(ln.queue_length),
                        slow=True,
                    )

    # -- live operation ------------------------------------------------------
    def _tick(self, now: float) -> float:
        """One monitoring tick: sample, then check invariants.

        Runs from the simulator's run loop; returns the next due time.
        The per-client sweeps (sync counters, FIFOs) follow the
        sampler's decimated cadence, the O(1) counter checks run every
        tick.
        """
        self.sampler.sample(now)
        wd = self.watchdogs
        wd.check_packet_conservation(now)
        wd.check_stall(now)
        wd.check_faults(now)
        ticks = self.sampler.ticks - 1
        if ticks % self.sampler.slow_every == 0:
            wd.check_sync_counters(now)
            wd.check_fifo_bounds(now)
            # Queue peaks are monotone watermarks, so a violation can
            # never slip between checks — scan on a sparser cadence
            # than the other slow sweeps to keep always-on monitoring
            # within its overhead budget (finalize rescans anyway).
            if ticks % (self.sampler.slow_every * 8) == 0:
                wd.check_queue_growth(now)
        return now + self.sampler.interval_ns

    def watch_event_history(self, history: "EventHistory") -> "EventHistory":
        """Surface ``history.dropped`` in the verdict's telemetry-loss
        accounting (satellite of the bounded-memory discipline)."""
        self._histories.append(history)
        return history

    @property
    def dropped_events(self) -> int:
        return sum(h.dropped for h in self._histories)

    # -- verdict -------------------------------------------------------------
    def finalize(self) -> HealthVerdict:
        """Run quiescence checks, detach from the simulator, and return
        the verdict.  Idempotent."""
        if not self._finalized:
            self._finalized = True
            now = self.sim.now
            self.sampler.sample(now)  # end-of-run snapshot
            wd = self.watchdogs
            wd.check_packet_conservation(now, final=True)
            wd.check_sync_counters(now, final=True)
            wd.check_fifo_bounds(now, final=True)
            wd.check_stall(now, final=True)
            wd.check_queue_growth(now, final=True)
            wd.check_faults(now, final=True)
            self.sim.set_monitor_hook(self._prev_hook)
        return self.verdict()

    def _telemetry_loss_check(self) -> CheckResult:
        lost = []
        if self.sampler.dropped_samples:
            lost.append(f"{self.sampler.dropped_samples} ring-buffer samples")
        if self.dropped_events:
            lost.append(f"{self.dropped_events} history events")
        if self.log.dropped:
            lost.append(f"{self.log.dropped} diagnostics")
        if not lost:
            return CheckResult("telemetry_loss", "ok", "nothing dropped")
        return CheckResult(
            "telemetry_loss",
            "warning",
            "bounded buffers evicted " + ", ".join(lost),
        )

    def verdict(self) -> HealthVerdict:
        """Current judgement (worst state of every invariant so far,
        plus the telemetry-loss accounting)."""
        net = self.network
        checks = self.watchdogs.results()
        checks.append(self._telemetry_loss_check())
        peaks: dict[str, int] = {}
        for link in net.links():
            tag = link.direction
            if link.peak_queue_length > peaks.get(tag, 0):
                peaks[tag] = link.peak_queue_length
        return HealthVerdict(
            checks=checks,
            sim_time_ns=self.sim.now,
            packets_injected=net.packets_injected,
            packets_delivered=net.packets_delivered,
            packets_in_flight=net.packets_in_flight,
            samples_recorded=self.sampler.samples_recorded,
            dropped_samples=self.sampler.dropped_samples,
            dropped_events=self.dropped_events,
            dropped_diagnostics=self.log.dropped,
            diagnostic_counts=dict(self.log.counts),
            peak_queue_by_direction=peaks,
        )


# ---------------------------------------------------------------------------
# Ambient attachment (same pattern as trace.flight.use_flight)
# ---------------------------------------------------------------------------

_ACTIVE_SESSION: Optional["MonitorSession"] = None


class MonitorSession:
    """Collects monitors for every machine built while active."""

    def __init__(self, **monitor_kwargs) -> None:
        self.monitor_kwargs = monitor_kwargs
        self.monitors: list[HealthMonitor] = []

    def attach(self, sim, machine) -> HealthMonitor:
        monitor = HealthMonitor(sim, machine, **self.monitor_kwargs)
        self.monitors.append(monitor)
        return monitor

    @property
    def monitor(self) -> HealthMonitor:
        """The single attached monitor (typical case)."""
        if len(self.monitors) != 1:
            raise ValueError(
                f"session has {len(self.monitors)} monitors, expected exactly 1"
            )
        return self.monitors[0]

    def finalize(self) -> list[HealthVerdict]:
        return [m.finalize() for m in self.monitors]


def active_monitor_session() -> Optional[MonitorSession]:
    """The ambient session machines attach to, or ``None``."""
    return _ACTIVE_SESSION


@contextmanager
def use_monitoring(**monitor_kwargs) -> Iterator[MonitorSession]:
    """Monitor every machine built inside the ``with`` block.

    Keyword arguments are forwarded to :class:`HealthMonitor`
    (``interval_ns``, ``series_capacity``, ``slow_every``,
    ``stall_ns``, ``registry``, ``log``, ``queue_limit``).
    """
    global _ACTIVE_SESSION
    session = MonitorSession(**monitor_kwargs)
    prev = _ACTIVE_SESSION
    _ACTIVE_SESSION = session
    try:
        yield session
    finally:
        _ACTIVE_SESSION = prev
