"""The time-series sampler: periodic snapshots of live machine state.

Driven by the simulator's monitor hook
(:meth:`~repro.engine.simulator.Simulator.set_monitor_hook`), the
sampler walks its registered probes every ``interval_ns`` of simulated
time and appends one ``(now, value)`` sample per probe into a
fixed-capacity :class:`~repro.monitor.series.RingSeries`.  Probes are
plain callables reading state the simulation already maintains (link
busy time, FIFO occupancy, in-flight packets, event-queue depth) —
sampling never mutates anything, so a sampled run is bit-identical to
an unsampled one.

Two cadences keep overhead bounded on big machines: *fast* probes
(a handful of machine-wide aggregates) run every tick, while *slow*
probes (one or two per link direction — hundreds on a 4×4×4 torus,
thousands on 8×8×8) run every ``slow_every``-th tick.  Multi-
resolution sampling is the standard production trade: coarse
everywhere, fine where it's cheap.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.monitor.series import RingSeries

#: Default sampling interval in simulated ns.  A range-limited MD step
#: spans ~8 µs, so this yields ~16 samples per step; latency-scale
#: experiments (hundreds of ns) still get a handful of ticks.
DEFAULT_INTERVAL_NS = 500.0


class TimeSeriesSampler:
    """Registered probes plus their ring-buffer series."""

    def __init__(
        self,
        interval_ns: float = DEFAULT_INTERVAL_NS,
        capacity: int = 512,
        slow_every: int = 4,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        if slow_every < 1:
            raise ValueError(f"slow_every must be >= 1, got {slow_every}")
        self.interval_ns = interval_ns
        self.capacity = capacity
        self.slow_every = slow_every
        self.series: dict[str, RingSeries] = {}
        self._fast: list[tuple[RingSeries, Callable[[], float]]] = []
        self._slow: list[tuple[RingSeries, Callable[[], float]]] = []
        #: Ticks taken so far (each tick samples every fast probe).
        self.ticks = 0

    # -- registration --------------------------------------------------------
    def probe(
        self, name: str, fn: Callable[[], float], slow: bool = False
    ) -> RingSeries:
        """Register a probe; returns its backing series.

        ``slow=True`` puts the probe on the decimated cadence (every
        ``slow_every``-th tick) — use it for per-link probes, whose
        count scales with machine size.
        """
        if name in self.series:
            raise ValueError(f"probe {name!r} already registered")
        series = RingSeries(name, capacity=self.capacity)
        self.series[name] = series
        (self._slow if slow else self._fast).append((series, fn))
        return series

    # -- sampling ------------------------------------------------------------
    def sample(self, now: float) -> None:
        """Take one tick's samples.  Called from the monitor hook."""
        for series, fn in self._fast:
            series.append(now, fn())
        if self.ticks % self.slow_every == 0:
            for series, fn in self._slow:
                series.append(now, fn())
        self.ticks += 1

    # -- accounting ----------------------------------------------------------
    @property
    def dropped_samples(self) -> int:
        """Samples lost to ring-buffer capacity across all series."""
        return sum(s.dropped for s in self.series.values())

    @property
    def samples_recorded(self) -> int:
        """Samples currently retained across all series."""
        return sum(len(s) for s in self.series.values())

    def __iter__(self) -> Iterator[RingSeries]:
        for name in sorted(self.series):
            yield self.series[name]

    def __len__(self) -> int:
        return len(self.series)
