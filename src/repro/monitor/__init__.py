"""Continuous health monitoring: the always-on half of observability.

The flight recorder and critical-path analyzer (PRs 1–2) are post-hoc
instruments — they explain a run after it ends.  This package is the
other half a production-scale system needs: bounded-overhead,
always-on monitoring *during* the run, the layer a training/inference
stack calls "metrics + alerting" and QCDOC-class machines built into
hardware as a diagnostic network (Boyle et al., hep-lat/0110124):

* :class:`~repro.monitor.series.RingSeries` — fixed-capacity ring
  buffers with an explicit dropped-sample counter;
* :class:`~repro.monitor.sampler.TimeSeriesSampler` — snapshots
  per-link busy time and queue depth, FIFO depths, in-flight packet
  count and event-loop stats at a configurable sim-ns interval;
* :mod:`~repro.monitor.watchdog` — invariant watchdogs (packet
  conservation, sync-counter consistency, FIFO depth bounds, a
  stall/starvation detector) emitting structured leveled JSONL
  diagnostics;
* :class:`~repro.monitor.health.HealthMonitor` — wires sampler and
  watchdogs to a machine through the simulator's monitor hook and
  produces a :class:`~repro.monitor.watchdog.HealthVerdict`;
* :mod:`~repro.monitor.report` — a self-contained HTML report
  (utilization heatmap, time-series charts, sketch-vs-exact table,
  health verdict) and a Prometheus-style text exposition;
* :mod:`~repro.monitor.capture` (imported lazily — it pulls in the
  analysis/MD stack) drives a named experiment with monitoring on; it
  backs ``python -m repro monitor`` and ``python -m repro report``.

Monitoring is attached ambiently (:func:`use_monitoring`): any machine
built while a :class:`MonitorSession` is active gets a monitor, the
same pattern the flight recorder uses.  Every observer is passive —
a monitored run is bit-identical to an unmonitored one (enforced by
``tests/properties/test_monitor_determinism.py``).
"""

from repro.monitor.series import RingSeries
from repro.monitor.sampler import TimeSeriesSampler
from repro.monitor.watchdog import (
    CheckResult,
    Diagnostic,
    DiagnosticLog,
    HealthVerdict,
)
from repro.monitor.health import (
    HealthMonitor,
    MonitorSession,
    active_monitor_session,
    use_monitoring,
)
from repro.monitor.report import render_html_report, render_prometheus

__all__ = [
    "CheckResult",
    "Diagnostic",
    "DiagnosticLog",
    "HealthMonitor",
    "HealthVerdict",
    "MonitorSession",
    "RingSeries",
    "TimeSeriesSampler",
    "active_monitor_session",
    "render_html_report",
    "render_prometheus",
    "use_monitoring",
]
