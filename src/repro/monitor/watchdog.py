"""Invariant watchdogs and structured diagnostics.

The paper's communication machinery rests on conservation laws the
hardware enforces and the software must respect: every injected packet
is eventually delivered exactly as many times as its routing promises,
synchronization counters only move forward and never strand a waiter,
the hardware message FIFO never exceeds its ring capacity, and a
machine with packets in flight always makes delivery progress.  The
watchdogs check those invariants *while the simulation runs* (at the
sampler cadence) and emit structured, leveled, sim-time-stamped JSONL
diagnostics when one breaks — the "alerting" half of metrics +
alerting.

A check that ever left the ``ok`` state stays visible in the final
:class:`HealthVerdict` even if the condition later cleared: a
transient conservation violation is a bug, not noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

#: Diagnostic / check severity, in increasing order of badness.
LEVELS = ("info", "warning", "error")

#: Default bound on the deepest head-of-line queue any link direction
#: may grow.  The real machine's channel buffers are tiny (packets are
#: consumed at wire speed); a queue hundreds deep in the model means a
#: workload is funnelling unboundedly into one direction — exactly the
#: failure the congestion X-ray exists to attribute.
DEFAULT_QUEUE_LIMIT = 1024

_SEVERITY = {level: i for i, level in enumerate(LEVELS)}


@dataclass(slots=True)
class Diagnostic:
    """One structured diagnostic record with simulation-time context."""

    time_ns: float
    level: str
    check: str
    message: str
    context: dict = field(default_factory=dict)

    def to_json(self) -> str:
        doc: dict[str, Any] = {
            "t_ns": self.time_ns,
            "level": self.level,
            "check": self.check,
            "msg": self.message,
        }
        doc.update(self.context)
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class DiagnosticLog:
    """Bounded, leveled diagnostic stream (JSONL on disk).

    Like every monitor buffer, the log is capacity-bounded with an
    explicit dropped counter; per-level counts are kept even for
    dropped records, so the verdict never under-reports severity.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.records: list[Diagnostic] = []
        self.dropped = 0
        self.counts = {level: 0 for level in LEVELS}

    def emit(
        self,
        time_ns: float,
        level: str,
        check: str,
        message: str,
        **context: Any,
    ) -> Diagnostic:
        if level not in _SEVERITY:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        diag = Diagnostic(time_ns, level, check, message, context)
        self.counts[level] += 1
        if len(self.records) < self.capacity:
            self.records.append(diag)
        else:
            self.dropped += 1
        return diag

    def by_level(self, level: str) -> list[Diagnostic]:
        return [d for d in self.records if d.level == level]

    @property
    def worst_level(self) -> Optional[str]:
        """Most severe level ever emitted, or ``None`` when silent."""
        for level in reversed(LEVELS):
            if self.counts[level]:
                return level
        return None

    def jsonl_lines(self) -> list[str]:
        return [d.to_json() for d in self.records]

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for line in self.jsonl_lines():
                fh.write(line + "\n")

    def __len__(self) -> int:
        return len(self.records)


@dataclass(slots=True)
class CheckResult:
    """Worst observed state of one invariant check."""

    name: str
    status: str  # "ok" | "warning" | "error"
    detail: str

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class HealthVerdict:
    """The monitor's summary judgement of one run."""

    checks: list[CheckResult]
    sim_time_ns: float
    packets_injected: int
    packets_delivered: int
    packets_in_flight: int
    samples_recorded: int
    dropped_samples: int
    #: Events evicted by an attached EventHistory (0 when none watched).
    dropped_events: int
    dropped_diagnostics: int
    diagnostic_counts: dict[str, int]
    #: Deepest head-of-line queue ever observed per link direction
    #: (``z+``-style tag → packets), the backpressure fingerprint the
    #: report and the Prometheus exposition surface.
    peak_queue_by_direction: dict[str, int] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """No check ever reached ``error`` severity.  Warnings (e.g.
        telemetry loss) are reported but do not fail the run."""
        return all(c.status != "error" for c in self.checks)

    def check(self, name: str) -> CheckResult:
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(f"no check named {name!r}")

    def render_text(self) -> str:
        # Local import: repro.analysis pulls in the asic/network stack
        # (same cycle-avoidance as MetricsRegistry.summary).
        from repro.analysis.report import render_table

        mark = {"ok": "pass", "warning": "WARN", "error": "FAIL"}
        rows = [[c.name, mark[c.status], c.detail] for c in self.checks]
        table = render_table(
            "Health verdict: " + ("HEALTHY" if self.healthy else "UNHEALTHY"),
            ["invariant", "status", "detail"],
            rows,
        )
        tail = (
            f"sim time {self.sim_time_ns:.0f} ns; "
            f"packets {self.packets_injected} injected / "
            f"{self.packets_delivered} delivered / "
            f"{self.packets_in_flight} in flight; "
            f"{self.samples_recorded} samples retained "
            f"({self.dropped_samples} dropped), "
            f"{self.dropped_events} events evicted; diagnostics "
            + ", ".join(f"{self.diagnostic_counts[k]} {k}" for k in LEVELS)
        )
        if self.peak_queue_by_direction:
            tail += "; peak queues " + ", ".join(
                f"{d}={depth}"
                for d, depth in sorted(self.peak_queue_by_direction.items())
            )
        return table + "\n" + tail


class InvariantWatchdogs:
    """The four live invariant checks over one machine.

    ``machine`` is duck-typed: anything with a ``network`` (Anton
    :class:`~repro.asic.node.Machine`) plus iterable nodes whose
    clients expose ``counters()`` and, for slices, a ``fifo``.

    Check cadence is the caller's business (the
    :class:`~repro.monitor.health.HealthMonitor` runs the cheap
    counter-based checks every sampler tick and the per-client sweeps
    on the decimated cadence); every violation is diagnosed once per
    episode rather than once per tick, so a persistent breakage cannot
    flood the log.
    """

    def __init__(
        self,
        machine,
        log: DiagnosticLog,
        stall_ns: float = 50_000.0,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        if stall_ns <= 0:
            raise ValueError(f"stall_ns must be positive, got {stall_ns}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.machine = machine
        self.network = machine.network
        self.log = log
        self.stall_ns = stall_ns
        self.queue_limit = queue_limit
        self._worst: dict[str, CheckResult] = {}
        names = [
            "packet_conservation",
            "sync_counter_consistency",
            "fifo_depth_bounds",
            "stall_detector",
            "queue_growth",
        ]
        # The fault invariants exist only when a fault session is
        # attached, so fault-free verdicts keep their historical four
        # checks byte for byte.
        if getattr(self.network, "faults", None) is not None:
            names += ["fault_packet_loss", "fault_retry_bounds"]
        for name in names:
            self._worst[name] = CheckResult(name, "ok", "")
        # Stall-detector state.
        self._progress_marker: tuple[int, int, int] = (0, 0, 0)
        self._last_progress_ns = 0.0
        self._stall_reported = False

    # -- bookkeeping ---------------------------------------------------------
    def _report(
        self,
        now: float,
        name: str,
        status: str,
        detail: str,
        **context: Any,
    ) -> None:
        worst = self._worst[name]
        if _SEVERITY[status] >= _SEVERITY.get(worst.status, 0) and status != "ok":
            if (worst.status, worst.detail) != (status, detail):
                self.log.emit(now, status, name, detail, **context)
            self._worst[name] = CheckResult(name, status, detail)

    def results(self) -> list[CheckResult]:
        """Worst observed state of every check, stable order."""
        out = []
        for name, res in self._worst.items():
            if res.ok and not res.detail:
                res = CheckResult(name, "ok", "never violated")
            out.append(res)
        return out

    # -- the invariants ------------------------------------------------------
    def check_packet_conservation(self, now: float, final: bool = False) -> None:
        """injected == completed + in-flight, deliveries == promised.

        The network model never drops packets, so the paper's
        conservation law specializes to: deliveries may never exceed
        what routing promised, the in-flight count may never go
        negative, and at quiescence nothing may remain in flight.
        """
        net = self.network
        in_flight = net.packets_injected - net.packets_completed
        if in_flight < 0:
            self._report(
                now, "packet_conservation", "error",
                f"completed {net.packets_completed} packets exceed "
                f"{net.packets_injected} injected",
                injected=net.packets_injected,
                completed=net.packets_completed,
            )
        if net.packets_delivered > net.deliveries_expected:
            self._report(
                now, "packet_conservation", "error",
                f"{net.packets_delivered} deliveries exceed the "
                f"{net.deliveries_expected} promised by routing",
                delivered=net.packets_delivered,
                expected=net.deliveries_expected,
            )
        if final:
            # Packets the fault session dropped (loudly) count as
            # completed and their owed deliveries as lost; both are 0
            # without fault injection, keeping the arithmetic intact.
            lost = getattr(net, "deliveries_lost", 0)
            if in_flight != 0:
                self._report(
                    now, "packet_conservation", "error",
                    f"{in_flight} packet(s) still in flight at the end "
                    "of the run (lost or deadlocked)",
                    in_flight=in_flight,
                )
            elif net.packets_delivered + lost != net.deliveries_expected:
                self._report(
                    now, "packet_conservation", "error",
                    f"run ended with {net.packets_delivered} deliveries "
                    f"(+{lost} accounted lost), "
                    f"expected {net.deliveries_expected}",
                    delivered=net.packets_delivered,
                    lost=lost,
                    expected=net.deliveries_expected,
                )

    def check_sync_counters(self, now: float, final: bool = False) -> None:
        """Counters are monotone within an epoch and never strand a
        satisfiable waiter."""
        for node in self.machine:
            for client in node.clients():
                for cid, counter in client.counters().items():
                    if counter.count < 0 or (
                        counter.count > counter.total_increments
                    ):
                        self._report(
                            now, "sync_counter_consistency", "error",
                            f"counter {counter.name!r} count "
                            f"{counter.count} inconsistent with "
                            f"{counter.total_increments} total increments",
                            counter=counter.name,
                        )
                    pending = counter.pending_targets()
                    if pending and pending[0] <= counter.count:
                        self._report(
                            now, "sync_counter_consistency", "error",
                            f"counter {counter.name!r} has a waiter at "
                            f"{pending[0]} though the count is already "
                            f"{counter.count} (missed wakeup)",
                            counter=counter.name,
                        )
                    elif final and pending:
                        self._report(
                            now, "sync_counter_consistency", "error",
                            f"counter {counter.name!r} ended the run "
                            f"with waiters at {pending} "
                            f"(count={counter.count})",
                            counter=counter.name,
                        )

    def check_fifo_bounds(self, now: float, final: bool = False) -> None:
        """Ring occupancy within capacity; backpressure surfaced."""
        for node in self.machine:
            for slc in node.slices:
                fifo = slc.fifo
                if fifo.occupancy > fifo.capacity:
                    self._report(
                        now, "fifo_depth_bounds", "error",
                        f"FIFO {fifo.name!r} occupancy {fifo.occupancy} "
                        f"exceeds capacity {fifo.capacity}",
                        fifo=fifo.name,
                    )
                consumed_plus_held = (
                    fifo.total_consumed + fifo.occupancy
                    + fifo.overflow_occupancy
                )
                if fifo.total_received != consumed_plus_held:
                    self._report(
                        now, "fifo_depth_bounds", "error",
                        f"FIFO {fifo.name!r} lost messages: received "
                        f"{fifo.total_received}, accounted "
                        f"{consumed_plus_held}",
                        fifo=fifo.name,
                    )
                if fifo.overflow_occupancy > 0:
                    self._report(
                        now, "fifo_depth_bounds", "warning",
                        f"FIFO {fifo.name!r} is exerting backpressure "
                        f"({fifo.overflow_occupancy} packet(s) parked)",
                        fifo=fifo.name,
                    )
                if final and len(fifo) > 0:
                    self._report(
                        now, "fifo_depth_bounds", "warning",
                        f"FIFO {fifo.name!r} ended the run with "
                        f"{len(fifo)} unconsumed message(s)",
                        fifo=fifo.name,
                    )

    def check_stall(self, now: float, final: bool = False) -> None:
        """Packets in flight must make delivery progress.

        Sim time only advances through events, so a hard engine
        deadlock ends the run (and is caught by the final conservation
        check); what *this* detector catches is livelock — events keep
        firing (polling loops, timers) while no packet is injected,
        delivered, or completed for ``stall_ns`` of simulated time even
        though packets are in flight.
        """
        net = self.network
        marker = (
            net.packets_injected,
            net.packets_completed,
            net.packets_delivered,
        )
        if marker != self._progress_marker:
            self._progress_marker = marker
            self._last_progress_ns = now
            self._stall_reported = False
            return
        in_flight = net.packets_injected - net.packets_completed
        if in_flight <= 0:
            self._last_progress_ns = now
            return
        stalled_for = now - self._last_progress_ns
        if stalled_for > self.stall_ns and not self._stall_reported:
            self._stall_reported = True
            self._report(
                now, "stall_detector", "error",
                f"{in_flight} packet(s) in flight but no network "
                f"progress for {stalled_for:.0f} ns "
                f"(threshold {self.stall_ns:.0f} ns)",
                in_flight=in_flight,
                stalled_ns=stalled_for,
            )

    def check_queue_growth(self, now: float, final: bool = False) -> None:
        """No link direction's head-of-line queue grows without bound.

        A head-of-line queue deeper than ``queue_limit`` means a
        workload funnels into one direction faster than it can ever
        drain — a modelling or protocol bug, not ordinary contention.
        The sweep reads each materialized link's monotone
        ``peak_queue_length`` high watermark, so a transient spike
        between ticks is still caught.
        """
        worst_depth = 0
        worst = None
        for link in self.network.links():
            depth = link.channel.peak_queue_length
            if depth > worst_depth:
                worst_depth = depth
                worst = link
        worst_link = "" if worst is None else repr(worst.link_id)
        if worst_depth > self.queue_limit:
            self._report(
                now, "queue_growth", "error",
                f"head-of-line queue on {worst_link} reached "
                f"{worst_depth} packet(s), above the bound of "
                f"{self.queue_limit} (unbounded queue growth)",
                link=worst_link,
                peak=worst_depth,
                limit=self.queue_limit,
            )
        elif final and self._worst["queue_growth"].ok:
            self._worst["queue_growth"] = CheckResult(
                "queue_growth", "ok",
                f"deepest queue {worst_depth} of {self.queue_limit} allowed",
            )

    def check_faults(self, now: float, final: bool = False) -> None:
        """Fault-injection invariants: no packet silently lost, retries
        bounded.  A no-op (and absent from the verdict) without an
        attached fault session.
        """
        fa = getattr(self.network, "faults", None)
        if fa is None:
            return
        net = self.network
        st = fa.stats
        net_lost = getattr(net, "packets_lost", 0)
        if st.packets_lost != net_lost:
            self._report(
                now, "fault_packet_loss", "error",
                f"loss accounting mismatch: session counted "
                f"{st.packets_lost} dropped packet(s), network counted "
                f"{net_lost} (a packet was lost silently)",
                session_lost=st.packets_lost,
                network_lost=net_lost,
            )
        elif st.packets_lost:
            self._report(
                now, "fault_packet_loss", "error",
                f"{st.packets_lost} packet(s) dropped after retry "
                f"exhaustion ({st.deliveries_lost} owed deliveries "
                "lost; detected and accounted, never silent)",
                packets_lost=st.packets_lost,
                deliveries_lost=st.deliveries_lost,
            )
        if st.max_retries_seen > fa.plan.max_retries:
            self._report(
                now, "fault_retry_bounds", "error",
                f"a traversal recorded {st.max_retries_seen} "
                f"retransmissions, above the protocol bound of "
                f"{fa.plan.max_retries}",
                max_seen=st.max_retries_seen,
                bound=fa.plan.max_retries,
            )
        if final:
            # Leave human-readable totals on checks that stayed ok.
            if self._worst["fault_packet_loss"].ok:
                self._worst["fault_packet_loss"] = CheckResult(
                    "fault_packet_loss", "ok",
                    f"0 lost ({st.retransmissions} retransmission(s) "
                    "recovered every corruption)",
                )
            if self._worst["fault_retry_bounds"].ok:
                self._worst["fault_retry_bounds"] = CheckResult(
                    "fault_retry_bounds", "ok",
                    f"worst traversal used {st.max_retries_seen} of "
                    f"{fa.plan.max_retries} allowed retransmissions",
                )
