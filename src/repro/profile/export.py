"""Profile exporters: speedscope, collapsed stacks, JSON, and a table.

The wall-time profile is a three-level attribution
(phase → component → event type), which maps naturally onto a
flamegraph whose stacks are ``phase;component;label``.  Two standard
formats are emitted:

* **speedscope** — the https://speedscope.app ``sampled`` profile
  schema; every (phase, component, label) triple becomes one weighted
  sample, weights in integer nanoseconds, and the scheduler-overhead
  frame makes the weights sum *exactly* to the measured run-loop wall
  time (``endValue == loop_wall_ns``);
* **collapsed stacks** — the classic ``stack value`` lines consumed by
  ``flamegraph.pl``, speedscope, and most flamegraph tooling.

Both are derived from :meth:`EngineProfiler.wall_profile`, so the
tiling invariant (component totals sum to the loop wall time) holds in
every export by construction.
"""

from __future__ import annotations

import json
from typing import TextIO

from repro.profile.profiler import EngineProfiler, IDLE_PHASE_LABEL

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _stacks(profile: dict) -> list[tuple[tuple[str, ...], int, int]]:
    """Flatten a wall profile into ``(frames, wall_ns, events)`` rows,
    deterministically ordered (phase, component, label)."""
    rows: list[tuple[tuple[str, ...], int, int]] = []
    for phase, comps in sorted(profile["phases"].items()):
        for comp, labels in sorted(comps.items()):
            for label, node in sorted(labels.items()):
                frames = (phase, comp, label)
                if phase == IDLE_PHASE_LABEL:
                    frames = (comp, label)
                rows.append((frames, node["wall_ns"], node["events"]))
    return rows


def to_speedscope(profiler: EngineProfiler, name: str = "repro") -> dict:
    """The profile as a speedscope ``sampled`` document.

    Weights are integer nanoseconds; their sum equals ``endValue``
    equals the profiler's measured ``loop_wall_ns`` — the tiling
    property the acceptance criteria check.
    """
    profile = profiler.wall_profile()
    frame_index: dict[str, int] = {}
    frames: list[dict] = []

    def frame(label: str) -> int:
        idx = frame_index.get(label)
        if idx is None:
            idx = frame_index[label] = len(frames)
            frames.append({"name": label})
        return idx

    samples: list[list[int]] = []
    weights: list[int] = []
    for stack, wall_ns, _events in _stacks(profile):
        if wall_ns <= 0:
            continue
        samples.append([frame(label) for label in stack])
        weights.append(wall_ns)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro-profile/1",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "nanoseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def to_collapsed(profiler: EngineProfiler) -> str:
    """The profile as collapsed-stack lines (``a;b;c 1234``), one per
    (phase, component, event type) with non-zero wall time."""
    profile = profiler.wall_profile()
    lines = [
        f"{';'.join(stack)} {wall_ns}"
        for stack, wall_ns, _events in _stacks(profile)
        if wall_ns > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(profiler: EngineProfiler) -> dict:
    """Both profiles in one document: the deterministic counts and the
    host-dependent wall times, clearly separated."""
    return {
        "schema": "repro-profile/1",
        "counts": profiler.count_profile(),
        "wall": profiler.wall_profile(),
    }


def render_table(profiler: EngineProfiler, top: int = 15) -> str:
    """Human-readable summary: component totals (tiling the loop wall
    time) and the hottest event types."""
    profile = profiler.wall_profile()
    loop_ns = max(profile["loop_wall_ns"], 1)
    out: list[str] = []
    out.append(
        f"run loop: {profile['loop_wall_ns'] / 1e6:.2f} ms wall, "
        f"{profile['events_total']} events "
        f"({profile['events_per_second']:,.0f} events/s)"
    )
    out.append("")
    out.append(f"{'component':<12} {'wall ms':>10} {'share':>7} {'events':>10}")
    totals = profiler.component_totals()
    for comp, (events, wall_ns) in sorted(
        totals.items(), key=lambda kv: -kv[1][1]
    ):
        out.append(
            f"{comp:<12} {wall_ns / 1e6:>10.2f} "
            f"{100.0 * wall_ns / loop_ns:>6.1f}% {events:>10}"
        )
    out.append("")
    out.append(f"top {top} event types")
    out.append(f"{'component/event':<40} {'wall ms':>10} {'events':>10}")
    for cell in profiler.cells()[:top]:
        out.append(
            f"{cell.component + '/' + cell.label:<40} "
            f"{cell.wall_ns / 1e6:>10.2f} {cell.count:>10}"
        )
    phases = [p for p in profiler.phases() if p]
    if phases:
        out.append("")
        out.append("phases: " + ", ".join(phases))
    return "\n".join(out) + "\n"


def write_profile(
    profiler: EngineProfiler,
    stream: TextIO,
    fmt: str = "speedscope",
    name: str = "repro",
) -> None:
    """Serialize one profile to ``stream`` in the requested format."""
    if fmt == "speedscope":
        json.dump(to_speedscope(profiler, name=name), stream, indent=2)
        stream.write("\n")
    elif fmt == "collapsed":
        stream.write(to_collapsed(profiler))
    elif fmt == "json":
        json.dump(to_json(profiler), stream, indent=2, sort_keys=True)
        stream.write("\n")
    else:
        raise ValueError(
            f"unknown profile format {fmt!r}; "
            "expected speedscope, collapsed, or json"
        )
