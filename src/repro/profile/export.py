"""Profile exporters: speedscope, collapsed stacks, JSON, and a table.

The wall-time profile is a three-level attribution
(phase → component → event type), which maps naturally onto a
flamegraph whose stacks are ``phase;component;label``.  Two standard
formats are emitted:

* **speedscope** — the https://speedscope.app ``sampled`` profile
  schema; every (phase, component, label) triple becomes one weighted
  sample, weights in integer nanoseconds, and the scheduler-overhead
  frame makes the weights sum *exactly* to the measured run-loop wall
  time (``endValue == loop_wall_ns``);
* **collapsed stacks** — the classic ``stack value`` lines consumed by
  ``flamegraph.pl``, speedscope, and most flamegraph tooling.

Both are derived from :meth:`EngineProfiler.wall_profile`, so the
tiling invariant (component totals sum to the loop wall time) holds in
every export by construction.
"""

from __future__ import annotations

import json
from typing import TextIO

from repro.profile.profiler import EngineProfiler, IDLE_PHASE_LABEL

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _stacks(profile: dict) -> list[tuple[tuple[str, ...], int, int]]:
    """Flatten a wall profile into ``(frames, wall_ns, events)`` rows,
    deterministically ordered (phase, component, label)."""
    rows: list[tuple[tuple[str, ...], int, int]] = []
    for phase, comps in sorted(profile["phases"].items()):
        for comp, labels in sorted(comps.items()):
            for label, node in sorted(labels.items()):
                frames = (phase, comp, label)
                if phase == IDLE_PHASE_LABEL:
                    frames = (comp, label)
                rows.append((frames, node["wall_ns"], node["events"]))
    return rows


def to_speedscope(profiler: EngineProfiler, name: str = "repro") -> dict:
    """The profile as a speedscope ``sampled`` document.

    Weights are integer nanoseconds; their sum equals ``endValue``
    equals the profiler's measured ``loop_wall_ns`` — the tiling
    property the acceptance criteria check.
    """
    profile = profiler.wall_profile()
    frame_index: dict[str, int] = {}
    frames: list[dict] = []

    def frame(label: str) -> int:
        idx = frame_index.get(label)
        if idx is None:
            idx = frame_index[label] = len(frames)
            frames.append({"name": label})
        return idx

    samples: list[list[int]] = []
    weights: list[int] = []
    for stack, wall_ns, _events in _stacks(profile):
        if wall_ns <= 0:
            continue
        samples.append([frame(label) for label in stack])
        weights.append(wall_ns)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro-profile/1",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "nanoseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def to_collapsed(profiler: EngineProfiler) -> str:
    """The profile as collapsed-stack lines (``a;b;c 1234``), one per
    (phase, component, event type) with non-zero wall time."""
    profile = profiler.wall_profile()
    lines = [
        f"{';'.join(stack)} {wall_ns}"
        for stack, wall_ns, _events in _stacks(profile)
        if wall_ns > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(profiler: EngineProfiler) -> dict:
    """Both profiles in one document: the deterministic counts and the
    host-dependent wall times, clearly separated."""
    return {
        "schema": "repro-profile/1",
        "counts": profiler.count_profile(),
        "wall": profiler.wall_profile(),
    }


def render_table(profiler: EngineProfiler, top: int = 15) -> str:
    """Human-readable summary: component totals (tiling the loop wall
    time) and the hottest event types."""
    profile = profiler.wall_profile()
    loop_ns = max(profile["loop_wall_ns"], 1)
    out: list[str] = []
    out.append(
        f"run loop: {profile['loop_wall_ns'] / 1e6:.2f} ms wall, "
        f"{profile['events_total']} events "
        f"({profile['events_per_second']:,.0f} events/s)"
    )
    out.append("")
    out.append(f"{'component':<12} {'wall ms':>10} {'share':>7} {'events':>10}")
    totals = profiler.component_totals()
    for comp, (events, wall_ns) in sorted(
        totals.items(), key=lambda kv: -kv[1][1]
    ):
        out.append(
            f"{comp:<12} {wall_ns / 1e6:>10.2f} "
            f"{100.0 * wall_ns / loop_ns:>6.1f}% {events:>10}"
        )
    out.append("")
    out.append(f"top {top} event types")
    out.append(f"{'component/event':<40} {'wall ms':>10} {'events':>10}")
    for cell in profiler.cells()[:top]:
        out.append(
            f"{cell.component + '/' + cell.label:<40} "
            f"{cell.wall_ns / 1e6:>10.2f} {cell.count:>10}"
        )
    phases = [p for p in profiler.phases() if p]
    if phases:
        out.append("")
        out.append("phases: " + ", ".join(phases))
    return "\n".join(out) + "\n"


def wall_profile_from_speedscope(doc: dict) -> dict:
    """Reconstruct a ``repro-profile-wall/1`` dict from a speedscope
    export produced by :func:`to_speedscope`.

    Three-frame stacks map back to ``phase → component → label``;
    two-frame stacks were emitted under the idle phase, so they return
    to :data:`IDLE_PHASE_LABEL`.  Event counts are not carried by the
    speedscope format and come back as 0; ``loop_wall_ns`` is the
    profile's ``endValue`` (== the sum of weights by construction), so
    a diff against a reconstructed capture still tiles exactly.
    """
    profiles = doc.get("profiles") or []
    if not profiles:
        raise ValueError("speedscope document has no profiles")
    prof = profiles[0]
    frames = [
        str(f.get("name", "")) for f in doc.get("shared", {}).get("frames", [])
    ]
    phases: dict[str, dict[str, dict[str, dict]]] = {}
    total = 0
    for sample, weight in zip(
        prof.get("samples", []), prof.get("weights", [])
    ):
        names = [frames[i] for i in sample]
        if len(names) == 3:
            phase, comp, label = names
        elif len(names) == 2:
            phase, (comp, label) = IDLE_PHASE_LABEL, names
        else:
            raise ValueError(
                f"unexpected stack depth {len(names)} in speedscope "
                "document (not a repro profile export?)"
            )
        node = phases.setdefault(phase, {}).setdefault(comp, {}).setdefault(
            label, {"events": 0, "wall_ns": 0}
        )
        node["wall_ns"] += int(weight)
        total += int(weight)
    loop_wall_ns = int(prof.get("endValue", total))
    return {
        "schema": "repro-profile-wall/1",
        "loop_wall_ns": loop_wall_ns,
        "event_wall_ns": total,
        "scheduler_overhead_ns": max(0, loop_wall_ns - total),
        "events_total": 0,
        "events_per_second": 0.0,
        "component_totals_ns": {},
        "phases": phases,
    }


def load_wall_profile(path: str) -> dict:
    """Load a wall-profile dict from any on-disk shape the profile CLI
    can produce: a raw ``repro-profile-wall/1`` document, a combined
    ``repro-profile/1`` (``--format json``) document, or a speedscope
    export (reconstructed, see
    :func:`wall_profile_from_speedscope`)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object")
    if doc.get("schema") == "repro-profile-wall/1":
        return doc
    if doc.get("schema") == "repro-profile/1":
        wall = doc.get("wall")
        if not isinstance(wall, dict):
            raise ValueError(f"{path}: repro-profile/1 without wall block")
        return wall
    if doc.get("$schema") == SPEEDSCOPE_SCHEMA or "profiles" in doc:
        return wall_profile_from_speedscope(doc)
    raise ValueError(
        f"{path}: not a recognizable profile document "
        "(repro-profile-wall/1, repro-profile/1, or speedscope)"
    )


def write_profile(
    profiler: EngineProfiler,
    stream: TextIO,
    fmt: str = "speedscope",
    name: str = "repro",
) -> None:
    """Serialize one profile to ``stream`` in the requested format."""
    if fmt == "speedscope":
        json.dump(to_speedscope(profiler, name=name), stream, indent=2)
        stream.write("\n")
    elif fmt == "collapsed":
        stream.write(to_collapsed(profiler))
    elif fmt == "json":
        json.dump(to_json(profiler), stream, indent=2, sort_keys=True)
        stream.write("\n")
    else:
        raise ValueError(
            f"unknown profile format {fmt!r}; "
            "expected speedscope, collapsed, or json"
        )
