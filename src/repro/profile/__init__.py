"""Engine self-profiling and live sweep telemetry.

Two observability layers in one package, both strictly passive:

* :class:`EngineProfiler` / :func:`use_profiling` — per-event wall-time
  and count accounting for the DES run loop (by event type, component,
  and simulation phase), with speedscope / collapsed-stack / JSON
  export.  The event-*count* profile is deterministic and
  byte-identical across runs; the wall-time profile tiles the measured
  loop wall time exactly.
* :class:`SweepTelemetry` — the parent-side aggregator for the
  structured heartbeat stream sweep workers emit (started / finished /
  retried / timed-out, cache hits, peak RSS, events/sec), feeding live
  ``sweep.*`` gauges, ``status.json``, the terminal progress line, and
  the Prometheus + HTML report pipeline.

``run_profiled`` lives in :mod:`repro.profile.capture` (imported
lazily by the CLI) because it pulls in the experiment registry.
"""

from repro.profile.export import (
    render_table,
    to_collapsed,
    to_json,
    to_speedscope,
    write_profile,
)
from repro.profile.profiler import (
    EngineProfiler,
    ProfileCell,
    active_profiler,
    use_profiling,
)
from repro.profile.telemetry import (
    STATUS_SCHEMA,
    SweepTelemetry,
    make_event,
    peak_rss_bytes,
    read_status,
)

__all__ = [
    "EngineProfiler",
    "ProfileCell",
    "STATUS_SCHEMA",
    "SweepTelemetry",
    "active_profiler",
    "make_event",
    "peak_rss_bytes",
    "read_status",
    "render_table",
    "to_collapsed",
    "to_json",
    "to_speedscope",
    "use_profiling",
    "write_profile",
]
