"""Run a named experiment with the engine self-profiler attached.

This is the machinery behind ``python -m repro profile <experiment>``:
it builds an :class:`~repro.runner.spec.ExperimentSpec` and dispatches
it through the experiment registry with :func:`use_profiling` active,
so every simulator the experiment constructs is profiled.  The
returned :class:`~repro.runner.result.RunResult` carries the live
:class:`~repro.profile.profiler.EngineProfiler` on its ``profile``
attribute for export.

Kept out of ``repro.profile.__init__`` for the same reason as
``repro.trace.capture``: the experiment registry imports the
analysis/asic stack, and importing this lazily (CLI, tests) keeps the
profile package cycle-free.
"""

from __future__ import annotations

from typing import Optional

from repro.runner.result import Captures, RunResult, run_experiment
from repro.runner.spec import ExperimentSpec, experiment_names

#: Experiments the profile CLI can run (any registered experiment —
#: the profiler's cost is per-event, not per-packet, so even the
#: untraceable ones profile fine).
EXPERIMENTS = experiment_names()


def run_profiled(
    experiment: str,
    shape: tuple[int, int, int] = (4, 4, 4),
    rounds: int = 2,
    payload: int = 0,
    seed: int = 0,
    hops: Optional[int] = None,
) -> RunResult:
    """Profile one experiment run.

    The wall-time numbers are host-dependent, but the event-*count*
    profile (``result.profile.count_profile()``) is deterministic:
    running the same spec twice yields byte-identical canonical JSON.
    """
    spec = ExperimentSpec(
        experiment=experiment,
        shape=shape,
        rounds=rounds,
        payload=payload,
        seed=seed,
        hops=hops,
    )
    return run_experiment(spec, Captures(profile=True))
