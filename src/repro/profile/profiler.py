"""The engine self-profiler: where do simulated nanoseconds cost real
microseconds?

The ROADMAP's vectorize-the-hot-path refactor needs exactly what the
Anton paper's Table 3 gives its readers — an accounting that *tiles*:
every unit of cost attributed to exactly one row, rows summing to the
total.  :class:`EngineProfiler` provides that for the simulator's own
event loop.  Installed on a :class:`~repro.engine.simulator.Simulator`
(usually ambiently, via :func:`use_profiling`), it accounts every
executed event along three axes:

* **event type** — the generator function (or scheduled callable) that
  ran, e.g. ``_htis_phase`` or ``_next_hop``;
* **component** — the ``repro`` subpackage that owns that code
  (``network``, ``asic``, ``comm``, ``md``, ``engine``, …);
* **phase** — the innermost open profiler phase (``step:long_range``,
  ``allreduce``, …), marked by the same call sites that mark flight-
  recorder phases.

Two profiles come out:

* a **deterministic event-count profile** — pure counts, byte-identical
  across runs of the same spec (usable as a regression artifact in
  tests and CI);
* a **wall-time profile** — integer nanoseconds from
  ``perf_counter_ns``, host-dependent, whose per-component totals tile
  the run loop's measured wall time *exactly*.  Timing is chained (one
  clock read per event), so an event's wall is *dispatch-inclusive*:
  it covers the heap pop, hook dispatch, and profiler bookkeeping that
  delivered it as well as its body.  The residual the loop spends
  outside any event (startup, stop checks, teardown) is surfaced as
  its own ``engine/(scheduler)`` row.

Profiling is a passive wall-clock observer: it reads no simulated
state, schedules nothing, and consumes no sequence numbers, so a
profiled run is bit-identical to a bare one (property-tested).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from repro.engine.process import Process
from repro.engine.simulator import (
    Simulator,
    add_new_sim_hook,
    remove_new_sim_hook,
)

#: Phase key used while no profiler phase is open.
IDLE_PHASE = ""

#: How the idle phase renders in exports and tables.
IDLE_PHASE_LABEL = "(run)"

#: Synthetic event-type label for the run-loop residual — wall time
#: the loop spent outside any event's dispatch-inclusive slice
#: (startup, stop checks, teardown).
SCHEDULER_LABEL = "(scheduler)"


class ProfileCell:
    """Accumulator for one (component, event type): per-phase
    ``[count, wall_ns]`` pairs."""

    __slots__ = ("component", "label", "by_phase")

    def __init__(self, component: str, label: str) -> None:
        self.component = component
        self.label = label
        #: phase name -> [count, wall_ns]
        self.by_phase: dict[str, list[int]] = {}

    @property
    def count(self) -> int:
        return sum(rec[0] for rec in self.by_phase.values())

    @property
    def wall_ns(self) -> int:
        return sum(rec[1] for rec in self.by_phase.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProfileCell {self.component}/{self.label} "
            f"n={self.count} wall={self.wall_ns}ns>"
        )


def _component_of_path(filename: str) -> str:
    """Owning component of a source file: the ``repro`` subpackage
    (``.../repro/comm/collectives.py`` → ``comm``), ``repro`` for
    top-level modules, the parent directory name otherwise (tests,
    benchmarks, examples)."""
    parts = filename.replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            rest = parts[i + 1 :]
            return rest[0] if len(rest) > 1 else "repro"
    return parts[-2] if len(parts) > 1 and parts[-2] else "other"


def _component_of_module(module: str) -> str:
    parts = module.split(".")
    if parts[0] == "repro":
        return parts[1] if len(parts) > 1 else "repro"
    return parts[0] or "other"


class EngineProfiler:
    """Low-overhead per-event accounting for the simulator run loop.

    The hot path — inlined in ``Simulator.run`` — is one dict lookup
    on :attr:`rec_cache` (keyed by the event callable's code object)
    plus a single chained ``perf_counter_ns`` read per event.
    Classification work (code object → component/label) happens once
    per distinct call site in :meth:`rec_for`, the cold path that
    primes the cache; phase transitions invalidate it.
    """

    def __init__(self) -> None:
        self._cells: list[ProfileCell] = []
        self._by_code: dict[Any, ProfileCell] = {}
        self._by_name: dict[tuple[str, str], ProfileCell] = {}
        #: Hot-path cache: stable call-site key (code object) → the
        #: ``[count, wall_ns]`` rec for the *current* phase.  Primed by
        #: :meth:`rec_for`, read inline by ``Simulator.run``, cleared
        #: on every phase transition.
        self.rec_cache: dict[Any, list] = {}
        self._phase_stack: list[str] = []
        self._phase: str = IDLE_PHASE
        #: Wall ns the instrumented run loops spent in total (events
        #: plus scheduler overhead), accumulated across every
        #: ``Simulator.run`` call of every attached simulator.
        self.loop_wall_ns: int = 0
        #: Simulators this profiler is attached to, in attach order.
        self.sims: list[Simulator] = []

    # -- attachment --------------------------------------------------------
    def attach(self, sim: Simulator) -> "EngineProfiler":
        """Install on a simulator (idempotent per simulator)."""
        if sim not in self.sims:
            sim.set_profiler(self)
            self.sims.append(sim)
        return self

    def detach_all(self) -> None:
        for sim in self.sims:
            if sim._profiler is self:
                sim.set_profiler(None)

    # -- cold path (called from Simulator.run on a cache miss) -------------
    def rec_for(
        self, fn: Callable, args: tuple, key: Any = None
    ) -> list:
        """The ``[count, wall_ns]`` accumulator for one queue entry in
        the current phase, resolved before the event body runs
        (``_fire`` consumes its callbacks).  ``key`` is the stable
        call-site key the run loop derived inline (or ``None`` when it
        couldn't); when present, the resolved rec is primed into
        :attr:`rec_cache` so subsequent events from the same call site
        hit the cache instead of this method.

        Class checks use ``__class__ is`` pointer compares: neither
        :class:`Process` nor :class:`Simulator` is subclassed in this
        codebase, and a subclass would merely fall to the generic
        callable path (correct, just less specific)."""
        obj = getattr(fn, "__self__", None)
        cls = obj.__class__ if obj is not None else None
        if cls is Process:
            code = obj.generator.gi_code
            cell = self._by_code.get(code)
            if cell is None:
                cell = ProfileCell(
                    _component_of_path(code.co_filename), code.co_name
                )
                self._by_code[code] = cell
                self._cells.append(cell)
        elif cls is Simulator:
            # Simulator._fire(event): attribute the timeout delivery
            # to the first waiting process, the code that actually
            # runs inside this event.
            code = None
            ev = args[0] if args else None
            callbacks = getattr(ev, "callbacks", None)
            if callbacks:
                waiter = getattr(callbacks[0], "__self__", None)
                if waiter is not None and waiter.__class__ is Process:
                    code = waiter.generator.gi_code
            if code is not None:
                cell = self._by_code.get(code)
                if cell is None:
                    cell = ProfileCell(
                        _component_of_path(code.co_filename), code.co_name
                    )
                    self._by_code[code] = cell
                    self._cells.append(cell)
            else:
                cell = self._named_cell("engine", "Timeout")
        else:
            # Plain callables (network hops, HTIS deliveries, ...).
            # A bound method object is fresh per schedule, but its
            # underlying function's code object is stable — memoize on
            # that so classification runs once per call site, not once
            # per event.
            func = getattr(fn, "__func__", fn)
            memo = getattr(func, "__code__", func)
            cell = self._by_code.get(memo)
            if cell is None:
                label = getattr(fn, "__qualname__", None) or type(fn).__name__
                module = getattr(fn, "__module__", None) or "other"
                cell = self._named_cell(_component_of_module(module), label)
                self._by_code[memo] = cell
        phase = self._phase
        rec = cell.by_phase.get(phase)
        if rec is None:
            rec = cell.by_phase[phase] = [0, 0]
        if key is not None:
            self.rec_cache[key] = rec
        return rec

    def _named_cell(self, component: str, label: str) -> ProfileCell:
        key = (component, label)
        cell = self._by_name.get(key)
        if cell is None:
            cell = ProfileCell(component, label)
            self._by_name[key] = cell
            self._cells.append(cell)
        return cell

    def account(self, cell: ProfileCell, wall_ns: int) -> None:
        rec = cell.by_phase.get(self._phase)
        if rec is None:
            rec = cell.by_phase[self._phase] = [0, 0]
        rec[0] += 1
        rec[1] += wall_ns

    def account_loop(self, wall_ns: int) -> None:
        """One ``Simulator.run`` loop finished after ``wall_ns``."""
        self.loop_wall_ns += wall_ns

    # -- phases ------------------------------------------------------------
    def phase_begin(self, name: str) -> None:
        """Open a named phase; subsequent events are attributed to it
        until the matching :meth:`phase_end` (phases nest)."""
        self._phase_stack.append(name)
        self._phase = name
        self.rec_cache.clear()  # cached recs belong to the old phase

    def phase_end(self, name: str) -> None:
        """Close the innermost open phase with this name."""
        stack = self._phase_stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                break
        self._phase = stack[-1] if stack else IDLE_PHASE
        self.rec_cache.clear()  # cached recs belong to the old phase

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        self.phase_begin(name)
        try:
            yield
        finally:
            self.phase_end(name)

    # -- results -----------------------------------------------------------
    @property
    def events_total(self) -> int:
        """Events the profiler accounted (all cells, all phases)."""
        return sum(cell.count for cell in self._cells)

    @property
    def event_wall_ns(self) -> int:
        """Wall ns attributed to events (dispatch-inclusive slices)."""
        return sum(cell.wall_ns for cell in self._cells)

    @property
    def scheduler_overhead_ns(self) -> int:
        """Run-loop wall time outside any event's dispatch-inclusive
        slice: loop startup, stop checks, teardown."""
        return max(0, self.loop_wall_ns - self.event_wall_ns)

    @property
    def events_per_second(self) -> float:
        if self.loop_wall_ns <= 0:
            return 0.0
        return self.events_total / (self.loop_wall_ns / 1e9)

    def cells(self) -> list[ProfileCell]:
        """All accumulator cells, sorted by descending wall time then
        by identity (deterministic for equal-wall cells, which is what
        the count profile exercises)."""
        return sorted(
            self._cells,
            key=lambda c: (-c.wall_ns, c.component, c.label),
        )

    def phases(self) -> list[str]:
        """Every phase that accounted at least one event, sorted."""
        seen = set()
        for cell in self._cells:
            seen.update(cell.by_phase)
        return sorted(seen)

    def component_totals(
        self, include_overhead: bool = True
    ) -> dict[str, tuple[int, int]]:
        """Per-component ``(events, wall_ns)``.  With
        ``include_overhead`` (the default) the scheduler overhead is
        added to ``engine``, making the totals tile
        :attr:`loop_wall_ns` exactly."""
        totals: dict[str, list[int]] = {}
        for cell in self._cells:
            rec = totals.setdefault(cell.component, [0, 0])
            rec[0] += cell.count
            rec[1] += cell.wall_ns
        if include_overhead:
            rec = totals.setdefault("engine", [0, 0])
            rec[1] += self.scheduler_overhead_ns
        return {
            name: (rec[0], rec[1]) for name, rec in sorted(totals.items())
        }

    def count_profile(self) -> dict:
        """The deterministic profile: event counts per
        ``phase → component → event type``.  Contains no wall-clock
        values, so its canonical JSON is byte-identical across runs of
        the same spec — in any process, on any host."""
        phases: dict[str, dict[str, dict[str, int]]] = {}
        for cell in self._cells:
            for phase, (count, _wall) in cell.by_phase.items():
                comp = phases.setdefault(phase or IDLE_PHASE_LABEL, {})
                comp.setdefault(cell.component, {})[cell.label] = (
                    comp.get(cell.component, {}).get(cell.label, 0) + count
                )
        return {
            "schema": "repro-profile-counts/1",
            "events_total": self.events_total,
            "phases": {
                phase: {
                    comp: dict(sorted(labels.items()))
                    for comp, labels in sorted(comps.items())
                }
                for phase, comps in sorted(phases.items())
            },
        }

    def wall_profile(self) -> dict:
        """The wall-time profile: integer ns per
        ``phase → component → event type`` plus the scheduler-overhead
        row; component totals tile :attr:`loop_wall_ns` exactly."""
        phases: dict[str, dict[str, dict[str, dict]]] = {}
        for cell in self._cells:
            for phase, (count, wall) in cell.by_phase.items():
                comp = phases.setdefault(phase or IDLE_PHASE_LABEL, {})
                node = comp.setdefault(cell.component, {}).setdefault(
                    cell.label, {"events": 0, "wall_ns": 0}
                )
                node["events"] += count
                node["wall_ns"] += wall
        phases.setdefault(IDLE_PHASE_LABEL, {}).setdefault("engine", {})[
            SCHEDULER_LABEL
        ] = {"events": 0, "wall_ns": self.scheduler_overhead_ns}
        return {
            "schema": "repro-profile-wall/1",
            "loop_wall_ns": self.loop_wall_ns,
            "event_wall_ns": self.event_wall_ns,
            "scheduler_overhead_ns": self.scheduler_overhead_ns,
            "events_total": self.events_total,
            "events_per_second": self.events_per_second,
            "component_totals_ns": {
                name: wall
                for name, (_n, wall) in self.component_totals().items()
            },
            "phases": {
                phase: {
                    comp: dict(sorted(labels.items()))
                    for comp, labels in sorted(comps.items())
                }
                for phase, comps in sorted(phases.items())
            },
        }


# ---------------------------------------------------------------------------
# Ambient profiling session (same pattern as use_registry / use_flight)
# ---------------------------------------------------------------------------

_ACTIVE_SESSION: Optional["ProfileSession"] = None


class ProfileSession:
    """Attaches one profiler to every simulator built while active."""

    def __init__(self, profiler: Optional[EngineProfiler] = None) -> None:
        self.profiler = profiler if profiler is not None else EngineProfiler()

    def _on_new_sim(self, sim: Simulator) -> None:
        self.profiler.attach(sim)


def active_profiler() -> Optional[EngineProfiler]:
    """The ambient profiler, or ``None`` when profiling is off.  Phase
    call sites (collectives, migration, MD steps) consult this with a
    single load + ``is None`` test."""
    session = _ACTIVE_SESSION
    return session.profiler if session is not None else None


@contextmanager
def use_profiling(
    profiler: Optional[EngineProfiler] = None,
) -> Iterator[EngineProfiler]:
    """Profile every simulator constructed inside the ``with`` block.

    Yields the (possibly caller-supplied) :class:`EngineProfiler`;
    nested sessions shadow the outer one, mirroring ``use_registry``.
    """
    global _ACTIVE_SESSION
    session = ProfileSession(profiler)
    hook = add_new_sim_hook(session._on_new_sim)
    prev = _ACTIVE_SESSION
    _ACTIVE_SESSION = session
    try:
        yield session.profiler
    finally:
        _ACTIVE_SESSION = prev
        remove_new_sim_hook(hook)


# Unit normalization (Linux KiB vs macOS bytes) lives with the other
# host-fact collectors; re-exported here for existing importers.
from repro.profile.telemetry import peak_rss_bytes  # noqa: E402,F401
