"""Live cross-process sweep telemetry.

PR-4's sweep workers are black boxes until they return: the parent
learns a point's fate only when the pool future resolves.  This module
makes them report in.  Workers emit structured **telemetry events** —
plain dicts, picklable, shippable over a manager queue or a pipe —

* ``started`` when a point begins executing (with the worker pid),
* ``finished`` when it completes (wall seconds, simulator events/sec,
  peak RSS),
* ``failed`` / ``timed_out`` / ``retried`` from the guarded scheduler,
* ``cache_hit`` / ``cache_miss`` / ``resumed`` from the parent's own
  cache and checkpoint consultations,

and the parent folds them into one :class:`SweepTelemetry` aggregator:
live ``sweep.*`` gauges in the metrics registry, a periodically
rewritten ``status.json`` in the sweep directory (atomic, so a watcher
process — or ``tail``-ing CI — never sees a torn write), a terminal
progress line with ETA, a Prometheus exposition, and an HTML report
section rendered through the PR-3 report pipeline.

Everything here is parent-side bookkeeping over wall-clock data; none
of it touches simulated state, so telemetry can never perturb results
— the sweep's byte-identity properties hold with it on or off.
"""

from __future__ import annotations

import html as _html
import json
import os
import sys
import time
from typing import Callable, Optional

from repro.trace.metrics import MetricsRegistry

#: Schema tag for the live status file; bump on layout changes.
STATUS_SCHEMA = "repro-sweep-status/1"

#: Event kinds a :class:`SweepTelemetry` understands.
EVENT_KINDS = (
    "started",
    "finished",
    "failed",
    "retried",
    "timed_out",
    "cache_hit",
    "cache_miss",
    "resumed",
)

#: Kinds that settle a point (drive the done count and the ETA).
_TERMINAL = ("finished", "failed", "cache_hit", "resumed")


def peak_rss_bytes() -> int:
    """This process's peak resident set size **in bytes**, normalized
    once at the source: ``ru_maxrss`` is kibibytes on Linux but bytes
    on macOS, and every consumer downstream — run meta, telemetry
    events, ledger provenance — assumes bytes.  Returns 0 where the
    platform offers no ``getrusage``."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if rss <= 0:  # pragma: no cover - defensive
        return 0
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return rss
    return rss * 1024


def make_event(kind: str, index: int, **fields) -> dict:
    """One telemetry event (validated kind, pid stamped if absent)."""
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown telemetry event kind {kind!r}")
    event = {"kind": kind, "index": int(index)}
    event.setdefault("pid", os.getpid())
    event.update(fields)
    return event


def _fmt_duration(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:
        return "?"
    if seconds < 60:
        return f"{seconds:.0f}s"
    m, s = divmod(int(seconds), 60)
    if m < 60:
        return f"{m}m{s:02d}s"
    h, m = divmod(m, 60)
    return f"{h}h{m:02d}m"


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - unreachable


class SweepTelemetry:
    """Parent-side aggregator for a sweep's telemetry event stream.

    Feed it events via :meth:`record`; read it back as gauges (live in
    ``registry``), :meth:`status_doc` / ``status.json``,
    :meth:`progress_line`, :meth:`prometheus`, or
    :meth:`html_section`.
    """

    def __init__(
        self,
        total: int,
        *,
        registry: Optional[MetricsRegistry] = None,
        out_dir: Optional[str] = None,
        status_interval_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = int(total)
        self.registry = registry
        self.out_dir = out_dir
        self.status_interval_s = status_interval_s
        self._clock = clock
        self._t0 = clock()
        self._last_status_write = -1.0
        self.status_writes = 0
        #: Every event seen, in arrival order (tests read this).
        self.events: list[dict] = []
        #: Optional observer invoked after each event is folded in —
        #: the CLI hangs its live progress printing here.
        self.on_event: Optional[Callable[[dict], None]] = None
        self.counts: dict[str, int] = {kind: 0 for kind in EVENT_KINDS}
        self.done = 0
        self.ok = 0
        #: pid -> {"index", "since", "spec"} for points now executing.
        self.inflight: dict[int, dict] = {}
        #: pids that ever reported a ``started`` event.
        self.worker_pids: set[int] = set()
        self.peak_rss_bytes = 0
        self.events_per_second = 0.0
        self._finished_wall_s = 0.0

    # -- ingest ------------------------------------------------------------
    def record(self, event: dict) -> None:
        """Fold one event in and refresh gauges + status file."""
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown telemetry event kind {kind!r}")
        self.events.append(event)
        self.counts[kind] += 1
        pid = event.get("pid")
        if kind == "started":
            if pid is not None:
                self.worker_pids.add(pid)
                self.inflight[pid] = {
                    "index": event.get("index"),
                    "spec": event.get("spec", ""),
                    "since": self._clock(),
                }
        elif kind in _TERMINAL:
            self.done += 1
            if kind != "failed":
                self.ok += 1
            # Settle by index, not pid: failure events are emitted by
            # the parent, whose pid never matches the worker's.
            index = event.get("index")
            for worker in [
                p for p, entry in self.inflight.items()
                if entry.get("index") == index
            ]:
                del self.inflight[worker]
            if kind == "finished":
                self._finished_wall_s += float(event.get("wall_s", 0.0))
                eps = float(event.get("events_per_second", 0.0))
                if eps > 0:
                    self.events_per_second = eps
                rss = int(event.get("peak_rss_bytes", 0))
                if rss > self.peak_rss_bytes:
                    self.peak_rss_bytes = rss
        self._update_gauges()
        self.maybe_write_status()
        if self.on_event is not None:
            self.on_event(event)

    def _update_gauges(self) -> None:
        registry = self.registry
        if registry is None:
            return

        def gauge(name: str, value: float, help_text: str) -> None:
            registry.gauge(f"sweep.{name}", help=help_text).set(value)

        gauge("total", self.total, "Grid points in this sweep.")
        gauge("done", self.done, "Points settled so far.")
        gauge("inflight", len(self.inflight),
              "Points executing right now.")
        gauge("workers", len(self.worker_pids),
              "Distinct worker pids that reported in.")
        gauge("cache_hit_rate", self.cache_hit_rate,
              "Cache hits / (hits + misses), 0 when neither.")
        gauge("eta_s", self.eta_s if self.eta_s is not None else -1.0,
              "Estimated seconds to completion (-1: unknown).")
        gauge("events_per_second", self.events_per_second,
              "Simulator events/sec of the most recent finished point.")
        gauge("peak_rss_bytes", self.peak_rss_bytes,
              "Largest worker peak RSS reported so far.")

    # -- derived -----------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._t0

    @property
    def cache_hit_rate(self) -> float:
        consulted = self.counts["cache_hit"] + self.counts["cache_miss"]
        return self.counts["cache_hit"] / consulted if consulted else 0.0

    @property
    def eta_s(self) -> Optional[float]:
        """Remaining seconds at the observed settlement rate, or
        ``None`` before the first settled point."""
        if self.done == 0 or self.done >= self.total:
            return 0.0 if self.done >= self.total else None
        rate = self.done / max(self.elapsed_s, 1e-9)
        return (self.total - self.done) / rate

    def progress_line(self) -> str:
        """One-line terminal progress summary with ETA."""
        pct = 100.0 * self.done / self.total if self.total else 100.0
        eta = self.eta_s
        bits = [
            f"[{self.done}/{self.total}]",
            f"{pct:3.0f}%",
            f"ok={self.ok}",
        ]
        if self.counts["failed"]:
            bits.append(f"failed={self.counts['failed']}")
        if self.counts["retried"]:
            bits.append(f"retried={self.counts['retried']}")
        if self.counts["cache_hit"]:
            bits.append(f"cached={self.counts['cache_hit']}")
        if self.inflight:
            bits.append(f"inflight={len(self.inflight)}")
        if self.events_per_second:
            bits.append(f"{self.events_per_second:,.0f} ev/s")
        bits.append(
            "done" if self.done >= self.total
            else f"eta={_fmt_duration(eta) if eta is not None else '?'}"
        )
        return " ".join(bits)

    # -- status.json -------------------------------------------------------
    def status_doc(self) -> dict:
        now = self._clock()
        return {
            "schema": STATUS_SCHEMA,
            "total": self.total,
            "done": self.done,
            "ok": self.ok,
            "failed": self.counts["failed"],
            "retried": self.counts["retried"],
            "timed_out": self.counts["timed_out"],
            "cache_hits": self.counts["cache_hit"],
            "cache_misses": self.counts["cache_miss"],
            "cache_hit_rate": self.cache_hit_rate,
            "resumed": self.counts["resumed"],
            "elapsed_s": self.elapsed_s,
            "eta_s": self.eta_s,
            "events_per_second": self.events_per_second,
            "peak_rss_bytes": self.peak_rss_bytes,
            "workers": sorted(self.worker_pids),
            "inflight": [
                {
                    "pid": pid,
                    "index": entry["index"],
                    "spec": entry["spec"],
                    "running_s": now - entry["since"],
                }
                for pid, entry in sorted(self.inflight.items())
            ],
        }

    def write_status(self) -> Optional[str]:
        """Atomically rewrite ``status.json`` (no-op without a dir)."""
        if not self.out_dir:
            return None
        from repro.runner.cache import atomic_write_json

        path = os.path.join(self.out_dir, "status.json")
        atomic_write_json(path, self.status_doc())
        self.status_writes += 1
        self._last_status_write = self._clock()
        return path

    def maybe_write_status(self) -> Optional[str]:
        """Throttled :meth:`write_status` (at most once per
        ``status_interval_s``; :meth:`finalize` flushes the tail)."""
        if not self.out_dir:
            return None
        now = self._clock()
        if (
            self._last_status_write >= 0
            and now - self._last_status_write < self.status_interval_s
        ):
            return None
        return self.write_status()

    def finalize(self) -> dict:
        """Final gauge refresh + unthrottled status flush; returns the
        final status document."""
        self._update_gauges()
        self.write_status()
        return self.status_doc()

    # -- exports -----------------------------------------------------------
    def summary_lines(self) -> list[str]:
        """End-of-sweep summary for the CLI (the satellite: no manifest
        spelunking required to learn how a sweep went)."""
        consulted = self.counts["cache_hit"] + self.counts["cache_miss"]
        lines = [
            f"{self.total} grid points: {self.ok} ok, "
            f"{self.counts['failed']} failed, "
            f"{self.counts['retried']} retried, "
            f"{self.counts['timed_out']} timed out",
            (
                f"cache: {self.counts['cache_hit']}/{consulted} hits "
                f"({100.0 * self.cache_hit_rate:.0f}%)"
                if consulted
                else "cache: not consulted"
            ),
            f"wall time: {_fmt_duration(self.elapsed_s)} "
            f"across {max(len(self.worker_pids), 1)} worker(s)",
        ]
        if self.peak_rss_bytes:
            lines.append(
                f"peak worker RSS: {_fmt_bytes(self.peak_rss_bytes)}"
            )
        if self.events_per_second:
            lines.append(
                f"simulator throughput: "
                f"{self.events_per_second:,.0f} events/s (last point)"
            )
        return lines

    def prometheus(self) -> str:
        """The live ``sweep.*`` gauges (plus anything else in the
        attached registry) as one Prometheus exposition."""
        from repro.monitor.report import render_registry_prometheus

        self._update_gauges()
        return render_registry_prometheus(self.registry)

    def html_section(self) -> str:
        """An HTML fragment for the PR-3 sweep report: progress tiles
        plus the per-kind event counts."""
        doc = self.status_doc()
        tiles = [
            ("points settled", f"{doc['done']}/{doc['total']}"),
            ("ok", str(doc["ok"])),
            ("failed", str(doc["failed"])),
            ("retried", str(doc["retried"])),
            ("cache hit-rate", f"{100.0 * doc['cache_hit_rate']:.0f}%"),
            ("wall time", _fmt_duration(doc["elapsed_s"])),
        ]
        if doc["peak_rss_bytes"]:
            tiles.append(("peak worker RSS", _fmt_bytes(doc["peak_rss_bytes"])))
        if doc["events_per_second"]:
            tiles.append(
                ("events/s", f"{doc['events_per_second']:,.0f}")
            )
        tile_html = "".join(
            f'<div class="tile"><div class="v">{_html.escape(v)}</div>'
            f'<div class="k">{_html.escape(k)}</div></div>'
            for k, v in tiles
        )
        rows = "".join(
            f"<tr><td>{_html.escape(kind)}</td>"
            f'<td class="num">{self.counts[kind]}</td></tr>'
            for kind in EVENT_KINDS
            if self.counts[kind]
        ) or '<tr><td colspan="2">no telemetry events</td></tr>'
        return (
            "<h2>Sweep telemetry</h2>\n"
            f'<div class="tiles">{tile_html}</div>\n'
            "<details><summary>telemetry event counts</summary>"
            "<table><thead><tr><th>event</th>"
            '<th class="num">count</th></tr></thead>'
            f"<tbody>{rows}</tbody></table></details>\n"
        )


def read_status(out_dir: str) -> Optional[dict]:
    """The sweep's current ``status.json``, or ``None`` if absent or
    momentarily unreadable (the writer is atomic, but the sweep may
    not have started yet)."""
    path = os.path.join(out_dir, "status.json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None
