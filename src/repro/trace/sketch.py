"""Streaming percentile sketches with bounded memory.

The exact :class:`~repro.trace.metrics.Histogram` keeps every
observation, which is fine for a few hundred thousand latencies but
not for the always-on monitoring the ROADMAP's production north-star
demands: a million-packet run must not retain a million floats per
metric.  :class:`QuantileSketch` is a DDSketch-style estimator
(Masson, Rim & Lee, VLDB 2019): values are counted in geometrically
spaced buckets, so any quantile is answered with a *relative* error of
at most ``relative_accuracy`` from ``O(log(max/min))`` integers —
independent of how many values were observed.

Two properties matter for this codebase:

* **Determinism** — the sketch is pure arithmetic on the observed
  values (no randomness, no clocks); two identical runs produce
  identical sketches, so sketch output can sit in baseline-gated
  benchmark tables.
* **Hard memory bound** — ``max_bins`` caps the bucket table; on
  overflow the lowest buckets are collapsed pairwise (the standard
  DDSketch policy), which sacrifices accuracy only at the cheap end of
  the distribution while p90/p99 stay within the guarantee.

The query API mirrors ``Histogram`` (``percentile(p)`` with ``p`` in
[0, 100], ``p50``/``p90``/``p99`` properties, ``count``/``sum``/
``mean``/``min``/``max``) so the two are interchangeable in reports.
"""

from __future__ import annotations

import math


class QuantileSketch:
    """DDSketch-style streaming quantile estimator for non-negative
    values (latencies, depths, byte counts).

    Parameters
    ----------
    name, help:
        Registry metadata, mirroring the other metric types.
    relative_accuracy:
        Guaranteed bound on ``|estimate - exact| / exact`` for any
        quantile of the observed distribution (default 1%).
    max_bins:
        Hard cap on retained buckets.  2048 bins at 1% accuracy span
        ~17 orders of magnitude, so collapse only triggers on
        pathological inputs — but the bound is what makes the sketch
        safe to leave on forever.
    min_value:
        Values in ``[0, min_value)`` are counted in a dedicated zero
        bucket (a log-scale sketch cannot index 0 itself).
    """

    kind = "sketch"

    def __init__(
        self,
        name: str = "",
        help: str = "",
        relative_accuracy: float = 0.01,
        max_bins: int = 2048,
        min_value: float = 1e-9,
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.name = name
        self.help = help
        self.relative_accuracy = relative_accuracy
        self.max_bins = max_bins
        self.min_value = min_value
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        #: bucket index -> count; bucket ``k`` covers
        #: ``(gamma^(k-1), gamma^k]``.
        self._bins: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: Buckets merged away by the memory cap (diagnostic only).
        self.collapsed_bins = 0

    # -- recording -----------------------------------------------------------
    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(
                f"sketch {self.name!r} accepts non-negative values, got {value}"
            )
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value < self.min_value:
            self._zero_count += 1
            return
        key = math.ceil(math.log(value) / self._log_gamma)
        bins = self._bins
        bins[key] = bins.get(key, 0) + 1
        if len(bins) > self.max_bins:
            self._collapse()

    def _collapse(self) -> None:
        """Merge the two lowest buckets (accuracy is sacrificed at the
        cheap tail, never at p90/p99)."""
        low, second = sorted(self._bins)[:2]
        self._bins[second] += self._bins.pop(low)
        self.collapsed_bins += 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch with the same gamma into this one."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        for key, n in other._bins.items():
            self._bins[key] = self._bins.get(key, 0) + n
        while len(self._bins) > self.max_bins:
            self._collapse()
        self._zero_count += other._zero_count
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- queries -------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        if not self._count:
            raise ValueError(f"sketch {self.name!r} has no observations")
        return self._min

    @property
    def max(self) -> float:
        if not self._count:
            raise ValueError(f"sketch {self.name!r} has no observations")
        return self._max

    @property
    def bins_used(self) -> int:
        """Current bucket count (the memory actually held)."""
        return len(self._bins)

    def percentile(self, p: float) -> float:
        """Estimated nearest-rank percentile; ``p`` in [0, 100].

        Like :meth:`Histogram.percentile`, an empty sketch raises
        rather than silently returning 0.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._count:
            raise ValueError(f"sketch {self.name!r} has no observations")
        rank = max(1, math.ceil(p / 100.0 * self._count))
        if rank <= self._zero_count:
            return 0.0
        seen = self._zero_count
        for key in sorted(self._bins):
            seen += self._bins[key]
            if seen >= rank:
                # Midpoint of (gamma^(k-1), gamma^k]: relative error
                # from the true value is at most relative_accuracy.
                estimate = 2.0 * self._gamma ** key / (self._gamma + 1.0)
                # Never report outside the exactly tracked range.
                return min(max(estimate, self._min), self._max)
        return self._max  # pragma: no cover - guarded by count check

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def snapshot(self) -> dict:
        if not self._count:
            return {"type": self.kind, "count": 0}
        return {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "relative_accuracy": self.relative_accuracy,
            "bins_used": len(self._bins),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantileSketch {self.name} n={self._count} "
            f"bins={len(self._bins)}>"
        )
