"""A lightweight metrics registry: counters, gauges, and ns-scale
latency histograms with percentile queries.

Anton's follow-up network paper (Shim et al., arXiv:2201.08357)
justifies design choices with per-channel counters and utilization
telemetry; production training/inference stacks expose the same three
primitives.  This module provides them for the simulated machine:

* :class:`Counter` — a monotonically increasing count (packets
  injected, all-reduce runs, …);
* :class:`Gauge` — a value that moves both ways, with high/low
  watermarks (FIFO depth, outstanding packets);
* :class:`Histogram` — a distribution of observations with exact
  percentile queries (p50/p90/p99 end-to-end packet latency,
  per-hop queue wait).

A :class:`MetricsRegistry` names and owns the metrics.  It can be
attached to any :class:`~repro.engine.simulator.Simulator` (the
simulator then carries it as ``sim.metrics``), or installed as the
ambient registry with :func:`use_registry` so that instrumented
subsystems (the network flight recorder, the collectives, the
migration protocol) find it without parameter threading.

All of this is pull-based bookkeeping on plain Python numbers: no
clocks are read, no events are scheduled, and recording never perturbs
simulated time — two runs with and without metrics produce identical
simulation results.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic; cannot inc({amount})"
            )
        self._value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self._value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A value that can move both ways, with high/low watermarks."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._hi = -math.inf
        self._lo = math.inf

    @property
    def value(self) -> float:
        return self._value

    @property
    def high_watermark(self) -> float:
        """Highest value ever set (``-inf`` before the first set)."""
        return self._hi

    @property
    def low_watermark(self) -> float:
        """Lowest value ever set (``inf`` before the first set)."""
        return self._lo

    def set(self, value: float) -> None:
        self._value = value
        if value > self._hi:
            self._hi = value
        if value < self._lo:
            self._lo = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    def snapshot(self) -> dict:
        out = {"type": self.kind, "value": self._value}
        if self._hi >= self._lo:  # at least one set() happened
            out["high_watermark"] = self._hi
            out["low_watermark"] = self._lo
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self._value}>"


class Histogram:
    """An exact-value distribution with percentile queries.

    Observations are kept verbatim (simulation scale makes this cheap:
    even a full MD step observes at most a few hundred thousand
    latencies) and sorted lazily on the first percentile query after an
    observation, so the common record-everything-then-report pattern
    sorts once.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: list[float] = []
        self._sorted: Optional[list[float]] = None
        self._sum = 0.0

    def observe(self, value: float) -> None:
        self._values.append(value)
        self._sum += value
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        self._ensure_sorted()
        return self._sorted[0]  # type: ignore[index]

    @property
    def max(self) -> float:
        self._ensure_sorted()
        return self._sorted[-1]  # type: ignore[index]

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in [0, 100].

        Raises :class:`ValueError` on an empty histogram — an absent
        distribution has no percentiles, and silently returning 0 has
        masked real bugs in enough telemetry stacks to be worth the
        explicit failure.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        self._ensure_sorted()
        values = self._sorted
        assert values is not None
        rank = math.ceil(p / 100.0 * len(values))
        return values[max(0, rank - 1)]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def _ensure_sorted(self) -> None:
        if not self._values:
            raise ValueError(f"histogram {self.name!r} has no observations")
        if self._sorted is None:
            self._sorted = sorted(self._values)

    def snapshot(self) -> dict:
        if not self._values:
            return {"type": self.kind, "count": 0}
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self._sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics for one run, attachable to any simulator.

    Metrics are created on first use (``registry.counter("x").inc()``),
    mirroring how :class:`~repro.asic.client.NetworkClient` creates
    synchronization counters lazily.  Asking for an existing name with
    a different metric type is an error — the registry is the single
    source of truth for what a name means.
    """

    def __init__(self, sim: "Optional[Simulator]" = None) -> None:
        self.sim = sim
        self._metrics: dict[str, Metric] = {}

    def attach(self, sim: "Simulator") -> "MetricsRegistry":
        """Bind to a simulator; the simulator carries ``sim.metrics``."""
        self.sim = sim
        sim.metrics = self
        return self

    # -- creation / lookup -------------------------------------------------
    def _get_or_create(self, cls: type, name: str, help: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)  # type: ignore[return-value]

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for name in self.names():
            yield self._metrics[name]

    def clear(self) -> None:
        self._metrics.clear()

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Plain-data dump of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def summary(self, title: str = "Metrics") -> str:
        """Text rendering of the registry, one row per metric."""
        # Local import: repro.analysis pulls in the asic/network stack,
        # which itself imports repro.trace — keep the package cycle-free.
        from repro.analysis.report import render_table

        rows = []
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Counter):
                rows.append([name, "counter", m.value, "", "", ""])
            elif isinstance(m, Gauge):
                hi = m.high_watermark if m.high_watermark != -math.inf else ""
                rows.append([name, "gauge", m.value, "", "", hi])
            else:
                if m.count == 0:
                    rows.append([name, "histogram", 0, "", "", ""])
                else:
                    rows.append(
                        [name, "histogram", m.count, m.p50, m.p90, m.p99]
                    )
        return render_table(
            title,
            ["metric", "type", "value/count", "p50", "p90", "p99"],
            rows,
        )


# ---------------------------------------------------------------------------
# Ambient registry
# ---------------------------------------------------------------------------
#: The ambient registry consulted by instrumented subsystems (comm
#: collectives, migration, the CLI's --metrics flag).  ``None`` means
#: "no metrics" and costs instrumented code a single load + is-None test.
_active_registry: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The ambient registry, or ``None`` when metrics are off."""
    return _active_registry


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient registry for the block."""
    global _active_registry
    prev = _active_registry
    _active_registry = registry
    try:
        yield registry
    finally:
        _active_registry = prev
