"""A lightweight metrics registry: counters, gauges, and ns-scale
latency histograms with percentile queries.

Anton's follow-up network paper (Shim et al., arXiv:2201.08357)
justifies design choices with per-channel counters and utilization
telemetry; production training/inference stacks expose the same three
primitives.  This module provides them for the simulated machine:

* :class:`Counter` — a monotonically increasing count (packets
  injected, all-reduce runs, …);
* :class:`Gauge` — a value that moves both ways, with high/low
  watermarks (FIFO depth, outstanding packets);
* :class:`Histogram` — a distribution of observations with exact
  percentile queries (p50/p90/p99 end-to-end packet latency,
  per-hop queue wait).

A :class:`MetricsRegistry` names and owns the metrics.  It can be
attached to any :class:`~repro.engine.simulator.Simulator` (the
simulator then carries it as ``sim.metrics``), or installed as the
ambient registry with :func:`use_registry` so that instrumented
subsystems (the network flight recorder, the collectives, the
migration protocol) find it without parameter threading.

All of this is pull-based bookkeeping on plain Python numbers: no
clocks are read, no events are scheduled, and recording never perturbs
simulated time — two runs with and without metrics produce identical
simulation results.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Union

from repro.trace.sketch import QuantileSketch

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic; cannot inc({amount})"
            )
        self._value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self._value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A value that can move both ways, with high/low watermarks."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._hi = -math.inf
        self._lo = math.inf

    @property
    def value(self) -> float:
        return self._value

    @property
    def high_watermark(self) -> float:
        """Highest value ever set (``-inf`` before the first set)."""
        return self._hi

    @property
    def low_watermark(self) -> float:
        """Lowest value ever set (``inf`` before the first set)."""
        return self._lo

    def set(self, value: float) -> None:
        self._value = value
        if value > self._hi:
            self._hi = value
        if value < self._lo:
            self._lo = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    def snapshot(self) -> dict:
        out = {"type": self.kind, "value": self._value}
        if self._hi >= self._lo:  # at least one set() happened
            out["high_watermark"] = self._hi
            out["low_watermark"] = self._lo
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self._value}>"


class Histogram:
    """An exact-value distribution with percentile queries.

    Observations are kept verbatim (simulation scale makes this cheap:
    even a full MD step observes at most a few hundred thousand
    latencies) and sorted lazily on the first percentile query after an
    observation, so the common record-everything-then-report pattern
    sorts once.

    ``max_samples`` bounds memory for always-on monitoring: once more
    than ``max_samples`` values have been observed, the histogram
    **falls back to a streaming sketch** — the retained values are
    replayed into a :class:`~repro.trace.sketch.QuantileSketch`, the
    stored list degrades to a uniform reservoir (Vitter's algorithm R
    with a fixed seed, so runs stay deterministic), and every
    percentile query is answered by the sketch with its documented
    relative-accuracy guarantee (1% by default) instead of exactly.
    ``count``/``sum``/``mean``/``min``/``max`` remain exact in both
    regimes.  The default (``max_samples=None``) keeps the historical
    keep-everything behaviour.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        max_samples: Optional[int] = None,
    ) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.help = help
        self.max_samples = max_samples
        self._values: list[float] = []
        self._sorted: Optional[list[float]] = None
        self._sum = 0.0
        self._sum_c = 0.0  # Neumaier compensation: survives cancellation
        self._seen = 0
        self._min = math.inf
        self._max = -math.inf
        #: The streaming fallback; ``None`` until the cap is exceeded.
        self.sketch: Optional[QuantileSketch] = None
        self._reservoir_rng: Optional[random.Random] = None

    @property
    def overflowed(self) -> bool:
        """True once the cap was exceeded and percentiles are sketch
        estimates rather than exact."""
        return self.sketch is not None

    def observe(self, value: float) -> None:
        self._seen += 1
        t = self._sum + value
        if abs(self._sum) >= abs(value):
            self._sum_c += (self._sum - t) + value
        else:
            self._sum_c += (value - t) + self._sum
        self._sum = t
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        cap = self.max_samples
        if cap is not None and self._seen > cap:
            if self.sketch is None:
                # First overflow: replay the exact values into the
                # sketch, then keep the list only as a reservoir.
                self.sketch = QuantileSketch(name=self.name)
                for v in self._values:
                    self.sketch.observe(v)
                self._reservoir_rng = random.Random(0x5EED)
            self.sketch.observe(value)
            slot = self._reservoir_rng.randrange(self._seen)  # type: ignore[union-attr]
            if slot < cap:
                self._values[slot] = value
                self._sorted = None
            return
        self._values.append(value)
        self._sorted = None

    def values(self) -> list[float]:
        """Retained observations: every one until the cap is exceeded,
        a uniform reservoir afterwards (check :attr:`overflowed`)."""
        return list(self._values)

    @property
    def count(self) -> int:
        return self._seen

    @property
    def sum(self) -> float:
        return self._sum + self._sum_c

    @property
    def mean(self) -> float:
        return self.sum / self._seen if self._seen else 0.0

    @property
    def min(self) -> float:
        if not self._seen:
            raise ValueError(f"histogram {self.name!r} has no observations")
        return self._min

    @property
    def max(self) -> float:
        if not self._seen:
            raise ValueError(f"histogram {self.name!r} has no observations")
        return self._max

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in [0, 100].

        Exact until ``max_samples`` is exceeded; a sketch estimate
        (relative error ≤ 1%) afterwards.  Raises :class:`ValueError`
        on an empty histogram — an absent distribution has no
        percentiles, and silently returning 0 has masked real bugs in
        enough telemetry stacks to be worth the explicit failure.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.sketch is not None:
            return self.sketch.percentile(p)
        self._ensure_sorted()
        values = self._sorted
        assert values is not None
        rank = math.ceil(p / 100.0 * len(values))
        return values[max(0, rank - 1)]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def _ensure_sorted(self) -> None:
        if not self._values:
            raise ValueError(f"histogram {self.name!r} has no observations")
        if self._sorted is None:
            self._sorted = sorted(self._values)

    def snapshot(self) -> dict:
        if not self._seen:
            return {"type": self.kind, "count": 0}
        out = {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }
        if self.sketch is not None:
            out["estimated"] = True
            out["relative_accuracy"] = self.sketch.relative_accuracy
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


Metric = Union[Counter, Gauge, Histogram, QuantileSketch]


class MetricsRegistry:
    """Named metrics for one run, attachable to any simulator.

    Metrics are created on first use (``registry.counter("x").inc()``),
    mirroring how :class:`~repro.asic.client.NetworkClient` creates
    synchronization counters lazily.  Asking for an existing name with
    a different metric type is an error — the registry is the single
    source of truth for what a name means.
    """

    def __init__(
        self,
        sim: "Optional[Simulator]" = None,
        histogram_max_samples: Optional[int] = None,
    ) -> None:
        self.sim = sim
        #: Cap applied to histograms created through this registry;
        #: ``None`` keeps them exact (the historical behaviour).  The
        #: monitoring harness sets this so always-on runs are bounded.
        self.histogram_max_samples = histogram_max_samples
        self._metrics: dict[str, Metric] = {}

    def attach(self, sim: "Simulator") -> "MetricsRegistry":
        """Bind to a simulator; the simulator carries ``sim.metrics``."""
        self.sim = sim
        sim.metrics = self
        return self

    # -- creation / lookup -------------------------------------------------
    def _get_or_create(self, cls: type, name: str, help: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(
                name, help, max_samples=self.histogram_max_samples
            )
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a histogram"
            )
        return metric

    def sketch(self, name: str, help: str = "") -> QuantileSketch:
        """A streaming percentile sketch registered alongside the
        exact metric types (bounded memory, 1% relative accuracy)."""
        return self._get_or_create(QuantileSketch, name, help)  # type: ignore[return-value]

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for name in self.names():
            yield self._metrics[name]

    def clear(self) -> None:
        self._metrics.clear()

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Plain-data dump of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def summary(self, title: str = "Metrics") -> str:
        """Text rendering of the registry, one row per metric."""
        # Local import: repro.analysis pulls in the asic/network stack,
        # which itself imports repro.trace — keep the package cycle-free.
        from repro.analysis.report import render_table

        rows = []
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Counter):
                rows.append([name, "counter", m.value, "", "", ""])
            elif isinstance(m, Gauge):
                hi = m.high_watermark if m.high_watermark != -math.inf else ""
                rows.append([name, "gauge", m.value, "", "", hi])
            else:
                kind = m.kind
                if isinstance(m, Histogram) and m.overflowed:
                    kind = "histogram~"  # sketch-estimated percentiles
                if m.count == 0:
                    rows.append([name, kind, 0, "", "", ""])
                else:
                    rows.append(
                        [name, kind, m.count, m.p50, m.p90, m.p99]
                    )
        return render_table(
            title,
            ["metric", "type", "value/count", "p50", "p90", "p99"],
            rows,
        )


# ---------------------------------------------------------------------------
# Ambient registry
# ---------------------------------------------------------------------------
#: The ambient registry consulted by instrumented subsystems (comm
#: collectives, migration, the CLI's --metrics flag).  ``None`` means
#: "no metrics" and costs instrumented code a single load + is-None test.
_active_registry: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The ambient registry, or ``None`` when metrics are off."""
    return _active_registry


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient registry for the block."""
    global _active_registry
    prev = _active_registry
    _active_registry = registry
    try:
        yield registry
    finally:
        _active_registry = prev
