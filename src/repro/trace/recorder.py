"""Activity interval recording.

Units (Tensilica cores, geometry cores, HTIS pipelines, torus links)
report labelled intervals: what they were doing, from when to when.
The recorder is deliberately dumb — a list of intervals per unit —
so that the analysis code in :mod:`repro.trace.stats` can classify
activities as computation vs communication after the fact, the same
way the paper derives communication time by subtracting critical-path
arithmetic from total time (Table 3 caption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator

#: Placeholder for an interval opened while the recorder was disabled:
#: the matching ``end`` must be accepted, but nothing gets recorded.
_DISCARDED = object()


class ActivityKind(Enum):
    """Classification of a recorded interval."""

    COMPUTE = "compute"          # numerical work (arithmetic)
    SEND = "send"                # packet assembly / injection
    RECEIVE = "receive"          # polling / message processing
    WAIT = "wait"                # stalled waiting for data
    LINK = "link"                # torus link occupied
    BOOKKEEPING = "bookkeeping"  # software overhead that is neither

    @property
    def is_communication(self) -> bool:
        """Whether Table 3 counts this as communication time.

        The paper's communication time "includes all sender, receiver
        and synchronization overhead, as well as the time required for
        on-chip data movement" — everything except arithmetic.
        """
        return self in (
            ActivityKind.SEND,
            ActivityKind.RECEIVE,
            ActivityKind.WAIT,
            ActivityKind.BOOKKEEPING,
        )


@dataclass(frozen=True)
class Activity:
    """One recorded interval on one unit."""

    unit: str
    kind: ActivityKind
    start_ns: float
    end_ns: float
    label: str = ""

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError(
                f"activity on {self.unit!r} ends before it starts "
                f"({self.start_ns} .. {self.end_ns})"
            )


class ActivityRecorder:
    """Collects activity intervals for a whole machine run."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._intervals: list[Activity] = []
        # Value is (kind, start_ns) or the _DISCARDED sentinel.
        self._open: dict[tuple[str, str], object] = {}
        self.enabled = True

    # -- immediate recording -------------------------------------------------
    def record(
        self,
        unit: str,
        kind: ActivityKind,
        start_ns: float,
        end_ns: float,
        label: str = "",
    ) -> None:
        """Record a complete interval."""
        if self.enabled:
            self._intervals.append(Activity(unit, kind, start_ns, end_ns, label))

    def record_span(self, unit: str, kind: ActivityKind, duration_ns: float,
                    label: str = "") -> None:
        """Record an interval ending now with the given duration."""
        now = self.sim.now
        self.record(unit, kind, now - duration_ns, now, label)

    # -- open/close recording ---------------------------------------------------
    def begin(self, unit: str, kind: ActivityKind, label: str = "") -> None:
        """Open an interval; close it with :meth:`end`.

        A ``begin`` while the recorder is disabled still marks the
        interval as open (with a discard sentinel) so that the matching
        ``end`` is recognized regardless of how ``enabled`` is toggled
        in between — the interval is simply dropped.
        """
        key = (unit, label)
        existing = self._open.get(key)
        if existing is not None and existing is not _DISCARDED:
            raise RuntimeError(f"interval already open for {key}")
        self._open[key] = (kind, self.sim.now) if self.enabled else _DISCARDED

    def end(self, unit: str, label: str = "") -> None:
        """Close the interval opened by :meth:`begin`.

        Tolerant of ``enabled`` toggling between ``begin`` and ``end``
        (any interval with either endpoint in a disabled window is
        discarded).  A genuinely unmatched ``end`` — no ``begin`` at
        all while the recorder was enabled — raises a descriptive
        :class:`RuntimeError`.
        """
        key = (unit, label)
        entry = self._open.pop(key, None)
        if entry is None:
            if not self.enabled:
                return  # recorder off: nothing was, or should be, open
            raise RuntimeError(
                f"end() without a matching begin() for unit {unit!r}, "
                f"label {label!r}"
            )
        if entry is _DISCARDED or not self.enabled:
            return  # an endpoint fell in a disabled window: drop it
        kind, start = entry
        self._intervals.append(Activity(unit, kind, start, self.sim.now, label))

    # -- queries --------------------------------------------------------------
    def intervals(
        self,
        unit: Optional[str] = None,
        kind: Optional[ActivityKind] = None,
        start_ns: float = float("-inf"),
        end_ns: float = float("inf"),
    ) -> list[Activity]:
        """Filtered view of recorded intervals, in recording order."""
        out = []
        for a in self._intervals:
            if unit is not None and a.unit != unit:
                continue
            if kind is not None and a.kind is not kind:
                continue
            if a.end_ns <= start_ns or a.start_ns >= end_ns:
                continue
            out.append(a)
        return out

    def units(self) -> list[str]:
        """All unit names seen, sorted."""
        return sorted({a.unit for a in self._intervals})

    def busy_ns(self, unit: str, kind: Optional[ActivityKind] = None) -> float:
        """Total recorded time on a unit (optionally one kind)."""
        return sum(a.duration_ns for a in self.intervals(unit=unit, kind=kind))

    def clear(self) -> None:
        self._intervals.clear()
        self._open.clear()

    def __len__(self) -> int:
        return len(self._intervals)
