"""Critical-path communication accounting (Table 3).

The paper computes critical-path communication time "by subtracting
critical-path arithmetic computation time from total time"; it thus
includes all sender, receiver and synchronization overhead plus on-chip
data movement.  :func:`communication_split` applies the same
subtraction to a recorded phase: the *critical path* is the wall-clock
span of the phase; compute time is the portion of that span during
which at least one tracked unit was doing arithmetic that the phase
was actually waiting on (we approximate this with the union of COMPUTE
intervals on the phase's units, which matches the paper's logic-
analyzer methodology of classifying each moment by what the machine
was doing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.trace.recorder import Activity, ActivityKind, ActivityRecorder


def _union_duration(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    spans = sorted(intervals)
    total = 0.0
    cur_start: Optional[float] = None
    cur_end = 0.0
    for s, e in spans:
        if cur_start is None:
            cur_start, cur_end = s, e
        elif s <= cur_end:
            cur_end = max(cur_end, e)
        else:
            total += cur_end - cur_start
            cur_start, cur_end = s, e
    if cur_start is not None:
        total += cur_end - cur_start
    return total


@dataclass
class CriticalPathStats:
    """Communication/total split for one phase (one Table 3 row)."""

    name: str
    total_ns: float
    compute_ns: float

    @property
    def communication_ns(self) -> float:
        """Total minus compute — the paper's definition."""
        return max(0.0, self.total_ns - self.compute_ns)

    @property
    def total_us(self) -> float:
        return self.total_ns / 1000.0

    @property
    def communication_us(self) -> float:
        return self.communication_ns / 1000.0

    @property
    def communication_fraction(self) -> float:
        return self.communication_ns / self.total_ns if self.total_ns else 0.0

    def __str__(self) -> str:
        return (
            f"{self.name}: comm {self.communication_us:.1f} µs / "
            f"total {self.total_us:.1f} µs "
            f"({100 * self.communication_fraction:.0f}% communication)"
        )


def communication_split(
    recorder: ActivityRecorder,
    name: str,
    start_ns: float,
    end_ns: float,
    units: Optional[Sequence[str]] = None,
) -> CriticalPathStats:
    """Split a phase into compute vs communication, Table 3 style.

    Parameters
    ----------
    recorder:
        The activity recorder with the run's intervals.
    name:
        Row label.
    start_ns, end_ns:
        Phase boundaries (wall clock of the phase = total time).
    units:
        Restrict to these units (default: every recorded unit).

    Notes
    -----
    Compute time is the union of COMPUTE intervals clipped to the
    phase.  On Anton the computational units are busy or stalled
    waiting for data (Fig. 13); counting the *union* of busy intervals
    mirrors "critical-path arithmetic computation time": any instant
    with no arithmetic anywhere on the tracked units is, by the paper's
    subtraction, communication/latency time.
    """
    if end_ns < start_ns:
        raise ValueError("phase ends before it starts")
    unit_filter = set(units) if units is not None else None
    compute_spans = []
    for a in recorder.intervals(kind=ActivityKind.COMPUTE, start_ns=start_ns, end_ns=end_ns):
        if unit_filter is not None and a.unit not in unit_filter:
            continue
        compute_spans.append((max(a.start_ns, start_ns), min(a.end_ns, end_ns)))
    compute = _union_duration(compute_spans)
    return CriticalPathStats(name=name, total_ns=end_ns - start_ns, compute_ns=compute)


def per_node_communication_split(
    recorder: ActivityRecorder,
    name: str,
    start_ns: float,
    end_ns: float,
) -> CriticalPathStats:
    """Table 3 split computed per node, then averaged.

    Unit names follow the ``"<node>:<unit>"`` convention used by the
    MD orchestrator.  On a whole machine, *some* node is computing at
    almost every instant, so a machine-wide union of compute intervals
    would undercount communication; the paper's subtraction is per
    critical path through one node's step, which the per-node union
    approximates.
    """
    if end_ns < start_ns:
        raise ValueError("phase ends before it starts")
    per_node: dict[str, list[tuple[float, float]]] = {}
    for a in recorder.intervals(kind=ActivityKind.COMPUTE, start_ns=start_ns, end_ns=end_ns):
        node, _, _unit = a.unit.partition(":")
        per_node.setdefault(node, []).append(
            (max(a.start_ns, start_ns), min(a.end_ns, end_ns))
        )
    if not per_node:
        return CriticalPathStats(name=name, total_ns=end_ns - start_ns, compute_ns=0.0)
    computes = [_union_duration(spans) for spans in per_node.values()]
    mean_compute = sum(computes) / len(computes)
    return CriticalPathStats(
        name=name, total_ns=end_ns - start_ns, compute_ns=mean_compute
    )
