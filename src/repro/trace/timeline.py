"""Fig. 13-style activity timelines as text and CSV.

Fig. 13 shows, for two time steps, columns for the six torus-link
directions and for each computational unit class (Tensilica cores,
geometry cores, HTIS), with colour-coded activity and light gray for
stall time.  The text renderer below produces the same layout with one
character per time bucket:

* ``#`` — computing,
* ``s`` — sending, ``r`` — receiving/polling, ``b`` — bookkeeping,
* ``.`` — stalled waiting for data (the paper's light gray),
* ``=`` — link busy,
* `` `` (space) — idle / no activity recorded.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

from repro.trace.recorder import Activity, ActivityKind, ActivityRecorder

_GLYPH = {
    ActivityKind.COMPUTE: "#",
    ActivityKind.SEND: "s",
    ActivityKind.RECEIVE: "r",
    ActivityKind.BOOKKEEPING: "b",
    ActivityKind.WAIT: ".",
    ActivityKind.LINK: "=",
}

#: Priority when several kinds overlap in one bucket (compute wins,
#: stall loses — matching how Fig. 13 colours a busy-then-stalled core).
_PRIORITY = [
    ActivityKind.COMPUTE,
    ActivityKind.SEND,
    ActivityKind.RECEIVE,
    ActivityKind.BOOKKEEPING,
    ActivityKind.LINK,
    ActivityKind.WAIT,
]


def _bucketize(
    activities: Sequence[Activity],
    start_ns: float,
    end_ns: float,
    buckets: int,
) -> list[str]:
    width = (end_ns - start_ns) / buckets
    cells: list[Optional[ActivityKind]] = [None] * buckets
    for a in activities:
        lo = max(0, int((a.start_ns - start_ns) // width))
        hi = min(buckets - 1, int((a.end_ns - start_ns) / width))
        if a.end_ns <= start_ns or a.start_ns >= end_ns:
            continue
        for i in range(lo, hi + 1):
            cur = cells[i]
            if cur is None or _PRIORITY.index(a.kind) < _PRIORITY.index(cur):
                cells[i] = a.kind
    return [_GLYPH[c] if c is not None else " " for c in cells]


def render_timeline(
    recorder: ActivityRecorder,
    start_ns: float,
    end_ns: float,
    units: Optional[Sequence[str]] = None,
    buckets: int = 100,
    group_by: Optional[dict[str, str]] = None,
) -> str:
    """Render a vertical-time activity chart like Fig. 13.

    Parameters
    ----------
    units:
        Columns, in order (default: all units, sorted).
    buckets:
        Vertical resolution (rows).
    group_by:
        Optional map from unit name to column-group name; units in one
        group are merged into a single column (Fig. 13 merges all units
        of the same type across the machine).
    """
    if units is None:
        units = recorder.units()
    columns: dict[str, list[Activity]] = defaultdict(list)
    order: list[str] = []
    for unit in units:
        col = group_by.get(unit, unit) if group_by else unit
        if col not in columns:
            order.append(col)
        columns[col].extend(recorder.intervals(unit=unit))
    rendered = {col: _bucketize(acts, start_ns, end_ns, buckets) for col, acts in columns.items()}
    width = max((len(c) for c in order), default=4)
    header = " time(µs) | " + " | ".join(c.center(width) for c in order)
    sep = "-" * len(header)
    lines = [header, sep]
    span = end_ns - start_ns
    for row in range(buckets):
        t_us = (start_ns + row * span / buckets) / 1000.0
        cells = " | ".join(rendered[c][row].center(width) for c in order)
        lines.append(f"{t_us:9.2f} | {cells}")
    lines.append(sep)
    lines.append(
        "legend: # compute  s send  r receive/poll  b bookkeeping  "
        ". stalled-waiting  = link-busy"
    )
    return "\n".join(lines)


def timeline_csv(
    recorder: ActivityRecorder,
    start_ns: float,
    end_ns: float,
    units: Optional[Sequence[str]] = None,
) -> str:
    """Raw interval dump as CSV (unit, kind, start_ns, end_ns, label)."""
    if units is None:
        units = recorder.units()
    unit_set = set(units)
    rows = ["unit,kind,start_ns,end_ns,label"]
    for a in recorder.intervals(start_ns=start_ns, end_ns=end_ns):
        if a.unit in unit_set:
            rows.append(f"{a.unit},{a.kind.value},{a.start_ns:.1f},{a.end_ns:.1f},{a.label}")
    return "\n".join(rows)
