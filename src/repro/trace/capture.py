"""Run a named experiment with full telemetry attached.

This is the machinery behind ``python -m repro trace <experiment>``:
it builds an :class:`~repro.runner.spec.ExperimentSpec`, dispatches it
through the experiment registry with a fresh
:class:`~repro.trace.flight.FlightRecorder` and
:class:`~repro.trace.metrics.MetricsRegistry` installed as the ambient
telemetry context, and hands back the unified
:class:`~repro.runner.result.RunResult` (whose ``flight`` and
``registry`` attributes carry the live recorders for export).

Kept out of ``repro.trace.__init__`` on purpose: the registered
experiments import the analysis/asic stack, which itself imports
``repro.trace`` — importing this lazily (CLI, tests) keeps the trace
package cycle-free.
"""

from __future__ import annotations

from typing import Optional

from repro.runner.result import Captures, RunResult, run_experiment
from repro.runner.spec import ExperimentSpec, experiment_names

#: Experiments the trace CLI can capture (every registered experiment
#: whose per-packet record stays proportionate to the run).
EXPERIMENTS = experiment_names(traceable=True)


def run_traced(
    experiment: str,
    shape: tuple[int, int, int] = (4, 4, 4),
    rounds: int = 2,
    payload: int = 0,
    seed: int = 0,
    hops: Optional[int] = None,
) -> RunResult:
    """Capture one experiment with flight recording and metrics on.

    The returned result is deterministic: running the same spec twice
    (even in the same process) yields recorders whose exported traces
    are byte-identical.
    """
    spec = ExperimentSpec(
        experiment=experiment,
        shape=shape,
        rounds=rounds,
        payload=payload,
        seed=seed,
        hops=hops,
    )
    return run_experiment(spec, Captures(flight=True))
