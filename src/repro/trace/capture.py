"""Run a named experiment with full telemetry attached.

This is the machinery behind ``python -m repro trace <experiment>``:
it installs a fresh :class:`~repro.trace.flight.FlightRecorder` and
:class:`~repro.trace.metrics.MetricsRegistry` as the ambient telemetry
context, drives one of the paper's measurement harnesses (which build
their machines internally and therefore pick the recorder up through
:func:`~repro.trace.flight.active_flight`), and hands back everything
needed for export.

Kept out of ``repro.trace.__init__`` on purpose: it imports the
analysis/asic stack, which itself imports ``repro.trace`` — importing
it lazily (CLI, tests) keeps the trace package cycle-free.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass

from repro.trace.flight import FlightRecorder, use_flight
from repro.trace.metrics import MetricsRegistry, use_registry

#: Experiments the trace CLI can capture.
EXPERIMENTS = ("latency", "allreduce", "transfer", "congestion")


@dataclass
class TraceCapture:
    """One captured run: the recorders plus a one-line description."""

    experiment: str
    shape: tuple[int, int, int]
    flight: FlightRecorder
    metrics: MetricsRegistry
    description: str


def _run_latency(shape: tuple[int, int, int], rounds: int) -> str:
    from repro.analysis.latency import latency_vs_hops

    points = latency_vs_hops(shape=shape, rounds=rounds)
    return (
        f"Fig. 5 ping-pong sweep, hops 0..{points[-1].hops}, "
        f"{rounds} rounds per configuration"
    )


def _run_allreduce(shape: tuple[int, int, int], rounds: int) -> str:
    from repro.analysis.reduction import measure_allreduce

    point = measure_allreduce(shape)
    return (
        f"dimension-ordered all-reduce over {point.nodes} nodes "
        f"(0B: {point.reduce0_us:.2f} µs, 32B: {point.reduce32_us:.2f} µs)"
    )


def _run_transfer(shape: tuple[int, int, int], rounds: int) -> str:
    from repro.analysis.transfer import anton_transfer_ns

    ns = anton_transfer_ns(2048, 8, hops=1, shape=shape)
    return f"2 KB transfer as 8 messages over one X hop ({ns:.0f} ns)"


def _run_congestion(shape: tuple[int, int, int], rounds: int) -> str:
    """Many-to-one incast: the heaviest head-of-line queueing the
    torus produces, for exercising the queue-depth telemetry."""
    from repro.asic.node import build_machine
    from repro.engine.simulator import Simulator

    sim = Simulator()
    machine = build_machine(sim, *shape)
    target = machine.torus.coord((0, 0, 0))
    dst = machine.node(target).slice(0)
    senders = [
        machine.node(c).slice(0)
        for c in machine.torus.nodes()
        if c != target
    ][:8]
    dst.memory.allocate("sink", len(senders))

    def sender(s, slot):
        for _ in range(rounds):
            yield from s.send_write(
                target, dst.name, counter_id="sink", address=("sink", slot),
                payload_bytes=256,
            )

    def receiver():
        yield from dst.poll("sink", len(senders) * rounds)

    procs = [sim.process(sender(s, i)) for i, s in enumerate(senders)]
    procs.append(sim.process(receiver()))
    sim.run(until=sim.all_of(procs))
    return (
        f"{len(senders)}-to-1 incast of 256 B writes, "
        f"{rounds} rounds per sender"
    )


_RUNNERS = {
    "latency": _run_latency,
    "allreduce": _run_allreduce,
    "transfer": _run_transfer,
    "congestion": _run_congestion,
}


def run_traced(
    experiment: str,
    shape: tuple[int, int, int] = (4, 4, 4),
    rounds: int = 2,
) -> TraceCapture:
    """Capture one experiment with flight recording and metrics on.

    The returned capture is deterministic: running the same experiment
    twice (even in the same process) yields recorders whose exported
    traces are byte-identical.
    """
    runner = _RUNNERS.get(experiment)
    if runner is None:
        raise ValueError(
            f"unknown experiment {experiment!r}; choose from {EXPERIMENTS}"
        )
    metrics = MetricsRegistry()
    flight = FlightRecorder(metrics=metrics)
    with ExitStack() as stack:
        stack.enter_context(use_flight(flight))
        stack.enter_context(use_registry(metrics))
        description = runner(shape, rounds)
    return TraceCapture(
        experiment=experiment,
        shape=shape,
        flight=flight,
        metrics=metrics,
        description=description,
    )
