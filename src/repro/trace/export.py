"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON, JSONL, text.

Any recorded run can be opened in `ui.perfetto.dev` (or Chrome's
``about:tracing``): :func:`chrome_trace` lays the flight recorder's
spans out as

* **packets** (pid 1) — one track per packet with a top-level flight
  span (inject → last delivery), nested per-hop ``wait``/``xmit``
  spans, and an instant event per delivery;
* **links** (pid 2) — one track per link direction with an occupancy
  span per traversal, plus a ``queue`` counter series showing
  head-of-line queue depth over time;
* **units** (pid 3) — the :class:`~repro.trace.recorder.ActivityRecorder`
  intervals (compute/send/receive/wait/…), when a recorder is given.

Determinism: exported files are a pure function of the simulated run.
Global packet identifiers (which keep counting across runs in one
process) are renumbered densely in injection order, dictionary keys
are sorted, and timestamps come from the deterministic event queue —
so two identical runs export byte-identical files and traces diff
cleanly across code changes.  ``trace_event`` timestamps are in
microseconds per the format spec; nanosecond precision survives as
fractional microseconds.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterator, Optional

from repro.trace.flight import FlightRecorder
from repro.trace.recorder import ActivityRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.metrics import MetricsRegistry

_PID_PACKETS = 1
_PID_LINKS = 2
_PID_UNITS = 3


def _us(ns: float) -> float:
    return ns / 1000.0


def _meta(pid: int, tid: int, name_key: str, name: str) -> dict:
    return {
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "name": name_key,
        "args": {"name": name},
    }


def _local_ids(flight: FlightRecorder) -> dict[int, int]:
    """Dense packet ids in injection order.

    :data:`repro.network.packet._packet_ids` counts for the whole
    process, so raw ids differ between two identical runs; renumbering
    restores run-to-run byte identity.
    """
    return flight.local_ids()


def chrome_trace(
    flight: FlightRecorder,
    recorder: Optional[ActivityRecorder] = None,
    metrics: "Optional[MetricsRegistry]" = None,
) -> dict:
    """Build a Chrome ``trace_event`` document (JSON-serializable dict)."""
    ids = _local_ids(flight)
    events: list[dict] = []

    # -- packets (pid 1): one thread per packet -----------------------------
    events.append(_meta(_PID_PACKETS, 0, "process_name", "packets"))
    for f in flight.flights.values():
        lid = ids[f.packet_id]
        label = (
            f"mcast {f.kind}#{lid}"
            if f.multicast
            else f"{f.kind}#{lid} {f.src_node}->{f.dst_node}"
        )
        events.append(_meta(_PID_PACKETS, lid, "thread_name", label))
        end_ns = f.delivered_ns
        if end_ns is None:  # still in flight when the run stopped
            end_ns = max(
                [f.inject_ns] + [h.release_ns for h in f.hops]
            )
        events.append({
            "ph": "X",
            "pid": _PID_PACKETS,
            "tid": lid,
            "cat": "packet",
            "name": label,
            "ts": _us(f.inject_ns),
            "dur": _us(end_ns - f.inject_ns),
            "args": {
                "payload_bytes": f.payload_bytes,
                "wire_bytes": f.wire_bytes,
                "hops": len(f.hops),
                "queue_wait_ns": f.queue_wait_ns,
                "multicast": f.multicast,
                "in_order": f.in_order,
                "src_client": f.src_client,
            },
        })
        for h in f.hops:
            if h.wait_ns > 0:
                events.append({
                    "ph": "X",
                    "pid": _PID_PACKETS,
                    "tid": lid,
                    "cat": "hop",
                    "name": f"wait {h.link}",
                    "ts": _us(h.enqueue_ns),
                    "dur": _us(h.wait_ns),
                    "args": {"queue_depth": h.queue_depth},
                })
            events.append({
                "ph": "X",
                "pid": _PID_PACKETS,
                "tid": lid,
                "cat": "hop",
                "name": f"xmit {h.link}",
                "ts": _us(h.grant_ns),
                "dur": _us(h.occupancy_ns),
                "args": {"dim": h.dim, "sign": h.sign,
                         **({"retries": h.retries, "retry_ns": h.retry_ns}
                            if h.retries else {})},
            })
        for d in f.deliveries:
            events.append({
                "ph": "i",
                "pid": _PID_PACKETS,
                "tid": lid,
                "cat": "delivery",
                "name": f"deliver {d.node}:{d.client}",
                "ts": _us(d.time_ns),
                "s": "t",
            })

    # -- links (pid 2): one thread per link direction -----------------------
    events.append(_meta(_PID_LINKS, 0, "process_name", "links"))
    link_names = flight.links()
    for tid, name in enumerate(link_names):
        events.append(_meta(_PID_LINKS, tid, "thread_name", name))
        for grant, release, pid in flight.link_occupancy.get(name, []):
            events.append({
                "ph": "X",
                "pid": _PID_LINKS,
                "tid": tid,
                "cat": "link",
                "name": f"pkt#{ids.get(pid, pid)}",
                "ts": _us(grant),
                "dur": _us(release - grant),
            })
        for t, depth in flight.queue_depth_series.get(name, []):
            events.append({
                "ph": "C",
                "pid": _PID_LINKS,
                "tid": tid,
                "name": f"queue {name}",
                "ts": _us(t),
                "args": {"waiting": depth},
            })

    # -- units (pid 3): the activity recorder's intervals -------------------
    if recorder is not None and len(recorder):
        events.append(_meta(_PID_UNITS, 0, "process_name", "units"))
        units = recorder.units()
        tid_of = {u: i for i, u in enumerate(units)}
        for u in units:
            events.append(_meta(_PID_UNITS, tid_of[u], "thread_name", u))
        for a in recorder.intervals():
            events.append({
                "ph": "X",
                "pid": _PID_UNITS,
                "tid": tid_of[a.unit],
                "cat": a.kind.value,
                "name": a.label or a.kind.value,
                "ts": _us(a.start_ns),
                "dur": _us(a.duration_ns),
            })

    doc: dict = {"traceEvents": events, "displayTimeUnit": "ns"}
    if metrics is not None and len(metrics):
        doc["otherData"] = {"metrics": metrics.snapshot()}
    return doc


def dumps_chrome_trace(
    flight: FlightRecorder,
    recorder: Optional[ActivityRecorder] = None,
    metrics: "Optional[MetricsRegistry]" = None,
) -> str:
    """Serialize :func:`chrome_trace` deterministically (sorted keys,
    compact separators, trailing newline)."""
    doc = chrome_trace(flight, recorder, metrics)
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_trace(
    path: str,
    flight: FlightRecorder,
    recorder: Optional[ActivityRecorder] = None,
    metrics: "Optional[MetricsRegistry]" = None,
) -> None:
    """Write a ``trace_event`` JSON file openable in ui.perfetto.dev."""
    with open(path, "w") as fh:
        fh.write(dumps_chrome_trace(flight, recorder, metrics))


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def jsonl_lines(
    flight: FlightRecorder,
    recorder: Optional[ActivityRecorder] = None,
) -> Iterator[str]:
    """One JSON object per record, for ad-hoc processing (jq, pandas).

    Record types: ``packet`` (with nested hops and deliveries),
    ``link`` (aggregate per link direction), ``queue_depth`` (one
    sample), ``activity`` (one recorder interval).
    """
    ids = _local_ids(flight)

    def dump(obj: dict) -> str:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))

    for f in flight.flights.values():
        yield dump({
            "type": "packet",
            "id": ids[f.packet_id],
            "kind": f.kind,
            "src": list(f.src_node),
            "src_client": f.src_client,
            "dst": list(f.dst_node),
            "dst_client": f.dst_client,
            "payload_bytes": f.payload_bytes,
            "wire_bytes": f.wire_bytes,
            "multicast": f.multicast,
            "in_order": f.in_order,
            "inject_ns": f.inject_ns,
            "delivered_ns": f.delivered_ns,
            "latency_ns": f.latency_ns,
            "hops": [
                {
                    "link": h.link,
                    "enqueue_ns": h.enqueue_ns,
                    "grant_ns": h.grant_ns,
                    "release_ns": h.release_ns,
                    "wait_ns": h.wait_ns,
                    "queue_depth": h.queue_depth,
                    # Retry fields appear only under fault injection so
                    # fault-free exports stay byte-identical.
                    **({"retry_ns": h.retry_ns, "retries": h.retries}
                       if h.retries else {}),
                }
                for h in f.hops
            ],
            "deliveries": [
                {"node": list(d.node), "client": d.client, "time_ns": d.time_ns}
                for d in f.deliveries
            ],
        })
    for name in flight.links():
        occ = flight.link_occupancy.get(name, [])
        yield dump({
            "type": "link",
            "link": name,
            "traversals": len(occ),
            "busy_ns": flight.link_busy_ns(name),
            "max_queue_depth": flight.max_queue_depth(name),
        })
        for t, depth in flight.queue_depth_series.get(name, []):
            yield dump({
                "type": "queue_depth",
                "link": name,
                "time_ns": t,
                "waiting": depth,
            })
    if recorder is not None:
        for a in recorder.intervals():
            yield dump({
                "type": "activity",
                "unit": a.unit,
                "kind": a.kind.value,
                "start_ns": a.start_ns,
                "end_ns": a.end_ns,
                "label": a.label,
            })


def write_jsonl(
    path: str,
    flight: FlightRecorder,
    recorder: Optional[ActivityRecorder] = None,
) -> None:
    with open(path, "w") as fh:
        for line in jsonl_lines(flight, recorder):
            fh.write(line + "\n")


# ---------------------------------------------------------------------------
# Text summary
# ---------------------------------------------------------------------------

def flight_summary(
    flight: FlightRecorder,
    metrics: "Optional[MetricsRegistry]" = None,
    top_links: int = 10,
) -> str:
    """Human-readable congestion summary (reuses the benchmark tables)."""
    # Local import: repro.analysis imports the asic/network stack which
    # imports repro.trace — keep this package importable on its own.
    from repro.analysis.report import render_table

    flights = flight.packets()
    delivered = [f for f in flights if f.latency_ns is not None]
    rows = [
        ["packets injected", len(flights)],
        ["packets delivered (all destinations)",
         sum(len(f.deliveries) for f in flights)],
        ["link traversals",
         sum(len(f.hops) for f in flights)],
        ["contended hops", flight.contended_hops()],
        ["max queue depth", flight.max_queue_depth()],
    ]
    if delivered:
        lat = sorted(f.latency_ns for f in delivered)
        rows.append(["latency min (ns)", lat[0]])
        rows.append(["latency p50 (ns)", lat[len(lat) // 2]])
        rows.append(["latency max (ns)", lat[-1]])
    parts = [render_table("Packet flight summary", ["quantity", "value"], rows)]

    link_rows = sorted(
        (
            [name,
             len(flight.link_occupancy.get(name, [])),
             flight.link_busy_ns(name),
             flight.max_queue_depth(name)]
            for name in flight.links()
        ),
        key=lambda r: (-r[2], r[0]),
    )[:top_links]
    if link_rows:
        parts.append(render_table(
            f"Busiest links (top {len(link_rows)})",
            ["link", "packets", "busy ns", "max queue"],
            link_rows,
        ))
    if metrics is not None and len(metrics):
        parts.append(metrics.summary())
    return "\n\n".join(parts)
