"""Instrumentation: the simulated logic analyzer (§IV.C, Fig. 13).

The real Anton carries an on-chip diagnostic network that records ASIC
activity; the paper's Table 3 and Fig. 13 come from it.  This package
is the model's equivalent: an :class:`~repro.trace.recorder.ActivityRecorder`
collects per-unit activity intervals (compute, stall/wait, send,
receive) and per-link occupancy, :mod:`repro.trace.stats` turns them
into the critical-path communication accounting of Table 3, and
:mod:`repro.trace.timeline` renders the Fig. 13 style activity
timeline as text/CSV.
"""

from repro.trace.recorder import Activity, ActivityKind, ActivityRecorder
from repro.trace.stats import (
    CriticalPathStats,
    communication_split,
    per_node_communication_split,
)
from repro.trace.timeline import render_timeline, timeline_csv

__all__ = [
    "Activity",
    "ActivityKind",
    "ActivityRecorder",
    "CriticalPathStats",
    "communication_split",
    "per_node_communication_split",
    "render_timeline",
    "timeline_csv",
]
