"""Instrumentation: the simulated logic analyzer (§IV.C, Fig. 13).

The real Anton carries an on-chip diagnostic network that records ASIC
activity; the paper's Table 3 and Fig. 13 come from it.  This package
is the model's equivalent — a full telemetry layer:

* :class:`~repro.trace.recorder.ActivityRecorder` collects per-unit
  activity intervals (compute, stall/wait, send, receive) and per-link
  occupancy;
* :class:`~repro.trace.flight.FlightRecorder` is the network-side
  flight recorder: every packet's causal spans (inject → per-hop
  queue-wait → link occupancy → deliver) plus per-link queue-depth
  time series.  Networks pick it up from the ambient context
  (:func:`~repro.trace.flight.use_flight`) or an explicit ``flight=``
  argument; the default is the zero-cost null recorder;
* :class:`~repro.trace.metrics.MetricsRegistry` names counters, gauges
  and ns-scale latency histograms with p50/p90/p99 queries, attachable
  to any :class:`~repro.engine.simulator.Simulator` or installed
  ambiently with :func:`~repro.trace.metrics.use_registry`;
* :mod:`repro.trace.export` turns a recorded run into
  Chrome/Perfetto ``trace_event`` JSON (open it in `ui.perfetto.dev`),
  JSONL, or a text summary — deterministically, so traces diff cleanly
  across runs;
* :mod:`repro.trace.stats` derives the critical-path communication
  accounting of Table 3, and :mod:`repro.trace.timeline` renders the
  Fig. 13 style activity timeline as text/CSV;
* :mod:`repro.trace.capture` (imported lazily — it pulls in the
  analysis stack) drives a named experiment with telemetry attached;
  it backs ``python -m repro trace <experiment>``.
"""

from repro.trace.recorder import Activity, ActivityKind, ActivityRecorder
from repro.trace.stats import (
    CriticalPathStats,
    communication_split,
    per_node_communication_split,
)
from repro.trace.timeline import render_timeline, timeline_csv
from repro.trace.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    use_registry,
)
from repro.trace.sketch import QuantileSketch
from repro.trace.flight import (
    NULL_FLIGHT,
    Delivery,
    FlightRecorder,
    HopRecord,
    NullFlightRecorder,
    PacketFlight,
    PhaseSpan,
    PollRecord,
    active_flight,
    use_flight,
)
from repro.trace.export import (
    chrome_trace,
    dumps_chrome_trace,
    flight_summary,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Activity",
    "ActivityKind",
    "ActivityRecorder",
    "Counter",
    "CriticalPathStats",
    "Delivery",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HopRecord",
    "MetricsRegistry",
    "NULL_FLIGHT",
    "NullFlightRecorder",
    "PacketFlight",
    "PhaseSpan",
    "PollRecord",
    "QuantileSketch",
    "active_flight",
    "active_registry",
    "chrome_trace",
    "communication_split",
    "dumps_chrome_trace",
    "flight_summary",
    "jsonl_lines",
    "per_node_communication_split",
    "render_timeline",
    "timeline_csv",
    "use_flight",
    "use_registry",
    "write_chrome_trace",
    "write_jsonl",
]
