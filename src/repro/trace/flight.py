"""The packet flight recorder: per-packet causal spans through the torus.

Anton's on-chip logic analyzer is what made the paper's Fig. 13
timeline and Table 3 critical-path split measurable; this module is
the network-side half of that instrument.  When a
:class:`FlightRecorder` is attached to a
:class:`~repro.network.network.Network`, every packet's life is
recorded as a causal chain of spans:

    inject → (per hop: queue-wait → link occupancy) → deliver(s)

and every link direction accumulates a queue-depth time series, so
congestion is visible per link, per nanosecond.  The recorder is a
passive observer: it reads timestamps the transport already has and
never schedules events, so an instrumented run is simulation-identical
to an uninstrumented one (verified by the test suite and by
``benchmarks/bench_trace_overhead.py``).

Zero cost when disabled: the network's default recorder is the
module-level :data:`NULL_FLIGHT` singleton whose ``enabled`` flag is
``False``; the transport hot path guards every hook behind that flag,
so a run without telemetry pays one attribute load and boolean test
per hook site and allocates nothing.

Exporters for the recorded data (Chrome/Perfetto ``trace_event`` JSON,
JSONL, text summary) live in :mod:`repro.trace.export`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.link import TorusLink
    from repro.network.packet import Packet
    from repro.trace.metrics import MetricsRegistry


@dataclass(slots=True)
class HopRecord:
    """One link traversal of one packet.

    ``enqueue_ns`` is when the packet first asked for the link
    direction; ``grant_ns`` when the channel was granted (equal when
    the link was free); ``release_ns`` when the packet's last bit left
    the injecting node (grant + serialization time).
    """

    link: str
    dim: str
    sign: int
    enqueue_ns: float
    grant_ns: float
    release_ns: float
    queue_depth: int  # waiters ahead of this packet at enqueue time

    @property
    def wait_ns(self) -> float:
        """Head-of-line blocking time spent queued for the channel."""
        return self.grant_ns - self.enqueue_ns

    @property
    def occupancy_ns(self) -> float:
        return self.release_ns - self.grant_ns


@dataclass(slots=True)
class Delivery:
    """One arrival at one destination client."""

    node: tuple
    client: str
    time_ns: float


@dataclass
class PacketFlight:
    """The full recorded life of one packet."""

    packet_id: int
    kind: str
    src_node: tuple
    src_client: str
    dst_node: tuple
    dst_client: str
    payload_bytes: int
    wire_bytes: int
    multicast: bool
    in_order: bool
    inject_ns: float
    hops: list[HopRecord] = field(default_factory=list)
    deliveries: list[Delivery] = field(default_factory=list)

    @property
    def delivered_ns(self) -> Optional[float]:
        """Time of the last delivery (``None`` while in flight)."""
        if not self.deliveries:
            return None
        return self.deliveries[-1].time_ns

    @property
    def latency_ns(self) -> Optional[float]:
        done = self.delivered_ns
        return None if done is None else done - self.inject_ns

    @property
    def queue_wait_ns(self) -> float:
        """Total time this packet spent blocked on busy links."""
        return sum(h.wait_ns for h in self.hops)


class NullFlightRecorder:
    """The do-nothing recorder guarding the disabled fast path.

    The transport checks ``recorder.enabled`` before calling any hook,
    so these methods exist only as a safety net for direct callers.
    """

    enabled = False
    metrics: "Optional[MetricsRegistry]" = None

    def packet_injected(self, packet: "Packet", now: float) -> None:
        pass

    def hop_enqueued(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        pass

    def hop_granted(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        pass

    def packet_delivered(
        self, packet: "Packet", node: tuple, client: str, now: float
    ) -> None:
        pass


#: Shared default recorder for every uninstrumented network.
NULL_FLIGHT = NullFlightRecorder()


class FlightRecorder:
    """Records per-packet causal spans and per-link congestion series.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.trace.metrics.MetricsRegistry`; when
        given, the recorder feeds it aggregate telemetry as packets
        fly: ``net.packets_injected`` / ``net.packets_delivered`` /
        ``net.link_traversals`` counters, a ``net.packet_latency_ns``
        histogram (inject → delivery, per delivery), a
        ``net.hop_wait_ns`` histogram (queue wait per contended hop),
        and a ``net.queue_depth`` gauge whose high watermark is the
        worst head-of-line queue seen anywhere.
    """

    def __init__(self, metrics: "Optional[MetricsRegistry]" = None) -> None:
        self.enabled = True
        self.metrics = metrics
        #: packet_id → flight, in injection order.
        self.flights: dict[int, PacketFlight] = {}
        #: link name → [(grant_ns, release_ns, packet_id)], in grant order.
        self.link_occupancy: dict[str, list[tuple[float, float, int]]] = {}
        #: link name → [(time_ns, waiting)], sampled at enqueue/grant.
        self.queue_depth_series: dict[str, list[tuple[float, int]]] = {}
        #: (packet_id, link name) → (enqueue_ns, observed queue depth).
        self._pending: dict[tuple[int, str], tuple[float, int]] = {}

    # ------------------------------------------------------------------
    # hooks (called by the network transport; timestamps passed in so
    # the recorder works for any simulator)
    # ------------------------------------------------------------------
    def packet_injected(self, packet: "Packet", now: float) -> None:
        self.flights[packet.packet_id] = PacketFlight(
            packet_id=packet.packet_id,
            kind=packet.kind.value,
            src_node=packet.src_node,
            src_client=packet.src_client,
            dst_node=packet.dst_node,
            dst_client=packet.dst_client,
            payload_bytes=packet.payload_bytes,
            wire_bytes=packet.wire_bytes,
            multicast=packet.is_multicast,
            in_order=packet.in_order,
            inject_ns=now,
        )
        m = self.metrics
        if m is not None:
            m.counter("net.packets_injected").inc()

    def hop_enqueued(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        """The packet found the link busy and joined its queue."""
        name = repr(link.link_id)
        # Depth observed just before this packet joins the waiters.
        depth = link.channel.queue_length
        self._pending[(packet.packet_id, name)] = (now, depth)
        self.queue_depth_series.setdefault(name, []).append((now, depth + 1))
        m = self.metrics
        if m is not None:
            g = m.gauge("net.queue_depth")
            g.set(depth + 1)

    def hop_granted(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        """The packet acquired the channel and starts streaming."""
        name = repr(link.link_id)
        lid = link.link_id
        enqueue_ns, depth = self._pending.pop((packet.packet_id, name), (now, 0))
        release = now + packet.serialization_ns
        hop = HopRecord(
            link=name,
            dim=lid.dim,
            sign=lid.sign,
            enqueue_ns=enqueue_ns,
            grant_ns=now,
            release_ns=release,
            queue_depth=depth,
        )
        flight = self.flights.get(packet.packet_id)
        if flight is not None:
            flight.hops.append(hop)
        self.link_occupancy.setdefault(name, []).append(
            (now, release, packet.packet_id)
        )
        if enqueue_ns != now:
            # The grant drains one waiter; sample the shrinking queue.
            self.queue_depth_series.setdefault(name, []).append(
                (now, link.channel.queue_length)
            )
        m = self.metrics
        if m is not None:
            m.counter("net.link_traversals").inc()
            if enqueue_ns != now:
                m.histogram("net.hop_wait_ns").observe(now - enqueue_ns)

    def packet_delivered(
        self, packet: "Packet", node: tuple, client: str, now: float
    ) -> None:
        flight = self.flights.get(packet.packet_id)
        if flight is not None:
            flight.deliveries.append(Delivery(node=node, client=client, time_ns=now))
            m = self.metrics
            if m is not None:
                m.counter("net.packets_delivered").inc()
                m.histogram("net.packet_latency_ns").observe(now - flight.inject_ns)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def packets(self) -> list[PacketFlight]:
        """All recorded flights, in injection order."""
        return list(self.flights.values())

    def flight(self, packet_id: int) -> PacketFlight:
        return self.flights[packet_id]

    def links(self) -> list[str]:
        """All link directions that saw traffic or queueing, sorted."""
        return sorted(set(self.link_occupancy) | set(self.queue_depth_series))

    def max_queue_depth(self, link: Optional[str] = None) -> int:
        """Deepest observed wait queue (one link, or anywhere)."""
        series: Iterator[tuple[float, int]]
        if link is not None:
            series = iter(self.queue_depth_series.get(link, []))
        else:
            series = (
                sample for s in self.queue_depth_series.values() for sample in s
            )
        return max((depth for _, depth in series), default=0)

    def link_busy_ns(self, link: str) -> float:
        """Total serialization time streamed on a link direction."""
        return sum(release - grant for grant, release, _ in
                   self.link_occupancy.get(link, []))

    def contended_hops(self) -> int:
        """Number of recorded hops that had to queue."""
        return sum(
            1 for f in self.flights.values() for h in f.hops if h.wait_ns > 0
        )

    def clear(self) -> None:
        self.flights.clear()
        self.link_occupancy.clear()
        self.queue_depth_series.clear()
        self._pending.clear()

    def __len__(self) -> int:
        return len(self.flights)


# ---------------------------------------------------------------------------
# Ambient recorder
# ---------------------------------------------------------------------------
#: Recorder picked up by every Network constructed while it is active.
#: The measurement harnesses in repro.analysis build their machines
#: internally; the ambient recorder instruments them without threading
#: a parameter through every call signature.
_active_flight: "FlightRecorder | NullFlightRecorder" = NULL_FLIGHT


def active_flight() -> "FlightRecorder | NullFlightRecorder":
    """The recorder new networks attach at construction time."""
    return _active_flight


@contextmanager
def use_flight(recorder: FlightRecorder) -> Iterator[FlightRecorder]:
    """Install ``recorder`` as the ambient flight recorder for the block."""
    global _active_flight
    prev = _active_flight
    _active_flight = recorder
    try:
        yield recorder
    finally:
        _active_flight = prev
