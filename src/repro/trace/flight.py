"""The packet flight recorder: per-packet causal spans through the torus.

Anton's on-chip logic analyzer is what made the paper's Fig. 13
timeline and Table 3 critical-path split measurable; this module is
the network-side half of that instrument.  When a
:class:`FlightRecorder` is attached to a
:class:`~repro.network.network.Network`, every packet's life is
recorded as a causal chain of spans:

    inject → (per hop: queue-wait → link occupancy) → deliver(s)

and every link direction accumulates a queue-depth time series, so
congestion is visible per link, per nanosecond.  The recorder is a
passive observer: it reads timestamps the transport already has and
never schedules events, so an instrumented run is simulation-identical
to an uninstrumented one (verified by the test suite and by
``benchmarks/bench_trace_overhead.py``).

Zero cost when disabled: the network's default recorder is the
module-level :data:`NULL_FLIGHT` singleton whose ``enabled`` flag is
``False``; the transport hot path guards every hook behind that flag,
so a run without telemetry pays one attribute load and boolean test
per hook site and allocates nothing.

Exporters for the recorded data (Chrome/Perfetto ``trace_event`` JSON,
JSONL, text summary) live in :mod:`repro.trace.export`.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.link import TorusLink
    from repro.network.packet import Packet
    from repro.trace.metrics import MetricsRegistry


@dataclass(slots=True)
class HopRecord:
    """One link traversal of one packet.

    ``enqueue_ns`` is when the packet first asked for the link
    direction; ``grant_ns`` when the channel was granted (equal when
    the link was free); ``release_ns`` when the packet's last bit left
    the injecting node (grant + serialization time).  ``from_node`` is
    the node injecting into the link (the link direction's home node),
    which is what lets the analyzer rebuild per-branch causal chains
    for multicast fan-out.
    """

    link: str
    dim: str
    sign: int
    from_node: tuple
    enqueue_ns: float
    grant_ns: float
    release_ns: float
    queue_depth: int  # waiters ahead of this packet at enqueue time
    #: Link-level retransmission accounting (fault injection only;
    #: both stay 0 on a fault-free run and the exporters omit them).
    retry_ns: float = 0.0
    retries: int = 0

    @property
    def wait_ns(self) -> float:
        """Head-of-line blocking time spent queued for the channel."""
        return self.grant_ns - self.enqueue_ns

    @property
    def occupancy_ns(self) -> float:
        return self.release_ns - self.grant_ns

    @property
    def direction(self) -> str:
        """The ``z+``-style direction tag of the traversed link."""
        return f"{self.dim}{'+' if self.sign > 0 else '-'}"


@dataclass(slots=True)
class Delivery:
    """One arrival at one destination client."""

    node: tuple
    client: str
    time_ns: float


@dataclass(slots=True)
class PollRecord:
    """One successful synchronization-counter poll on a slice.

    ``trigger_ns`` is when the counter reached the polled target (the
    moment the polling process unblocked); ``done_ns`` is when the
    slice finished paying the successful-poll cost and the data became
    usable.  The critical-path analyzer joins these to deliveries by
    ``(node, client, counter_id)`` to extend a packet's causal chain
    through the receiver — the last 42 ns of Fig. 6.
    """

    node: tuple
    client: str
    counter_id: str
    target: int
    trigger_ns: float
    done_ns: float

    @property
    def poll_ns(self) -> float:
        return self.done_ns - self.trigger_ns


@dataclass(slots=True)
class PhaseSpan:
    """One marked phase of a larger computation (a collective round, a
    migration phase, an MD-step phase).  ``end_ns`` is ``None`` while
    the phase is still open."""

    name: str
    begin_ns: float
    end_ns: Optional[float] = None

    @property
    def duration_ns(self) -> Optional[float]:
        return None if self.end_ns is None else self.end_ns - self.begin_ns

    def contains(self, t: float) -> bool:
        end = self.end_ns if self.end_ns is not None else float("inf")
        return self.begin_ns <= t <= end


@dataclass
class PacketFlight:
    """The full recorded life of one packet."""

    packet_id: int
    kind: str
    src_node: tuple
    src_client: str
    dst_node: tuple
    dst_client: str
    payload_bytes: int
    wire_bytes: int
    multicast: bool
    in_order: bool
    inject_ns: float
    counter_id: Optional[str] = None
    #: When the sending client began packet assembly (software send);
    #: ``None`` for packets injected without the slice-side hook.
    send_begin_ns: Optional[float] = None
    hops: list[HopRecord] = field(default_factory=list)
    deliveries: list[Delivery] = field(default_factory=list)

    @property
    def delivered_ns(self) -> Optional[float]:
        """Time of the last delivery (``None`` while in flight)."""
        if not self.deliveries:
            return None
        return self.deliveries[-1].time_ns

    @property
    def latency_ns(self) -> Optional[float]:
        done = self.delivered_ns
        return None if done is None else done - self.inject_ns

    @property
    def queue_wait_ns(self) -> float:
        """Total time this packet spent blocked on busy links."""
        return sum(h.wait_ns for h in self.hops)


class NullFlightRecorder:
    """The do-nothing recorder guarding the disabled fast path.

    The transport checks ``recorder.enabled`` before calling any hook,
    so these methods exist only as a safety net for direct callers.
    """

    enabled = False
    metrics: "Optional[MetricsRegistry]" = None

    def packet_injected(self, packet: "Packet", now: float) -> None:
        pass

    def hop_enqueued(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        pass

    def hop_granted(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        pass

    def hop_fault(
        self,
        packet: "Packet",
        link: "TorusLink",
        hold_ns: float,
        retry_ns: float,
        retries: int,
    ) -> None:
        pass

    def packet_delivered(
        self, packet: "Packet", node: tuple, client: str, now: float
    ) -> None:
        pass

    def software_send(
        self, packet: "Packet", begin_ns: float, end_ns: float
    ) -> None:
        pass

    def poll_completed(
        self,
        node: tuple,
        client: str,
        counter_id: str,
        target: int,
        trigger_ns: float,
        done_ns: float,
    ) -> None:
        pass

    def phase_begin(self, name: str, now: float) -> None:
        pass

    def phase_end(self, name: str, now: float) -> None:
        pass


#: Shared default recorder for every uninstrumented network.
NULL_FLIGHT = NullFlightRecorder()


class FlightRecorder:
    """Records per-packet causal spans and per-link congestion series.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.trace.metrics.MetricsRegistry`; when
        given, the recorder feeds it aggregate telemetry as packets
        fly: ``net.packets_injected`` / ``net.packets_delivered`` /
        ``net.link_traversals`` counters, a ``net.packet_latency_ns``
        histogram (inject → delivery, per delivery), a
        ``net.hop_wait_ns`` histogram (queue wait per contended hop),
        and a ``net.queue_depth`` gauge whose high watermark is the
        worst head-of-line queue seen anywhere.
    """

    def __init__(self, metrics: "Optional[MetricsRegistry]" = None) -> None:
        self.enabled = True
        self.metrics = metrics
        #: packet_id → flight, in injection order.
        self.flights: dict[int, PacketFlight] = {}
        #: link name → [(grant_ns, release_ns, packet_id)], in grant order.
        self.link_occupancy: dict[str, list[tuple[float, float, int]]] = {}
        #: link name → [(time_ns, waiting)], sampled at enqueue/grant.
        self.queue_depth_series: dict[str, list[tuple[float, int]]] = {}
        #: (packet_id, link name) → (enqueue_ns, observed queue depth).
        self._pending: dict[tuple[int, str], tuple[float, int]] = {}
        #: Successful counter polls, in completion order.
        self.polls: list[PollRecord] = []
        #: Marked phases, in begin order.
        self.phases: list[PhaseSpan] = []

    # ------------------------------------------------------------------
    # hooks (called by the network transport; timestamps passed in so
    # the recorder works for any simulator)
    # ------------------------------------------------------------------
    def packet_injected(self, packet: "Packet", now: float) -> None:
        self.flights[packet.packet_id] = PacketFlight(
            packet_id=packet.packet_id,
            kind=packet.kind.value,
            src_node=packet.src_node,
            src_client=packet.src_client,
            dst_node=packet.dst_node,
            dst_client=packet.dst_client,
            payload_bytes=packet.payload_bytes,
            wire_bytes=packet.wire_bytes,
            multicast=packet.is_multicast,
            in_order=packet.in_order,
            inject_ns=now,
            counter_id=getattr(packet, "counter_id", None),
        )
        m = self.metrics
        if m is not None:
            m.counter("net.packets_injected").inc()

    def hop_enqueued(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        """The packet found the link busy and joined its queue."""
        name = repr(link.link_id)
        # Depth observed just before this packet joins the waiters.
        depth = link.channel.queue_length
        self._pending[(packet.packet_id, name)] = (now, depth)
        self.queue_depth_series.setdefault(name, []).append((now, depth + 1))
        m = self.metrics
        if m is not None:
            g = m.gauge("net.queue_depth")
            g.set(depth + 1)

    def hop_granted(self, packet: "Packet", link: "TorusLink", now: float) -> None:
        """The packet acquired the channel and starts streaming."""
        name = repr(link.link_id)
        lid = link.link_id
        enqueue_ns, depth = self._pending.pop((packet.packet_id, name), (now, 0))
        release = now + packet.serialization_ns
        hop = HopRecord(
            link=name,
            dim=lid.dim,
            sign=lid.sign,
            from_node=tuple(lid.node),
            enqueue_ns=enqueue_ns,
            grant_ns=now,
            release_ns=release,
            queue_depth=depth,
        )
        flight = self.flights.get(packet.packet_id)
        if flight is not None:
            flight.hops.append(hop)
        self.link_occupancy.setdefault(name, []).append(
            (now, release, packet.packet_id)
        )
        if enqueue_ns != now:
            # The grant drains one waiter; sample the shrinking queue.
            self.queue_depth_series.setdefault(name, []).append(
                (now, link.channel.queue_length)
            )
        m = self.metrics
        if m is not None:
            m.counter("net.link_traversals").inc()
            if enqueue_ns != now:
                m.histogram("net.hop_wait_ns").observe(now - enqueue_ns)

    def hop_fault(
        self,
        packet: "Packet",
        link: "TorusLink",
        hold_ns: float,
        retry_ns: float,
        retries: int,
    ) -> None:
        """The fault session stretched the hop recorded by the
        immediately preceding ``hop_granted`` (retransmissions and/or
        degraded bandwidth): amend its release time and retry span so
        the critical-path analyzer can tile retry time exactly."""
        name = repr(link.link_id)
        flight = self.flights.get(packet.packet_id)
        if flight is not None and flight.hops:
            hop = flight.hops[-1]
            if hop.link == name:
                hop.release_ns = hop.grant_ns + hold_ns
                hop.retry_ns = retry_ns
                hop.retries = retries
        occ = self.link_occupancy.get(name)
        if occ and occ[-1][2] == packet.packet_id:
            grant, _release, pid = occ[-1]
            occ[-1] = (grant, grant + hold_ns, pid)

    def packet_delivered(
        self, packet: "Packet", node: tuple, client: str, now: float
    ) -> None:
        flight = self.flights.get(packet.packet_id)
        if flight is not None:
            flight.deliveries.append(Delivery(node=node, client=client, time_ns=now))
            m = self.metrics
            if m is not None:
                m.counter("net.packets_delivered").inc()
                m.histogram("net.packet_latency_ns").observe(now - flight.inject_ns)

    def software_send(
        self, packet: "Packet", begin_ns: float, end_ns: float
    ) -> None:
        """The sending client assembled this packet over
        ``[begin_ns, end_ns]`` (Fig. 6's "write packet send initiated
        in processing slice", including any Tensilica queueing)."""
        flight = self.flights.get(packet.packet_id)
        if flight is not None:
            flight.send_begin_ns = begin_ns
        m = self.metrics
        if m is not None:
            m.histogram("net.software_send_ns").observe(end_ns - begin_ns)

    def poll_completed(
        self,
        node: tuple,
        client: str,
        counter_id: str,
        target: int,
        trigger_ns: float,
        done_ns: float,
    ) -> None:
        """A slice's local counter poll succeeded (Fig. 6's final
        42 ns).  Joined to deliveries by (node, client, counter_id)."""
        self.polls.append(
            PollRecord(
                node=tuple(node),
                client=client,
                counter_id=counter_id,
                target=target,
                trigger_ns=trigger_ns,
                done_ns=done_ns,
            )
        )
        m = self.metrics
        if m is not None:
            m.counter("net.polls_succeeded").inc()

    def phase_begin(self, name: str, now: float) -> None:
        """Open a named phase (collective round, migration, MD phase)."""
        self.phases.append(PhaseSpan(name=name, begin_ns=now))

    def phase_end(self, name: str, now: float) -> None:
        """Close the most recent open phase with this name."""
        for span in reversed(self.phases):
            if span.name == name and span.end_ns is None:
                span.end_ns = now
                return
        raise RuntimeError(f"phase_end({name!r}) without an open phase_begin")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def packets(self) -> list[PacketFlight]:
        """All recorded flights, in injection order."""
        return list(self.flights.values())

    def flight(self, packet_id: int) -> PacketFlight:
        return self.flights[packet_id]

    def links(self) -> list[str]:
        """All link directions that saw traffic or queueing, sorted."""
        return sorted(set(self.link_occupancy) | set(self.queue_depth_series))

    def max_queue_depth(self, link: Optional[str] = None) -> int:
        """Deepest observed wait queue (one link, or anywhere)."""
        series: Iterator[tuple[float, int]]
        if link is not None:
            series = iter(self.queue_depth_series.get(link, []))
        else:
            series = (
                sample for s in self.queue_depth_series.values() for sample in s
            )
        return max((depth for _, depth in series), default=0)

    def link_busy_ns(self, link: str) -> float:
        """Total serialization time streamed on a link direction."""
        return sum(release - grant for grant, release, _ in
                   self.link_occupancy.get(link, []))

    def contended_hops(self) -> int:
        """Number of recorded hops that had to queue."""
        return sum(
            1 for f in self.flights.values() for h in f.hops if h.wait_ns > 0
        )

    # -- span query API (used by repro.analysis.critical_path) ----------
    def local_ids(self) -> dict[int, int]:
        """Dense packet ids in injection order.

        Raw ids count for the whole process, so two identical runs get
        different ids; every deterministic report must renumber through
        this map (the exporters in :mod:`repro.trace.export` do).
        """
        return {pid: i for i, pid in enumerate(self.flights)}

    def delivered_flights(self) -> list[PacketFlight]:
        """Flights that reached at least one destination, in injection
        order."""
        return [f for f in self.flights.values() if f.deliveries]

    def flights_in(self, start_ns: float, end_ns: float) -> list[PacketFlight]:
        """Flights whose life overlaps ``[start_ns, end_ns]``.

        A flight overlaps the window if its injection precedes the
        window's end and its last recorded activity follows the
        window's start (in-flight packets count as extending forever).
        """
        out = []
        for f in self.flights.values():
            done = f.delivered_ns
            if done is None:
                done = float("inf")
            if f.inject_ns <= end_ns and done >= start_ns:
                out.append(f)
        return out

    def poll_for(
        self, flight: PacketFlight, delivery: Optional[Delivery] = None
    ) -> Optional[PollRecord]:
        """The successful poll that consumed ``delivery`` (default: the
        flight's last delivery), or ``None`` if nothing polled for it.

        Matches on (node, client, counter_id) and takes the earliest
        poll whose trigger is at or after the delivery time — a poll
        cannot unblock before the counted write that fulfilled it.
        """
        if flight.counter_id is None or not flight.deliveries:
            return None
        if delivery is None:
            delivery = flight.deliveries[-1]
        best: Optional[PollRecord] = None
        for p in self.polls:
            if (
                p.node == tuple(delivery.node)
                and p.client == delivery.client
                and p.counter_id == flight.counter_id
                and p.trigger_ns >= delivery.time_ns
                and (best is None or p.trigger_ns < best.trigger_ns)
            ):
                best = p
        return best

    def phase(self, name: str) -> PhaseSpan:
        """The most recent phase with this name."""
        for span in reversed(self.phases):
            if span.name == name:
                return span
        raise KeyError(f"no recorded phase {name!r}")

    def closed_phases(self) -> list[PhaseSpan]:
        """All completed phases, in begin order."""
        return [p for p in self.phases if p.end_ns is not None]

    def link_wait_ns(self, link: str) -> float:
        """Total head-of-line queue wait recorded against a link."""
        return sum(
            h.wait_ns
            for f in self.flights.values()
            for h in f.hops
            if h.link == link
        )

    def queue_depth_percentile(self, link: str, p: float) -> int:
        """Nearest-rank percentile of the sampled queue depth on a
        link direction (0 for links that never queued)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        samples = sorted(d for _, d in self.queue_depth_series.get(link, []))
        if not samples:
            return 0
        rank = math.ceil(p / 100.0 * len(samples))
        return samples[max(0, rank - 1)]

    def clear(self) -> None:
        self.flights.clear()
        self.link_occupancy.clear()
        self.queue_depth_series.clear()
        self._pending.clear()
        self.polls.clear()
        self.phases.clear()

    def __len__(self) -> int:
        return len(self.flights)


# ---------------------------------------------------------------------------
# Ambient recorder
# ---------------------------------------------------------------------------
#: Recorder picked up by every Network constructed while it is active.
#: The measurement harnesses in repro.analysis build their machines
#: internally; the ambient recorder instruments them without threading
#: a parameter through every call signature.
_active_flight: "FlightRecorder | NullFlightRecorder" = NULL_FLIGHT


def active_flight() -> "FlightRecorder | NullFlightRecorder":
    """The recorder new networks attach at construction time."""
    return _active_flight


@contextmanager
def use_flight(recorder: FlightRecorder) -> Iterator[FlightRecorder]:
    """Install ``recorder`` as the ambient flight recorder for the block."""
    global _active_flight
    prev = _active_flight
    _active_flight = recorder
    try:
        yield recorder
    finally:
        _active_flight = prev
