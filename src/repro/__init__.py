"""repro — a reproduction of "Exploiting 162-Nanosecond End-to-End
Communication Latency on Anton" (SC 2010).

A calibrated discrete-event simulation of Anton's communication
architecture (3-D torus, counted remote writes, multicast,
synchronization counters, HTIS / accumulation-memory clients), a real
NumPy molecular-dynamics engine mapped onto it, commodity-cluster
baselines, and measurement harnesses that regenerate every table and
figure of the paper's evaluation.

Quick start::

    from repro import Simulator, build_machine

    sim = Simulator()
    machine = build_machine(sim, 8, 8, 8)          # a 512-node Anton
    a = machine.node((0, 0, 0)).slice(0)
    b = machine.node((1, 0, 0)).slice(0)
    b.memory.allocate("inbox", 1)

    def sender():
        yield from a.send_write((1, 0, 0), "slice0", counter_id="c",
                                 address=("inbox", 0), payload_bytes=0)

    def receiver():
        t = yield from b.poll("c", 1)
        print(f"end-to-end latency: {t} ns")        # 162.0

    sim.process(sender())
    sim.process(receiver())
    sim.run()

See README.md for the architecture overview and DESIGN.md /
EXPERIMENTS.md for the paper-reproduction index.
"""

from repro.asic import (
    AccumulationMemory,
    AntonNode,
    HTIS,
    Machine,
    MessageFifo,
    ProcessingSlice,
    SyncCounter,
    build_machine,
)
from repro.comm import AllReduce, CountedGather, GatherSource, MigrationProtocol
from repro.engine import Simulator
from repro.network import Network, compile_pattern
from repro.topology import NodeCoord, Torus3D

__version__ = "1.0.0"

__all__ = [
    "AccumulationMemory",
    "AllReduce",
    "AntonNode",
    "CountedGather",
    "GatherSource",
    "HTIS",
    "Machine",
    "MessageFifo",
    "MigrationProtocol",
    "Network",
    "NodeCoord",
    "ProcessingSlice",
    "Simulator",
    "SyncCounter",
    "Torus3D",
    "build_machine",
    "compile_pattern",
    "__version__",
]
