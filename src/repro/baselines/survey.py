"""The published latency survey of Table 1.

Inter-node software-to-software (ping-pong) latency measurements across
scalable networks, as collected by the paper.  The survey excludes
intra-node communication and one-sided writes whose measurements omit
the receiver's detection cost.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SurveyEntry:
    """One row of Table 1."""

    machine: str
    latency_us: float
    reference: str
    year: int


#: Table 1, in the paper's order (Anton first, then ascending latency).
SURVEY: tuple[SurveyEntry, ...] = (
    SurveyEntry("Anton", 0.16, "this paper", 2009),
    SurveyEntry("Altix 3700 BX2", 1.25, "[18]", 2006),
    SurveyEntry("QsNetII", 1.28, "[8]", 2005),
    SurveyEntry("Columbia", 1.6, "[10]", 2005),
    SurveyEntry("Sun Fire", 1.7, "[42]", 2002),
    SurveyEntry("EV7", 1.7, "[26]", 2002),
    SurveyEntry("J-Machine", 1.8, "[32]", 1993),
    SurveyEntry("QsNET", 1.9, "[33]", 2001),
    SurveyEntry("Roadrunner (InfiniBand)", 2.16, "[7]", 2008),
    SurveyEntry("Cray T3E", 2.75, "[37]", 1996),
    SurveyEntry("Blue Gene/P", 2.75, "[3]", 2008),
    SurveyEntry("Blue Gene/L", 2.8, "[25]", 2005),
    SurveyEntry("ASC Purple", 4.4, "[25]", 2005),
    SurveyEntry("Cray XT4", 4.5, "[2]", 2007),
    SurveyEntry("Red Storm", 6.9, "[25]", 2005),
    SurveyEntry("SR8000", 9.9, "[45]", 2001),
)


def survey_table(measured_anton_us: float | None = None) -> str:
    """Format Table 1, optionally replacing Anton's row with the value
    measured on the simulated machine (the Table 1 bench does this to
    show paper vs model side by side)."""
    lines = [f"{'Machine':<26} {'Latency (µs)':>12}  {'Ref.':<12} {'Date':>5}"]
    lines.append("-" * len(lines[0]))
    for e in SURVEY:
        latency = e.latency_us
        label = e.machine
        if e.machine == "Anton" and measured_anton_us is not None:
            latency = measured_anton_us
            label = "Anton (simulated)"
        lines.append(f"{label:<26} {latency:>12.2f}  {e.reference:<12} {e.year:>5}")
    return "\n".join(lines)


def anton_advantage() -> float:
    """Ratio of the best non-Anton latency to Anton's (≈ 7.8×)."""
    non_anton = min(e.latency_us for e in SURVEY if e.machine != "Anton")
    anton = next(e.latency_us for e in SURVEY if e.machine == "Anton")
    return non_anton / anton
