"""MPI-style operations on the cluster model.

Provides the small set of operations the paper's comparisons need:
ping-pong latency, multi-message transfers (Fig. 7), and a
recursive-doubling all-reduce (§IV.B.4's 512-node InfiniBand cluster
measurement of 35.5 µs for a 32-byte reduction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.baselines.cluster import ClusterNetwork
from repro.engine.event import Event
from repro.engine.simulator import Simulator


class MpiContext:
    """Collective and point-to-point helpers over a ClusterNetwork."""

    def __init__(self, network: ClusterNetwork) -> None:
        self.network = network
        self.sim = network.sim
        self._op_seq = 0

    @property
    def size(self) -> int:
        return len(self.network)

    # -- point to point measurements -------------------------------------------
    def ping_pong_ns(self, nbytes: int = 0, src: int = 0, dst: int = 1) -> float:
        """Half-round-trip (one-way) software-to-software latency."""
        t: dict[str, float] = {}
        tag = self._tag("pp")

        def pinger():
            yield from self.network.send(src, dst, nbytes, tag + "-ping")
            yield self.network.recv(src, tag + "-pong", 1)
            t["rtt"] = self.sim.now - t["start"]

        def ponger():
            yield self.network.recv(dst, tag + "-ping", 1)
            yield from self.network.send(dst, src, nbytes, tag + "-pong")

        t["start"] = self.sim.now
        p1 = self.sim.process(pinger())
        p2 = self.sim.process(ponger())
        self.sim.run(until=self.sim.all_of([p1, p2]))
        return t["rtt"] / 2.0

    def transfer_ns(self, total_bytes: int, num_messages: int,
                    src: int = 0, dst: int = 1) -> float:
        """Time to move ``total_bytes`` as ``num_messages`` messages.

        Measures from the first send until the receiver has processed
        the last message — the Fig. 7 experiment.
        """
        if num_messages < 1:
            raise ValueError("num_messages must be >= 1")
        tag = self._tag("xfer")
        sizes = _split_bytes(total_bytes, num_messages)
        start = self.sim.now

        def sender():
            for sz in sizes:
                yield from self.network.send(src, dst, sz, tag)

        done = self.network.recv(dst, tag, num_messages)
        self.sim.process(sender())
        self.sim.run(until=done)
        return self.sim.now - start

    # -- collectives ---------------------------------------------------------------
    def allreduce_ns(self, nbytes: int = 32, compute_ns_per_round: float = 100.0) -> float:
        """Recursive-doubling all-reduce across all nodes.

        Requires a power-of-two node count.  Every round, node *r*
        exchanges its partial with ``r ^ 2**k`` and reduces locally.
        Returns the completion time of the slowest node.
        """
        n = self.size
        if n & (n - 1):
            raise ValueError(f"recursive doubling needs power-of-two nodes, got {n}")
        rounds = int(math.log2(n))
        tag = self._tag("ar")
        done_at: dict[int, float] = {}
        start = self.sim.now

        def node_proc(rank: int):
            for k in range(rounds):
                partner = rank ^ (1 << k)
                rtag = f"{tag}-r{k}"
                yield from self.network.send(rank, partner, nbytes, rtag)
                yield self.network.recv(rank, rtag, 1)
                yield self.sim.timeout(compute_ns_per_round)
            done_at[rank] = self.sim.now

        procs = [self.sim.process(node_proc(r)) for r in range(n)]
        self.sim.run(until=self.sim.all_of(procs))
        return max(done_at.values()) - start

    def _tag(self, prefix: str) -> str:
        self._op_seq += 1
        return f"{prefix}{self._op_seq}"


def _split_bytes(total: int, parts: int) -> list[int]:
    """Split ``total`` bytes into ``parts`` near-equal message sizes."""
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]
