"""Commodity-cluster baselines used by the paper's comparisons.

* :mod:`repro.baselines.cluster` — a DES model of a commodity cluster
  interconnect (DDR2 InfiniBand parameters): per-message sender and
  receiver CPU overheads, NIC injection gap, base latency, bandwidth.
* :mod:`repro.baselines.mpi` — MPI-style point-to-point and collective
  operations on that model (recursive-doubling all-reduce).
* :mod:`repro.baselines.desmond` — a Desmond-style MD communication
  schedule (staged 6-message neighbour exchange, distributed FFT,
  thermostat all-reduce) on the cluster model, regenerating the
  Desmond column of Table 3.
* :mod:`repro.baselines.survey` — the published latency survey of
  Table 1.
"""

from repro.baselines.cluster import ClusterNetwork, ClusterNode
from repro.baselines.desmond import DesmondModel, DesmondStepTiming
from repro.baselines.mpi import MpiContext
from repro.baselines.survey import SURVEY, SurveyEntry, survey_table

__all__ = [
    "ClusterNetwork",
    "ClusterNode",
    "DesmondModel",
    "DesmondStepTiming",
    "MpiContext",
    "SURVEY",
    "SurveyEntry",
    "survey_table",
]
