"""Commodity cluster interconnect model.

A deliberately conventional cluster network: every message pays

* sender CPU overhead (marshalling + posting the send),
* a NIC injection gap (message-rate limit),
* base network latency plus payload serialization at link bandwidth,
* receiver CPU overhead (completion processing).

This is the classical LogGP shape, parameterised with the DDR2
InfiniBand numbers the paper compares against (Table 1's 2.16 µs
Roadrunner/IB entry, Fig. 7's DDR2 IB cluster).  The contrast the
paper draws — "latencies grow rapidly as a function of the number of
messages, driving software for such clusters to be carefully
structured so as to minimize the total message count" — falls directly
out of the per-message overhead and injection gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.constants import DDR2_INFINIBAND, ClusterParams
from repro.engine.event import Event
from repro.engine.resource import Resource
from repro.engine.simulator import Simulator


class ClusterNode:
    """One cluster node: a CPU (for messaging overheads) and a NIC."""

    def __init__(self, sim: Simulator, rank: int) -> None:
        self.sim = sim
        self.rank = rank
        self.cpu = Resource(sim, capacity=1, name=f"node{rank}.cpu")
        self.nic = Resource(sim, capacity=1, name=f"node{rank}.nic")
        self.messages_sent = 0
        self.messages_received = 0
        self._recv_counters: dict[str, int] = {}
        self._recv_waiters: dict[tuple[str, int], Event] = {}
        self.inbox: dict[str, list[Any]] = {}

    # -- receive-side matching ------------------------------------------------
    def deliver(self, tag: str, payload: Any) -> None:
        """Network-side delivery: count and wake matching waiters."""
        self.messages_received += 1
        self.inbox.setdefault(tag, []).append(payload)
        count = self._recv_counters.get(tag, 0) + 1
        self._recv_counters[tag] = count
        ev = self._recv_waiters.pop((tag, count), None)
        if ev is not None:
            ev.succeed(self.sim.now)

    def arrived(self, tag: str, count: int) -> Event:
        """Event firing when ``count`` messages with ``tag`` have arrived."""
        ev = Event(self.sim, name=f"recv({tag}>={count})")
        if self._recv_counters.get(tag, 0) >= count:
            ev.succeed(self.sim.now)
        else:
            key = (tag, count)
            existing = self._recv_waiters.get(key)
            if existing is not None:
                return existing
            self._recv_waiters[key] = ev
        return ev


class ClusterNetwork:
    """A flat cluster network of ``num_nodes`` nodes.

    The fabric itself is modelled as full bisection (no topology
    contention): for the message counts in the paper's comparisons the
    commodity cluster is overhead- and latency-bound, not
    topology-bound, and published IB cluster measurements (which the
    parameters come from) already include fabric effects.
    """

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        params: ClusterParams = DDR2_INFINIBAND,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.sim = sim
        self.params = params
        self.nodes = [ClusterNode(sim, r) for r in range(num_nodes)]
        self.messages_total = 0

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, rank: int) -> ClusterNode:
        return self.nodes[rank]

    # -- messaging ------------------------------------------------------------
    def wire_ns(self, nbytes: int) -> float:
        """In-flight time: base latency + payload at link bandwidth.

        The base latency already contains the zero-byte software-to-
        software cost; overheads below model the *additional* per-
        message CPU/NIC cost that limits message rate.
        """
        return self.params.latency_ns + nbytes * 8.0 / self.params.bandwidth_gbps

    def send(
        self, src: int, dst: int, nbytes: int, tag: str, payload: Any = None
    ) -> Generator[Event, Any, Event]:
        """Send one message; ``yield from`` on the sender's process.

        Occupies the sender CPU for the send overhead and the NIC for
        the injection gap, then launches the flight.  Returns an event
        that fires when the receiver-side processing completes.
        """
        if src == dst:
            raise ValueError("cluster model is for inter-node messages only")
        sender = self.nodes[src]
        yield from sender.cpu.use(self.params.send_overhead_ns)
        yield from sender.nic.use(self.params.inter_message_gap_ns)
        sender.messages_sent += 1
        self.messages_total += 1
        done = Event(self.sim, name=f"msg({src}->{dst})")
        self.sim.process(self._flight(src, dst, nbytes, tag, payload, done))
        return done

    def _flight(self, src, dst, nbytes, tag, payload, done: Event):
        yield self.sim.timeout(self.wire_ns(nbytes))
        receiver = self.nodes[dst]
        # Receiver CPU completion processing (polling the CQ, copying).
        yield from receiver.cpu.use(self.params.recv_overhead_ns)
        receiver.deliver(tag, payload)
        done.succeed(self.sim.now)

    def recv(self, rank: int, tag: str, count: int = 1) -> Event:
        """Event firing when ``count`` messages tagged ``tag`` arrived
        (receiver CPU overheads were already charged on delivery)."""
        return self.nodes[rank].arrived(tag, count)
